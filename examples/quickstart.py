#!/usr/bin/env python3
"""Quickstart: measure what ASAP does to page-walk latency.

Runs memcached (80GB dataset model) through the native machine model twice
— once as a stock Broadwell-like baseline, once with ASAP prefetching PL1
and PL2 — and prints the walk-latency comparison plus where walk requests
were served.

Run:  python examples/quickstart.py
"""

from repro import BASELINE, P1_P2, example_scale, run_native

SCALE = example_scale(30_000, warmup=6_000, seed=42)


def main() -> None:
    print("Simulating memcached (80GB) on the Table 5 machine model...")
    baseline = run_native("mc80", BASELINE, scale=SCALE)
    asap = run_native("mc80", P1_P2, scale=SCALE)

    print()
    print(f"{'':24s}{'Baseline':>12s}{'ASAP P1+P2':>12s}")
    print(f"{'avg walk latency (cy)':24s}"
          f"{baseline.avg_walk_latency:12.1f}{asap.avg_walk_latency:12.1f}")
    print(f"{'walk cycles total':24s}"
          f"{baseline.walk_cycles:12d}{asap.walk_cycles:12d}")
    print(f"{'% time in walks':24s}"
          f"{100 * baseline.walk_fraction:11.1f}%"
          f"{100 * asap.walk_fraction:11.1f}%")
    print(f"{'TLB MPKI':24s}{baseline.mpki:12.1f}{asap.mpki:12.1f}")

    saved = 100 * (1 - asap.avg_walk_latency / baseline.avg_walk_latency)
    print(f"\nASAP cut average page-walk latency by {saved:.1f}% "
          f"({asap.prefetches_useful} useful prefetches).")

    print("\nWhere baseline walk requests were served (per PT level):")
    for level in (4, 3, 2, 1):
        fractions = baseline.service.fractions(level)
        row = "  ".join(f"{label}:{100 * value:5.1f}%"
                        for label, value in fractions.items())
        print(f"  PL{level}:  {row}")
    print("\nASAP overlaps the deep-level fetches (PL1/PL2) with the walk's"
          "\nupper levels — exactly the long-latency part of the table.")


if __name__ == "__main__":
    main()
