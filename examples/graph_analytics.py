#!/usr/bin/env python3
"""Graph analytics at 60GB: bfs and pagerank, ASAP vs TLB coalescing.

The paper's intro motivates ASAP with exactly these workloads: huge,
irregular footprints whose TLB misses defeat every caching structure.
This example compares four designs on the graph workloads:

  1. the stock baseline,
  2. Clustered TLB (coalescing up to 8 translations/entry, §5.4.1),
  3. ASAP (P1+P2),
  4. Clustered TLB + ASAP combined,

reporting total page-walk cycles — reach techniques remove (cheap) walks,
ASAP shortens (expensive) ones, and they compose.

Run:  python examples/graph_analytics.py
"""

from repro import BASELINE, P1_P2, example_scale
from repro.sim.runner import run_native

SCALE = example_scale(24_000, warmup=5_000, seed=42)


def compare(workload: str) -> None:
    print(f"\n--- {workload} (60GB synthetic Twitter-like graph) ---")
    variants = (
        ("baseline", BASELINE, False),
        ("clustered TLB", BASELINE, True),
        ("ASAP P1+P2", P1_P2, False),
        ("clustered + ASAP", P1_P2, True),
    )
    baseline_cycles = None
    for label, config, clustered in variants:
        stats = run_native(workload, config, clustered_tlb=clustered,
                           scale=SCALE, collect_service=False)
        if baseline_cycles is None:
            baseline_cycles = stats.walk_cycles
            saved = ""
        else:
            saved = (f"  (-{100 * (1 - stats.walk_cycles / baseline_cycles):.1f}%"
                     " walk cycles)")
        print(f"  {label:18s} walks={stats.walks:6d}  "
              f"avg={stats.avg_walk_latency:6.1f} cy  "
              f"walk_cycles={stats.walk_cycles:9d}{saved}")


def main() -> None:
    print("Native execution, Table 5 machine model.")
    for workload in ("bfs", "pagerank"):
        compare(workload)
    print(
        "\nReading: coalescing removes some short walks (limited by the\n"
        "graph's poor physical contiguity); ASAP attacks the long walks\n"
        "that remain, and the two compose additively (paper Figure 11)."
    )


if __name__ == "__main__":
    main()
