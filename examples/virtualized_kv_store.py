#!/usr/bin/env python3
"""A cloud deployment scenario: memcached in a VM, colocated on SMT.

Walks the paper's Figure 10 ladder for one workload: nested (2D) page
walks under virtualization, with ASAP enabled per dimension — guest only,
then guest + host — in isolation and with a memory-intensive SMT
co-runner.  This is the deployment where ASAP shines (the paper reports up
to 55% walk-latency reduction).

Run:  python examples/virtualized_kv_store.py [workload]
"""

import sys

from repro import VIRT_LADDER, example_scale, run_virtualized

SCALE = example_scale(20_000, warmup=4_000, seed=42)


def ladder(workload: str, colocated: bool) -> None:
    label = "SMT colocation" if colocated else "isolation"
    print(f"\n--- {workload} under virtualization, {label} ---")
    baseline = None
    for config in VIRT_LADDER:
        stats = run_virtualized(workload, config, colocated=colocated,
                                scale=SCALE, collect_service=False)
        if baseline is None:
            baseline = stats.avg_walk_latency
            print(f"  {config.name:20s} {stats.avg_walk_latency:7.1f} cy")
        else:
            cut = 100 * (1 - stats.avg_walk_latency / baseline)
            print(f"  {config.name:20s} {stats.avg_walk_latency:7.1f} cy "
                  f"(-{cut:.1f}%)")


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mc80"
    print(f"2D nested-walk simulation for {workload!r} "
          "(guest PT + host PT, Figure 7 schedule).")
    print("Each host 1D walk and each guest PT access goes through the "
          "shared cache hierarchy;")
    print("ASAP prefetches per dimension: g = guest levels, h = host "
          "levels.")
    ladder(workload, colocated=False)
    ladder(workload, colocated=True)
    print("\nReading: the host dimension dominates nested walk time, so "
          "P1g+P1h beats deeper guest-only prefetching; colocation "
          "lengthens walks and enlarges ASAP's win.")


if __name__ == "__main__":
    main()
