#!/usr/bin/env python3
"""Build and evaluate your own workload with the public API.

Models a columnar analytics engine: one giant memory-mapped column store
scanned in long sequential bursts, a dictionary region probed with Zipf
skew, and a scratch arena of random writes.  Shows the full path a
downstream user takes: define VMAs + patterns, build a spec, and run it
through the machine model with and without ASAP.

Run:  python examples/custom_workload.py
"""

from repro import BASELINE, P1_P2, example_scale
from repro.kernelsim.vma import VmaKind
from repro.sim.runner import run_native
from repro.workloads.base import (
    Mix,
    Scans,
    Uniform,
    VmaSpec,
    WorkloadSpec,
    Zipf,
)

GB = 1 << 30

COLUMN_STORE = WorkloadSpec(
    name="column-store",
    description="Columnar analytics: scans + dictionary lookups",
    vmas=(
        VmaSpec(
            name="columns",
            size_bytes=24 * GB,
            weight=0.70,
            pattern=Scans(mean_run=256.0),  # long column sweeps
            kind=VmaKind.MMAP,
        ),
        VmaSpec(
            name="dictionary",
            size_bytes=2 * GB,
            weight=0.25,
            pattern=Zipf(alpha=1.05, scatter=True),
            kind=VmaKind.HEAP,
        ),
        VmaSpec(
            name="scratch",
            size_bytes=1 * GB,
            weight=0.05,
            pattern=Mix(((0.7, Uniform()), (0.3, Scans(mean_run=8.0)))),
            kind=VmaKind.HEAP,
            growable=True,
        ),
    ),
    pt_run_mean=10.0,
    data_run_mean=32.0,
    init_order="sequential",
)

SCALE = example_scale(25_000, warmup=5_000, seed=7)


def main() -> None:
    print(f"Workload: {COLUMN_STORE.description}")
    print(f"Footprint: {COLUMN_STORE.footprint_bytes / GB:.0f} GB over "
          f"{len(COLUMN_STORE.vmas)} VMAs")

    baseline = run_native(COLUMN_STORE, BASELINE, scale=SCALE)
    asap = run_native(COLUMN_STORE, P1_P2, scale=SCALE)

    print(f"\nTLB miss ratio: {100 * baseline.tlb_miss_ratio:.1f}%  "
          f"(L2-TLB miss ratio {100 * baseline.l2_tlb_miss_ratio:.1f}%)")
    print(f"Baseline walk latency: {baseline.avg_walk_latency:7.1f} cy")
    print(f"ASAP P1+P2:            {asap.avg_walk_latency:7.1f} cy  "
          f"(-{100 * (1 - asap.avg_walk_latency / baseline.avg_walk_latency):.1f}%)")

    reserved = 0
    process = COLUMN_STORE.build_process(asap_levels=(1, 2))
    assert process.asap_layout is not None
    reserved = process.asap_layout.total_reserved_bytes
    print(f"\nASAP's OS cost: {reserved / (1 << 20):.1f} MB of contiguous "
          f"PT reservations "
          f"({100 * reserved / COLUMN_STORE.footprint_bytes:.2f}% of the "
          "dataset) — the §3.3 'Cost' argument.")


if __name__ == "__main__":
    main()
