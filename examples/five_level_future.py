#!/usr/bin/env python3
"""The five-level-paging future (§2.6, §3.5).

Industry is adding a fifth radix level for >256TB address spaces; every
page walk gets one more serialized pointer fetch.  ASAP extends naturally:
one extra prefetch target (P3).  This example measures walk latency on 4-
vs 5-level page tables, baseline vs ASAP, and the incremental value of the
added P3 prefetch.

Run:  python examples/five_level_future.py
"""

import numpy as np

from repro import BASELINE, P1_P2, P1_P2_P3, example_scale
from repro.core.config import AsapConfig
from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.phys import PhysicalMemory
from repro.kernelsim.process import ProcessAddressSpace
from repro.kernelsim.pt_layout import AsapPtLayout
from repro.kernelsim.vma import VmaKind
from repro.sim.runner import run_native
from repro.sim.simulator import NativeSimulation

SCALE = example_scale(25_000, warmup=5_000, seed=42)
GB = 1 << 30


def compact_address_space() -> None:
    """A normal process: all VMAs inside one 256TB (PL5-entry) region."""
    workload = "mc400"
    print(f"Part 1 — {workload} (400GB) in a *compact* address space:\n")
    rows = (
        ("4-level, baseline", BASELINE, 4),
        ("4-level, ASAP P1+P2", P1_P2, 4),
        ("5-level, baseline", BASELINE, 5),
        ("5-level, ASAP P1+P2+P3", P1_P2_P3, 5),
    )
    results = {}
    for label, config, levels in rows:
        stats = run_native(workload, config, scale=SCALE,
                           pt_levels=levels, collect_service=False)
        results[label] = stats.avg_walk_latency
        print(f"  {label:24s} {stats.avg_walk_latency:7.1f} cy")
    added = results["5-level, baseline"] - results["4-level, baseline"]
    print(f"\n  The fifth level adds only {added:+.1f} cy here: with one "
          "PL5 entry in play, the\n  root stays PWC-resident and the extra "
          "depth is hidden.")


def sprawling_address_space() -> None:
    """A 5-level-native process: VMAs spread across many 256TB regions.

    This is what five-level paging exists for — and where the extra walk
    depth actually shows (PL5/PL4 PWC entries start missing).
    """
    print("\nPart 2 — the same footprint *sprawled* over sixteen 256TB "
          "regions:\n")
    region = 1 << 48
    results = {}
    for label, asap_levels, config in (
        ("5-level, baseline", (), BASELINE),
        ("5-level, ASAP P1+P2+P3",
         (1, 2, 3), AsapConfig(name="P1+P2+P3", native_levels=(1, 2, 3))),
    ):
        buddy = BuddyAllocator(PhysicalMemory(1 << 41), seed=1)
        layout = (AsapPtLayout(buddy, levels=asap_levels)
                  if asap_levels else None)
        process = ProcessAddressSpace(buddy=buddy, levels=5,
                                      asap_layout=layout)
        for index in range(16):
            process.mmap(region * (index + 1), 4 * GB,
                         kind=VmaKind.MMAP, name=f"shard-{index}")
        rng = np.random.default_rng(3)
        shard = rng.integers(1, 17, size=SCALE.trace_length)
        offset = rng.integers(0, (4 * GB) >> 12,
                              size=SCALE.trace_length) << 12
        trace = shard * region + offset
        simulation = NativeSimulation(process, asap=config)
        stats = simulation.run(trace, warmup=SCALE.warmup)
        results[label] = stats.avg_walk_latency
        print(f"  {label:24s} {stats.avg_walk_latency:7.1f} cy")
    recovered = (results["5-level, baseline"]
                 - results["5-level, ASAP P1+P2+P3"])
    print(f"\n  Here the deep tree costs real cycles, and the P3 prefetch "
          f"target recovers\n  {recovered:.1f} cy of the average walk "
          "(§3.5).")


def main() -> None:
    compact_address_space()
    sprawling_address_space()


if __name__ == "__main__":
    main()
