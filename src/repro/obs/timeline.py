"""``repro obs timeline``: a terminal Gantt of workers x jobs.

One lane per process, one letter per job, scaled to the sweep's wall
time.  Cache hits land before the first execution (the engine satisfies
them synchronously), so they appear in the legend, not as bars.
"""

from __future__ import annotations

from typing import Any

from repro.obs.reader import instants, spans

#: Job bar letters, cycled when a sweep has more jobs than symbols.
_LETTERS = ("ABCDEFGHIJKLMNOPQRSTUVWXYZ"
            "abcdefghijklmnopqrstuvwxyz0123456789")


def render_timeline(header: dict[str, Any],
                    events: list[dict[str, Any]],
                    width: int = 72) -> str:
    """Render the Gantt; ``width`` is the number of time columns."""
    all_spans = spans(header, events)
    sweep = next((s for s in all_spans if s["name"] == "sweep"), None)
    bars = [s for s in all_spans if s["name"] == "job"]
    if not bars:
        # Not an engine log (e.g. a bench capture): chart the top-level
        # spans instead so the command still shows something useful.
        bars = [s for s in all_spans if s["depth"] == 0]
    if not bars:
        return "no spans to draw"
    t0 = sweep["t0"] if sweep else min(s["t0"] for s in bars)
    t1 = sweep["t1"] if sweep else max(s["t1"] for s in bars)
    wall = max(t1 - t0, 1e-9)

    def column(ts: float) -> int:
        return min(int((ts - t0) / wall * width), width - 1)

    lanes: dict[int, list[tuple[dict[str, Any], str]]] = {}
    legend: list[str] = []
    for index, bar in enumerate(sorted(bars, key=lambda s: s["t0"])):
        letter = _LETTERS[index % len(_LETTERS)]
        lanes.setdefault(bar["pid"], []).append((bar, letter))
        label = bar["args"].get("job", bar["name"])
        legend.append(f"  {letter} = {label} ({bar['dur']:.2f}s)")

    lines = [f"wall {wall:.2f}s over {len(lanes)} worker(s), "
             f"{len(bars)} bar(s); one column = {wall / width:.3f}s"]
    for pid in sorted(lanes):
        row = [" "] * width
        for bar, letter in lanes[pid]:
            start, stop = column(bar["t0"]), column(bar["t1"])
            for col in range(start, max(stop, start) + 1):
                row[col] = letter
        lines.append(f"pid {pid:>8} |{''.join(row)}|")
    hits = instants(header, events, "cache_hit")
    if hits:
        lines.append(f"(+ {len(hits)} cache hit(s) served before "
                     f"execution started)")
    lines.append("")
    lines.extend(legend)
    return "\n".join(lines)
