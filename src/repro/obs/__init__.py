"""Run telemetry: structured event log, aggregation, and dashboards.

`repro.obs` is opt-in observability for the whole pipeline.  The engine
activates a :class:`~repro.obs.events.Recorder` when a run asks for it
(``--obs`` or ``REPRO_OBS=1``); the instrumentation seams in the sweep
engine, the simulators, and the multi-tenant scheduler emit spans and
counter samples into whatever :func:`~repro.obs.events.active` returns,
and do nothing (one ``is None`` test, at chunk/job granularity) when it
returns ``None``.  Event logs are JSONL files under
``<cache-dir>/obs/``; ``repro obs summary|timeline|export|dashboard``
aggregate them after the fact.
"""

from repro.obs.events import (  # noqa: F401
    OBS_ENV,
    OBS_SAMPLE_ENV,
    SCHEMA_VERSION,
    Recorder,
    activate,
    active,
    capture,
    deactivate,
    env_enabled,
)
from repro.obs.probe import SimProbe  # noqa: F401
