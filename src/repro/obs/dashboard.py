"""``repro obs dashboard``: event logs -> one static HTML page.

Self-contained output — inline CSS and hand-built SVG, no external
assets or scripts — so the file can be archived as a CI artifact or
dropped on any static host.  Renders, per observed run: scorecards,
worker-utilization and cache-hit-rate charts, a per-job phase
breakdown, a worker x job Gantt, and chunk-sample throughput; plus the
repo's BENCH_schemes/BENCH_scaling perf trajectories when the JSON
files are supplied.  This page is the seed of the ROADMAP item-1
serving dashboard.
"""

from __future__ import annotations

import html
from typing import Any

from repro.obs.reader import counters, spans
from repro.obs.summary import PHASES, summarize

#: Phase palette (also keys the legend).
_PHASE_COLORS = {
    "setup": "#8da0cb",
    "populate": "#66c2a5",
    "warmup": "#ffd92f",
    "measure": "#fc8d62",
    "other": "#cccccc",
}

_SERIES_COLORS = ("#1b6ca8", "#e4572e", "#2e933c", "#7b4b94",
                  "#c08524", "#5d737e")

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 24px;
       color: #1d2733; background: #f7f8fa; }
h1 { font-size: 22px; } h2 { font-size: 17px; margin-top: 28px; }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card { background: #fff; border: 1px solid #dde3ea; border-radius: 8px;
        padding: 10px 16px; min-width: 110px; }
.card .v { font-size: 20px; font-weight: 600; }
.card .k { font-size: 11px; color: #5c6b7a; text-transform: uppercase; }
.panel { background: #fff; border: 1px solid #dde3ea; border-radius: 8px;
         padding: 12px 16px; margin-top: 10px; overflow-x: auto; }
svg text { font-family: inherit; }
.legend span { display: inline-block; margin-right: 14px; font-size: 12px; }
.legend i { display: inline-block; width: 10px; height: 10px;
            margin-right: 4px; border-radius: 2px; }
"""


def _esc(text: Any) -> str:
    return html.escape(str(text))


def _card(key: str, value: str) -> str:
    return (f'<div class="card"><div class="v">{_esc(value)}</div>'
            f'<div class="k">{_esc(key)}</div></div>')


def _phase_legend() -> str:
    items = "".join(
        f'<span><i style="background:{color}"></i>{name}</span>'
        for name, color in _PHASE_COLORS.items())
    return f'<div class="legend">{items}</div>'


# ----------------------------------------------------------------------
# SVG primitives
# ----------------------------------------------------------------------
def _hbar_chart(rows: list[tuple[str, float, str]], unit: str,
                width: int = 640, max_value: float | None = None) -> str:
    """Horizontal bars: ``rows`` is ``(label, value, color)``."""
    if not rows:
        return "<p>(no data)</p>"
    label_w, bar_h, gap = 190, 18, 6
    scale_max = max_value if max_value else max(v for _, v, _ in rows)
    scale_max = scale_max or 1.0
    height = len(rows) * (bar_h + gap) + gap
    parts = [f'<svg width="{width}" height="{height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    for index, (label, value, color) in enumerate(rows):
        y = gap + index * (bar_h + gap)
        bar_w = max((width - label_w - 90) * value / scale_max, 1)
        parts.append(f'<text x="{label_w - 6}" y="{y + bar_h - 5}" '
                     f'text-anchor="end" font-size="12">{_esc(label)}</text>')
        parts.append(f'<rect x="{label_w}" y="{y}" width="{bar_w:.1f}" '
                     f'height="{bar_h}" fill="{color}" rx="2"/>')
        parts.append(f'<text x="{label_w + bar_w + 6:.1f}" '
                     f'y="{y + bar_h - 5}" font-size="12">'
                     f'{value:.2f}{_esc(unit)}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _stacked_phase_chart(jobs: list[dict[str, Any]],
                         width: int = 760) -> str:
    """One stacked bar per job, segments colored by phase."""
    if not jobs:
        return "<p>(no executed jobs in this log)</p>"
    label_w, bar_h, gap = 250, 18, 6
    scale_max = max(job["seconds"] for job in jobs) or 1.0
    height = len(jobs) * (bar_h + gap) + gap
    span_w = width - label_w - 80
    parts = [f'<svg width="{width}" height="{height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    for index, job in enumerate(jobs):
        y = gap + index * (bar_h + gap)
        parts.append(f'<text x="{label_w - 6}" y="{y + bar_h - 5}" '
                     f'text-anchor="end" font-size="11">'
                     f'{_esc(job["job"])}</text>')
        x = float(label_w)
        for phase in (*PHASES, "other"):
            value = job["phases"].get(phase, 0.0)
            if value <= 0:
                continue
            seg_w = span_w * value / scale_max
            parts.append(f'<rect x="{x:.1f}" y="{y}" width="{seg_w:.1f}" '
                         f'height="{bar_h}" '
                         f'fill="{_PHASE_COLORS[phase]}"/>')
            x += seg_w
        parts.append(f'<text x="{x + 6:.1f}" y="{y + bar_h - 5}" '
                     f'font-size="11">{job["seconds"]:.2f}s</text>')
    parts.append("</svg>")
    return "".join(parts)


def _gantt_chart(summary: dict[str, Any], width: int = 760) -> str:
    """Worker lanes x job bars over the sweep's wall time."""
    jobs = summary["jobs"]
    if not jobs:
        return "<p>(no executed jobs in this log)</p>"
    wall = summary["wall_seconds"] or 1.0
    t_base = min(job["t0"] for job in jobs)
    pids = sorted({job["pid"] for job in jobs})
    label_w, lane_h, gap = 110, 22, 6
    span_w = width - label_w - 20
    height = len(pids) * (lane_h + gap) + gap + 16
    parts = [f'<svg width="{width}" height="{height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    for lane, pid in enumerate(pids):
        y = gap + lane * (lane_h + gap)
        parts.append(f'<text x="{label_w - 6}" y="{y + lane_h - 7}" '
                     f'text-anchor="end" font-size="11">pid {pid}</text>')
        parts.append(f'<rect x="{label_w}" y="{y}" width="{span_w}" '
                     f'height="{lane_h}" fill="#eef1f5"/>')
        for index, job in enumerate(jobs):
            if job["pid"] != pid:
                continue
            x = label_w + span_w * (job["t0"] - t_base) / wall
            bar_w = max(span_w * job["seconds"] / wall, 2)
            color = _SERIES_COLORS[index % len(_SERIES_COLORS)]
            parts.append(
                f'<rect x="{x:.1f}" y="{y + 2}" width="{bar_w:.1f}" '
                f'height="{lane_h - 4}" fill="{color}" rx="2">'
                f'<title>{_esc(job["job"])} ({job["seconds"]:.2f}s)'
                f'</title></rect>')
    parts.append(f'<text x="{label_w}" y="{height - 3}" font-size="10">'
                 f'0s</text>')
    parts.append(f'<text x="{label_w + span_w}" y="{height - 3}" '
                 f'text-anchor="end" font-size="10">{wall:.2f}s</text>')
    parts.append("</svg>")
    return "".join(parts)


def _line_chart(series: dict[str, list[tuple[float, float]]],
                x_label: str, y_label: str,
                width: int = 700, height: int = 220) -> str:
    """Polyline chart; ``series`` maps name -> [(x, y), ...]."""
    points = [p for pts in series.values() for p in pts]
    if not points:
        return "<p>(no data)</p>"
    x_min = min(p[0] for p in points)
    x_max = max(p[0] for p in points) or 1.0
    y_max = max(p[1] for p in points) or 1.0
    pad_l, pad_b, pad_t = 60, 28, 10
    plot_w, plot_h = width - pad_l - 16, height - pad_b - pad_t

    def sx(x: float) -> float:
        if x_max == x_min:
            return pad_l + plot_w / 2
        return pad_l + plot_w * (x - x_min) / (x_max - x_min)

    def sy(y: float) -> float:
        return pad_t + plot_h * (1 - y / y_max)

    parts = [f'<svg width="{width}" height="{height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    parts.append(f'<line x1="{pad_l}" y1="{pad_t}" x2="{pad_l}" '
                 f'y2="{pad_t + plot_h}" stroke="#99a4b0"/>')
    parts.append(f'<line x1="{pad_l}" y1="{pad_t + plot_h}" '
                 f'x2="{pad_l + plot_w}" y2="{pad_t + plot_h}" '
                 f'stroke="#99a4b0"/>')
    parts.append(f'<text x="{pad_l - 8}" y="{pad_t + 10}" '
                 f'text-anchor="end" font-size="10">{y_max:.3g}</text>')
    parts.append(f'<text x="{pad_l - 8}" y="{pad_t + plot_h}" '
                 f'text-anchor="end" font-size="10">0</text>')
    parts.append(f'<text x="{pad_l + plot_w / 2}" y="{height - 4}" '
                 f'text-anchor="middle" font-size="11">'
                 f'{_esc(x_label)}</text>')
    parts.append(f'<text x="12" y="{pad_t + plot_h / 2}" font-size="11" '
                 f'transform="rotate(-90 12 {pad_t + plot_h / 2})" '
                 f'text-anchor="middle">{_esc(y_label)}</text>')
    legend_x = pad_l + 8
    for index, (name, pts) in enumerate(sorted(series.items())):
        color = _SERIES_COLORS[index % len(_SERIES_COLORS)]
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}"
                        for x, y in sorted(pts))
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for x, y in pts:
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" '
                         f'r="2.5" fill="{color}"/>')
        parts.append(f'<rect x="{legend_x}" y="{pad_t}" width="10" '
                     f'height="10" fill="{color}"/>')
        parts.append(f'<text x="{legend_x + 14}" y="{pad_t + 9}" '
                     f'font-size="11">{_esc(name)}</text>')
        legend_x += 24 + 7 * len(name)
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# page sections
# ----------------------------------------------------------------------
def _run_section(header: dict[str, Any],
                 events: list[dict[str, Any]]) -> str:
    summary = summarize(header, events)
    cache = summary["cache"]
    parts = [f"<h2>Run {_esc(summary['run_id'])}</h2>"]
    parts.append('<div class="cards">')
    parts.append(_card("wall", f"{summary['wall_seconds']:.2f}s"))
    parts.append(_card("jobs", str(cache["total"])))
    parts.append(_card("executed", str(cache["executed"])))
    parts.append(_card("cache hits", str(cache["hits"])))
    parts.append(_card("hit rate", f"{100 * cache['hit_rate']:.0f}%"))
    parts.append(_card("workers", str(len(summary["workers"]) or 1)))
    parts.append(_card("chunk samples", str(summary["samples"])))
    parts.append("</div>")

    parts.append("<h2>Worker utilization</h2>")
    parts.append('<div class="panel">')
    parts.append(_hbar_chart(
        [(f"pid {w['pid']} ({w['jobs']} jobs)",
          100 * w["utilization"], "#1b6ca8")
         for w in summary["workers"]], "%", max_value=100.0))
    parts.append("</div>")

    parts.append("<h2>Per-job phase breakdown</h2>")
    parts.append('<div class="panel">')
    parts.append(_phase_legend())
    parts.append(_stacked_phase_chart(summary["jobs"]))
    parts.append("</div>")

    parts.append("<h2>Timeline (workers &#215; jobs)</h2>")
    parts.append('<div class="panel">')
    parts.append(_gantt_chart(summary))
    parts.append("</div>")

    samples = counters(header, events, "chunk")
    throughput = _throughput_series(header, events, samples)
    if throughput:
        parts.append("<h2>Chunk throughput (records/s, per job)</h2>")
        parts.append('<div class="panel">')
        parts.append(_line_chart(throughput, "wall seconds (run-relative)",
                                 "records/s"))
        parts.append("</div>")

    for error in summary["errors"]:
        parts.append(f'<div class="panel" style="border-color:#c0392b">'
                     f'<b>job error:</b> {_esc(error)}</div>')
    return "".join(parts)


def _throughput_series(header: dict[str, Any],
                       events: list[dict[str, Any]],
                       samples: list[dict[str, Any]],
                       max_series: int = 6) -> dict[str, list]:
    """records/s between consecutive chunk samples, grouped per job.

    Sample counters are cumulative; consecutive deltas within one job
    span (same pid, time containment) differentiate into throughput.
    """
    job_spans = [s for s in spans(header, events) if s["name"] == "job"]
    series: dict[str, list[tuple[float, float]]] = {}
    for job in sorted(job_spans, key=lambda s: s["t0"])[:max_series]:
        mine = [s for s in samples
                if s.get("pid") == job["pid"]
                and job["t0"] <= s["ts"] <= job["t1"]]
        points = []
        prev_ts, prev_records = job["t0"], 0
        for sample in mine:
            records = sample.get("args", {}).get("records", 0)
            dt = sample["ts"] - prev_ts
            if dt > 0 and records > prev_records:
                points.append((sample["ts"],
                               (records - prev_records) / dt))
            prev_ts, prev_records = sample["ts"], records
        if points:
            series[job["args"].get("job", "?")] = points
    if not series and samples:
        # Non-engine log: one anonymous series over all samples.
        points = []
        prev_ts, prev_records = None, None
        for sample in samples:
            records = sample.get("args", {}).get("records", 0)
            if prev_ts is not None and sample["ts"] > prev_ts \
                    and records > prev_records:
                points.append((sample["ts"],
                               (records - prev_records)
                               / (sample["ts"] - prev_ts)))
            prev_ts, prev_records = sample["ts"], records
        if points:
            series["run"] = points
    return series


def _bench_schemes_section(bench: dict[str, Any]) -> str:
    """Per-record cost trajectory across BENCH_schemes.json entries."""
    series: dict[str, list[tuple[float, float]]] = {}
    trace_length = bench.get("trace_length") or 1
    for index, entry in enumerate(bench.get("entries", [])):
        for result in entry.get("results", []):
            name = result.get("scheme", "?")
            cost_us = 1e6 * result.get("seconds", 0.0) / trace_length
            series.setdefault(name, []).append((float(index), cost_us))
    chart = _line_chart(series, "trajectory entry",
                        "µs per record")
    return (f"<h2>BENCH_schemes trajectory "
            f"({_esc(bench.get('workload', '?'))}, "
            f"{len(bench.get('entries', []))} entries)</h2>"
            f'<div class="panel">{chart}</div>')


def _bench_scaling_section(bench: dict[str, Any]) -> str:
    """Per-record cost trajectory per (scheme, rung) across entries."""
    series: dict[str, list[tuple[float, float]]] = {}
    for index, entry in enumerate(bench.get("entries", [])):
        for result in entry.get("results", []):
            records = result.get("records") or 1
            name = (f"{result.get('scheme', '?')} @"
                    f"{_fmt_records(records)}")
            cost_us = 1e6 * result.get("seconds", 0.0) / records
            series.setdefault(name, []).append((float(index), cost_us))
    chart = _line_chart(series, "trajectory entry", "µs per record")
    return (f"<h2>BENCH_scaling trajectory "
            f"({_esc(bench.get('workload', '?'))}, "
            f"{len(bench.get('entries', []))} entries)</h2>"
            f'<div class="panel">{chart}</div>')


def _fmt_records(records: int) -> str:
    if records >= 1_000_000:
        return f"{records / 1_000_000:g}M"
    if records >= 1_000:
        return f"{records / 1_000:g}k"
    return str(records)


# ----------------------------------------------------------------------
def build_dashboard(logs: list[tuple[dict[str, Any], list[dict[str, Any]]]],
                    bench_schemes: dict[str, Any] | None = None,
                    bench_scaling: dict[str, Any] | None = None,
                    title: str = "repro observability") -> str:
    """The full page for a set of parsed event logs (+ BENCH files)."""
    body = [f"<h1>{_esc(title)}</h1>"]
    if not logs and bench_schemes is None and bench_scaling is None:
        body.append("<p>Nothing to show: no event logs or BENCH files "
                    "given.</p>")
    for header, events in logs:
        body.append(_run_section(header, events))
    if bench_schemes is not None:
        body.append(_bench_schemes_section(bench_schemes))
    if bench_scaling is not None:
        body.append(_bench_scaling_section(bench_scaling))
    return ("<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
            f"<title>{_esc(title)}</title>"
            f"<style>{_CSS}</style></head>\n"
            f"<body>{''.join(body)}</body></html>\n")
