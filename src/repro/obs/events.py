"""The structured event log: schema, recorder, cross-process merging.

One *run* (an engine sweep, a bench cell, a ``repro run --obs``
invocation) produces one JSONL file.  The first line is a header; every
other line is one event:

* ``B`` / ``E`` — span begin/end.  Spans nest strictly (LIFO per
  process): the engine's ``sweep`` span contains ``job`` spans, a job
  contains the simulator's ``setup`` / ``populate`` / ``simulate``
  spans, ``simulate`` contains ``warmup`` then ``measure``.
* ``C`` — a counter sample (numeric ``args``), e.g. the per-chunk
  ``chunk`` snapshot of records/s and TLB/walk/cache counter deltas.
* ``I`` — an instant (``cache_hit``, ``switch``, ``flush``,
  ``job_error``).

Timestamps are **monotonic** seconds relative to the recording
process's start (``time.monotonic()`` deltas — immune to wall-clock
jumps), and every recorder also notes the wall time of that origin, so
events captured in a worker process can be rebased onto the parent
run's timeline with one wall-clock subtraction (:meth:`Recorder.
merge_batch`).  The schema is versioned; readers reject files written
under a different :data:`SCHEMA_VERSION` instead of misreading them.

Cost contract: with no recorder active (:func:`active` returns
``None``) the instrumentation seams in the simulators and the engine
reduce to one ``is None`` test per *chunk* / per *job* — never per
record — and simulation statistics are byte-identical with observation
on or off (the sampler only ever acts at chunk boundaries, where every
chunking of a trace is pinned byte-identical by tests/test_traces.py).
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

#: Bump when an event field changes meaning; readers check it.
SCHEMA_VERSION = 1

#: Event types (Chrome-trace-aligned: begin, end, counter, instant).
EVENT_TYPES = ("B", "E", "C", "I")

#: Environment switch: setting ``REPRO_OBS=1`` enables observation
#: wherever the CLI would accept ``--obs``.
OBS_ENV = "REPRO_OBS"

#: Environment knob: sample interval in records for the simulators'
#: chunk sampler (splits execution chunks so long runs snapshot more
#: often than once per generation chunk).
OBS_SAMPLE_ENV = "REPRO_OBS_SAMPLE"


def env_enabled() -> bool:
    """True when ``REPRO_OBS`` asks for observation."""
    return os.environ.get(OBS_ENV, "") not in ("", "0")


def env_sample_records() -> int | None:
    """The ``REPRO_OBS_SAMPLE`` interval, or ``None`` when unset."""
    raw = os.environ.get(OBS_SAMPLE_ENV, "")
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def host_metadata() -> dict[str, Any]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "nproc": os.cpu_count(),
    }


_RUN_SEQ = 0


def _run_id() -> str:
    global _RUN_SEQ
    _RUN_SEQ += 1
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{os.getpid()}-{_RUN_SEQ}"


class Recorder:
    """Collects events in memory or appends them to a JSONL file.

    ``path=None`` records in memory (worker processes; exported with
    :meth:`export_batch` and folded into the parent's file recorder).
    ``sample_records`` is the simulators' chunk-split interval; it is a
    recorder property so one knob configures every probe of the run.
    """

    def __init__(self, path: str | os.PathLike[str] | None = None,
                 sample_records: int | None = None,
                 meta: dict[str, Any] | None = None,
                 run_id: str | None = None) -> None:
        self.t0_wall = time.time()
        self._t0 = time.monotonic()
        self.pid = os.getpid()
        self.sample_records = (sample_records if sample_records is not None
                               else env_sample_records())
        self.run_id = run_id if run_id is not None else _run_id()
        self.events: list[dict[str, Any]] = []
        self._fh = None
        self.path: Path | None = None
        if path is not None:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
            self._write(self.header(meta))

    def header(self, meta: dict[str, Any] | None = None) -> dict[str, Any]:
        return {
            "type": "header",
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "t0_wall": self.t0_wall,
            "pid": self.pid,
            "host": host_metadata(),
            "meta": meta or {},
        }

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Monotonic seconds since this recorder's origin."""
        return time.monotonic() - self._t0

    def _write(self, obj: dict[str, Any]) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
        else:
            self.events.append(obj)

    def _emit(self, type_: str, name: str, cat: str,
              args: dict[str, Any] | None) -> None:
        event: dict[str, Any] = {
            "type": type_,
            "ts": round(self.now(), 6),
            "pid": self.pid,
            "name": name,
            "cat": cat,
        }
        if args:
            event["args"] = args
        self._write(event)

    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str, **args: Any) -> None:
        self._emit("B", name, cat, args)

    def end(self, name: str, cat: str = "", **args: Any) -> None:
        self._emit("E", name, cat, args)

    def instant(self, name: str, cat: str, **args: Any) -> None:
        self._emit("I", name, cat, args)

    def counter(self, name: str, cat: str, **args: Any) -> None:
        self._emit("C", name, cat, args)

    @contextmanager
    def span(self, name: str, cat: str, **args: Any) -> Iterator[None]:
        self.begin(name, cat, **args)
        try:
            yield
        finally:
            self.end(name)

    # ------------------------------------------------------------------
    def export_batch(self) -> dict[str, Any]:
        """This recorder's events as one transferable batch (workers)."""
        return {"t0_wall": self.t0_wall, "pid": self.pid,
                "sample_records": self.sample_records,
                "events": self.events}

    def merge_batch(self, batch: dict[str, Any]) -> None:
        """Fold a worker batch into this log, rebasing its timestamps.

        The worker's monotonic origin and ours are unrelated clocks;
        the wall time each recorder noted at its origin aligns them.
        """
        offset = batch["t0_wall"] - self.t0_wall
        for event in batch["events"]:
            rebased = dict(event)
            rebased["ts"] = round(event["ts"] + offset, 6)
            self._write(rebased)
        self.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


def open_run_log(directory: str | os.PathLike[str], prefix: str = "run",
                 meta: dict[str, Any] | None = None,
                 sample_records: int | None = None) -> Recorder:
    """A file recorder at ``<directory>/<prefix>-<run id>.jsonl``.

    The run id carries timestamp, pid and a per-process sequence number,
    so concurrent runs sharing one obs directory never collide.
    """
    run_id = _run_id()
    path = Path(directory) / f"{prefix}-{run_id}.jsonl"
    return Recorder(path=path, sample_records=sample_records, meta=meta,
                    run_id=run_id)


# ----------------------------------------------------------------------
# the process-wide active recorder
# ----------------------------------------------------------------------
_ACTIVE: Recorder | None = None


def active() -> Recorder | None:
    """The recorder instrumentation seams emit into, or ``None`` (off)."""
    return _ACTIVE


def activate(recorder: Recorder) -> None:
    global _ACTIVE
    _ACTIVE = recorder


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def capture(sample_records: int | None = None) -> Iterator[Recorder]:
    """Route events into a fresh in-memory recorder for the duration.

    The worker entry point (`repro.runtime.engine`) and the bench tools
    use this to collect one job's events and ship them back as a batch;
    any previously active recorder is restored on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    recorder = Recorder(sample_records=sample_records)
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous
        recorder.close()
