"""Aggregation: event log -> phase/component tables.

Turns one run's events into the questions the log exists to answer:
where did the wall-clock go (per job, per phase), how busy was each
worker, and how much did the cache save.  The same :func:`phase_totals`
helper feeds the bench tools' per-cell phase breakdowns.
"""

from __future__ import annotations

from typing import Any

from repro.obs.reader import counters, instants, spans

#: Simulator phases in presentation order.  ``simulate`` is the parent
#: of ``warmup``/``measure`` and is reported separately.
PHASES = ("setup", "populate", "warmup", "measure")


def phase_totals(header: dict[str, Any],
                 events: list[dict[str, Any]],
                 pid: int | None = None,
                 t0: float | None = None,
                 t1: float | None = None) -> dict[str, float]:
    """Total seconds per phase name, optionally windowed to one job.

    Multi-tenant runs emit one ``warmup``/``measure`` pair per quantum;
    the totals sum them, which is exactly the per-phase attribution the
    table wants.
    """
    totals: dict[str, float] = {}
    for span in spans(header, events):
        if span["name"] not in PHASES:
            continue
        if pid is not None and span["pid"] != pid:
            continue
        if t0 is not None and (span["t0"] < t0 or span["t1"] > t1):
            continue
        totals[span["name"]] = (totals.get(span["name"], 0.0)
                                + span["dur"])
    return {name: round(value, 6) for name, value in totals.items()}


def summarize(header: dict[str, Any],
              events: list[dict[str, Any]]) -> dict[str, Any]:
    """The run digest: sweep totals, per-job phases, worker utilization,
    cache hit rate.  Everything ``render_summary`` and the dashboard
    show comes from this one structure."""
    all_spans = spans(header, events)
    sweep = next((s for s in all_spans if s["name"] == "sweep"), None)
    job_spans = [s for s in all_spans if s["name"] == "job"]
    hits = instants(header, events, "cache_hit")
    errors = instants(header, events, "job_error")

    jobs = []
    for job in sorted(job_spans, key=lambda s: s["t0"]):
        phases = phase_totals(header, events, pid=job["pid"],
                              t0=job["t0"], t1=job["t1"])
        accounted = sum(phases.values())
        phases["other"] = round(max(job["dur"] - accounted, 0.0), 6)
        jobs.append({
            "job": job["args"].get("job", "?"),
            "spec": job["args"].get("spec", ""),
            "pid": job["pid"],
            "t0": job["t0"],
            "seconds": job["dur"],
            "phases": phases,
        })

    wall = sweep["dur"] if sweep else (
        max((j["t0"] + j["seconds"] for j in jobs), default=0.0)
        - min((j["t0"] for j in jobs), default=0.0))
    workers = []
    by_pid: dict[int, list[dict[str, Any]]] = {}
    for job in jobs:
        by_pid.setdefault(job["pid"], []).append(job)
    for pid in sorted(by_pid):
        busy = sum(job["seconds"] for job in by_pid[pid])
        workers.append({
            "pid": pid,
            "jobs": len(by_pid[pid]),
            "busy_seconds": round(busy, 6),
            "utilization": round(busy / wall, 4) if wall else 0.0,
        })

    executed = len(jobs)
    total = executed + len(hits)
    chunk_samples = counters(header, events, "chunk")
    return {
        "run_id": header.get("run_id"),
        "meta": header.get("meta", {}),
        "wall_seconds": round(wall, 6),
        "jobs": jobs,
        "workers": workers,
        "cache": {
            "hits": len(hits),
            "executed": executed,
            "total": total,
            "hit_rate": round(len(hits) / total, 4) if total else 0.0,
        },
        "errors": [e.get("args", {}) for e in errors],
        "samples": len(chunk_samples),
    }


def _fmt_seconds(value: float) -> str:
    return f"{value:8.3f}s"


def render_summary(summary: dict[str, Any]) -> str:
    """The ``repro obs summary`` table."""
    lines = []
    cache = summary["cache"]
    lines.append(f"run {summary['run_id']}  wall "
                 f"{summary['wall_seconds']:.3f}s  "
                 f"jobs {cache['total']} "
                 f"({cache['executed']} executed, {cache['hits']} cached, "
                 f"hit rate {100 * cache['hit_rate']:.0f}%)  "
                 f"chunk samples {summary['samples']}")
    lines.append("")
    header = (f"{'job':<44} {'pid':>7} {'total':>9} "
              + " ".join(f"{phase:>9}" for phase in PHASES)
              + f" {'other':>9}")
    lines.append(header)
    lines.append("-" * len(header))
    totals = {phase: 0.0 for phase in (*PHASES, "other")}
    total_seconds = 0.0
    for job in summary["jobs"]:
        row = f"{job['job']:<44.44} {job['pid']:>7} "
        row += _fmt_seconds(job["seconds"])
        total_seconds += job["seconds"]
        for phase in (*PHASES, "other"):
            value = job["phases"].get(phase, 0.0)
            totals[phase] += value
            row += " " + _fmt_seconds(value)
        lines.append(row)
    if summary["jobs"]:
        lines.append("-" * len(header))
        row = f"{'all jobs':<44} {'':>7} " + _fmt_seconds(total_seconds)
        for phase in (*PHASES, "other"):
            row += " " + _fmt_seconds(totals[phase])
        lines.append(row)
    lines.append("")
    lines.append(f"{'worker pid':>12} {'jobs':>6} {'busy':>9} "
                 f"{'utilization':>12}")
    for worker in summary["workers"]:
        lines.append(f"{worker['pid']:>12} {worker['jobs']:>6} "
                     + _fmt_seconds(worker["busy_seconds"])
                     + f" {100 * worker['utilization']:>11.1f}%")
    for error in summary["errors"]:
        lines.append(f"ERROR job {error.get('job')} "
                     f"(spec {error.get('spec')}): {error.get('error')}")
    return "\n".join(lines)
