"""The simulators' observation seam: phase spans + chunk sampling.

A :class:`SimProbe` is created at the top of a simulator ``run()`` —
:meth:`SimProbe.create` returns ``None`` unless a recorder is active,
so the off cost is one ``is None`` test.  When on, the probe

* wraps ``populate`` and the simulate loop in spans, with ``warmup`` /
  ``measure`` sub-spans flipped exactly at the warmup record;
* re-splits the execution-chunk stream at the warmup boundary (and at
  every ``sample_records`` interval when the recorder carries one), so
  phase flips and samples land exactly on chunk seams.  Every chunking
  of a trace yields byte-identical SimStats (pinned by
  tests/test_traces.py), which is what makes this free of observable
  effect: the hot loop is untouched, only the seam positions move;
* emits one ``C`` (counter) event per chunk with the cumulative record
  index, simulated clock, and TLB/walk/cache counters — the reader
  differentiates consecutive samples into records/s and counter deltas.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.obs.events import Recorder, active


class SimProbe:
    """Per-``run()`` observation state; see the module docstring."""

    __slots__ = ("recorder", "kind", "warmup", "phase", "_open")

    def __init__(self, recorder: Recorder, kind: str, warmup: int) -> None:
        self.recorder = recorder
        self.kind = kind
        self.warmup = warmup
        self.phase = ""
        self._open = False

    @classmethod
    def create(cls, kind: str, warmup: int) -> "SimProbe | None":
        """The probe for this run, or ``None`` when observation is off."""
        recorder = active()
        if recorder is None:
            return None
        return cls(recorder, kind, warmup)

    # -- phase spans ---------------------------------------------------
    def phase_begin(self, name: str, **args: Any) -> None:
        self.recorder.begin(name, "sim", **args)

    def phase_end(self, name: str, **args: Any) -> None:
        self.recorder.end(name, **args)

    def run_begin(self, **args: Any) -> None:
        """Open the ``simulate`` span and its first phase sub-span."""
        self.recorder.begin("simulate", "sim", kind=self.kind,
                            warmup=self.warmup, **args)
        self._open = True
        self.phase = "warmup" if self.warmup > 0 else "measure"
        self.recorder.begin(self.phase, "sim")

    def run_end(self, stats: Any = None) -> None:
        if not self._open:
            return
        self._open = False
        self.recorder.end(self.phase)
        args: dict[str, Any] = {}
        if stats is not None:
            args = {"accesses": stats.accesses, "cycles": stats.cycles,
                    "walks": stats.walks}
        self.recorder.end("simulate", **args)

    # -- chunk seams ---------------------------------------------------
    def _next_cut(self, after: int) -> int | None:
        """The next global record index a chunk must start at."""
        interval = self.recorder.sample_records
        cuts = []
        if self.warmup > after:
            cuts.append(self.warmup)
        if interval:
            cuts.append((after // interval + 1) * interval)
        return min(cuts) if cuts else None

    def chunks(self, source: Iterable) -> Iterator:
        """Re-chunk an execution-chunk stream at the probe's cut points.

        Slices are ndarray views — no copies; statistics are invariant
        to the re-chunking (see the module docstring).
        """
        position = 0
        cut = self._next_cut(0)
        for chunk in source:
            n = len(chunk)
            start = 0
            while cut is not None and cut < position + n:
                split = cut - position
                if split > start:
                    yield chunk[start:split]
                start = split
                cut = self._next_cut(cut)
            if start < n:
                yield chunk[start:] if start else chunk
            position += n

    # -- per-chunk counter snapshot ------------------------------------
    def sample(self, records: int, **counters: Any) -> None:
        """Record a cumulative counter snapshot at a chunk boundary.

        Also flips ``warmup`` → ``measure`` the first time ``records``
        reaches the warmup boundary (the chunk stream was cut exactly
        there, so the flip is record-exact).  Counters arrive cumulative;
        readers differentiate.
        """
        if self.phase == "warmup" and records >= self.warmup:
            self.recorder.end("warmup")
            self.phase = "measure"
            self.recorder.begin("measure", "sim", at_record=records)
        self.recorder.counter("chunk", "sim", records=records, **counters)
