"""Reading and validating event logs written by :mod:`repro.obs.events`.

:func:`read_log` parses one JSONL file into ``(header, events)`` and
rejects unknown schema versions.  :func:`validate` enforces the
structural invariants consumers rely on (and the obs CI job asserts):
monotone non-decreasing timestamps per pid, strict LIFO span nesting
per pid (every ``E`` closes the innermost open ``B`` of the same name),
and no span left open at end of file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.events import EVENT_TYPES, SCHEMA_VERSION


class ObsLogError(ValueError):
    """A malformed or incompatible event log."""


def read_log(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse one event log into ``(header, events)``.

    Raises :class:`ObsLogError` for a missing/foreign header, an
    unsupported schema version, or an unparseable line.
    """
    path = Path(path)
    header: dict[str, Any] | None = None
    events: list[dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObsLogError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if lineno == 1:
                if not isinstance(obj, dict) or obj.get("type") != "header":
                    raise ObsLogError(f"{path}: first line is not a header")
                if obj.get("schema") != SCHEMA_VERSION:
                    raise ObsLogError(
                        f"{path}: schema {obj.get('schema')!r} "
                        f"(reader supports {SCHEMA_VERSION})")
                header = obj
            else:
                events.append(obj)
    if header is None:
        raise ObsLogError(f"{path}: empty event log")
    return header, events


def validate(header: dict[str, Any],
             events: list[dict[str, Any]]) -> list[str]:
    """Check the structural invariants; returns a list of problems.

    An empty list means the log is well-formed.  Timestamps must be
    non-decreasing *per pid* (cross-pid order is only as good as the
    wall-clock rebase); spans must nest LIFO per pid and all close.
    """
    problems: list[str] = []
    last_ts: dict[int, float] = {}
    stacks: dict[int, list[str]] = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        type_ = event.get("type")
        if type_ not in EVENT_TYPES:
            problems.append(f"{where}: unknown type {type_!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: missing ts")
            continue
        pid = event.get("pid", header.get("pid"))
        if pid in last_ts and ts < last_ts[pid]:
            problems.append(
                f"{where}: ts {ts} < previous {last_ts[pid]} for pid {pid}")
        last_ts[pid] = ts
        stack = stacks.setdefault(pid, [])
        if type_ == "B":
            stack.append(name)
        elif type_ == "E":
            if not stack:
                problems.append(f"{where}: E {name!r} with no open span "
                                f"in pid {pid}")
            elif stack[-1] != name:
                problems.append(
                    f"{where}: E {name!r} does not close innermost span "
                    f"{stack[-1]!r} in pid {pid}")
                # Recover so one interleave does not cascade.
                if name in stack:
                    del stack[stack.index(name):]
            else:
                stack.pop()
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args is not an object")
    for pid, stack in stacks.items():
        if stack:
            problems.append(f"pid {pid}: unclosed spans {stack!r}")
    return problems


def spans(header: dict[str, Any],
          events: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Pair B/E events into closed spans.

    Each span dict has ``name``, ``cat``, ``pid``, ``t0``, ``t1``,
    ``dur``, ``depth`` (nesting depth within its pid), ``args`` (begin
    args merged with end args), and ``children`` indices are implicit
    via depth/order.  Unclosed spans are dropped.
    """
    out: list[dict[str, Any]] = []
    stacks: dict[int, list[dict[str, Any]]] = {}
    for event in events:
        type_ = event.get("type")
        if type_ not in ("B", "E"):
            continue
        pid = event.get("pid", header.get("pid"))
        stack = stacks.setdefault(pid, [])
        if type_ == "B":
            stack.append({
                "name": event["name"],
                "cat": event.get("cat", ""),
                "pid": pid,
                "t0": event["ts"],
                "depth": len(stack),
                "args": dict(event.get("args") or {}),
            })
        else:
            if not stack or stack[-1]["name"] != event["name"]:
                continue
            span = stack.pop()
            span["t1"] = event["ts"]
            span["dur"] = round(event["ts"] - span["t0"], 6)
            span["args"].update(event.get("args") or {})
            out.append(span)
    out.sort(key=lambda span: (span["t0"], -span["depth"]))
    return out


def counters(header: dict[str, Any], events: list[dict[str, Any]],
             name: str | None = None) -> list[dict[str, Any]]:
    """The ``C`` events (optionally filtered by name), in file order."""
    return [event for event in events
            if event.get("type") == "C"
            and (name is None or event.get("name") == name)]


def instants(header: dict[str, Any], events: list[dict[str, Any]],
             name: str | None = None) -> list[dict[str, Any]]:
    """The ``I`` events (optionally filtered by name), in file order."""
    return [event for event in events
            if event.get("type") == "I"
            and (name is None or event.get("name") == name)]
