"""Chrome-trace export: ``repro obs export`` -> chrome://tracing JSON.

The event model maps one-to-one: our ``B``/``E``/``C``/``I`` are Chrome
trace-event phases ``B``/``E``/``C``/``i``; timestamps convert from
seconds to microseconds.  The resulting file loads in chrome://tracing
and in Perfetto's legacy-JSON importer.
"""

from __future__ import annotations

import json
from typing import Any

_PHASES = {"B": "B", "E": "E", "C": "C", "I": "i"}


def to_chrome_trace(header: dict[str, Any],
                    events: list[dict[str, Any]]) -> dict[str, Any]:
    """The chrome://tracing JSON object for one event log."""
    trace_events: list[dict[str, Any]] = []
    pids = sorted({event.get("pid", header.get("pid"))
                   for event in events} | {header.get("pid")})
    for pid in pids:
        label = ("engine" if pid == header.get("pid")
                 else f"worker {pid}")
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    for event in events:
        phase = _PHASES.get(event.get("type"))
        if phase is None:
            continue
        pid = event.get("pid", header.get("pid"))
        out: dict[str, Any] = {
            "name": event.get("name", ""),
            "cat": event.get("cat", "") or "event",
            "ph": phase,
            "ts": round(event["ts"] * 1e6, 1),
            "pid": pid,
            "tid": 0,
        }
        if phase == "i":
            out["s"] = "p"
        args = event.get("args")
        if args:
            out["args"] = args
        trace_events.append(out)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run_id": header.get("run_id"),
            "schema": header.get("schema"),
            "host": header.get("host", {}),
            "meta": header.get("meta", {}),
        },
    }


def write_chrome_trace(path: str, header: dict[str, Any],
                       events: list[dict[str, Any]]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(header, events), fh, indent=1)
