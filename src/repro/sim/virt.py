"""The virtualized (2D) trace-driven simulator (§3.6, Figures 10 and 12).

Same structure as the native simulator, but a TLB miss triggers a nested
2D walk through the guest and host page tables, and the translation
scheme (`repro.schemes`) can act per dimension.  ASAP configures
guest/host prefetchers independently: the guest prefetcher's descriptors
carry *host-physical* bases (valid because the hypervisor backs the
guest PT regions contiguously), and the host prefetcher uses a single
descriptor covering the VM's entire guest-physical space — one host VMA
per VM, the Linux/KVM observation of §3.6.  Alternative schemes hook the
same dispatch points: Victima parks gVA→host-frame victims in the L2
data cache; Revelator speculates on the end-to-end translation while the
nested walk verifies.
"""

from __future__ import annotations

import gc

from repro.core.config import AsapConfig, BASELINE
from repro.core.prefetcher import AsapPrefetcher
from repro.core.range_registers import VmaDescriptor
from repro.kernelsim.hypervisor import VirtualMachine
from repro.mem.hierarchy import CacheHierarchy
from repro.obs.probe import SimProbe
from repro.pagetable.nested import NestedPageWalker
from repro.pagetable.pwc import SplitPwc
from repro.params import DEFAULT_MACHINE, MachineParams
from repro.schemes import SchemeSpec, build_scheme
from repro.sim.order import streaming_first_touch_order
from repro.sim.simulator import detect_runs, drive_batched
from repro.sim.stats import SimStats
from repro.traces.source import iter_trace_chunks
from repro.tlb.hierarchy import TlbHierarchy
from repro.tlb.tlb import asid_bias
from repro.workloads.corunner import Corunner


def build_guest_descriptors(
    vm: VirtualMachine, max_count: int
) -> list[VmaDescriptor]:
    """Guest VMA descriptors with host-physical bases (§3.6)."""
    descriptors = []
    for vma in vm.guest.vmas.largest(max_count):
        bases = vm.guest_descriptor_bases(vma)
        if bases:
            descriptors.append(
                VmaDescriptor(
                    start=vma.start,
                    end=vma.end,
                    level_bases=tuple(sorted(bases.items())),
                )
            )
    return descriptors


def build_host_descriptor(vm: VirtualMachine) -> VmaDescriptor | None:
    """The single host descriptor covering the whole guest-physical space."""
    bases = vm.host_descriptor_bases()
    if not bases:
        return None
    return VmaDescriptor(
        start=vm.host_vma.start,
        end=vm.host_vma.end,
        level_bases=tuple(sorted(bases.items())),
    )


class VirtualizedSimulation:
    """Drives a guest trace through the nested (2D) machine model."""

    def __init__(
        self,
        vm: VirtualMachine,
        machine: MachineParams = DEFAULT_MACHINE,
        asap: AsapConfig = BASELINE,
        infinite_tlb: bool = False,
        corunner: Corunner | None = None,
        scheme: SchemeSpec | None = None,
        hierarchy: CacheHierarchy | None = None,
        tlbs: TlbHierarchy | None = None,
        guest_pwc: SplitPwc | None = None,
        host_pwc: SplitPwc | None = None,
        walker: NestedPageWalker | None = None,
        asid: int = 0,
        kernel: str = "scalar",
    ) -> None:
        """The optional structure arguments let the multi-tenant driver
        (`repro.sim.multitenant`) run several VMs against one shared set
        of hardware structures; ``asid`` doubles as the VMID tagging this
        VM's entries in the shared TLBs and in both PWC dimensions (0 —
        the single-tenant default — changes nothing, bit for bit).

        ``kernel`` is validated and stored for interface parity with the
        native simulator, but the 2D run loop always executes the scalar
        engine: the nested walk's guest/host interleaving has no
        columnar transliteration (yet), so ``"columnar"`` here means
        "use the compiled kernel where one exists" — which, for the
        virtualized model, is nowhere.  Keeping the knob total (accepted
        everywhere, engaged where implemented) lets Job specs carry one
        kernel field across kinds without special-casing."""
        if asid and infinite_tlb:
            raise ValueError(
                "ASID-tagged simulations do not compose with infinite TLBs")
        if kernel not in ("scalar", "columnar"):
            raise ValueError(f"unknown simulation kernel {kernel!r}")
        self.kernel = kernel
        self.vm = vm
        self.machine = machine
        self.asap = asap
        self.hierarchy = hierarchy or CacheHierarchy(machine.hierarchy)
        self.tlbs = tlbs or TlbHierarchy(machine.tlb, infinite=infinite_tlb)
        self.guest_pwc = guest_pwc or SplitPwc(
            machine.pwc, top_level=vm.guest.page_table.levels)
        self.host_pwc = host_pwc or SplitPwc(machine.pwc, top_level=4)
        self.walker = walker or NestedPageWalker(
            self.hierarchy, self.guest_pwc, self.host_pwc)
        self.corunner = corunner
        self.asid = asid
        #: Per-vpn nested walk paths; instance state for the same reasons
        #: as the native simulator's flat caches (quantum splitting and
        #: coherent flushing).
        self._nested_paths: dict[int, tuple] = {}
        #: Set by AsapScheme.bind_virtualized for introspection/back-compat.
        self.guest_prefetcher: AsapPrefetcher | None = None
        self.host_prefetcher: AsapPrefetcher | None = None
        self.scheme = build_scheme(scheme, asap)
        self.scheme.bind_virtualized(self)

    # ------------------------------------------------------------------
    def flush_translation_state(self) -> None:
        """Flush every piece of cached translation state coherently:
        TLBs, both PWC dimensions, in-flight translation-prefetch MSHRs,
        the per-vpn nested-path cache and scheme-cached translations.
        See
        :meth:`repro.sim.simulator.NativeSimulation.flush_translation_state`
        — this is the virtualized half of the same coherence contract.
        """
        self.tlbs.flush()
        self.guest_pwc.flush()
        self.host_pwc.flush()
        self.hierarchy.mshrs.drain()
        self.flush_private_translation_state()

    def flush_private_translation_state(self) -> None:
        """Per-VM half of the flush: the nested-path cache and the
        scheme's own translation state (see the native simulator)."""
        self._nested_paths.clear()
        self.scheme.on_translation_flush()

    # ------------------------------------------------------------------
    def populate(self, trace, order: str = "sequential") -> int:
        """Pre-fault guest pages (and their host backing); in infinite-TLB
        mode the gVA -> host-frame translations are pre-installed too.
        Accepts an ndarray or a chunk-streaming TraceSource (see the
        native simulator)."""
        ordered = streaming_first_touch_order(
            (chunk >> 12 for chunk in iter_trace_chunks(trace)), order)
        faults = 0
        for vpn in ordered.tolist():
            if self.vm.touch(int(vpn) << 12).faulted:
                faults += 1
        if self.tlbs.infinite:
            for vpn in ordered.tolist():
                path = self.vm.nested_path(int(vpn) << 12)
                self.tlbs.fill(int(vpn), path.data_frame)
        return faults

    # ------------------------------------------------------------------
    def run(
        self,
        trace,
        warmup: int = 0,
        populate: bool = True,
        collect_service: bool = True,
        init_order: str = "sequential",
    ) -> SimStats:
        """Simulate the trace; statistics cover post-warmup records only.

        Same batched, chunk-streaming front-end as the native simulator
        (see :meth:`repro.sim.simulator.NativeSimulation.run`):
        ``trace`` is one ndarray or a TraceSource of execution chunks;
        the clock, warmup baselines, accumulators and run-detection seam
        carry across chunks, so every chunking of the same records is
        byte-identical.  Same-block repeats of a record are guaranteed
        L1-TLB + L1-D hits and are costed in bulk (including seam
        continuations); the scalar pipeline handles runs' first records,
        every co-runner record and the warmup boundary.  Nested walk
        paths are cached per vpn — the guest and host page tables cannot
        change mid-run — so repeat walks skip the Figure 7 schedule
        reconstruction.
        """
        #: Observation seam (see the native simulator): phase spans and
        #: per-chunk counter snapshots when a recorder is active.
        obs = SimProbe.create("virt", warmup)
        if populate:
            if obs is not None:
                obs.phase_begin("populate")
            self.populate(trace, order=init_order)
            if obs is not None:
                obs.phase_end("populate")
        if self.corunner is not None:
            self.corunner.prefill(self.hierarchy)
        stats = SimStats()
        vm = self.vm
        tlbs = self.tlbs
        walker = self.walker
        hierarchy = self.hierarchy
        corunner = self.corunner
        scheme = self.scheme
        probe = scheme.probe_hook()
        walk_start = scheme.walk_start_hook()
        walk_end = scheme.walk_end_hook()
        fill_hook = scheme.fill_hook()
        host_prefetcher = self.scheme.host_prefetcher
        base_cycles = self.machine.core.base_cycles
        record_service = stats.service.record_walk
        lookup = tlbs.lookup
        tlb_fill = tlbs.fill_fast
        access = hierarchy.access
        nested_path = vm.nested_path
        walk = walker.walk
        need_records = collect_service or walk_end is not None
        l1_latency = hierarchy.latency_of("L1")
        step_cost = base_cycles + l1_latency
        nested_paths = self._nested_paths
        #: ASID/VMID bias, hoisted once per run: the TLB sees it in the
        #: vpn, the nested walker in both PWCs' tags (guest PWC keyed by
        #: gVA, host PWC by gPA — gPA spaces of different VMs collide
        #: numerically, hence the host-side bias too).  0 single-tenant.
        vbias = asid_bias(self.asid)
        self.guest_pwc.asid_bias = vbias
        self.host_pwc.asid_bias = vbias
        tlbs.probe_large[0] = vm.guest.page_table.has_large_pages

        now = 0
        measuring = warmup == 0
        # Baselines snapshot the current shared counters (see the native
        # simulator): a mid-sequence segment measures only its window.
        tlb_l1_base = tlbs.l1_hits if measuring else 0
        tlb_l2_base = tlbs.l2_hits if measuring else 0
        #: Local accumulators, flushed into ``stats`` after the loop
        #: (see the native simulator).
        acc = data_c = walk_c = walk_count = 0
        #: Chunk cursor (see the native simulator): the closures read the
        #: current chunk and its global offset through these cells.
        addresses: list[int] = []
        chunk_base = 0

        def handle(index: int) -> int:
            """One record (chunk-local ``index``) through the scalar
            pipeline; returns its vpn."""
            nonlocal now, measuring, tlb_l1_base, tlb_l2_base
            nonlocal acc, data_c, walk_c, walk_count
            va = addresses[index]
            if not measuring and chunk_base + index >= warmup:
                measuring = True
                tlb_l1_base = tlbs.l1_hits
                tlb_l2_base = tlbs.l2_hits
            vpn = (va >> 12) | vbias
            frame = lookup(vpn)
            translation = 0
            if frame is None:
                offset = 0
                if probe is not None:
                    frame, offset = probe(va, vpn, now)
                if frame is not None:
                    # Scheme probe hit: no walk, hence no walk outcome on
                    # this path (the pre-refactor loop left a stale one
                    # reachable in scope here).
                    translation = offset
                    tlb_fill(vpn, frame)
                    if fill_hook is not None:
                        fill_hook(vpn, frame)
                    if measuring:
                        walk_c += translation
                else:
                    cached = nested_paths.get(vpn)
                    if cached is None:
                        path = nested_path(va)
                        cached = (path, path.data_frame,
                                  path.guest_leaf_level >= 2)
                        nested_paths[vpn] = cached
                    path, frame, large = cached
                    guest_prefetches = None
                    if walk_start is not None:
                        guest_prefetches = walk_start(va, now + offset)
                    outcome = walk(
                        path,
                        now + offset,
                        guest_prefetches=guest_prefetches,
                        host_prefetcher=host_prefetcher,
                        collect=need_records,
                    )
                    translation = offset + outcome.latency
                    if walk_end is not None:
                        translation = walk_end(va, vpn, now, translation,
                                               outcome)
                    tlb_fill(vpn, frame, large=large)
                    if fill_hook is not None:
                        fill_hook(vpn, frame)
                    if measuring:
                        walk_c += translation
                        walk_count += 1
                        if collect_service:
                            record_service(outcome.records)
            data_latency = access(((frame << 12) | (va & 0xFFF)) >> 6,
                                  now + translation)
            now += base_cycles + translation + data_latency
            if measuring:
                acc += 1
                data_c += data_latency
            if corunner is not None:
                corunner.step(hierarchy, now)
            return vpn

        def bulk(vpn, first_index, repeats):
            """Cost a run's repeat records (``first_index`` chunk-local);
            see the native simulator's ``bulk`` (same warmup-boundary
            splitting)."""
            nonlocal now, measuring, tlb_l1_base, tlb_l2_base, acc, data_c
            if not measuring:
                pre = warmup - chunk_base - first_index
                if pre >= repeats:
                    bulk_tlb(vpn, repeats)
                    bulk_l1(repeats)
                    now += step_cost * repeats
                    return
                if pre > 0:
                    bulk_tlb(vpn, pre)
                    bulk_l1(pre)
                    now += step_cost * pre
                    repeats -= pre
                measuring = True
                tlb_l1_base = tlbs.l1_hits
                tlb_l2_base = tlbs.l2_hits
            bulk_tlb(vpn, repeats)
            bulk_l1(repeats)
            now += step_cost * repeats
            acc += repeats
            data_c += l1_latency * repeats

        bulk_ok = corunner is None
        bulk_tlb = tlbs.bulk_hits
        bulk_l1 = hierarchy.bulk_l1_hits
        #: Run-detection seam state (see the native simulator): block and
        #: biased vpn of the previous chunk's last record.
        prev_block = -1
        prev_vpn = 0
        # See the native simulator: pause the cyclic collector while the
        # loop runs (restored even on error).
        #: Chunk stream, re-cut at the warmup/sample seams under
        #: observation (statistics chunking-invariant — see the native
        #: simulator).
        if obs is not None:
            obs.run_begin(kernel="scalar")
            chunk_stream = obs.chunks(iter_trace_chunks(trace))
        else:
            chunk_stream = iter_trace_chunks(trace)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for chunk in chunk_stream:
                n_records = len(chunk)
                if not n_records:
                    continue
                addresses = chunk.tolist()
                run_starts, run_counts = detect_runs(chunk, n_records)
                lead = 0
                if prev_block == addresses[0] >> 6:
                    lead = run_counts[0]
                    run_starts = run_starts[1:]
                    run_counts = run_counts[1:]
                    if bulk_ok:
                        bulk(prev_vpn, 0, lead)
                    else:
                        for index in range(lead):
                            handle(index)
                prev_block = addresses[-1] >> 6
                prev_vpn = (addresses[-1] >> 12) | vbias
                if not run_starts:
                    chunk_base += n_records
                    if obs is not None:
                        obs.sample(chunk_base, now=now, accesses=acc,
                                   data_cycles=data_c, walk_cycles=walk_c,
                                   walks=walk_count,
                                   tlb_l1_hits=tlbs.l1_hits,
                                   tlb_l2_hits=tlbs.l2_hits,
                                   tlb_misses=tlbs.stats.misses)
                    continue
                if bulk_ok and len(run_starts) == n_records - lead:
                    # No same-block repeats in the chunk: scalar sweep.
                    for index in range(lead, n_records):
                        handle(index)
                else:
                    drive_batched(run_starts, run_counts, handle, bulk,
                                  scalar_only=not bulk_ok)
                chunk_base += n_records
                if obs is not None:
                    obs.sample(chunk_base, now=now, accesses=acc,
                               data_cycles=data_c, walk_cycles=walk_c,
                               walks=walk_count,
                               tlb_l1_hits=tlbs.l1_hits,
                               tlb_l2_hits=tlbs.l2_hits,
                               tlb_misses=tlbs.stats.misses)
        finally:
            if gc_was_enabled:
                gc.enable()
        stats.accesses = acc
        stats.base_cycles = acc * base_cycles
        stats.data_cycles = data_c
        stats.walk_cycles = walk_c
        stats.walks = walk_count
        stats.cycles = acc * base_cycles + data_c + walk_c
        stats.tlb_l1_hits = tlbs.l1_hits - tlb_l1_base
        stats.tlb_l2_hits = tlbs.l2_hits - tlb_l2_base
        scheme.finalize(stats)
        if obs is not None:
            obs.run_end(stats)
        return stats
