"""Multi-tenant simulation: N address spaces on one simulated machine.

The paper's cost model is measured per process, but its motivating
setting — datacenter servers under consolidation (§4's co-runner
methodology) — is multi-programmed.  This module closes that gap: N
:class:`~repro.kernelsim.process.ProcessAddressSpace`s (or N guest VMs)
share one :class:`~repro.kernelsim.phys.PhysicalMemory` /
:class:`~repro.kernelsim.buddy.BuddyAllocator`, one cache hierarchy and
one set of TLB/PWC structures, and a round-robin scheduler interleaves
their traces in configurable quanta.

Two context-switch policies are modelled:

* ``"flush"`` — the pre-ASID x86 behaviour: every switch flushes all
  translation state through the simulators'
  ``flush_translation_state()`` (TLBs, PWCs, in-flight prefetch MSHRs
  and the per-vpn flattened walk paths — the coherence contract of
  docs/ARCHITECTURE.md §10);
* ``"asid"`` — ASID-tagged retention: translations stay resident across
  switches, tagged by the tenant's ASID in the high bits of every
  TLB/PWC tag (:data:`repro.tlb.tlb.ASID_SHIFT`), and tenants compete
  for TLB/PWC/cache capacity instead.

Scheduling composes with the PR 3 fast path by construction: each
quantum is one ``run()`` call on the active tenant's simulator, so the
batched run detection (and, for plain baseline tenants, the fully
inlined sweep) operates on exactly the per-quantum trace slices — the
batch split lands precisely on the switch boundary.  With one tenant
and no switching, the whole machinery reduces to a single ``run()``
over shared-but-singly-owned structures, and the results are
byte-identical to the single-tenant path (pinned by
tests/test_multitenant.py).

Determinism: everything — per-tenant traces, buddy allocators, ASAP
layouts — is seeded from ``scale.seed`` and the tenant index, so a
multi-tenant job remains a pure function of its spec and executes
identically inline or in a worker process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import AsapConfig, BASELINE
from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.phys import PhysicalMemory
from repro.mem.hierarchy import CacheHierarchy
from repro.obs.events import active as obs_active
from repro.pagetable.nested import NestedPageWalker
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.walker import PageWalker
from repro.params import DEFAULT_MACHINE, MachineParams
from repro.schemes import SchemeSpec
from repro.sim.runner import Scale, build_vm, guest_mem_bytes, make_trace
from repro.sim.simulator import NativeSimulation
from repro.sim.stats import SimStats
from repro.sim.virt import VirtualizedSimulation
from repro.tlb.hierarchy import TlbHierarchy
from repro.tlb.tlb import ASID_SHIFT
from repro.traces.source import as_trace_source
from repro.workloads.suite import get as get_workload
from repro.workloads.suite import tenant_names

#: Context-switch policies understood by the scheduler.
SWITCH_POLICIES = ("flush", "asid")

#: Per-tenant seed stride: tenant 0 keeps the scale's seed (single-tenant
#: identity), later tenants get decorrelated trace/allocator streams.
_TENANT_SEED_STRIDE = 7919


@dataclass(frozen=True)
class MultiTenantSpec:
    """The multi-tenant scenario axis of a runtime Job.

    ``tenants`` is the process (or VM) count; ``quantum`` the scheduler
    slice in trace records (0 = run each tenant to completion, so an
    N-tenant run still switches N-1 times); ``switch_policy`` selects
    full translation-state flushing or ASID-tagged retention at each
    switch.
    """

    tenants: int = 1
    quantum: int = 0
    switch_policy: str = "flush"

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError("a multi-tenant run needs at least one tenant")
        if self.quantum < 0:
            raise ValueError("the scheduling quantum cannot be negative")
        if self.switch_policy not in SWITCH_POLICIES:
            raise ValueError(
                f"unknown switch policy {self.switch_policy!r}; "
                f"one of {SWITCH_POLICIES}")

    def payload(self) -> dict:
        """Canonical JSON-serialisable form (cache identity)."""
        return {"tenants": self.tenants, "quantum": self.quantum,
                "policy": self.switch_policy}

    def label(self) -> str:
        return f"mt{self.tenants}q{self.quantum}-{self.switch_policy}"


def tenant_seed(seed: int, index: int) -> int:
    """Tenant ``index``'s seed; index 0 is the identity."""
    return seed + _TENANT_SEED_STRIDE * index


def round_robin_schedule(
    lengths: list[int], quantum: int
) -> list[tuple[int, int, int]]:
    """``(tenant, start, stop)`` slices in round-robin order.

    ``quantum <= 0`` runs each tenant to completion in one slice.  A
    tenant whose trace is exhausted drops out of later rounds; slices
    are never empty.
    """
    if quantum <= 0:
        return [(i, 0, length) for i, length in enumerate(lengths) if length]
    cursors = [0] * len(lengths)
    schedule: list[tuple[int, int, int]] = []
    remaining = sum(lengths)
    while remaining:
        for tenant, length in enumerate(lengths):
            take = min(quantum, length - cursors[tenant])
            if take <= 0:
                continue
            start = cursors[tenant]
            cursors[tenant] = start + take
            schedule.append((tenant, start, start + take))
            remaining -= take
    return schedule


# ----------------------------------------------------------------------
# statistics aggregation
# ----------------------------------------------------------------------
def _merge_segment(agg: SimStats, seg: SimStats) -> None:
    """Fold one quantum's flow statistics into the aggregate.

    Cumulative scheme-owned fields (prefetch counters, scheme_stats) are
    deliberately skipped here: each ``run()`` call publishes the
    scheme's *cumulative-to-date* counters, so those are taken once per
    tenant from its final segment by :func:`_merge_tenant_totals`.
    """
    agg.accesses += seg.accesses
    agg.cycles += seg.cycles
    agg.base_cycles += seg.base_cycles
    agg.data_cycles += seg.data_cycles
    agg.walk_cycles += seg.walk_cycles
    agg.walks += seg.walks
    if seg.accesses:
        # Fully-unmeasured (all-warmup) segments leave these two fields
        # holding raw cumulative counters; only measured segments carry
        # a meaningful measured-window difference.
        agg.tlb_l1_hits += seg.tlb_l1_hits
        agg.tlb_l2_hits += seg.tlb_l2_hits
    for level, counts in seg.service._counts.items():
        per_level = agg.service._counts.setdefault(level, {})
        for label, count in counts.items():
            per_level[label] = per_level.get(label, 0) + count


def _merge_tenant_totals(agg: SimStats, final: SimStats) -> None:
    """Fold one tenant's cumulative scheme counters (its last segment)."""
    agg.prefetches_issued += final.prefetches_issued
    agg.prefetches_useful += final.prefetches_useful
    agg.prefetches_dropped += final.prefetches_dropped
    for key, value in final.scheme_stats.items():
        agg.scheme_stats[key] = agg.scheme_stats.get(key, 0) + value


# ----------------------------------------------------------------------
# the scheduler loop (shared by both modes)
# ----------------------------------------------------------------------
def _install_evict_dispatcher(tlbs, evict_hooks) -> None:
    """Route L2 S-TLB victims to the scheme of the tenant that *owns*
    the evicted translation (its ASID rides in the biased vpn), not the
    tenant that happens to be running — an eviction-recycling scheme
    (Victima) must be able to reclaim its own entries after a switch
    back.  All-None hook lists keep the hook slot None (zero hot-path
    cost), and a single tenant gets its hook installed directly (the
    exact single-tenant dispatch)."""
    if not any(hook is not None for hook in evict_hooks):
        tlbs.l2_evict_hook = None
        return
    if len(evict_hooks) == 1:
        tlbs.l2_evict_hook = evict_hooks[0]
        return

    def dispatch(vpn: int, frame: int) -> None:
        hook = evict_hooks[vpn >> ASID_SHIFT]
        if hook is not None:
            hook(vpn, frame)

    tlbs.l2_evict_hook = dispatch


def _drive(sims, traces, evict_hooks, mt: MultiTenantSpec, warmup: int,
           collect_service: bool) -> SimStats:
    """Interleave the tenants' traces and aggregate their statistics.

    ``traces`` may be ndarrays or chunk-streaming TraceSources; each
    quantum hands the active tenant's simulator one ``section`` of its
    source, so a streamed (10M+-record) tenant trace never materialises
    beyond one execution chunk.
    """
    sources = [as_trace_source(trace) for trace in traces]
    lengths = [source.records for source in sources]
    schedule = round_robin_schedule(lengths, mt.quantum)
    hierarchy = sims[0].hierarchy
    tlbs = sims[0].tlbs
    _install_evict_dispatcher(tlbs, evict_hooks)
    agg = SimStats()
    final_stats: list[SimStats | None] = [None] * len(sims)
    consumed = 0
    active: int | None = None
    switches = flushes = 0
    #: Observation seam: quantum spans plus switch/flush instants when a
    #: recorder is active (``--obs``); ``None`` costs one test per run.
    recorder = obs_active()
    for tenant, start, stop in schedule:
        if active is not None:
            # A quantum boundary: whatever prefetches were in flight are
            # conceptually drained; the next segment's clock restarts.
            hierarchy.mshrs.drain()
            if tenant != active:
                switches += 1
                if recorder is not None:
                    recorder.instant("switch", "mt", src=active, dst=tenant,
                                     policy=mt.switch_policy)
                if mt.switch_policy == "flush":
                    # The hardware structures are shared: flush them once
                    # through the incoming tenant, then clear only the
                    # other tenants' private state (path caches, scheme
                    # translations).
                    sims[tenant].flush_translation_state()
                    for index, sim in enumerate(sims):
                        if index != tenant:
                            sim.flush_private_translation_state()
                    flushes += 1
                    if recorder is not None:
                        recorder.instant("flush", "mt", tenant=tenant)
        segment_warmup = min(max(warmup - consumed, 0), stop - start)
        if recorder is not None:
            recorder.begin("quantum", "mt", tenant=tenant, start=start,
                           stop=stop)
        seg = sims[tenant].run(
            sources[tenant].section(start, stop),
            warmup=segment_warmup,
            populate=False,
            collect_service=collect_service,
        )
        if recorder is not None:
            recorder.end("quantum")
        consumed += stop - start
        _merge_segment(agg, seg)
        final_stats[tenant] = seg
        active = tenant
    if recorder is not None:
        recorder.counter("mt_schedule", "mt", tenants=len(sims),
                         quanta=len(schedule), switches=switches,
                         flushes=flushes)
    for seg in final_stats:
        if seg is not None:
            _merge_tenant_totals(agg, seg)
    if mt.tenants > 1:
        # Scenario counters ride in scheme_stats; single-tenant runs
        # stay field-identical to the plain simulators.
        agg.scheme_stats["mt_tenants"] = mt.tenants
        agg.scheme_stats["mt_switches"] = switches
        agg.scheme_stats["mt_flushes"] = flushes
    return agg


def _per_tenant_length(scale: Scale, tenants: int) -> int:
    """Split the scale's record budget across tenants (constant total
    work as the process count sweeps; one tenant keeps the full trace)."""
    return max(1, scale.trace_length // tenants)


# ----------------------------------------------------------------------
# native mode
# ----------------------------------------------------------------------
def run_native_mt(
    workload: str,
    config: AsapConfig = BASELINE,
    mt: MultiTenantSpec = MultiTenantSpec(),
    machine: MachineParams = DEFAULT_MACHINE,
    scale: Scale = Scale(),
    collect_service: bool = True,
    scheme: SchemeSpec | None = None,
    kernel: str = "scalar",
) -> SimStats:
    """Run one native multi-tenant scenario; returns aggregate statistics.

    ``workload`` is a Table 3 name or an ``MT_MIXES`` mix.  All tenants
    share one physical memory and buddy allocator (per-tenant pools keep
    each workload's fragmentation knobs), one cache hierarchy and one
    TLB/PWC set; each tenant gets its own process, scheme instance and
    ASID.  ``kernel`` selects each tenant simulator's record-loop engine;
    per-quantum sections run through it exactly as single-tenant traces
    do.
    """
    names = tenant_names(workload, mt.tenants)
    specs = [get_workload(name) for name in names]
    buddy = BuddyAllocator(PhysicalMemory(mt.tenants << 41),
                           seed=scale.seed)
    per_length = _per_tenant_length(scale, mt.tenants)
    hierarchy = CacheHierarchy(machine.hierarchy)
    tlbs = TlbHierarchy(machine.tlb)
    pwc = SplitPwc(machine.pwc, top_level=4)
    walker = PageWalker(hierarchy, pwc)
    sims: list[NativeSimulation] = []
    traces = []
    evict_hooks = []
    for index, spec in enumerate(specs):
        seed = tenant_seed(scale.seed, index)
        process = spec.build_process(
            asap_levels=config.native_levels,
            seed=seed,
            buddy=buddy,
            data_pool=f"data{index}",
            pt_pool=f"pt{index}",
        )
        sim = NativeSimulation(
            process,
            machine=machine,
            asap=config,
            scheme=scheme,
            hierarchy=hierarchy,
            tlbs=tlbs,
            pwc=pwc,
            walker=walker,
            asid=index,
            kernel=kernel,
        )
        # Schemes attach their eviction observer at bind time; snapshot
        # it per tenant so the scheduler can install the *active*
        # tenant's observer for each quantum.
        evict_hooks.append(tlbs.l2_evict_hook)
        tlbs.l2_evict_hook = None
        sims.append(sim)
        traces.append(make_trace(spec, Scale(per_length, 0, seed)))
    for sim, trace, spec in zip(sims, traces, specs):
        sim.populate(trace, order=spec.init_order)
    return _drive(sims, traces, evict_hooks, mt, scale.warmup,
                  collect_service)


# ----------------------------------------------------------------------
# virtualized mode
# ----------------------------------------------------------------------
def run_virtualized_mt(
    workload: str,
    config: AsapConfig = BASELINE,
    mt: MultiTenantSpec = MultiTenantSpec(),
    host_page_level: int = 1,
    machine: MachineParams = DEFAULT_MACHINE,
    scale: Scale = Scale(),
    collect_service: bool = True,
    scheme: SchemeSpec | None = None,
    kernel: str = "scalar",
) -> SimStats:
    """Run one virtualized multi-tenant scenario (N VMs on one host).

    Each tenant is a guest VM; all VMs share the host's physical memory
    and buddy allocator, and the ASID doubles as the VMID tagging both
    the shared TLBs and the host-dimension PWC.  ``kernel`` is accepted
    for interface parity (the 2D walk always runs the scalar engine).
    """
    names = tenant_names(workload, mt.tenants)
    specs = [get_workload(name) for name in names]
    host_bytes = sum(max(4 * guest_mem_bytes(spec), 1 << 41)
                     for spec in specs)
    host_buddy = BuddyAllocator(PhysicalMemory(host_bytes),
                                seed=scale.seed + 7)
    per_length = _per_tenant_length(scale, mt.tenants)
    hierarchy = CacheHierarchy(machine.hierarchy)
    tlbs = TlbHierarchy(machine.tlb)
    guest_pwc = SplitPwc(machine.pwc, top_level=4)
    host_pwc = SplitPwc(machine.pwc, top_level=4)
    walker = NestedPageWalker(hierarchy, guest_pwc, host_pwc)
    sims: list[VirtualizedSimulation] = []
    traces = []
    evict_hooks = []
    for index, spec in enumerate(specs):
        seed = tenant_seed(scale.seed, index)
        vm = build_vm(spec, config, scale, host_page_level=host_page_level,
                      seed=seed, host_buddy=host_buddy)
        sim = VirtualizedSimulation(
            vm,
            machine=machine,
            asap=config,
            scheme=scheme,
            hierarchy=hierarchy,
            tlbs=tlbs,
            guest_pwc=guest_pwc,
            host_pwc=host_pwc,
            walker=walker,
            asid=index,
            kernel=kernel,
        )
        evict_hooks.append(tlbs.l2_evict_hook)
        tlbs.l2_evict_hook = None
        sims.append(sim)
        traces.append(make_trace(spec, Scale(per_length, 0, seed)))
    for sim, trace, spec in zip(sims, traces, specs):
        sim.populate(trace, order=spec.init_order)
    return _drive(sims, traces, evict_hooks, mt, scale.warmup,
                  collect_service)


__all__ = [
    "MultiTenantSpec",
    "SWITCH_POLICIES",
    "round_robin_schedule",
    "run_native_mt",
    "run_virtualized_mt",
    "tenant_seed",
]
