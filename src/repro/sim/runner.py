"""One-call experiment runner: workload + scenario -> statistics.

This is the layer the experiment modules and benchmarks build on.  It
assembles the OS substrate (process or VM), the machine model and the ASAP
configuration for each scenario of the paper:

* native / virtualized,
* isolated / SMT-colocated (synthetic co-runner),
* baseline / any ASAP ladder config,
* plain / clustered L2 TLB, infinite TLB (Table 6), scaled PWCs,
* 4KB / 2MB host pages (Figure 12), 4- / 5-level page tables (§3.5).

Traces are cached per (workload, length, seed) so ladder comparisons see
identical address streams.
"""

from __future__ import annotations

import dataclasses
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.core.config import AsapConfig, BASELINE
from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.hypervisor import VirtualMachine
from repro.kernelsim.phys import PhysicalMemory
from repro.obs.events import active as obs_active
from repro.params import DEFAULT_MACHINE, MachineParams
from repro.schemes import SchemeSpec
from repro.sim.simulator import NativeSimulation
from repro.sim.stats import SimStats
from repro.sim.virt import VirtualizedSimulation
from repro.traces.source import GeneratedSource, TraceSource
from repro.traces.stream import GEN_CHUNK_RECORDS
from repro.workloads.base import WorkloadSpec
from repro.workloads.corunner import Corunner
from repro.workloads.suite import get as get_workload

GB = 1 << 30


@dataclass(frozen=True)
class Scale:
    """How much trace to simulate.

    The default is sized for interactive experimentation; EXPERIMENTS.md
    runs use a larger scale.  ``warmup`` records warm the TLBs/caches/PWCs
    before measurement starts (steady-state methodology, §4).

    Degenerate geometries are rejected up front: a zero-length trace
    would silently produce all-zero statistics, and ``warmup >=
    trace_length`` would leave the measured window empty — every
    fraction/ratio then reads 0.0 and looks like a (nonsense) result.

    ``replicate`` is the statistics layer's replication axis
    (docs/ARCHITECTURE.md §15): replicate ``r`` of a scale is the same
    geometry with a seed derived deterministically from ``(seed, r)``
    via :meth:`with_replicate`.  The field itself is provenance only —
    the derived ``seed`` fully determines the simulation, so everything
    downstream (trace generation, buddy allocator, co-runner, cache
    identity) composes unchanged, and replicate 0 *is* the base scale:
    same seed, same spec hash, same cached result.
    """

    trace_length: int = 60_000
    warmup: int = 10_000
    seed: int = 42
    replicate: int = 0

    def __post_init__(self) -> None:
        if self.trace_length < 1:
            raise ValueError(
                f"trace_length must be >= 1, got {self.trace_length}")
        if self.warmup < 0:
            raise ValueError(f"warmup cannot be negative ({self.warmup})")
        if self.warmup >= self.trace_length:
            raise ValueError(
                f"warmup ({self.warmup}) must be smaller than the trace "
                f"length ({self.trace_length}); nothing would be measured")
        if self.replicate < 0:
            raise ValueError(
                f"replicate cannot be negative ({self.replicate})")

    def with_replicate(self, replicate: int) -> "Scale":
        """Replicate ``replicate`` of this base scale.

        Replicate 0 returns ``self`` unchanged — identical seed, spec
        hash and cached results — so adding replication to an
        experiment never invalidates its existing cells.  Higher
        indices perturb only the seed, derived content-deterministically
        from ``(seed, replicate)`` so every process and machine agrees.
        """
        if replicate < 0:
            raise ValueError(f"replicate cannot be negative ({replicate})")
        if self.replicate != 0:
            raise ValueError(
                f"derive replicates from the base (replicate-0) scale, "
                f"not from replicate {self.replicate}")
        if replicate == 0:
            return self
        from repro.stats.rng import seed_from

        derived = seed_from("scale-replicate", self.seed,
                            replicate) % (1 << 31)
        return dataclasses.replace(self, seed=derived,
                                   replicate=replicate)

    def smaller(self, factor: int) -> "Scale":
        return Scale(
            trace_length=max(1000, self.trace_length // factor),
            warmup=max(200, self.warmup // factor),
            seed=self.seed,
            replicate=self.replicate,
        )


#: Benchmark-friendly scale: small enough that the full ``pytest
#: benchmarks/ --benchmark-only`` pass finishes in minutes, large enough
#: that every asserted shape holds.
BENCH_SCALE = Scale(trace_length=14_000, warmup=3_000, seed=42)

_TRACE_CACHE: dict[tuple[str, int, int], np.ndarray] = {}

#: Traces longer than this stream through the simulators as generated
#: chunks (`repro.traces`) instead of materialising one ndarray; at the
#: generation-chunk size the streamed content is identical to the
#: monolithic ``generate_trace`` output for everything at or below the
#: threshold, so every historical scale keeps its exact addresses.
STREAM_RECORDS = GEN_CHUNK_RECORDS

#: Execution-chunk size for streamed traces; ``None`` consumes whole
#: generation chunks.  The golden-parity suite lowers both knobs to
#: drive every scenario through the streaming path at test scales.
STREAM_CHUNK_RECORDS: int | None = None


def make_trace(spec: WorkloadSpec, scale: Scale):
    """The trace for ``(spec, scale)``: one cached ndarray at
    interactive scales, a chunk-streaming ``GeneratedSource`` beyond
    :data:`STREAM_RECORDS` (memory stays bounded by the chunk size).

    Inside a sweep worker the share overlay (``repro.traces.share``)
    may hold this axis as a materialised payload; replaying its mmap is
    byte-identical to regenerating (same canonical chunk stream) and
    lets every worker share one on-disk copy."""
    if scale.trace_length > STREAM_RECORDS:
        from repro.traces import share

        shared = share.lookup(spec.name, scale.trace_length, scale.seed)
        if shared is not None:
            return shared
        return GeneratedSource(spec, scale.trace_length, scale.seed,
                               chunk_records=STREAM_CHUNK_RECORDS)
    key = (spec.name, scale.trace_length, scale.seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = spec.generate_trace(scale.trace_length, seed=scale.seed)
        _TRACE_CACHE[key] = trace
    return trace


def _resolve(workload: WorkloadSpec | str) -> WorkloadSpec:
    if isinstance(workload, str):
        return get_workload(workload)
    return workload


#: Co-runner interference groups per application access.  Simulated traces
#: compress reuse distances by orders of magnitude versus the paper's
#: billions-of-accesses runs; the co-runner's eviction rate is compressed
#: by the same factor so cache-residency transitions stay in place
#: (calibration documented in EXPERIMENTS.md).
CORUNNER_INTENSITY = 8


def _corunner(scale: Scale) -> Corunner:
    return Corunner(seed=scale.seed + 99, intensity=CORUNNER_INTENSITY)


def _trace_for(spec: WorkloadSpec, scale: Scale,
               trace_source: TraceSource | None):
    """The trace a scenario replays: the explicit source if given
    (geometry-checked), else the generated one."""
    if trace_source is None:
        return make_trace(spec, scale)
    if trace_source.records != scale.trace_length:
        raise ValueError(
            f"trace source holds {trace_source.records} records but the "
            f"scale asks for {scale.trace_length}")
    return trace_source


def _setup_span(mode: str, spec: WorkloadSpec):
    """A ``setup`` span around OS-substrate + simulator construction
    when observation is on; a no-op context otherwise."""
    recorder = obs_active()
    if recorder is None:
        return nullcontext()
    return recorder.span("setup", "sim", mode=mode, workload=spec.name)


# ----------------------------------------------------------------------
# native scenarios
# ----------------------------------------------------------------------
def run_native(
    workload: WorkloadSpec | str,
    config: AsapConfig = BASELINE,
    colocated: bool = False,
    clustered_tlb: bool = False,
    infinite_tlb: bool = False,
    machine: MachineParams = DEFAULT_MACHINE,
    scale: Scale = Scale(),
    pt_levels: int = 4,
    collect_service: bool = True,
    hole_rate: float = 0.0,
    scheme: SchemeSpec | None = None,
    trace_source: TraceSource | None = None,
    kernel: str = "scalar",
) -> SimStats:
    """Run one native scenario and return its statistics.

    ``hole_rate`` injects PT-region holes (§3.7.2): each pinned node
    placement fails with this probability, so the affected walks lose
    acceleration but stay correct.  It must be set before population, so
    it is a runner knob rather than a post-hoc mutation.

    ``trace_source`` replays an explicit trace (e.g. a materialised
    ``repro trace`` file) instead of generating one from the spec; its
    record count must match ``scale.trace_length``.

    ``kernel`` selects the simulator's record-loop engine (see
    :class:`~repro.sim.simulator.NativeSimulation`).
    """
    spec = _resolve(workload)
    trace = _trace_for(spec, scale, trace_source)
    with _setup_span("native", spec):
        process = spec.build_process(
            asap_levels=config.native_levels,
            seed=scale.seed,
            pt_levels=pt_levels,
        )
        if hole_rate:
            if process.asap_layout is None:
                raise ValueError("hole_rate needs an ASAP-enabled config")
            process.asap_layout.pinned_failure_prob = hole_rate
        simulation = NativeSimulation(
            process,
            machine=machine,
            asap=config,
            clustered_tlb=clustered_tlb,
            infinite_tlb=infinite_tlb,
            corunner=_corunner(scale) if colocated else None,
            scheme=scheme,
            kernel=kernel,
        )
    return simulation.run(trace, warmup=scale.warmup,
                          collect_service=collect_service,
                          init_order=spec.init_order)


# ----------------------------------------------------------------------
# virtualized scenarios
# ----------------------------------------------------------------------
def guest_mem_bytes(spec: WorkloadSpec) -> int:
    """Table 4: 128GB guests (bigger for datasets that would not fit)."""
    return max(128 * GB, -(-int(spec.footprint_bytes * 1.3) // GB) * GB)


def build_vm(
    spec: WorkloadSpec,
    config: AsapConfig,
    scale: Scale,
    host_page_level: int = 1,
    seed: int | None = None,
    host_buddy=None,
) -> VirtualMachine:
    """Build one guest VM.

    ``seed`` overrides ``scale.seed`` for the guest-side randomness
    (per-tenant seeds in multi-tenant runs) and ``host_buddy`` supplies a
    shared host allocator (several VMs consolidated onto one physical
    machine); both default to the historical single-VM behaviour.
    """
    seed = scale.seed if seed is None else seed
    guest_mem = guest_mem_bytes(spec)
    guest_buddy = BuddyAllocator(PhysicalMemory(guest_mem), seed=seed)
    guest = spec.build_process(
        asap_levels=config.guest_levels,
        seed=seed,
        buddy=guest_buddy,
    )
    return VirtualMachine(
        guest,
        guest_mem_bytes=guest_mem,
        host_buddy=host_buddy,
        host_page_level=host_page_level,
        host_asap_levels=config.host_levels,
        back_guest_pt_contiguously=bool(config.guest_levels),
        seed=seed,
    )


def run_virtualized(
    workload: WorkloadSpec | str,
    config: AsapConfig = BASELINE,
    colocated: bool = False,
    host_page_level: int = 1,
    infinite_tlb: bool = False,
    machine: MachineParams = DEFAULT_MACHINE,
    scale: Scale = Scale(),
    collect_service: bool = True,
    scheme: SchemeSpec | None = None,
    trace_source: TraceSource | None = None,
    kernel: str = "scalar",
) -> SimStats:
    """Run one virtualized scenario and return its statistics.

    ``trace_source`` replays an explicit trace, as in
    :func:`run_native`; ``kernel`` is accepted for interface parity (the
    2D walk always runs the scalar engine — see
    :class:`~repro.sim.virt.VirtualizedSimulation`).
    """
    spec = _resolve(workload)
    trace = _trace_for(spec, scale, trace_source)
    with _setup_span("virtualized", spec):
        vm = build_vm(spec, config, scale, host_page_level=host_page_level)
        simulation = VirtualizedSimulation(
            vm,
            machine=machine,
            asap=config,
            infinite_tlb=infinite_tlb,
            corunner=_corunner(scale) if colocated else None,
            scheme=scheme,
            kernel=kernel,
        )
    return simulation.run(trace, warmup=scale.warmup,
                          collect_service=collect_service,
                          init_order=spec.init_order)
