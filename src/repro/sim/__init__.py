"""Trace-driven simulators (native and virtualized) and their statistics.

Paper cross-references: §4 (methodology: steady-state measurement after
warmup, average walk latency as the primary metric), §5.3 (infinite-TLB
runs behind Table 6's critical-path fraction), Figure 2/Table 6
(execution-time fractions from the simple core model).
"""

from repro.sim.runner import (
    BENCH_SCALE,
    Scale,
    build_vm,
    make_trace,
    run_native,
    run_virtualized,
)
from repro.sim.simulator import NativeSimulation, build_native_descriptors
from repro.sim.stats import SERVICE_LABELS, ServiceDistribution, SimStats
from repro.sim.virt import (
    VirtualizedSimulation,
    build_guest_descriptors,
    build_host_descriptor,
)

__all__ = [
    "BENCH_SCALE",
    "NativeSimulation",
    "SERVICE_LABELS",
    "Scale",
    "ServiceDistribution",
    "SimStats",
    "VirtualizedSimulation",
    "build_guest_descriptors",
    "build_host_descriptor",
    "build_native_descriptors",
    "build_vm",
    "make_trace",
    "run_native",
    "run_virtualized",
]
