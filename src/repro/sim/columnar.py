"""Columnar chunk kernel: the scalar fast sweep recast as a C loop.

The scalar simulator already spends almost all of its time in
``_fast_native_sweep`` — a pure function of the flat-array TLB/PWC/cache
state plus the page table's translation for each VPN.  This module
compiles an exact transliteration of that sweep (via cffi's ABI mode and
the system C compiler) and drives it one TraceSource chunk at a time:

* Python precomputes, per chunk, a *path row* for every distinct VPN —
  the page-table node cache lines the walker would touch, the three PWC
  tags, the leaf level and frame — using vectorized numpy over the radix
  table's node maps.  Rows are cached across chunks in a
  :class:`_PathTable` (the page table cannot change mid-run).
* The C kernel then replays the per-record state machine: L1/L2 TLB
  probe with LRU promotion, PWC probe/insert, per-level cache walk
  steps, TLB fill, and the data access — mutating images of the same
  flat arrays the scalar path uses and accumulating the same counters,
  which are written back once per run.

Byte-identity with the scalar path is a hard invariant (the scalar
kernel is the differential oracle; see tests/test_columnar_differential
and ARCHITECTURE.md §12).  The kernel engages in one of three modes —
``plain`` (no scheme hooks; the original fast-sweep configuration),
``asap`` (the only hook is an AsapPrefetcher's walk-start: the
prefetch issue/completion state machine is compiled into the chunk
loop, with the range-register outcome, per-level target lines and hole
flags precomputed per page into the path rows) and ``victima`` (the
hooks are exactly a Victima scheme's probe + L2-TLB-eviction pair: the
parked-entry map is carried as a C hash + FIFO pool and the TLB-fill
victim filter runs inline).  All other configurations (Revelator,
co-runners, custom hooks, non-power-of-two geometries) fall back to
the scalar loop, so every scheme still runs.  MSHR state is
round-tripped in every mode and the C ``cache_access`` has the merge
branch, so in-flight prefetches straddle chunk seams byte-identically.

The backend is optional: without a C compiler or cffi the simulator
silently stays scalar.  Set ``REPRO_REQUIRE_CCORE=1`` to turn backend
unavailability into an error (CI does this for the columnar jobs).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import tempfile
import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.tlb.tlb import ASID_SHIFT, asid_bias
from repro.traces.source import kernel_chunk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import NativeSimulation

#: Valid values of the simulators' ``kernel=`` selector.
KERNELS = ("scalar", "columnar")

# --- geometry / counter slot layout (mirrors the C enums) -------------

_G_T = 0          # L1 TLB nsets, stride, ways
_G_U = 3          # L2 TLB
_G_P2 = 6         # PWC PL2
_G_P3 = 9         # PWC PL3
_G_P4 = 12        # PWC PL4
_G_C1 = 15        # L1 cache
_G_C2 = 18        # L2 cache
_G_C3 = 21        # L3 cache
_G_LAT1 = 24
_G_LAT2 = 25
_G_LAT3 = 26
_G_LATM = 27
_G_PWC_LAT = 28
_G_BASE_CYCLES = 29
_G_VBIAS = 30
_G_PROBE_LARGE = 31
_G_MODE = 32        # 0 plain, 1 asap, 2 victima
_G_REQ_MSHR = 33    # asap: require a free MSHR per prefetch
_G_MSHR_CAP = 34
_G_PF_N = 35        # asap: number of prefetch-target levels
_G_PF_L = 36        # asap: the levels themselves (4 slots, 36-39)
_G_PROBE_LAT = 40   # victima: probe latency (L2 by construction)
_G_PARK_MAX = 41    # victima: parked-entry bookkeeping bound
_G_PARK_HCAP = 42   # victima: park hash capacity (power of two)
_GEOM_SLOTS = 43

(K_TH, K_TM, K_L1H, K_L2H, K_LS_H, K_LS_M, K_US_H, K_US_M,
 K_PWC_PROBES, K_PWC_HITS, K_P2_H, K_P2_M, K_P3_H, K_P3_M,
 K_P4_H, K_P4_M, K_WALKS, K_WALK_CYCLES,
 K_C1_H, K_C1_M, K_C1_E, K_C2_H, K_C2_M, K_C2_E,
 K_C3_H, K_C3_M, K_C3_E,
 K_SRV_L1, K_SRV_L2, K_SRV_L3, K_SRV_MEM,
 K_RR_H, K_RR_M, K_PF_ISSUED, K_PF_USEFUL, K_PF_DROPNM,
 K_PF_NODESC, K_PF_HOLE, K_H_PF_ISSUED, K_H_PF_DROP,
 K_MSHR_ALLOC, K_MSHR_REJ, K_MSHR_MERGE,
 K_V_PARKED, K_V_PROBE_H, K_V_PROBE_M, K_V_LOST) = range(47)
_COUNTER_SLOTS = 47

# carry slots (the scalar loop's run-wide state tuple)
_CAR_NOW = 0
_CAR_MEASURING = 1
_CAR_ACC = 2
_CAR_DATA_C = 3
_CAR_WALK_C = 4
_CAR_WALK_COUNT = 5
_CAR_L1_BASE = 6
_CAR_L2_BASE = 7
_CARRY_SLOTS = 8

#: Figure-9 service histogram: 4 PT levels x 6 labels; row = level - 1,
#: column = index into SERVICE_LABELS.
_SERVICE_SLOTS = 24
_SERVICE_LABELS = ("PWC", "L1", "MSHR", "L2", "L3", "MEM")

#: Path-row layout: lines l4 l3 l2 l1, tg2 tg3 tg4, leaf, pframe, large
#: (cols 0-9, the plain walk) plus the ASAP replay columns — descriptor
#: flag (10), per-slot prefetch target lines or -1 (11-14) and per-slot
#: hole flags (15-18).  The ASAP columns are page-constant because the
#: dispatch precondition requires page-aligned descriptors and VMAs.
_PATH_COLS = 19

_C_SOURCE = r"""
#include <string.h>

typedef long long i64;
#define EMPTY (-1LL)

/* geometry slots */
enum {
    G_T = 0, G_U = 3, G_P2 = 6, G_P3 = 9, G_P4 = 12,
    G_C1 = 15, G_C2 = 18, G_C3 = 21,
    G_LAT1 = 24, G_LAT2 = 25, G_LAT3 = 26, G_LATM = 27,
    G_PWC_LAT = 28, G_BASE_CYCLES = 29, G_VBIAS = 30, G_PROBE_LARGE = 31,
    G_MODE = 32, G_REQ_MSHR = 33, G_MSHR_CAP = 34,
    G_PF_N = 35, G_PF_L = 36,
    G_PROBE_LAT = 40, G_PARK_MAX = 41, G_PARK_HCAP = 42
};

/* counter slots */
enum {
    K_TH, K_TM, K_L1H, K_L2H, K_LS_H, K_LS_M, K_US_H, K_US_M,
    K_PWC_PROBES, K_PWC_HITS, K_P2_H, K_P2_M, K_P3_H, K_P3_M,
    K_P4_H, K_P4_M, K_WALKS, K_WALK_CYCLES,
    K_C1_H, K_C1_M, K_C1_E, K_C2_H, K_C2_M, K_C2_E,
    K_C3_H, K_C3_M, K_C3_E,
    K_SRV_L1, K_SRV_L2, K_SRV_L3, K_SRV_MEM,
    K_RR_H, K_RR_M, K_PF_ISSUED, K_PF_USEFUL, K_PF_DROPNM,
    K_PF_NODESC, K_PF_HOLE, K_H_PF_ISSUED, K_H_PF_DROP,
    K_MSHR_ALLOC, K_MSHR_REJ, K_MSHR_MERGE,
    K_V_PARKED, K_V_PROBE_H, K_V_PROBE_M, K_V_LOST
};

#define PATH_COLS 19
#define PARK_BASE (1LL << 50)

/* carry slots */
enum {
    CAR_NOW, CAR_MEASURING, CAR_ACC, CAR_DATA_C,
    CAR_WALK_C, CAR_WALK_COUNT, CAR_L1_BASE, CAR_L2_BASE
};

/* Guard-slot scan for `tag` in the set segment [base, guard).  Writes
   the tag into the guard slot, scans, restores the EMPTY sentinel (the
   scalar probes do the same, and writeback byte-identity depends on
   it) and returns the hit position or -1. */
static i64 lru_scan(i64 *tags, i64 base, i64 guard, i64 tag)
{
    tags[guard] = tag;
    i64 pos = base;
    while (tags[pos] != tag)
        pos++;
    tags[guard] = EMPTY;
    return pos == guard ? -1 : pos;
}

/* Promote the entry at `pos` to MRU (slot `base`). */
static void lru_promote(i64 *tags, i64 *frames, i64 base, i64 pos)
{
    i64 tag = tags[pos], frame = frames[pos];
    memmove(tags + base + 1, tags + base, (pos - base) * sizeof(i64));
    memmove(frames + base + 1, frames + base, (pos - base) * sizeof(i64));
    tags[base] = tag;
    frames[base] = frame;
}

/* Install a known-absent entry at MRU, shifting the rest down (the LRU
   victim falls off the segment end when the set is full — discarded,
   exactly like the scalar fast path's inlined fills). */
static void lru_install(i64 *tags, i64 *frames, i64 *sizes,
                        i64 set_index, i64 base, i64 ways,
                        i64 tag, i64 frame)
{
    i64 size = sizes[set_index];
    i64 count = size >= ways ? ways - 1 : size;
    memmove(tags + base + 1, tags + base, count * sizeof(i64));
    memmove(frames + base + 1, frames + base, count * sizeof(i64));
    if (size < ways)
        sizes[set_index] = size + 1;
    tags[base] = tag;
    frames[base] = frame;
}

/* PWC probe: MRU shortcut, guard scan, promote on scan hit. 1 = hit. */
static int pwc_probe(i64 *tags, i64 *frames, const i64 *sizes,
                     i64 nsets, i64 stride, i64 tg)
{
    i64 set_index = tg & (nsets - 1);
    i64 base = set_index * stride;
    if (tags[base] == tg)
        return 1;
    i64 pos = lru_scan(tags, base, base + sizes[set_index], tg);
    if (pos < 0)
        return 0;
    lru_promote(tags, frames, base, pos);
    return 1;
}

/* PWC insert (the cached value is always 1): present entries are
   promoted and refreshed, absent ones installed with LRU eviction. */
static void pwc_insert(i64 *tags, i64 *frames, i64 *sizes,
                       i64 nsets, i64 stride, i64 ways, i64 tg)
{
    i64 set_index = tg & (nsets - 1);
    i64 base = set_index * stride;
    if (tags[base] == tg) {
        frames[base] = 1;
        return;
    }
    i64 size = sizes[set_index];
    i64 pos = lru_scan(tags, base, base + size, tg);
    if (pos >= 0) {
        memmove(tags + base + 1, tags + base, (pos - base) * sizeof(i64));
        memmove(frames + base + 1, frames + base,
                (pos - base) * sizeof(i64));
    } else {
        i64 count = size >= ways ? ways - 1 : size;
        memmove(tags + base + 1, tags + base, count * sizeof(i64));
        memmove(frames + base + 1, frames + base, count * sizeof(i64));
        if (size < ways)
            sizes[set_index] = size + 1;
    }
    tags[base] = tg;
    frames[base] = 1;
}

/* One cache level: MRU shortcut + guard scan + promote.  1 = hit. */
static int cache_probe(i64 *lines, const i64 *sizes,
                       i64 nsets, i64 stride, i64 line)
{
    i64 set_index = line & (nsets - 1);
    i64 base = set_index * stride;
    if (lines[base] == line)
        return 1;
    i64 guard = base + sizes[set_index];
    lines[guard] = line;
    i64 pos = base;
    while (lines[pos] != line)
        pos++;
    lines[guard] = EMPTY;
    if (pos == guard)
        return 0;
    memmove(lines + base + 1, lines + base, (pos - base) * sizeof(i64));
    lines[base] = line;
    return 1;
}

static void cache_install(i64 *lines, i64 *sizes, i64 nsets, i64 stride,
                          i64 ways, i64 line, i64 *evictions)
{
    i64 set_index = line & (nsets - 1);
    i64 base = set_index * stride;
    i64 size = sizes[set_index];
    i64 count;
    if (size >= ways) {
        count = ways - 1;
        (*evictions)++;
    } else {
        count = size;
        sizes[set_index] = size + 1;
    }
    memmove(lines + base + 1, lines + base, count * sizeof(i64));
    lines[base] = line;
}

/* Cache.install for a line that may already be present (Victima's park
   path uses the generic Cache.install): promote if found, LRU-evict
   otherwise. */
static void cache_install_scan(i64 *lines, i64 *sizes, i64 nsets,
                               i64 stride, i64 ways, i64 line,
                               i64 *evictions)
{
    i64 set_index = line & (nsets - 1);
    i64 base = set_index * stride;
    i64 size = sizes[set_index];
    i64 limit = base + size;
    lines[limit] = line;
    i64 pos = base;
    while (lines[pos] != line)
        pos++;
    lines[limit] = EMPTY;
    if (pos != limit) {
        memmove(lines + base + 1, lines + base, (pos - base) * sizeof(i64));
    } else if (size >= ways) {
        memmove(lines + base + 1, lines + base, (ways - 1) * sizeof(i64));
        (*evictions)++;
    } else {
        memmove(lines + base + 1, lines + base, size * sizeof(i64));
        sizes[set_index] = size + 1;
    }
    lines[base] = line;
}

/* Cache.invalidate: shift the tail down over the (known-present) line.
   No stats, exactly like the scalar method. */
static void cache_invalidate(i64 *lines, i64 *sizes, i64 nsets,
                             i64 stride, i64 line)
{
    i64 set_index = line & (nsets - 1);
    i64 base = set_index * stride;
    i64 size = sizes[set_index];
    i64 limit = base + size;
    lines[limit] = line;
    i64 pos = base;
    while (lines[pos] != line)
        pos++;
    lines[limit] = EMPTY;
    if (pos == limit)
        return;
    memmove(lines + pos, lines + pos + 1, (limit - 1 - pos) * sizeof(i64));
    lines[limit - 1] = EMPTY;
    sizes[set_index] = size - 1;
}

/* --- MSHR file: mshr[0] = live count, lines at mshr+1, completion
   times at mshr+1+cap, insertion order preserved (mirrors the ordered
   dict in repro.mem.mshr). ---------------------------------------- */

static void mshr_retire(i64 *mshr, i64 cap, i64 now)
{
    i64 count = mshr[0];
    i64 *lines = mshr + 1;
    i64 *times = mshr + 1 + cap;
    i64 out = 0;
    for (i64 i = 0; i < count; i++) {
        if (times[i] > now) {
            lines[out] = lines[i];
            times[out] = times[i];
            out++;
        }
    }
    mshr[0] = out;
}

static i64 mshr_find(const i64 *mshr, i64 line)
{
    i64 count = mshr[0];
    const i64 *lines = mshr + 1;
    for (i64 i = 0; i < count; i++)
        if (lines[i] == line)
            return i;
    return -1;
}

/* MSHRFile.try_allocate: 1 on merge or allocation, 0 on rejection. */
static int mshr_try_allocate(i64 *mshr, i64 cap, i64 line, i64 now,
                             i64 completion, i64 *k)
{
    mshr_retire(mshr, cap, now);
    if (mshr_find(mshr, line) >= 0) {
        k[K_MSHR_MERGE]++;
        return 1;
    }
    i64 count = mshr[0];
    if (count >= cap) {
        k[K_MSHR_REJ]++;
        return 0;
    }
    mshr[1 + count] = line;
    mshr[1 + cap + count] = completion;
    mshr[0] = count + 1;
    k[K_MSHR_ALLOC]++;
    return 1;
}

/* MSHRFile.inflight_completion: completion time or -1. */
static i64 mshr_inflight(i64 *mshr, i64 cap, i64 line, i64 now, i64 *k)
{
    mshr_retire(mshr, cap, now);
    i64 idx = mshr_find(mshr, line);
    if (idx < 0)
        return -1;
    k[K_MSHR_MERGE]++;
    return mshr[1 + cap + idx];
}

/* CacheHierarchy.access, including the MSHR merge branch (a prefetch
   issued by an earlier record can still be in flight).  Returns the
   latency; *level_out = SERVICE_LABELS column (1 L1, 2 MSHR, 3 L2,
   4 L3, 5 MEM). */
static i64 cache_access(i64 *c1_lines, i64 *c1_sizes,
                        i64 *c2_lines, i64 *c2_sizes,
                        i64 *c3_lines, i64 *c3_sizes,
                        const i64 *g, i64 *k, i64 line, i64 *level_out,
                        i64 now, i64 *mshr)
{
    if (cache_probe(c1_lines, c1_sizes, g[G_C1], g[G_C1 + 1], line)) {
        k[K_C1_H]++;
        k[K_SRV_L1]++;
        *level_out = 1;
        return g[G_LAT1];
    }
    k[K_C1_M]++;
    if (mshr[0] > 0) {
        i64 merged = mshr_inflight(mshr, g[G_MSHR_CAP], line, now, k);
        if (merged >= 0 && merged > now) {
            /* the in-flight fill lands in the L1; no served[] credit */
            cache_install(c1_lines, c1_sizes, g[G_C1], g[G_C1 + 1],
                          g[G_C1 + 2], line, &k[K_C1_E]);
            *level_out = 2;
            return merged - now;
        }
    }
    i64 latency, level;
    if (cache_probe(c2_lines, c2_sizes, g[G_C2], g[G_C2 + 1], line)) {
        k[K_C2_H]++;
        latency = g[G_LAT2];
        level = 3;
        k[K_SRV_L2]++;
    } else {
        k[K_C2_M]++;
        if (cache_probe(c3_lines, c3_sizes, g[G_C3], g[G_C3 + 1], line)) {
            k[K_C3_H]++;
            latency = g[G_LAT3];
            level = 4;
            k[K_SRV_L3]++;
        } else {
            k[K_C3_M]++;
            latency = g[G_LATM];
            level = 5;
            k[K_SRV_MEM]++;
            cache_install(c3_lines, c3_sizes, g[G_C3], g[G_C3 + 1],
                          g[G_C3 + 2], line, &k[K_C3_E]);
        }
        /* L3 and MEM serves both refill the L2. */
        cache_install(c2_lines, c2_sizes, g[G_C2], g[G_C2 + 1],
                      g[G_C2 + 2], line, &k[K_C2_E]);
    }
    cache_install(c1_lines, c1_sizes, g[G_C1], g[G_C1 + 1],
                  g[G_C1 + 2], line, &k[K_C1_E]);
    *level_out = level;
    return latency;
}

/* --- Victima parked-entry pool: an insertion-ordered map, mirroring
   the scheme's `_parked` dict.  pool: cap slots of (vpn, frame, prev,
   next); meta: [count, head, tail, free_head, tombstones]; hash: open
   addressing (value = pool index, -1 empty, -2 tombstone). -------- */

#define SLOT_FREE (-1LL)
#define SLOT_TOMB (-2LL)

static i64 mix64(i64 x)
{
    unsigned long long z = (unsigned long long)x;
    z ^= z >> 30; z *= 0xBF58476D1CE4B9B9ULL;
    z ^= z >> 27; z *= 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return (i64)z;
}

/* Hash slot holding `vpn`, or -1. */
static i64 park_find(const i64 *pool, const i64 *hash, i64 hcap, i64 vpn)
{
    i64 mask = hcap - 1;
    i64 s = mix64(vpn) & mask;
    for (;;) {
        i64 v = hash[s];
        if (v == SLOT_FREE)
            return -1;
        if (v >= 0 && pool[v * 4] == vpn)
            return s;
        s = (s + 1) & mask;
    }
}

/* Insert a known-absent pool index (first free or tombstone slot). */
static void park_hash_insert(const i64 *pool, i64 *hash, i64 hcap,
                             i64 *meta, i64 idx)
{
    i64 mask = hcap - 1;
    i64 s = mix64(pool[idx * 4]) & mask;
    while (hash[s] >= 0)
        s = (s + 1) & mask;
    if (hash[s] == SLOT_TOMB)
        meta[4]--;
    hash[s] = idx;
}

static void park_rehash(const i64 *pool, i64 *hash, i64 hcap, i64 *meta)
{
    for (i64 i = 0; i < hcap; i++)
        hash[i] = SLOT_FREE;
    meta[4] = 0;
    for (i64 idx = meta[1]; idx >= 0; idx = pool[idx * 4 + 3])
        park_hash_insert(pool, hash, hcap, meta, idx);
}

/* Remove pool index `idx` (at hash slot `slot`) from map and FIFO. */
static void park_unlink(i64 *pool, i64 *hash, i64 *meta, i64 slot,
                        i64 idx)
{
    hash[slot] = SLOT_TOMB;
    meta[4]++;
    i64 prev = pool[idx * 4 + 2];
    i64 next = pool[idx * 4 + 3];
    if (prev >= 0) pool[prev * 4 + 3] = next; else meta[1] = next;
    if (next >= 0) pool[next * 4 + 2] = prev; else meta[2] = prev;
    pool[idx * 4 + 3] = meta[3];   /* push onto the free list */
    meta[3] = idx;
    meta[0]--;
}

/* VictimaScheme._park: bound-evict the oldest, insert (or update in
   place, keeping FIFO position), install the parked line in the L2
   data cache, count it. */
static void park_entry(i64 *pool, i64 *hash, i64 *meta, const i64 *g,
                       i64 *k, i64 vpn, i64 frame,
                       i64 *c2_lines, i64 *c2_sizes)
{
    const i64 hcap = g[G_PARK_HCAP];
    i64 slot = park_find(pool, hash, hcap, vpn);
    if (slot >= 0) {
        pool[hash[slot] * 4 + 1] = frame;
    } else {
        if (meta[0] >= g[G_PARK_MAX]) {
            i64 old = meta[1];
            i64 oslot = park_find(pool, hash, hcap, pool[old * 4]);
            park_unlink(pool, hash, meta, oslot, old);
        }
        i64 idx = meta[3];
        meta[3] = pool[idx * 4 + 3];
        pool[idx * 4] = vpn;
        pool[idx * 4 + 1] = frame;
        pool[idx * 4 + 2] = meta[2];
        pool[idx * 4 + 3] = -1;
        if (meta[2] >= 0) pool[meta[2] * 4 + 3] = idx; else meta[1] = idx;
        meta[2] = idx;
        meta[0]++;
        park_hash_insert(pool, hash, hcap, meta, idx);
        if ((meta[0] + meta[4]) * 2 >= hcap)
            park_rehash(pool, hash, hcap, meta);
    }
    cache_install_scan(c2_lines, c2_sizes, g[G_C2], g[G_C2 + 1],
                       g[G_C2 + 2], PARK_BASE | vpn, &k[K_C2_E]);
    k[K_V_PARKED]++;
}

/* Rebuild the hash from the FIFO chain (the Python side seeds the pool
   arrays from the scheme's dict and calls this once per run). */
void col_park_seed(i64 *meta, i64 *hash, const i64 *pool, i64 hcap)
{
    park_rehash(pool, hash, hcap, meta);
}

/* TlbHierarchy.fill_fast for a small page: install both levels; in
   victima mode a small-tag L2 victim is handed to the park hook. */
static void tlb_fill_small(i64 vpn, i64 frame, const i64 *g, i64 *k,
                           i64 *t_tags, i64 *t_frames, i64 *t_sizes,
                           i64 *u_tags, i64 *u_frames, i64 *u_sizes,
                           int vmode, i64 *pool, i64 *hash, i64 *meta,
                           i64 *c2_lines, i64 *c2_sizes)
{
    const i64 stag = vpn << 1;
    const i64 t_set = stag & (g[G_T] - 1);
    lru_install(t_tags, t_frames, t_sizes, t_set,
                t_set * g[G_T + 1], g[G_T + 2], stag, frame);
    const i64 u_set = stag & (g[G_U] - 1);
    const i64 base = u_set * g[G_U + 1];
    const i64 ways = g[G_U + 2];
    i64 vt = EMPTY, vf = 0;
    if (u_sizes[u_set] >= ways) {
        vt = u_tags[base + ways - 1];
        vf = u_frames[base + ways - 1];
    }
    lru_install(u_tags, u_frames, u_sizes, u_set, base, ways, stag, frame);
    if (vmode && vt != EMPTY && !(vt & 1))
        park_entry(pool, hash, meta, g, k, vt >> 1, vf,
                   c2_lines, c2_sizes);
}

i64 col_run_chunk(const i64 *va_arr, i64 n, i64 warmup,
                  i64 collect_service,
                  const i64 *rowidx, const i64 *paths,
                  i64 *carry, i64 *k, const i64 *g, i64 *service,
                  i64 *t_tags, i64 *t_frames, i64 *t_sizes,
                  i64 *u_tags, i64 *u_frames, i64 *u_sizes,
                  i64 *p2_tags, i64 *p2_frames, i64 *p2_sizes,
                  i64 *p3_tags, i64 *p3_frames, i64 *p3_sizes,
                  i64 *p4_tags, i64 *p4_frames, i64 *p4_sizes,
                  i64 *c1_lines, i64 *c1_sizes,
                  i64 *c2_lines, i64 *c2_sizes,
                  i64 *c3_lines, i64 *c3_sizes,
                  i64 *mshr, i64 *park_meta, i64 *park_hash,
                  i64 *park_pool)
{
    i64 now = carry[CAR_NOW];
    i64 measuring = carry[CAR_MEASURING];
    i64 acc = carry[CAR_ACC];
    i64 data_c = carry[CAR_DATA_C];
    i64 walk_c = carry[CAR_WALK_C];
    i64 walk_count = carry[CAR_WALK_COUNT];
    const i64 vbias = g[G_VBIAS];
    const i64 probe_large = g[G_PROBE_LARGE];
    const i64 base_cycles = g[G_BASE_CYCLES];
    const i64 pwc_lat = g[G_PWC_LAT];
    const i64 mode = g[G_MODE];

    for (i64 i = 0; i < n; i++) {
        if (!measuring && i >= warmup) {
            measuring = 1;
            carry[CAR_L1_BASE] = k[K_L1H];
            carry[CAR_L2_BASE] = k[K_L2H];
        }
        const i64 va = va_arr[i];
        const i64 vpn = (va >> 12) | vbias;
        i64 frame = EMPTY;
        i64 translation = 0;

        /* --- L1 D-TLB probe, small then (optional) large tag ------- */
        {
            i64 tag = vpn << 1;
            i64 set_index = tag & (g[G_T] - 1);
            i64 base = set_index * g[G_T + 1];
            if (t_tags[base] == tag) {
                k[K_LS_H]++;
                frame = t_frames[base];
            } else {
                i64 pos = lru_scan(t_tags, base,
                                   base + t_sizes[set_index], tag);
                if (pos >= 0) {
                    k[K_LS_H]++;
                    frame = t_frames[pos];
                    lru_promote(t_tags, t_frames, base, pos);
                } else {
                    k[K_LS_M]++;
                    if (probe_large) {
                        tag = ((vpn >> 9) << 1) | 1;
                        set_index = tag & (g[G_T] - 1);
                        base = set_index * g[G_T + 1];
                        pos = lru_scan(t_tags, base,
                                       base + t_sizes[set_index], tag);
                        if (pos >= 0) {
                            k[K_LS_H]++;
                            frame = t_frames[pos];
                            if (pos != base)
                                lru_promote(t_tags, t_frames, base, pos);
                        } else {
                            k[K_LS_M]++;
                        }
                    }
                }
            }
        }
        if (frame != EMPTY) {
            k[K_TH]++;
            k[K_L1H]++;
        } else {
            /* --- L2 S-TLB probe, small then (optional) large tag --- */
            i64 tag = vpn << 1;
            i64 set_index = tag & (g[G_U] - 1);
            i64 base = set_index * g[G_U + 1];
            i64 pos = lru_scan(u_tags, base,
                               base + u_sizes[set_index], tag);
            if (pos >= 0) {
                k[K_US_H]++;
                frame = u_frames[pos];
                if (pos != base)
                    lru_promote(u_tags, u_frames, base, pos);
            } else {
                k[K_US_M]++;
                if (probe_large) {
                    tag = ((vpn >> 9) << 1) | 1;
                    set_index = tag & (g[G_U] - 1);
                    base = set_index * g[G_U + 1];
                    pos = lru_scan(u_tags, base,
                                   base + u_sizes[set_index], tag);
                    if (pos >= 0) {
                        k[K_US_H]++;
                        frame = u_frames[pos];
                        if (pos != base)
                            lru_promote(u_tags, u_frames, base, pos);
                    } else {
                        k[K_US_M]++;
                    }
                }
            }
            if (frame != EMPTY) {
                k[K_TH]++;
                k[K_L2H]++;
                /* refill the L1 with the small tag (L2 hit path) */
                const i64 stag = vpn << 1;
                const i64 t_set = stag & (g[G_T] - 1);
                lru_install(t_tags, t_frames, t_sizes, t_set,
                            t_set * g[G_T + 1], g[G_T + 2], stag, frame);
            }
        }

        if (frame == EMPTY) {
            k[K_TM]++;
            int walked = 1;
            if (mode == 2) {
                /* --- Victima probe before the walk ----------------- */
                i64 slot = park_find(park_pool, park_hash,
                                     g[G_PARK_HCAP], vpn);
                if (slot >= 0) {
                    const i64 idx = park_hash[slot];
                    const i64 pline = PARK_BASE | vpn;
                    if (cache_probe(c2_lines, c2_sizes,
                                    g[G_C2], g[G_C2 + 1], pline)) {
                        k[K_C2_H]++;
                        cache_invalidate(c2_lines, c2_sizes,
                                         g[G_C2], g[G_C2 + 1], pline);
                        frame = park_pool[idx * 4 + 1];
                        park_unlink(park_pool, park_hash, park_meta,
                                    slot, idx);
                        k[K_V_PROBE_H]++;
                        translation = g[G_PROBE_LAT];
                        tlb_fill_small(vpn, frame, g, k,
                                       t_tags, t_frames, t_sizes,
                                       u_tags, u_frames, u_sizes,
                                       1, park_pool, park_hash,
                                       park_meta, c2_lines, c2_sizes);
                        if (measuring)
                            walk_c += translation;
                        walked = 0;
                    } else {
                        /* parked entry lost to data-cache pressure */
                        k[K_C2_M]++;
                        park_unlink(park_pool, park_hash, park_meta,
                                    slot, idx);
                        k[K_V_LOST]++;
                        k[K_V_PROBE_M]++;
                    }
                } else {
                    k[K_V_PROBE_M]++;
                }
            }
            if (walked) {
            /* --- full miss: priced page walk ----------------------- */
            const i64 *P = paths + rowidx[i] * PATH_COLS;
            i64 comp[5] = {-1, -1, -1, -1, -1};
            if (mode == 1) {
                /* --- ASAP prefetch replay (at `now`, before the PWC
                   probes, exactly where the scalar walk_start hook
                   fires) -------------------------------------------- */
                if (!P[10]) {
                    k[K_RR_M]++;
                    k[K_PF_NODESC]++;
                } else {
                    k[K_RR_H]++;
                    const i64 pf_n = g[G_PF_N];
                    for (i64 s = 0; s < pf_n; s++) {
                        const i64 pline = P[11 + s];
                        if (pline < 0)
                            continue;
                        i64 completion;
                        if (cache_probe(c1_lines, c1_sizes,
                                        g[G_C1], g[G_C1 + 1], pline)) {
                            k[K_C1_H]++;
                            k[K_SRV_L1]++;
                            completion = now + g[G_LAT1];
                        } else {
                            k[K_C1_M]++;
                            i64 lvl, lat;
                            if (cache_probe(c2_lines, c2_sizes,
                                            g[G_C2], g[G_C2 + 1],
                                            pline)) {
                                k[K_C2_H]++;
                                lvl = 3;
                                lat = g[G_LAT2];
                            } else {
                                k[K_C2_M]++;
                                if (cache_probe(c3_lines, c3_sizes,
                                                g[G_C3], g[G_C3 + 1],
                                                pline)) {
                                    k[K_C3_H]++;
                                    lvl = 4;
                                    lat = g[G_LAT3];
                                } else {
                                    k[K_C3_M]++;
                                    lvl = 5;
                                    lat = g[G_LATM];
                                }
                            }
                            completion = now + lat;
                            if (g[G_REQ_MSHR] &&
                                !mshr_try_allocate(mshr, g[G_MSHR_CAP],
                                                   pline, now,
                                                   completion, k)) {
                                k[K_H_PF_DROP]++;
                                k[K_PF_DROPNM]++;
                                continue;
                            }
                            cache_install(c1_lines, c1_sizes, g[G_C1],
                                          g[G_C1 + 1], g[G_C1 + 2],
                                          pline, &k[K_C1_E]);
                            if (lvl >= 4)
                                cache_install(c2_lines, c2_sizes,
                                              g[G_C2], g[G_C2 + 1],
                                              g[G_C2 + 2], pline,
                                              &k[K_C2_E]);
                            if (lvl == 5)
                                cache_install(c3_lines, c3_sizes,
                                              g[G_C3], g[G_C3 + 1],
                                              g[G_C3 + 2], pline,
                                              &k[K_C3_E]);
                            if (lvl == 3) k[K_SRV_L2]++;
                            else if (lvl == 4) k[K_SRV_L3]++;
                            else k[K_SRV_MEM]++;
                            k[K_H_PF_ISSUED]++;
                        }
                        k[K_PF_ISSUED]++;
                        if (P[15 + s]) {
                            k[K_PF_HOLE]++;
                            continue;
                        }
                        k[K_PF_USEFUL]++;
                        comp[g[G_PF_L + s]] = completion;
                    }
                }
            }
            i64 t_clock = now + pwc_lat;
            i64 skip_from = 0;
            k[K_PWC_PROBES]++;
            if (pwc_probe(p2_tags, p2_frames, p2_sizes,
                          g[G_P2], g[G_P2 + 1], P[4])) {
                k[K_PWC_HITS]++;
                k[K_P2_H]++;
                skip_from = 2;
            } else {
                k[K_P2_M]++;
                if (pwc_probe(p3_tags, p3_frames, p3_sizes,
                              g[G_P3], g[G_P3 + 1], P[5])) {
                    k[K_PWC_HITS]++;
                    k[K_P3_H]++;
                    skip_from = 3;
                } else {
                    k[K_P3_M]++;
                    if (pwc_probe(p4_tags, p4_frames, p4_sizes,
                                  g[G_P4], g[G_P4 + 1], P[6])) {
                        k[K_PWC_HITS]++;
                        k[K_P4_H]++;
                        skip_from = 4;
                    } else {
                        k[K_P4_M]++;
                    }
                }
            }
            const i64 leaf = P[7];
            const i64 nlines = leaf == 1 ? 4 : 3;
            const int svc = (measuring && collect_service) ? 1 : 0;
            const i64 start = skip_from ? 5 - skip_from : 0;
            if (svc) {
                /* skipped prefix: level 4-j served by the PWC */
                for (i64 j = 0; j < start; j++)
                    service[(4 - j - 1) * 6 + 0]++;
            }
            for (i64 j = start; j < nlines; j++) {
                const i64 line = P[j];
                i64 level = 1;
                i64 lat;
                const i64 c1_set = line & (g[G_C1] - 1);
                if (c1_lines[c1_set * g[G_C1 + 1]] == line) {
                    k[K_C1_H]++;
                    k[K_SRV_L1]++;
                    lat = g[G_LAT1];
                } else {
                    lat = cache_access(c1_lines, c1_sizes, c2_lines,
                                       c2_sizes, c3_lines, c3_sizes,
                                       g, k, line, &level,
                                       t_clock, mshr);
                }
                t_clock += lat;
                if (mode == 1 && comp[4 - j] > t_clock)
                    t_clock = comp[4 - j];  /* overlap with prefetch */
                if (svc)
                    service[(4 - j - 1) * 6 + level]++;
            }
            if (leaf == 1)
                pwc_insert(p2_tags, p2_frames, p2_sizes,
                           g[G_P2], g[G_P2 + 1], g[G_P2 + 2], P[4]);
            pwc_insert(p3_tags, p3_frames, p3_sizes,
                       g[G_P3], g[G_P3 + 1], g[G_P3 + 2], P[5]);
            pwc_insert(p4_tags, p4_frames, p4_sizes,
                       g[G_P4], g[G_P4 + 1], g[G_P4 + 2], P[6]);
            translation = t_clock - now;
            k[K_WALKS]++;
            k[K_WALK_CYCLES] += translation;
            frame = P[8];
            /* TLB fill — both tags known absent after the full miss.
               Large fills never hand a victim to the park hook (the
               generic fill path has no hook); small fills do when in
               victima mode. */
            if (P[9]) {
                const i64 ltag = ((vpn >> 9) << 1) | 1;
                const i64 t_set = ltag & (g[G_T] - 1);
                lru_install(t_tags, t_frames, t_sizes, t_set,
                            t_set * g[G_T + 1], g[G_T + 2], ltag, frame);
                const i64 u_set = ltag & (g[G_U] - 1);
                lru_install(u_tags, u_frames, u_sizes, u_set,
                            u_set * g[G_U + 1], g[G_U + 2], ltag, frame);
            } else {
                tlb_fill_small(vpn, frame, g, k,
                               t_tags, t_frames, t_sizes,
                               u_tags, u_frames, u_sizes,
                               mode == 2, park_pool, park_hash,
                               park_meta, c2_lines, c2_sizes);
            }
            if (measuring) {
                walk_c += translation;
                walk_count++;
            }
            }
        }

        /* --- data access ------------------------------------------- */
        {
            const i64 line = (frame << 6) | ((va & 0xFFF) >> 6);
            i64 level;
            i64 dlat;
            const i64 c1_set = line & (g[G_C1] - 1);
            if (c1_lines[c1_set * g[G_C1 + 1]] == line) {
                k[K_C1_H]++;
                k[K_SRV_L1]++;
                dlat = g[G_LAT1];
            } else {
                dlat = cache_access(c1_lines, c1_sizes, c2_lines,
                                    c2_sizes, c3_lines, c3_sizes,
                                    g, k, line, &level,
                                    now + translation, mshr);
            }
            now += base_cycles + translation + dlat;
            if (measuring) {
                acc++;
                data_c += dlat;
            }
        }
    }

    carry[CAR_NOW] = now;
    carry[CAR_MEASURING] = measuring;
    carry[CAR_ACC] = acc;
    carry[CAR_DATA_C] = data_c;
    carry[CAR_WALK_C] = walk_c;
    carry[CAR_WALK_COUNT] = walk_count;
    return 0;
}
"""

_CDEF = """
long long col_run_chunk(const long long *va_arr, long long n,
    long long warmup, long long collect_service,
    const long long *rowidx, const long long *paths,
    long long *carry, long long *k, const long long *g,
    long long *service,
    long long *t_tags, long long *t_frames, long long *t_sizes,
    long long *u_tags, long long *u_frames, long long *u_sizes,
    long long *p2_tags, long long *p2_frames, long long *p2_sizes,
    long long *p3_tags, long long *p3_frames, long long *p3_sizes,
    long long *p4_tags, long long *p4_frames, long long *p4_sizes,
    long long *c1_lines, long long *c1_sizes,
    long long *c2_lines, long long *c2_sizes,
    long long *c3_lines, long long *c3_sizes,
    long long *mshr, long long *park_meta, long long *park_hash,
    long long *park_pool);
void col_park_seed(long long *meta, long long *hash,
    const long long *pool, long long hcap);
"""

_BACKEND = None
_BACKEND_ERROR: str | None = None
_BACKEND_LOCK = threading.Lock()
_LOADED = False


def _find_compiler() -> str | None:
    import shutil

    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_library():
    import cffi

    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache_dir = os.path.join(tempfile.gettempdir(),
                             f"repro-columnar-{digest}")
    suffix = ".dll" if sys.platform == "win32" else ".so"
    lib_path = os.path.join(cache_dir, f"columnar{suffix}")
    if not os.path.exists(lib_path):
        compiler = _find_compiler()
        if compiler is None:
            raise RuntimeError("no C compiler on PATH")
        os.makedirs(cache_dir, exist_ok=True)
        src_path = os.path.join(cache_dir, "columnar.c")
        with open(src_path, "w") as fh:
            fh.write(_C_SOURCE)
        tmp_path = f"{lib_path}.tmp{os.getpid()}"
        subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", src_path, "-o", tmp_path],
            check=True, capture_output=True, text=True)
        os.replace(tmp_path, lib_path)
    return ffi, ffi.dlopen(lib_path)


def _load_backend() -> None:
    global _BACKEND, _BACKEND_ERROR, _LOADED
    if _LOADED:
        return
    with _BACKEND_LOCK:
        if _LOADED:
            return
        try:
            _BACKEND = _build_library()
        except Exception as exc:  # noqa: BLE001 - any failure => scalar
            _BACKEND_ERROR = f"{type(exc).__name__}: {exc}"
        _LOADED = True


def columnar_available() -> bool:
    """Whether the compiled chunk kernel can run on this machine.

    With ``REPRO_REQUIRE_CCORE=1`` in the environment an unavailable
    backend raises instead of returning False, so a broken toolchain
    cannot silently demote CI's columnar jobs to the scalar kernel.
    """
    _load_backend()
    if _BACKEND is None and os.environ.get("REPRO_REQUIRE_CCORE"):
        raise RuntimeError(
            "REPRO_REQUIRE_CCORE is set but the columnar backend is "
            f"unavailable: {_BACKEND_ERROR}")
    return _BACKEND is not None


def _pow2_geometry(sim: "NativeSimulation") -> bool:
    # The C kernel maps tags to sets with `tag & (nsets - 1)`; custom
    # machine geometries with non-power-of-two set counts (valid for
    # the scalar `tag % nsets`) stay on the scalar loop.
    units = [sim.tlbs.l1, sim.tlbs.l2_plain,
             sim.hierarchy.l1, sim.hierarchy.l2, sim.hierarchy.l3]
    units += [unit for _, unit in sim.pwc.view]
    return not any(unit.num_sets & (unit.num_sets - 1) for unit in units)


def _asap_pages_aligned(sim: "NativeSimulation", prefetcher) -> bool:
    """The ASAP path-row columns are computed once per page, so every
    boundary the replay consults (descriptor cover, VMA find for the
    hole check) must be page-aligned — true for every workload the
    layout builder produces, checked here so a hand-built misaligned
    region falls back to the scalar oracle."""
    for descriptor in prefetcher.registers._descriptors:
        if (descriptor.start | descriptor.end) & 0xFFF:
            return False
    for vma in sim.process.vmas:
        if (vma.start | vma.end) & 0xFFF:
            return False
    return True


def engine_mode(sim: "NativeSimulation", fast_ok: bool) -> str | None:
    """Which compiled kernel mode (if any) can replay this run().

    Returns ``"plain"`` for the hook-free fast-sweep configuration
    (``fast_ok``), ``"asap"`` when the only hook is an AsapPrefetcher's
    ``on_tlb_miss`` walk-start, ``"victima"`` when the hooks are exactly
    a Victima scheme's probe + L2-TLB-eviction park pair, and ``None``
    otherwise (Revelator, co-runner and custom-hook cells stay on the
    scalar loop).  All modes additionally need power-of-two set counts
    and a compiled backend.  In-flight MSHRs are fine — the kernel
    carries the MSHR file and has the merge branch.
    """
    mode = None
    if fast_ok:
        mode = "plain"
    else:
        # Structural preconditions shared with fast_ok, minus the hooks.
        tlbs = sim.tlbs
        if (sim.corunner is not None or tlbs.infinite
                or sim.clustered_tlb or len(sim.pwc.view) != 3):
            return None
        scheme = sim.scheme
        probe = scheme.probe_hook()
        walk_start = scheme.walk_start_hook()
        if (scheme.walk_end_hook() is not None
                or scheme.fill_hook() is not None):
            return None
        if (walk_start is not None and probe is None
                and tlbs.l2_evict_hook is None):
            from repro.core.prefetcher import AsapPrefetcher

            prefetcher = getattr(walk_start, "__self__", None)
            if (type(prefetcher) is AsapPrefetcher
                    and getattr(walk_start, "__func__", None)
                    is AsapPrefetcher.on_tlb_miss
                    and prefetcher.hierarchy is sim.hierarchy
                    and prefetcher.levels
                    and len(prefetcher.levels) <= 4
                    and all(1 <= lv <= 4 for lv in prefetcher.levels)
                    and _asap_pages_aligned(sim, prefetcher)):
                mode = "asap"
        elif probe is not None and walk_start is None:
            from repro.schemes.victima import VictimaLike

            park = tlbs.l2_evict_hook
            if (type(scheme) is VictimaLike
                    and getattr(probe, "__self__", None) is scheme
                    and getattr(probe, "__func__", None)
                    is VictimaLike._probe
                    and getattr(park, "__self__", None) is scheme
                    and getattr(park, "__func__", None)
                    is VictimaLike._park
                    and scheme._hierarchy is sim.hierarchy
                    and scheme.max_parked >= 1):
                mode = "victima"
    if mode is None or not _pow2_geometry(sim):
        return None
    return mode if columnar_available() else None


class _PathTable:
    """Per-simulation cache of page-walk rows, keyed by biased VPN.

    Each row holds everything the C kernel needs to replay one page
    walk: the cache line of each page-table node the walker would
    touch, the three PWC tags, the leaf level, the frame and the
    large-page flag.  Rows are immutable once built (the page table is
    static during a run); ``clear()`` drops them on translation flush,
    coherently with the scalar path caches.
    """

    def __init__(self) -> None:
        self.known = np.empty(0, dtype=np.int64)  # sorted biased vpns
        self.rows = np.empty(0, dtype=np.int64)   # row ids, aligned
        self.paths = np.empty((0, _PATH_COLS), dtype=np.int64)
        self.count = 0

    def clear(self) -> None:
        self.__init__()

    def rows_for(self, vpns: np.ndarray, process, vbias: int,
                 asap=None) -> np.ndarray:
        """Row index for every element of ``vpns`` (biased), building
        rows for VPNs not seen before.  ``asap`` is ``None`` or the
        ``(starts, descriptors, levels, hole_checker)`` replay context
        used to precompute the prefetch-target columns."""
        uniq = np.unique(vpns)
        if self.known.size:
            slot = np.searchsorted(self.known, uniq)
            hit = (self.known[np.minimum(slot, self.known.size - 1)]
                   == uniq)
            new = uniq[~hit]
        else:
            new = uniq
        if new.size:
            self._add(new, process, vbias, asap)
        return self.rows[np.searchsorted(self.known, vpns)]

    def _add(self, new: np.ndarray, process, vbias: int,
             asap=None) -> None:
        pt = process.page_table
        raw = new & ((1 << ASID_SHIFT) - 1) if vbias else new
        count = new.size
        pages, large = pt.leaf_maps()
        leaf = np.empty(count, dtype=np.int64)
        pframe = np.empty(count, dtype=np.int64)
        for i in range(count):
            vpn = int(raw[i])
            frame = pages.get(vpn)
            if frame is not None:
                leaf[i] = 1
                pframe[i] = frame
                continue
            lframe = large.get(vpn >> 9)
            if lframe is not None:
                leaf[i] = 2
                pframe[i] = lframe + (vpn & 511)
                continue
            # Unmapped: raise the PageFault the scalar walk would (at
            # chunk pre-scan rather than at the faulting record — the
            # only observable divergence, and only on faulting traces).
            process.flat_walk(vpn << 12)
            raise AssertionError("flat_walk did not raise for an "
                                 "unmapped vpn")

        rows = np.empty((count, _PATH_COLS), dtype=np.int64)
        rows[:, 0] = self._node_lines(raw, 4, pt)
        rows[:, 1] = self._node_lines(raw, 3, pt)
        rows[:, 2] = self._node_lines(raw, 2, pt)
        rows[:, 3] = 0
        sel = leaf == 1
        if sel.any():
            rows[sel, 3] = self._node_lines(raw[sel], 1, pt)
        rows[:, 4] = (raw >> 9) | vbias
        rows[:, 5] = (raw >> 18) | vbias
        rows[:, 6] = (raw >> 27) | vbias
        rows[:, 7] = leaf
        rows[:, 8] = pframe
        rows[:, 9] = (leaf == 2).astype(np.int64)
        rows[:, 10] = 0
        rows[:, 11:15] = -1
        rows[:, 15:19] = 0
        if asap is not None:
            # ASAP replay columns.  Range-register lookup replayed as a
            # side-effect-free bisect (the hit/miss counters live in the
            # kernel); entry addresses and hole flags are page-constant
            # because the dispatch precondition requires page-aligned
            # descriptors and VMAs, so the page-base VA stands in for
            # every record VA on the page.
            from bisect import bisect_right

            starts, descriptors, levels, hole_checker = asap
            for i in range(count):
                va = int(raw[i]) << 12
                idx = bisect_right(starts, va) - 1
                if idx < 0:
                    continue
                descriptor = descriptors[idx]
                if not (descriptor.start <= va < descriptor.end):
                    continue
                rows[i, 10] = 1
                for s, level in enumerate(levels):
                    target = descriptor.entry_addr(va, level)
                    if target is None:
                        continue
                    rows[i, 11 + s] = target >> 6
                    if (hole_checker is not None
                            and hole_checker(va, level)):
                        rows[i, 15 + s] = 1

        start = self.count
        needed = start + count
        if needed > self.paths.shape[0]:
            capacity = max(needed, 2 * self.paths.shape[0], 1024)
            grown = np.empty((capacity, _PATH_COLS), dtype=np.int64)
            grown[:start] = self.paths[:start]
            self.paths = grown
        self.paths[start:needed] = rows
        self.count = needed

        ids = np.arange(start, needed, dtype=np.int64)
        # `new` is sorted (np.unique output), so one merged insert keeps
        # `known`/`rows` aligned and sorted.
        at = np.searchsorted(self.known, new)
        self.known = np.insert(self.known, at, new)
        self.rows = np.insert(self.rows, at, ids)

    @staticmethod
    def _node_lines(raw: np.ndarray, level: int, pt) -> np.ndarray:
        """Cache line of the level-``level`` node entry per (raw) vpn —
        ``flat_walk``'s line arithmetic, vectorized over the node map."""
        node_map = pt.leaf_nodes(level)
        keys = raw >> (9 * level)
        uniq, inverse = np.unique(keys, return_inverse=True)
        bases = np.fromiter((node_map[int(key)] for key in uniq),
                            dtype=np.int64, count=uniq.size)
        index = (raw >> (9 * (level - 1))) & 511
        return (bases[inverse] + index * 8) >> 6


def _as_array(lst: list) -> np.ndarray:
    return np.asarray(lst, dtype=np.int64)


def run_columnar(sim: "NativeSimulation", chunks, warmup: int,
                 collect_service: bool, stats, carry: tuple,
                 obs_probe=None, mode: str = "plain") -> tuple:
    """Drive every chunk of ``chunks`` through the C kernel.

    ``mode`` is :func:`engine_mode`'s verdict — ``"plain"``, ``"asap"``
    or ``"victima"`` — and selects which scheme state machine the
    kernel replays (and which scheme-side state is round-tripped
    through flat arrays).

    ``carry`` is the scalar loop's run-wide state tuple ``(now,
    measuring, acc, data_c, walk_c, walk_count, tlb_l1_base,
    tlb_l2_base)``; the return value is the updated tuple, with all
    flat-array state and stats owners mutated exactly as the scalar
    loop would have left them.  ``warmup`` is the run-global warmup
    index (this function tracks the chunk offset itself).

    ``obs_probe`` (a :class:`repro.obs.probe.SimProbe`, or ``None``)
    snapshots counters at each chunk boundary.  The snapshot reads the
    live ``k``/``carry_arr`` arrays, not the stats owners — those are
    only written back in the finally block below, so they are stale for
    the whole loop.
    """
    ffi, lib = _BACKEND
    tlbs = sim.tlbs
    pwc = sim.pwc
    hierarchy = sim.hierarchy
    l1t = tlbs.l1
    l2t = tlbs.l2_plain
    (_, p2), (_, p3), (_, p4) = pwc.view
    c1, c2, c3 = hierarchy.l1, hierarchy.l2, hierarchy.l3
    walker = sim.walker
    vbias = asid_bias(sim.asid)

    geom = np.zeros(_GEOM_SLOTS, dtype=np.int64)
    for off, unit in ((_G_T, l1t), (_G_U, l2t), (_G_P2, p2),
                      (_G_P3, p3), (_G_P4, p4),
                      (_G_C1, c1), (_G_C2, c2), (_G_C3, c3)):
        geom[off] = unit.num_sets
        geom[off + 1] = unit.stride
        geom[off + 2] = unit.ways
    geom[_G_LAT1] = hierarchy.latency_of("L1")
    geom[_G_LAT2] = hierarchy.latency_of("L2")
    geom[_G_LAT3] = hierarchy.latency_of("L3")
    geom[_G_LATM] = hierarchy.latency_of("MEM")
    geom[_G_PWC_LAT] = pwc.params.latency
    geom[_G_BASE_CYCLES] = sim.machine.core.base_cycles
    geom[_G_VBIAS] = vbias
    geom[_G_PROBE_LARGE] = 1 if tlbs.probe_large[0] else 0
    geom[_G_MODE] = {"plain": 0, "asap": 1, "victima": 2}[mode]

    # The MSHR file rides along in every mode (the kernel has the merge
    # branch, and ASAP replays allocations into it): [count, lines...,
    # completion times...], insertion-ordered like the scalar dict.
    mshrs = hierarchy.mshrs
    mshr_cap = int(mshrs.capacity)
    geom[_G_MSHR_CAP] = mshr_cap
    mshr_arr = np.zeros(1 + 2 * max(mshr_cap, 1), dtype=np.int64)
    inflight = list(mshrs._inflight.items())
    mshr_arr[0] = len(inflight)
    for i, (line, when) in enumerate(inflight):
        mshr_arr[1 + i] = line
        mshr_arr[1 + mshr_cap + i] = when

    k = np.zeros(_COUNTER_SLOTS, dtype=np.int64)
    k[K_TH] = tlbs.stats.hits
    k[K_TM] = tlbs.stats.misses
    k[K_L1H] = tlbs.l1_hits
    k[K_L2H] = tlbs.l2_hits
    k[K_LS_H] = l1t.stats.hits
    k[K_LS_M] = l1t.stats.misses
    k[K_US_H] = l2t.stats.hits
    k[K_US_M] = l2t.stats.misses
    k[K_PWC_PROBES] = pwc.probes
    k[K_PWC_HITS] = pwc.hits
    k[K_P2_H] = p2.stats.hits
    k[K_P2_M] = p2.stats.misses
    k[K_P3_H] = p3.stats.hits
    k[K_P3_M] = p3.stats.misses
    k[K_P4_H] = p4.stats.hits
    k[K_P4_M] = p4.stats.misses
    k[K_WALKS] = walker.walks
    k[K_WALK_CYCLES] = walker.total_latency
    k[K_C1_H] = c1.stats.hits
    k[K_C1_M] = c1.stats.misses
    k[K_C1_E] = c1.stats.evictions
    k[K_C2_H] = c2.stats.hits
    k[K_C2_M] = c2.stats.misses
    k[K_C2_E] = c2.stats.evictions
    k[K_C3_H] = c3.stats.hits
    k[K_C3_M] = c3.stats.misses
    k[K_C3_E] = c3.stats.evictions
    k[K_SRV_L1] = hierarchy.served["L1"]
    k[K_SRV_L2] = hierarchy.served["L2"]
    k[K_SRV_L3] = hierarchy.served["L3"]
    k[K_SRV_MEM] = hierarchy.served["MEM"]
    k[K_H_PF_ISSUED] = hierarchy.prefetches_issued
    k[K_H_PF_DROP] = hierarchy.prefetches_dropped
    k[K_MSHR_ALLOC] = mshrs.allocations
    k[K_MSHR_REJ] = mshrs.rejections
    k[K_MSHR_MERGE] = mshrs.merges

    prefetcher = None
    asap_ctx = None
    if mode == "asap":
        prefetcher = sim.scheme.walk_start_hook().__self__
        geom[_G_REQ_MSHR] = 1 if prefetcher.require_mshr else 0
        geom[_G_PF_N] = len(prefetcher.levels)
        for s, level in enumerate(prefetcher.levels):
            geom[_G_PF_L + s] = level
        registers = prefetcher.registers
        asap_ctx = (registers._starts, registers._descriptors,
                    prefetcher.levels, prefetcher.hole_checker)
        k[K_RR_H] = registers.hits
        k[K_RR_M] = registers.misses
        k[K_PF_ISSUED] = prefetcher.stats.issued
        k[K_PF_USEFUL] = prefetcher.stats.useful
        k[K_PF_DROPNM] = prefetcher.stats.dropped_no_mshr
        k[K_PF_NODESC] = prefetcher.stats.no_descriptor
        k[K_PF_HOLE] = prefetcher.stats.wasted_on_hole

    vscheme = None
    if mode == "victima":
        vscheme = sim.scheme
        geom[_G_PROBE_LAT] = vscheme._probe_latency
        pool_cap = max(int(vscheme.max_parked), 1)
        geom[_G_PARK_MAX] = vscheme.max_parked
        hcap = 1 << max(6, (4 * pool_cap - 1).bit_length())
        geom[_G_PARK_HCAP] = hcap
        park_pool = np.full(4 * pool_cap, -1, dtype=np.int64)
        park_hash = np.full(hcap, -1, dtype=np.int64)
        park_meta = np.array([0, -1, -1, -1, 0], dtype=np.int64)
        parked = list(vscheme._parked.items())
        n_parked = len(parked)
        for i, (vpn, frame) in enumerate(parked):
            park_pool[4 * i] = vpn
            park_pool[4 * i + 1] = frame
            park_pool[4 * i + 2] = i - 1
            park_pool[4 * i + 3] = i + 1 if i + 1 < n_parked else -1
        for i in range(n_parked, pool_cap):
            park_pool[4 * i + 3] = i + 1 if i + 1 < pool_cap else -1
        park_meta[0] = n_parked
        park_meta[1] = 0 if n_parked else -1
        park_meta[2] = n_parked - 1 if n_parked else -1
        park_meta[3] = n_parked if n_parked < pool_cap else -1
        k[K_V_PARKED] = vscheme.stats["parked"]
        k[K_V_PROBE_H] = vscheme.stats["probe_hits"]
        k[K_V_PROBE_M] = vscheme.stats["probe_misses"]
        k[K_V_LOST] = vscheme.stats["parked_lost_to_data"]
    else:
        park_pool = np.zeros(4, dtype=np.int64)
        park_hash = np.zeros(1, dtype=np.int64)
        park_meta = np.zeros(5, dtype=np.int64)

    carry_arr = np.zeros(_CARRY_SLOTS, dtype=np.int64)
    (carry_arr[_CAR_NOW], measuring, carry_arr[_CAR_ACC],
     carry_arr[_CAR_DATA_C], carry_arr[_CAR_WALK_C],
     carry_arr[_CAR_WALK_COUNT], carry_arr[_CAR_L1_BASE],
     carry_arr[_CAR_L2_BASE]) = carry
    carry_arr[_CAR_MEASURING] = 1 if measuring else 0
    service = np.zeros(_SERVICE_SLOTS, dtype=np.int64)

    state = sim._columnar_paths
    if state is None:
        state = sim._columnar_paths = _PathTable()

    arrays = {
        "t_tags": _as_array(l1t.tags), "t_frames": _as_array(l1t.frames),
        "t_sizes": _as_array(l1t.sizes),
        "u_tags": _as_array(l2t.tags), "u_frames": _as_array(l2t.frames),
        "u_sizes": _as_array(l2t.sizes),
        "p2_tags": _as_array(p2.tags), "p2_frames": _as_array(p2.frames),
        "p2_sizes": _as_array(p2.sizes),
        "p3_tags": _as_array(p3.tags), "p3_frames": _as_array(p3.frames),
        "p3_sizes": _as_array(p3.sizes),
        "p4_tags": _as_array(p4.tags), "p4_frames": _as_array(p4.frames),
        "p4_sizes": _as_array(p4.sizes),
        "c1_lines": _as_array(c1.lines), "c1_sizes": _as_array(c1.sizes),
        "c2_lines": _as_array(c2.lines), "c2_sizes": _as_array(c2.sizes),
        "c3_lines": _as_array(c3.lines), "c3_sizes": _as_array(c3.sizes),
    }

    def ptr(arr: np.ndarray):
        return ffi.cast("long long *", arr.ctypes.data)

    struct_ptrs = [ptr(arrays[name]) for name in (
        "t_tags", "t_frames", "t_sizes", "u_tags", "u_frames", "u_sizes",
        "p2_tags", "p2_frames", "p2_sizes", "p3_tags", "p3_frames",
        "p3_sizes", "p4_tags", "p4_frames", "p4_sizes",
        "c1_lines", "c1_sizes", "c2_lines", "c2_sizes",
        "c3_lines", "c3_sizes")]

    if vscheme is not None:
        lib.col_park_seed(ptr(park_meta), ptr(park_hash), ptr(park_pool),
                          int(geom[_G_PARK_HCAP]))

    try:
        chunk_base = 0
        for chunk in chunks:
            addresses = kernel_chunk(chunk)
            n = addresses.size
            if n == 0:
                continue
            vpns = (addresses >> 12) | vbias
            rowidx = np.ascontiguousarray(
                state.rows_for(vpns, sim.process, vbias, asap_ctx))
            local_warmup = min(max(warmup - chunk_base, 0), n)
            lib.col_run_chunk(
                ptr(addresses), n, local_warmup,
                1 if collect_service else 0,
                ptr(rowidx), ptr(state.paths),
                ptr(carry_arr), ptr(k), ptr(geom), ptr(service),
                *struct_ptrs,
                ptr(mshr_arr), ptr(park_meta), ptr(park_hash),
                ptr(park_pool))
            chunk_base += n
            if obs_probe is not None:
                obs_probe.sample(
                    chunk_base,
                    now=int(carry_arr[_CAR_NOW]),
                    accesses=int(carry_arr[_CAR_ACC]),
                    data_cycles=int(carry_arr[_CAR_DATA_C]),
                    walk_cycles=int(carry_arr[_CAR_WALK_C]),
                    walks=int(carry_arr[_CAR_WALK_COUNT]),
                    tlb_l1_hits=int(k[K_L1H]),
                    tlb_l2_hits=int(k[K_L2H]),
                    tlb_misses=int(k[K_TM]))
    finally:
        # Write every structure image and counter back to its owner, so
        # post-run state is indistinguishable from a scalar run.
        l1t.tags[:] = arrays["t_tags"].tolist()
        l1t.frames[:] = arrays["t_frames"].tolist()
        l1t.sizes[:] = arrays["t_sizes"].tolist()
        l2t.tags[:] = arrays["u_tags"].tolist()
        l2t.frames[:] = arrays["u_frames"].tolist()
        l2t.sizes[:] = arrays["u_sizes"].tolist()
        p2.tags[:] = arrays["p2_tags"].tolist()
        p2.frames[:] = arrays["p2_frames"].tolist()
        p2.sizes[:] = arrays["p2_sizes"].tolist()
        p3.tags[:] = arrays["p3_tags"].tolist()
        p3.frames[:] = arrays["p3_frames"].tolist()
        p3.sizes[:] = arrays["p3_sizes"].tolist()
        p4.tags[:] = arrays["p4_tags"].tolist()
        p4.frames[:] = arrays["p4_frames"].tolist()
        p4.sizes[:] = arrays["p4_sizes"].tolist()
        c1.lines[:] = arrays["c1_lines"].tolist()
        c1.sizes[:] = arrays["c1_sizes"].tolist()
        c2.lines[:] = arrays["c2_lines"].tolist()
        c2.sizes[:] = arrays["c2_sizes"].tolist()
        c3.lines[:] = arrays["c3_lines"].tolist()
        c3.sizes[:] = arrays["c3_sizes"].tolist()

        tlbs.stats.hits = int(k[K_TH])
        tlbs.stats.misses = int(k[K_TM])
        tlbs.l1_hits = int(k[K_L1H])
        tlbs.l2_hits = int(k[K_L2H])
        l1t.stats.hits = int(k[K_LS_H])
        l1t.stats.misses = int(k[K_LS_M])
        l2t.stats.hits = int(k[K_US_H])
        l2t.stats.misses = int(k[K_US_M])
        pwc.probes = int(k[K_PWC_PROBES])
        pwc.hits = int(k[K_PWC_HITS])
        p2.stats.hits = int(k[K_P2_H])
        p2.stats.misses = int(k[K_P2_M])
        p3.stats.hits = int(k[K_P3_H])
        p3.stats.misses = int(k[K_P3_M])
        p4.stats.hits = int(k[K_P4_H])
        p4.stats.misses = int(k[K_P4_M])
        walker.walks = int(k[K_WALKS])
        walker.total_latency = int(k[K_WALK_CYCLES])
        c1.stats.hits = int(k[K_C1_H])
        c1.stats.misses = int(k[K_C1_M])
        c1.stats.evictions = int(k[K_C1_E])
        c2.stats.hits = int(k[K_C2_H])
        c2.stats.misses = int(k[K_C2_M])
        c2.stats.evictions = int(k[K_C2_E])
        c3.stats.hits = int(k[K_C3_H])
        c3.stats.misses = int(k[K_C3_M])
        c3.stats.evictions = int(k[K_C3_E])
        hierarchy.served["L1"] = int(k[K_SRV_L1])
        hierarchy.served["L2"] = int(k[K_SRV_L2])
        hierarchy.served["L3"] = int(k[K_SRV_L3])
        hierarchy.served["MEM"] = int(k[K_SRV_MEM])
        hierarchy.prefetches_issued = int(k[K_H_PF_ISSUED])
        hierarchy.prefetches_dropped = int(k[K_H_PF_DROP])
        mshrs.allocations = int(k[K_MSHR_ALLOC])
        mshrs.rejections = int(k[K_MSHR_REJ])
        mshrs.merges = int(k[K_MSHR_MERGE])
        mshrs._inflight.clear()
        for i in range(int(mshr_arr[0])):
            mshrs._inflight[int(mshr_arr[1 + i])] = int(
                mshr_arr[1 + mshr_cap + i])

        if prefetcher is not None:
            registers = prefetcher.registers
            registers.hits = int(k[K_RR_H])
            registers.misses = int(k[K_RR_M])
            prefetcher.stats.issued = int(k[K_PF_ISSUED])
            prefetcher.stats.useful = int(k[K_PF_USEFUL])
            prefetcher.stats.dropped_no_mshr = int(k[K_PF_DROPNM])
            prefetcher.stats.no_descriptor = int(k[K_PF_NODESC])
            prefetcher.stats.wasted_on_hole = int(k[K_PF_HOLE])

        if vscheme is not None:
            vscheme.stats["parked"] = int(k[K_V_PARKED])
            vscheme.stats["probe_hits"] = int(k[K_V_PROBE_H])
            vscheme.stats["probe_misses"] = int(k[K_V_PROBE_M])
            vscheme.stats["parked_lost_to_data"] = int(k[K_V_LOST])
            parked = vscheme._parked
            parked.clear()
            idx = int(park_meta[1])
            while idx >= 0:
                parked[int(park_pool[4 * idx])] = int(
                    park_pool[4 * idx + 1])
                idx = int(park_pool[4 * idx + 3])

        if collect_service:
            # Root-first (level 4 down) so dict insertion order matches
            # the scalar recorder's walk order.
            counts = stats.service._counts
            for row in range(3, -1, -1):
                level = row + 1
                for col, label in enumerate(_SERVICE_LABELS):
                    value = int(service[row * 6 + col])
                    if value:
                        bucket = counts.setdefault(level, {})
                        bucket[label] = bucket.get(label, 0) + value

    return (int(carry_arr[_CAR_NOW]), bool(carry_arr[_CAR_MEASURING]),
            int(carry_arr[_CAR_ACC]), int(carry_arr[_CAR_DATA_C]),
            int(carry_arr[_CAR_WALK_C]), int(carry_arr[_CAR_WALK_COUNT]),
            int(carry_arr[_CAR_L1_BASE]), int(carry_arr[_CAR_L2_BASE]))
