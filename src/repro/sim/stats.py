"""Simulation statistics: the paper's metrics in one place.

* average page-walk latency (Figures 3, 8, 10, 12 — the primary metric),
* fraction of execution time spent in page walks (Figure 2, Table 6),
* TLB MPKI (Table 7),
* total page-walk cycles (Figure 11),
* per-PT-level service distribution over the memory hierarchy (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Service labels in presentation order (Figure 9's x-axis).
SERVICE_LABELS = ("PWC", "L1", "MSHR", "L2", "L3", "MEM")


class ServiceDistribution:
    """Counts of which hierarchy level served each PT-level request.

    Plain nested dicts (no defaultdict factories) so instances pickle
    cleanly across the runtime's worker processes and result cache.
    """

    def __init__(self) -> None:
        self._counts: dict[object, dict[str, int]] = {}

    def record(self, pt_level: object, served_by: str) -> None:
        per_level = self._counts.setdefault(pt_level, {})
        per_level[served_by] = per_level.get(served_by, 0) + 1

    def record_walk(self, records: list[tuple[object, str]]) -> None:
        for pt_level, served_by in records:
            self.record(pt_level, served_by)

    def levels(self) -> list[object]:
        return sorted(self._counts, key=str)

    def fractions(self, pt_level: object) -> dict[str, float]:
        counts = self._counts.get(pt_level)
        if not counts:
            return {}
        total = sum(counts.values())
        return {label: counts.get(label, 0) / total
                for label in SERVICE_LABELS if label in counts}

    def count(self, pt_level: object, served_by: str) -> int:
        return self._counts.get(pt_level, {}).get(served_by, 0)

    def total(self, pt_level: object) -> int:
        return sum(self._counts.get(pt_level, {}).values())

    def __eq__(self, other: object) -> bool:
        """Value equality on the counts (dict ``==`` — insertion order
        is presentation detail, never part of a result's identity), so
        two SimStats compare equal exactly when every metric agrees —
        what the scalar/columnar differential suite asserts."""
        if not isinstance(other, ServiceDistribution):
            return NotImplemented
        return self._counts == other._counts

    __hash__ = None  # mutable counts; never a dict key


@dataclass
class SimStats:
    """Aggregated outcome of one simulation run."""

    accesses: int = 0
    cycles: int = 0
    base_cycles: int = 0
    data_cycles: int = 0
    #: Total translation-stall cycles: page walks plus whatever else the
    #: active scheme put on the critical path (Victima probe hits,
    #: Revelator speculation/squash).  Identical to walk time for
    #: baseline/ASAP, which only ever stall on walks.
    walk_cycles: int = 0
    #: Page walks actually performed; probe hits that short-circuit the
    #: walk (Victima) are counted in ``scheme_stats``, not here.
    walks: int = 0
    tlb_l1_hits: int = 0
    tlb_l2_hits: int = 0
    prefetches_issued: int = 0
    prefetches_useful: int = 0
    prefetches_dropped: int = 0
    service: ServiceDistribution = field(default_factory=ServiceDistribution)
    #: Per-scheme counters published by the run's translation scheme
    #: (`repro.schemes`): e.g. Victima's probe_hits, Revelator's
    #: correct/mispredict split.  Empty for plain baseline runs.
    scheme_stats: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def avg_walk_latency(self) -> float:
        """Average page-walk latency in cycles — the headline metric.

        For probe-based schemes (Victima) the numerator also carries
        the probe-hit stalls whose walks never ran, so this reads as
        *translation cycles per walk performed*; rank such schemes by
        :attr:`walk_fraction` instead (what ``repro compare`` does).
        """
        if not self.walks:
            return 0.0
        return self.walk_cycles / self.walks

    @property
    def walk_fraction(self) -> float:
        """Fraction of execution cycles spent in page walks (Figure 2)."""
        if not self.cycles:
            return 0.0
        return self.walk_cycles / self.cycles

    @property
    def mpki(self) -> float:
        """TLB misses (walks) per thousand memory accesses."""
        if not self.accesses:
            return 0.0
        return 1000.0 * self.walks / self.accesses

    @property
    def tlb_miss_ratio(self) -> float:
        if not self.accesses:
            return 0.0
        return self.walks / self.accesses

    @property
    def l2_tlb_miss_ratio(self) -> float:
        """Misses / L2-TLB lookups (the 6-85% figure quoted in §4)."""
        looked_up = self.tlb_l2_hits + self.walks
        if not looked_up:
            return 0.0
        return self.walks / looked_up

    def summary(self) -> str:
        return (
            f"accesses={self.accesses} walks={self.walks} "
            f"avg_walk={self.avg_walk_latency:.1f}cy "
            f"walk_fraction={100 * self.walk_fraction:.1f}% "
            f"mpki={self.mpki:.1f}"
        )
