"""First-touch ordering models for demand paging."""

from __future__ import annotations

import numpy as np


def first_touch_order(vpns: np.ndarray, order: str) -> np.ndarray:
    """The order in which the workload's pages were first faulted in.

    "sequential": VA order (start-up array/graph loading).
    "chunked": 256-page chunks in first-touch order, VA order inside each
    chunk (slab/arena allocators).
    "demand": pure first-touch (request) order.
    """
    if order == "sequential":
        return np.unique(vpns)
    _, first_index = np.unique(vpns, return_index=True)
    demand = vpns[np.sort(first_index)]
    if order == "demand":
        return demand
    if order != "chunked":
        raise ValueError(f"unknown init order {order!r}")
    chunks = demand >> 8
    _, chunk_first = np.unique(chunks, return_index=True)
    pieces = []
    for index in np.sort(chunk_first):
        chunk = chunks[index]
        pieces.append(np.sort(demand[chunks == chunk]))
    if not pieces:  # empty trace: nothing was ever touched
        return demand
    return np.concatenate(pieces)
