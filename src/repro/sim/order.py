"""First-touch ordering models for demand paging.

Both entry points produce the same orders; the streaming variant folds
the trace one chunk at a time so population of a 10M-record streamed
trace needs memory proportional to the *touched page count* (inherent
state — the page table holds it anyway), never the trace length.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def first_touch_order(vpns: np.ndarray, order: str) -> np.ndarray:
    """The order in which the workload's pages were first faulted in.

    "sequential": VA order (start-up array/graph loading).
    "chunked": 256-page chunks in first-touch order, VA order inside each
    chunk (slab/arena allocators).
    "demand": pure first-touch (request) order.
    """
    return streaming_first_touch_order((vpns,), order)


def streaming_first_touch_order(
    chunks: Iterable[np.ndarray], order: str
) -> np.ndarray:
    """:func:`first_touch_order` over a chunk iterator.

    Identical output for identical records whatever the chunking — the
    per-chunk folds only ever keep first occurrences, and first
    occurrence across a concatenation is first occurrence in the first
    chunk that holds one.
    """
    if order == "sequential":
        unique: np.ndarray | None = None
        for chunk in chunks:
            piece = np.unique(chunk)
            unique = piece if unique is None else np.unique(
                np.concatenate([unique, piece]))
        if unique is None:
            return np.empty(0, dtype=np.int64)
        return unique
    if order not in ("demand", "chunked"):
        raise ValueError(f"unknown init order {order!r}")
    seen = np.empty(0, dtype=np.int64)  # kept sorted
    pieces: list[np.ndarray] = []
    for chunk in chunks:
        _, first_index = np.unique(chunk, return_index=True)
        chunk_demand = chunk[np.sort(first_index)]
        if seen.size:
            slot = np.searchsorted(seen, chunk_demand)
            known = seen[np.minimum(slot, seen.size - 1)] == chunk_demand
            fresh = chunk_demand[~known]
        else:
            fresh = chunk_demand
        if fresh.size:
            fresh_sorted = np.sort(fresh)
            seen = np.insert(seen, np.searchsorted(seen, fresh_sorted),
                             fresh_sorted)
            pieces.append(fresh.astype(np.int64, copy=False))
    demand = (np.concatenate(pieces) if pieces
              else np.empty(0, dtype=np.int64))
    if order == "demand":
        return demand
    return _chunk_regroup(demand)


def _chunk_regroup(demand: np.ndarray) -> np.ndarray:
    """The "chunked" model: 256-page chunks in first-touch order, VA
    order inside each chunk."""
    chunks = demand >> 8
    uniq, chunk_first, inverse = np.unique(
        chunks, return_index=True, return_inverse=True)
    # Rank each 256-page chunk by when it was first touched, then one
    # stable two-key sort: primary = chunk first-touch rank, secondary =
    # VA.  Same output as sorting each chunk's pages and concatenating
    # in first-touch order, without the per-chunk boolean scans.
    rank = np.empty(uniq.size, dtype=np.int64)
    rank[np.argsort(chunk_first, kind="stable")] = np.arange(uniq.size)
    return demand[np.lexsort((demand, rank[inverse]))]
