"""The native (1D) trace-driven simulator.

Per trace record (one memory operation):

1. the TLB hierarchy is probed; a miss hands control to the configured
   translation scheme (`repro.schemes`),
2. the scheme may *probe* an alternative translation source before
   walking (Victima's cache-parked entries), *race* the walk with
   prefetches (ASAP, §3.4), or *speculate* and verify (Revelator),
3. the walker prices the walk against the shared cache hierarchy,
4. the data access itself goes through the same hierarchy,
5. an optional SMT co-runner issues one random access (§4).

Execution time accumulates ``base + walk + data`` cycles per record, giving
the Figure 2 / Table 6 fractions; walks are pre-faulted (steady state — the
paper measures long-running warmed-up services), so page-fault handling
never pollutes walk-latency measurements.

Scheme dispatch is hoisted out of the record loop: each hook is bound
once per run and a scheme that opts out contributes ``None``, so the
baseline costs exactly the ``is not None`` tests the pre-scheme code
paid for its optional ASAP prefetcher (tracked by
``tools/bench_schemes.py``).
"""

from __future__ import annotations

import gc

import numpy as np

from repro.core.config import AsapConfig, BASELINE
from repro.core.prefetcher import AsapPrefetcher
from repro.core.range_registers import VmaDescriptor
from repro.kernelsim.process import ProcessAddressSpace
from repro.mem.hierarchy import CacheHierarchy
from repro.obs.probe import SimProbe
from repro.pagetable.constants import level_shift
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.walker import PWC_LABEL, PageWalker, WalkOutcome
from repro.params import DEFAULT_MACHINE, MachineParams
from repro.schemes import SchemeSpec, build_scheme
from repro.sim.order import streaming_first_touch_order
from repro.sim.stats import SimStats
from repro.traces.source import iter_trace_chunks
from repro.tlb.hierarchy import TlbHierarchy
from repro.tlb.tlb import EMPTY, asid_bias
from repro.workloads.corunner import Corunner


def detect_runs(trace: np.ndarray,
                n_records: int) -> tuple[list[int], list[int]]:
    """Vectorised same-cache-line-block run detection.

    Returns ``(starts, counts)``: the index of each run's first record
    and the run's length, where a *run* is a maximal stretch of records
    sharing one cache-line block (``va >> 6``) — hence one page and one
    data line.  Shared by both simulators' batched front-ends.
    """
    if not n_records:
        return [], []
    blocks = trace >> 6
    change = np.empty(n_records, dtype=bool)
    change[0] = True
    np.not_equal(blocks[1:], blocks[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    return starts.tolist(), np.diff(starts, append=n_records).tolist()


def drive_batched(run_starts, run_counts, handle, bulk, scalar_only):
    """Shared batched-loop orchestration for both simulators.

    ``handle(index)`` simulates one record through the scalar pipeline
    and returns its vpn; ``bulk(vpn, first_index, repeats)`` costs a
    run's repeat records in one step (handling the warmup-boundary
    split itself).  With ``scalar_only`` (co-runner present: it touches
    the shared caches after every record) repeats replay through
    ``handle`` instead.
    """
    for index, count in zip(run_starts, run_counts):
        vpn = handle(index)
        if count == 1:
            continue
        if scalar_only:
            for repeat_index in range(index + 1, index + count):
                handle(repeat_index)
        else:
            bulk(vpn, index + 1, count - 1)


def build_native_descriptors(
    process: ProcessAddressSpace, max_count: int
) -> list[VmaDescriptor]:
    """The descriptors the OS would load for this process: its largest
    VMAs, with bases from the ASAP PT layout."""
    layout = process.asap_layout
    if layout is None:
        return []
    descriptors = []
    for vma in process.vmas.largest(max_count):
        bases = layout.descriptor_bases(vma)
        if bases:
            descriptors.append(
                VmaDescriptor(
                    start=vma.start,
                    end=vma.end,
                    level_bases=tuple(sorted(bases.items())),
                )
            )
    return descriptors


class NativeSimulation:
    """Drives one process's trace through the native machine model."""

    def __init__(
        self,
        process: ProcessAddressSpace,
        machine: MachineParams = DEFAULT_MACHINE,
        asap: AsapConfig = BASELINE,
        clustered_tlb: bool = False,
        infinite_tlb: bool = False,
        corunner: Corunner | None = None,
        scheme: SchemeSpec | None = None,
        hierarchy: CacheHierarchy | None = None,
        tlbs: TlbHierarchy | None = None,
        pwc: SplitPwc | None = None,
        walker: PageWalker | None = None,
        asid: int = 0,
        kernel: str = "scalar",
    ) -> None:
        """``hierarchy``/``tlbs``/``pwc``/``walker`` let the multi-tenant
        driver (`repro.sim.multitenant`) hand several per-process
        simulations one shared set of hardware structures; ``asid`` tags
        this process's translations within them (0 — the single-tenant
        default — changes nothing, bit for bit).  ``kernel`` selects the
        record-loop engine: ``"scalar"`` (the reference loop below) or
        ``"columnar"`` (the compiled chunk kernel of
        `repro.sim.columnar`, byte-identical by construction and by the
        differential suites; falls back to scalar when its
        preconditions or the C backend are missing)."""
        if asid and (clustered_tlb or infinite_tlb):
            raise ValueError(
                "ASID-tagged simulations do not compose with "
                "clustered/infinite TLBs")
        if kernel not in ("scalar", "columnar"):
            raise ValueError(f"unknown simulation kernel {kernel!r}")
        self.process = process
        self.machine = machine
        self.asap = asap
        self.clustered_tlb = clustered_tlb
        self.hierarchy = hierarchy or CacheHierarchy(machine.hierarchy)
        self.tlbs = tlbs or TlbHierarchy(
            machine.tlb, clustered=clustered_tlb, infinite=infinite_tlb
        )
        self.pwc = pwc or SplitPwc(machine.pwc,
                                   top_level=process.page_table.levels)
        self.walker = walker or PageWalker(self.hierarchy, self.pwc)
        self.corunner = corunner
        self.asid = asid
        self.kernel = kernel
        #: Per-vpn flattened walk paths (general loop / inlined sweep).
        #: Instance state so a run can be split into scheduler quanta
        #: without re-flattening, and so ``flush_translation_state`` can
        #: clear them coherently with the hardware structures.
        self._flat_paths: dict[int, tuple] = {}
        self._fast_paths: dict[int, tuple] = {}
        #: The columnar kernel's path-row cache (same role as the two
        #: dicts above, owned by `repro.sim.columnar`); lazily built.
        self._columnar_paths = None
        #: Set by AsapScheme.bind_native for introspection/back-compat.
        self.prefetcher: AsapPrefetcher | None = None
        self.scheme = build_scheme(scheme, asap)
        self.scheme.bind_native(self)

    # ------------------------------------------------------------------
    def flush_translation_state(self) -> None:
        """Flush *every* piece of cached translation state coherently.

        ``TlbHierarchy.flush()`` alone is not a safe mid-run flush: the
        page-walk caches, the in-flight translation-prefetch MSHRs, the
        simulator's per-vpn flattened walk paths and any scheme-cached
        translations (Victima's parked entries) would all survive it and
        keep serving stale translations.  This is the one entry point
        that restores every translation structure to its cold state (the
        shared data caches and all statistics counters are untouched);
        the multi-tenant scheduler's full-flush switch policy and any
        shootdown-like event must go through it.
        """
        self.tlbs.flush()
        self.pwc.flush()
        self.hierarchy.mshrs.drain()
        self.flush_private_translation_state()

    def flush_private_translation_state(self) -> None:
        """The per-process half of :meth:`flush_translation_state`: the
        flattened walk-path caches and the scheme's own translation
        state.  The multi-tenant scheduler calls this on the *other*
        tenants after flushing the shared hardware once through the
        active one."""
        self._flat_paths.clear()
        self._fast_paths.clear()
        if self._columnar_paths is not None:
            self._columnar_paths.clear()
        self.scheme.on_translation_flush()

    # ------------------------------------------------------------------
    def populate(self, trace, order: str = "sequential") -> int:
        """Pre-fault every page of the trace in first-touch order.

        ``trace`` is an ndarray or a :class:`~repro.traces.source.
        TraceSource`; the ordering folds it one execution chunk at a
        time, so populating a streamed trace needs memory proportional
        to the touched page count, not the trace length.

        In infinite-TLB mode (Table 6's "execution without TLB misses",
        the analog of the paper's libhugetlbfs trick) the translations are
        pre-installed too, so the measured run has no walks at all.
        """
        ordered = streaming_first_touch_order(
            (chunk >> 12 for chunk in iter_trace_chunks(trace)), order)
        faults = self.process.populate(ordered.tolist())
        if self.tlbs.infinite:
            for vpn in ordered.tolist():
                frame = self.process.frame_of(int(vpn))
                assert frame is not None
                self.tlbs.fill(int(vpn), frame)
        return faults

    # ------------------------------------------------------------------
    def _fast_native_sweep(
        self,
        addresses: list[int],
        warmup: int,
        collect_service: bool,
        stats: SimStats,
        carry: tuple,
    ) -> tuple:
        """The fully inlined record loop for the plain-pipeline case.

        Preconditions (checked by :meth:`run` before dispatching here):
        no scheme hooks, no L2-TLB evict hook, no co-runner, plain
        (non-clustered, finite) TLBs, a three-level PWC (4-level page
        table) and a chunk without same-block repeats.  That is exactly
        the baseline-radix configuration every figure sweep runs most,
        so this path pays for no generality at all: the L1 TLB probe,
        L2 S-TLB probe, PWC probe/insert, TLB fills and the MRU case of
        the cache access run inline on the flat arrays, and every shared
        counter is accumulated locally and flushed once at the end.

        ``addresses``/``warmup`` are chunk-local (the caller has already
        subtracted the global offset); ``carry`` is the run-wide loop
        state ``(now, measuring, acc, data_c, walk_c, walk_count,
        tlb_l1_base, tlb_l2_base)`` threaded through chunk after chunk
        and returned updated, so a chunk seam is invisible to the clock,
        the warmup baselines and every accumulator.

        It must remain *byte-equivalent* to the general loop in
        :meth:`run` — same stats, same final structure state.  The
        golden-parity suites (tests/test_fast_path.py,
        tests/test_traces.py) pin both paths and every chunking.
        """
        tlbs = self.tlbs
        l1t = tlbs.l1
        t_tags, t_frames, t_sizes = l1t.tags, l1t.frames, l1t.sizes
        t_stride, t_nsets = l1t.stride, l1t.num_sets
        l1_refill = l1t.fill
        probe_large = tlbs.probe_large[0]
        t_ways = l1t.ways
        u = tlbs.l2_plain
        u_tags, u_frames, u_sizes = u.tags, u.frames, u.sizes
        u_stride, u_nsets, u_ways = u.stride, u.num_sets, u.ways
        hierarchy = self.hierarchy
        access = hierarchy.access
        last_level = hierarchy.last_level
        c1 = hierarchy.l1
        c1_lines = c1.lines
        c1_stats = c1.stats
        c1_nsets, c1_stride = c1.num_sets, c1.stride
        lat1 = hierarchy.latency_of("L1")
        served = hierarchy.served
        walker = self.walker
        pwc = self.pwc
        pwc_latency = pwc.params.latency
        (_, p2), (_, p3), (_, p4) = pwc.view
        p2_tags, p2_frames, p2_sizes = p2.tags, p2.frames, p2.sizes
        p2_stride, p2_nsets, p2_ways = p2.stride, p2.num_sets, p2.ways
        p3_tags, p3_frames, p3_sizes = p3.tags, p3.frames, p3.sizes
        p3_stride, p3_nsets, p3_ways = p3.stride, p3.num_sets, p3.ways
        p4_tags, p4_frames, p4_sizes = p4.tags, p4.frames, p4.sizes
        p4_stride, p4_nsets, p4_ways = p4.stride, p4.num_sets, p4.ways
        s2, s3, s4 = (level_shift(level) for level, _ in pwc.view)
        flat_walk = self.process.flat_walk
        flat_paths = self._fast_paths
        #: ASID bias, hoisted: constant for the whole sweep (one OR per
        #: record; 0 in single-tenant runs leaves every tag unchanged).
        vbias = asid_bias(self.asid)
        base_cycles = self.machine.core.base_cycles
        record_service = stats.service.record_walk

        # Counters mirrored locally; initialised from (and flushed back
        # to) their owners so the observable end state matches the
        # general loop exactly.
        th, tm = tlbs.stats.hits, tlbs.stats.misses
        l1h, l2h = tlbs.l1_hits, tlbs.l2_hits
        ls_hits, ls_misses = l1t.stats.hits, l1t.stats.misses
        us_hits, us_misses = u.stats.hits, u.stats.misses
        pwc_probes, pwc_hits = pwc.probes, pwc.hits
        p2_h, p2_m = p2.stats.hits, p2.stats.misses
        p3_h, p3_m = p3.stats.hits, p3.stats.misses
        p4_h, p4_m = p4.stats.hits, p4.stats.misses
        walker_walks = walker.walks
        walker_cycles = walker.total_latency
        c1_mru = 0
        # Run-wide loop state, carried across chunks (see docstring).
        # The measurement baselines were snapshotted by :meth:`run` at
        # run start (current shared counters, not zero — a multi-tenant
        # segment must measure only its window) or at the warmup
        # boundary, whichever came last.
        (now, measuring, acc, data_c, walk_c, walk_count,
         tlb_l1_base, tlb_l2_base) = carry

        for index, va in enumerate(addresses):
            if not measuring and index >= warmup:
                measuring = True
                tlb_l1_base = l1h
                tlb_l2_base = l2h
            vpn = (va >> 12) | vbias
            translation = 0
            # --- L1 D-TLB probe, small then (optional) large tag -----
            tag = vpn << 1
            set_index = tag % t_nsets
            base = set_index * t_stride
            frame = None
            if t_tags[base] == tag:
                ls_hits += 1
                th += 1
                l1h += 1
                frame = t_frames[base]
            else:
                limit = base + t_sizes[set_index]
                t_tags[limit] = tag
                pos = t_tags.index(tag, base)
                t_tags[limit] = EMPTY
                if pos != limit:
                    ls_hits += 1
                    frame = t_frames[pos]
                    t_tags[base + 1:pos + 1] = t_tags[base:pos]
                    t_tags[base] = tag
                    t_frames[base + 1:pos + 1] = t_frames[base:pos]
                    t_frames[base] = frame
                    th += 1
                    l1h += 1
                else:
                    ls_misses += 1
                    if probe_large:
                        tag = ((vpn >> 9) << 1) | 1
                        set_index = tag % t_nsets
                        base = set_index * t_stride
                        limit = base + t_sizes[set_index]
                        t_tags[limit] = tag
                        pos = t_tags.index(tag, base)
                        t_tags[limit] = EMPTY
                        if pos != limit:
                            ls_hits += 1
                            frame = t_frames[pos]
                            if pos != base:
                                t_tags[base + 1:pos + 1] = t_tags[base:pos]
                                t_tags[base] = tag
                                t_frames[base + 1:pos + 1] = \
                                    t_frames[base:pos]
                                t_frames[base] = frame
                            th += 1
                            l1h += 1
                        else:
                            ls_misses += 1
            if frame is None:
                # --- L2 S-TLB probe, small then (optional) large tag -
                tag = vpn << 1
                set_index = tag % u_nsets
                base = set_index * u_stride
                limit = base + u_sizes[set_index]
                u_tags[limit] = tag
                pos = u_tags.index(tag, base)
                u_tags[limit] = EMPTY
                if pos != limit:
                    us_hits += 1
                    frame = u_frames[pos]
                    if pos != base:
                        u_tags[base + 1:pos + 1] = u_tags[base:pos]
                        u_tags[base] = tag
                        u_frames[base + 1:pos + 1] = u_frames[base:pos]
                        u_frames[base] = frame
                else:
                    us_misses += 1
                    if probe_large:
                        tag = ((vpn >> 9) << 1) | 1
                        set_index = tag % u_nsets
                        base = set_index * u_stride
                        limit = base + u_sizes[set_index]
                        u_tags[limit] = tag
                        pos = u_tags.index(tag, base)
                        u_tags[limit] = EMPTY
                        if pos != limit:
                            us_hits += 1
                            frame = u_frames[pos]
                            if pos != base:
                                u_tags[base + 1:pos + 1] = u_tags[base:pos]
                                u_tags[base] = tag
                                u_frames[base + 1:pos + 1] = \
                                    u_frames[base:pos]
                                u_frames[base] = frame
                        else:
                            us_misses += 1
                if frame is not None:
                    th += 1
                    l2h += 1
                    l1_refill(vpn << 1, frame)
                else:
                    tm += 1
                    # --- page walk (flat-path cache) -----------------
                    flat = flat_paths.get(vpn)
                    if flat is None:
                        lines, levels, pframe, leaf_level = flat_walk(va)
                        flat = (lines, levels, (va >> s2) | vbias,
                                (va >> s3) | vbias, (va >> s4) | vbias,
                                leaf_level, pframe, leaf_level >= 2)
                        flat_paths[vpn] = flat
                    (lines, levels, tg2, tg3, tg4, leaf_level, frame,
                     large) = flat
                    t = now + pwc_latency
                    pwc_probes += 1
                    records = [] if collect_service else None
                    # PWC probe: PL2, then PL3, then PL4.
                    skip_from = 0
                    set_index = tg2 % p2_nsets
                    base = set_index * p2_stride
                    if p2_tags[base] == tg2:
                        p2_h += 1
                        pwc_hits += 1
                        skip_from = 2
                    else:
                        limit = base + p2_sizes[set_index]
                        p2_tags[limit] = tg2
                        pos = p2_tags.index(tg2, base)
                        p2_tags[limit] = EMPTY
                        if pos != limit:
                            p2_h += 1
                            value = p2_frames[pos]
                            p2_tags[base + 1:pos + 1] = p2_tags[base:pos]
                            p2_tags[base] = tg2
                            p2_frames[base + 1:pos + 1] = p2_frames[base:pos]
                            p2_frames[base] = value
                            pwc_hits += 1
                            skip_from = 2
                        else:
                            p2_m += 1
                            set_index = tg3 % p3_nsets
                            base = set_index * p3_stride
                            if p3_tags[base] == tg3:
                                p3_h += 1
                                pwc_hits += 1
                                skip_from = 3
                            else:
                                limit = base + p3_sizes[set_index]
                                p3_tags[limit] = tg3
                                pos = p3_tags.index(tg3, base)
                                p3_tags[limit] = EMPTY
                                if pos != limit:
                                    p3_h += 1
                                    value = p3_frames[pos]
                                    p3_tags[base + 1:pos + 1] = \
                                        p3_tags[base:pos]
                                    p3_tags[base] = tg3
                                    p3_frames[base + 1:pos + 1] = \
                                        p3_frames[base:pos]
                                    p3_frames[base] = value
                                    pwc_hits += 1
                                    skip_from = 3
                                else:
                                    p3_m += 1
                                    set_index = tg4 % p4_nsets
                                    base = set_index * p4_stride
                                    if p4_tags[base] == tg4:
                                        p4_h += 1
                                        pwc_hits += 1
                                        skip_from = 4
                                    else:
                                        limit = base + p4_sizes[set_index]
                                        p4_tags[limit] = tg4
                                        pos = p4_tags.index(tg4, base)
                                        p4_tags[limit] = EMPTY
                                        if pos != limit:
                                            p4_h += 1
                                            value = p4_frames[pos]
                                            p4_tags[base + 1:pos + 1] = \
                                                p4_tags[base:pos]
                                            p4_tags[base] = tg4
                                            p4_frames[base + 1:pos + 1] = \
                                                p4_frames[base:pos]
                                            p4_frames[base] = value
                                            pwc_hits += 1
                                            skip_from = 4
                                        else:
                                            p4_m += 1
                    # Steps the PWC skipped: levels is (4, 3, 2[, 1])
                    # root-first, so the skipped prefix length is
                    # 5 - skip_from, never exceeding the step count.
                    if skip_from:
                        start = 5 - skip_from
                        if records is not None:
                            for i in range(start):
                                records.append((levels[i], PWC_LABEL))
                    else:
                        start = 0
                    for i in range(start, len(lines)):
                        line = lines[i]
                        cache_base = (line % c1_nsets) * c1_stride
                        if c1_lines[cache_base] == line:
                            c1_mru += 1
                            if records is not None:
                                records.append((levels[i], "L1"))
                            t += lat1
                        else:
                            latency = access(line, t)
                            if records is not None:
                                records.append((levels[i], last_level[0]))
                            t += latency
                    # PWC insert for the levels above the leaf.
                    if leaf_level == 1:
                        set_index = tg2 % p2_nsets
                        base = set_index * p2_stride
                        if p2_tags[base] == tg2:
                            p2_frames[base] = 1
                        else:
                            size = p2_sizes[set_index]
                            limit = base + size
                            p2_tags[limit] = tg2
                            pos = p2_tags.index(tg2, base)
                            p2_tags[limit] = EMPTY
                            if pos != limit:
                                p2_tags[base + 1:pos + 1] = p2_tags[base:pos]
                                p2_frames[base + 1:pos + 1] = \
                                    p2_frames[base:pos]
                            elif size >= p2_ways:
                                last = base + p2_ways - 1
                                p2_tags[base + 1:last + 1] = p2_tags[base:last]
                                p2_frames[base + 1:last + 1] = \
                                    p2_frames[base:last]
                            else:
                                p2_tags[base + 1:limit + 1] = \
                                    p2_tags[base:limit]
                                p2_frames[base + 1:limit + 1] = \
                                    p2_frames[base:limit]
                                p2_sizes[set_index] = size + 1
                            p2_tags[base] = tg2
                            p2_frames[base] = 1
                    set_index = tg3 % p3_nsets
                    base = set_index * p3_stride
                    if p3_tags[base] == tg3:
                        p3_frames[base] = 1
                    else:
                        size = p3_sizes[set_index]
                        limit = base + size
                        p3_tags[limit] = tg3
                        pos = p3_tags.index(tg3, base)
                        p3_tags[limit] = EMPTY
                        if pos != limit:
                            p3_tags[base + 1:pos + 1] = p3_tags[base:pos]
                            p3_frames[base + 1:pos + 1] = p3_frames[base:pos]
                        elif size >= p3_ways:
                            last = base + p3_ways - 1
                            p3_tags[base + 1:last + 1] = p3_tags[base:last]
                            p3_frames[base + 1:last + 1] = p3_frames[base:last]
                        else:
                            p3_tags[base + 1:limit + 1] = p3_tags[base:limit]
                            p3_frames[base + 1:limit + 1] = \
                                p3_frames[base:limit]
                            p3_sizes[set_index] = size + 1
                        p3_tags[base] = tg3
                        p3_frames[base] = 1
                    set_index = tg4 % p4_nsets
                    base = set_index * p4_stride
                    if p4_tags[base] == tg4:
                        p4_frames[base] = 1
                    else:
                        size = p4_sizes[set_index]
                        limit = base + size
                        p4_tags[limit] = tg4
                        pos = p4_tags.index(tg4, base)
                        p4_tags[limit] = EMPTY
                        if pos != limit:
                            p4_tags[base + 1:pos + 1] = p4_tags[base:pos]
                            p4_frames[base + 1:pos + 1] = p4_frames[base:pos]
                        elif size >= p4_ways:
                            last = base + p4_ways - 1
                            p4_tags[base + 1:last + 1] = p4_tags[base:last]
                            p4_frames[base + 1:last + 1] = p4_frames[base:last]
                        else:
                            p4_tags[base + 1:limit + 1] = p4_tags[base:limit]
                            p4_frames[base + 1:limit + 1] = \
                                p4_frames[base:limit]
                            p4_sizes[set_index] = size + 1
                        p4_tags[base] = tg4
                        p4_frames[base] = 1
                    translation = t - now
                    walker_walks += 1
                    walker_cycles += translation
                    # TLB fill (known absent after the full miss).
                    if large:
                        tlbs.fill(vpn, frame, large=True)
                    else:
                        tag = vpn << 1
                        set_index = tag % t_nsets
                        base = set_index * t_stride
                        size = t_sizes[set_index]
                        if size >= t_ways:
                            last = base + t_ways - 1
                            t_tags[base + 1:last + 1] = t_tags[base:last]
                            t_frames[base + 1:last + 1] = t_frames[base:last]
                        else:
                            limit = base + size
                            t_tags[base + 1:limit + 1] = t_tags[base:limit]
                            t_frames[base + 1:limit + 1] = t_frames[base:limit]
                            t_sizes[set_index] = size + 1
                        t_tags[base] = tag
                        t_frames[base] = frame
                        set_index = tag % u_nsets
                        base = set_index * u_stride
                        size = u_sizes[set_index]
                        if size >= u_ways:
                            last = base + u_ways - 1
                            u_tags[base + 1:last + 1] = u_tags[base:last]
                            u_frames[base + 1:last + 1] = u_frames[base:last]
                        else:
                            limit = base + size
                            u_tags[base + 1:limit + 1] = u_tags[base:limit]
                            u_frames[base + 1:limit + 1] = u_frames[base:limit]
                            u_sizes[set_index] = size + 1
                        u_tags[base] = tag
                        u_frames[base] = frame
                    if measuring:
                        walk_c += translation
                        walk_count += 1
                        if collect_service:
                            record_service(records)
            # --- data access ----------------------------------------
            line = (frame << 6) | ((va & 0xFFF) >> 6)
            cache_base = (line % c1_nsets) * c1_stride
            if c1_lines[cache_base] == line:
                c1_mru += 1
                data_latency = lat1
            else:
                data_latency = access(line, now + translation)
            now += base_cycles + translation + data_latency
            if measuring:
                acc += 1
                data_c += data_latency

        # Flush the local counters back to their owners.
        tlbs.stats.hits, tlbs.stats.misses = th, tm
        tlbs.l1_hits, tlbs.l2_hits = l1h, l2h
        l1t.stats.hits, l1t.stats.misses = ls_hits, ls_misses
        u.stats.hits, u.stats.misses = us_hits, us_misses
        pwc.probes, pwc.hits = pwc_probes, pwc_hits
        p2.stats.hits, p2.stats.misses = p2_h, p2_m
        p3.stats.hits, p3.stats.misses = p3_h, p3_m
        p4.stats.hits, p4.stats.misses = p4_h, p4_m
        walker.walks = walker_walks
        walker.total_latency = walker_cycles
        c1_stats.hits += c1_mru
        served["L1"] += c1_mru
        return (now, measuring, acc, data_c, walk_c, walk_count,
                tlb_l1_base, tlb_l2_base)

    # ------------------------------------------------------------------
    def run(
        self,
        trace,
        warmup: int = 0,
        populate: bool = True,
        collect_service: bool = True,
        init_order: str = "sequential",
    ) -> SimStats:
        """Simulate the trace; statistics cover post-warmup records only.

        ``trace`` is one ndarray (the historical monolithic case — a
        single execution chunk) or a
        :class:`~repro.traces.source.TraceSource` streaming execution
        chunks; peak memory follows the chunk size, never the record
        count.  All loop state — the clock, warmup baselines, statistics
        accumulators and the run-detection seam — carries across chunks
        inside this one call, so SimStats are byte-identical for every
        chunking of the same records (pinned by tests/test_traces.py).

        Each chunk is consumed as *runs* of records sharing one
        cache-line block (``va >> 6``), detected with one vectorized
        pass.  A run's first record goes through the full scalar
        pipeline; its repeats are guaranteed L1-TLB + L1-D hits (the
        first record left both at MRU and nothing else touches them
        mid-run), so they are costed in bulk — counter increments and
        ``count * (base + L1)`` cycles — with byte-identical statistics.
        A run that straddles a chunk seam is stitched the same way: the
        continuation records at the next chunk's head are bulk-costed
        against the carried vpn, exactly as if the seam were not there.
        Any record that can observe or change more state takes the
        scalar path: the first record of every run (and with it every
        TLB miss, scheme hook and fill), every record of a co-runner
        simulation (the co-runner perturbs the shared caches between
        records), and the warmup boundary (a bulk segment is split so
        the hit counters are snapshotted at exactly the record where
        measurement starts).

        Per-page walk state (step lines/levels, PWC tags, leaf geometry,
        cluster neighbours) is flattened once into ``flat_paths`` on the
        page's first walk and replayed from there afterwards — the page
        table cannot change mid-run, so the path is invariant; only the
        cache/PWC state it is priced against evolves.
        """
        #: Observation seam: ``None`` unless a recorder is active
        #: (``--obs``), in which case the run gets phase spans and one
        #: counter snapshot per chunk — all at chunk granularity, so
        #: statistics stay byte-identical (see repro.obs.probe).
        obs = SimProbe.create("native", warmup)
        if populate:
            if obs is not None:
                obs.phase_begin("populate")
            self.populate(trace, order=init_order)
            if obs is not None:
                obs.phase_end("populate")
        if self.corunner is not None:
            self.corunner.prefill(self.hierarchy)
        stats = SimStats()
        tlbs = self.tlbs
        hierarchy = self.hierarchy
        corunner = self.corunner
        clustered = self.clustered_tlb
        scheme = self.scheme
        probe = scheme.probe_hook()
        walk_start = scheme.walk_start_hook()
        walk_end = scheme.walk_end_hook()
        fill_hook = scheme.fill_hook()
        base_cycles = self.machine.core.base_cycles
        record_service = stats.service.record_walk
        lookup = tlbs.lookup
        tlb_fill = tlbs.fill_fast
        access = hierarchy.access
        walk_flat = self.walker.walk_flat
        flat_walk = self.process.flat_walk
        cluster_frames = self.process.cluster_frames
        need_records = collect_service or walk_end is not None
        l1_latency = hierarchy.latency_of("L1")
        step_cost = base_cycles + l1_latency
        pwc_shifts = tuple(level_shift(level) for level, _ in self.pwc.view)
        flat_paths = self._flat_paths
        #: ASID bias, hoisted once: ORed into the vpn (and the PWC tags
        #: baked into cached flat paths) so shared TLB/PWC structures keep
        #: tenants apart.  0 in single-tenant runs — a no-op bit for bit.
        vbias = asid_bias(self.asid)
        self.pwc.asid_bias = vbias
        tlbs.probe_large[0] = self.process.page_table.has_large_pages

        now = 0
        measuring = warmup == 0
        # Baselines snapshot the current shared counters so a
        # mid-sequence segment measures only its window.
        tlb_l1_base = tlbs.l1_hits if measuring else 0
        tlb_l2_base = tlbs.l2_hits if measuring else 0
        #: Local accumulators for the per-record statistics; flushed into
        #: ``stats`` once after the loop (base/total cycles are derived:
        #: every measured record contributes exactly ``base_cycles`` and
        #: its translation stall is exactly what walk_cycles collects).
        acc = data_c = walk_c = walk_count = 0
        #: Chunk cursor: ``addresses`` is rebound per execution chunk and
        #: ``chunk_base`` is the chunk's global record index, so the closures
        #: below always see the current chunk through the same cells.
        addresses: list[int] = []
        chunk_base = 0

        def handle(index: int) -> int:
            """One record (chunk-local ``index``) through the scalar
            pipeline; returns its vpn."""
            nonlocal now, measuring, tlb_l1_base, tlb_l2_base
            nonlocal acc, data_c, walk_c, walk_count
            va = addresses[index]
            if not measuring and chunk_base + index >= warmup:
                measuring = True
                tlb_l1_base = tlbs.l1_hits
                tlb_l2_base = tlbs.l2_hits
            vpn = (va >> 12) | vbias
            frame = lookup(vpn)
            translation = 0
            if frame is None:
                offset = 0
                if probe is not None:
                    frame, offset = probe(va, vpn, now)
                if frame is not None:
                    # Scheme probe hit: the walk is short-circuited and no
                    # walk outcome exists on this path (the pre-refactor
                    # loop left a stale one reachable in scope here).
                    translation = offset
                    tlb_fill(vpn, frame)
                    if fill_hook is not None:
                        fill_hook(vpn, frame)
                    if measuring:
                        walk_c += translation
                else:
                    flat = flat_paths.get(vpn)
                    if flat is None:
                        lines, levels, pframe, leaf_level = flat_walk(va)
                        flat = (
                            lines,
                            levels,
                            tuple((va >> shift) | vbias
                                  for shift in pwc_shifts),
                            leaf_level,
                            pframe,
                            leaf_level >= 2,
                            # vpn == raw vpn here: clustered TLBs are
                            # single-tenant only (ctor guard).
                            cluster_frames(vpn)
                            if clustered and leaf_level == 1 else None,
                        )
                        flat_paths[vpn] = flat
                    (lines, levels, pwc_tags, leaf_level, frame, large,
                     neighbours) = flat
                    prefetches = None
                    if walk_start is not None:
                        prefetches = walk_start(va, now + offset)
                    records = [] if need_records else None
                    latency = walk_flat(lines, levels, pwc_tags, leaf_level,
                                        now + offset, prefetches, records)
                    translation = offset + latency
                    if walk_end is not None:
                        translation = walk_end(
                            va, vpn, now, translation,
                            WalkOutcome(latency=latency, records=records))
                    tlb_fill(vpn, frame, large=large,
                             neighbour_frames=neighbours)
                    if fill_hook is not None:
                        fill_hook(vpn, frame)
                    if measuring:
                        walk_c += translation
                        walk_count += 1
                        if collect_service:
                            record_service(records)
            data_latency = access(((frame << 12) | (va & 0xFFF)) >> 6,
                                  now + translation)
            now += base_cycles + translation + data_latency
            if measuring:
                acc += 1
                data_c += data_latency
            if corunner is not None:
                corunner.step(hierarchy, now)
            return vpn

        def bulk(vpn, first_index, repeats):
            """Cost a run's repeat records (guaranteed L1-TLB/L1-D hits).

            ``first_index`` is chunk-local.  Unmeasured repeats advance
            state but not statistics; if the warmup boundary lands
            inside the run, the hit counters are snapshotted exactly
            there, like the scalar loop would.
            """
            nonlocal now, measuring, tlb_l1_base, tlb_l2_base, acc, data_c
            if not measuring:
                pre = warmup - chunk_base - first_index
                if pre >= repeats:
                    bulk_tlb(vpn, repeats)
                    bulk_l1(repeats)
                    now += step_cost * repeats
                    return
                if pre > 0:
                    bulk_tlb(vpn, pre)
                    bulk_l1(pre)
                    now += step_cost * pre
                    repeats -= pre
                measuring = True
                tlb_l1_base = tlbs.l1_hits
                tlb_l2_base = tlbs.l2_hits
            bulk_tlb(vpn, repeats)
            bulk_l1(repeats)
            now += step_cost * repeats
            acc += repeats
            data_c += l1_latency * repeats

        bulk_ok = corunner is None
        bulk_tlb = tlbs.bulk_hits
        bulk_l1 = hierarchy.bulk_l1_hits
        #: Static fast-sweep preconditions (per-chunk dispatch adds only
        #: the no-repeats check); see _fast_native_sweep's docstring.
        fast_ok = (bulk_ok and probe is None and walk_start is None
                   and walk_end is None and fill_hook is None
                   and tlbs.l2_evict_hook is None
                   and not tlbs.infinite and not clustered
                   and len(self.pwc.view) == 3)
        #: The execution-chunk stream; under observation it is re-cut at
        #: the warmup boundary and sample intervals (chunking-invariant,
        #: so statistics are unchanged — pinned by tests/test_traces.py).
        if obs is not None:
            obs.run_begin(kernel=self.kernel)
            chunk_stream = obs.chunks(iter_trace_chunks(trace))
        else:
            chunk_stream = iter_trace_chunks(trace)
        if self.kernel == "columnar":
            from repro.sim import columnar as _columnar

            mode = _columnar.engine_mode(self, fast_ok)
            if mode is not None:
                # Whole-chunk C engine (byte-identical to the loop
                # below; see repro.sim.columnar).  Covers the fast-sweep
                # configuration plus the compiled ASAP and Victima
                # state machines; falls back to scalar otherwise.
                (now, measuring, acc, data_c, walk_c, walk_count,
                 tlb_l1_base, tlb_l2_base) = _columnar.run_columnar(
                    self, chunk_stream, warmup,
                    collect_service, stats,
                    (now, measuring, acc, data_c, walk_c, walk_count,
                     tlb_l1_base, tlb_l2_base), obs_probe=obs,
                    mode=mode)
                stats.accesses = acc
                stats.base_cycles = acc * base_cycles
                stats.data_cycles = data_c
                stats.walk_cycles = walk_c
                stats.walks = walk_count
                stats.cycles = acc * base_cycles + data_c + walk_c
                stats.tlb_l1_hits = tlbs.l1_hits - tlb_l1_base
                stats.tlb_l2_hits = tlbs.l2_hits - tlb_l2_base
                scheme.finalize(stats)
                if obs is not None:
                    obs.run_end(stats)
                return stats
        #: Run-detection seam state: the cache-line block and (biased)
        #: vpn of the previous chunk's last record.  A chunk whose first
        #: record shares that block continues the carried run, and its
        #: head records are repeats — bulk-costed exactly as the
        #: monolithic loop would have costed them.
        prev_block = -1
        prev_vpn = 0
        # The loop allocates only short-lived tuples and the per-page
        # flat paths; pausing the cyclic collector for its duration saves
        # pointless generation-0 scans (restored even on error).
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for chunk in chunk_stream:
                n_records = len(chunk)
                if not n_records:
                    continue
                addresses = chunk.tolist()
                run_starts, run_counts = detect_runs(chunk, n_records)
                lead = 0
                if prev_block == addresses[0] >> 6:
                    lead = run_counts[0]
                    run_starts = run_starts[1:]
                    run_counts = run_counts[1:]
                    if bulk_ok:
                        bulk(prev_vpn, 0, lead)
                    else:
                        # Co-runner present: repeats replay through the
                        # scalar pipeline, seam or no seam.
                        for index in range(lead):
                            handle(index)
                prev_block = addresses[-1] >> 6
                prev_vpn = (addresses[-1] >> 12) | vbias
                if not run_starts:
                    chunk_base += n_records
                    if obs is not None:
                        obs.sample(chunk_base, now=now, accesses=acc,
                                   data_cycles=data_c, walk_cycles=walk_c,
                                   walks=walk_count,
                                   tlb_l1_hits=tlbs.l1_hits,
                                   tlb_l2_hits=tlbs.l2_hits,
                                   tlb_misses=tlbs.stats.misses)
                    continue
                if fast_ok and len(run_starts) == n_records - lead:
                    # The plain-pipeline case: hand the chunk's remaining
                    # records to the fully inlined sweep
                    # (byte-equivalent; see its docstring).
                    local = addresses[lead:] if lead else addresses
                    local_warmup = min(max(warmup - chunk_base - lead, 0),
                                       len(local))
                    (now, measuring, acc, data_c, walk_c, walk_count,
                     tlb_l1_base, tlb_l2_base) = self._fast_native_sweep(
                        local, local_warmup, collect_service, stats,
                        (now, measuring, acc, data_c, walk_c, walk_count,
                         tlb_l1_base, tlb_l2_base))
                elif bulk_ok and len(run_starts) == n_records - lead:
                    # No same-block repeats in the chunk: scalar sweep.
                    for index in range(lead, n_records):
                        handle(index)
                else:
                    drive_batched(run_starts, run_counts, handle, bulk,
                                  scalar_only=not bulk_ok)
                chunk_base += n_records
                # Counter owners are current here: the scalar paths
                # update them per record and the fast sweep flushes its
                # mirrors before returning.
                if obs is not None:
                    obs.sample(chunk_base, now=now, accesses=acc,
                               data_cycles=data_c, walk_cycles=walk_c,
                               walks=walk_count,
                               tlb_l1_hits=tlbs.l1_hits,
                               tlb_l2_hits=tlbs.l2_hits,
                               tlb_misses=tlbs.stats.misses)
        finally:
            if gc_was_enabled:
                gc.enable()
        stats.accesses = acc
        stats.base_cycles = acc * base_cycles
        stats.data_cycles = data_c
        stats.walk_cycles = walk_c
        stats.walks = walk_count
        stats.cycles = acc * base_cycles + data_c + walk_c
        stats.tlb_l1_hits = tlbs.l1_hits - tlb_l1_base
        stats.tlb_l2_hits = tlbs.l2_hits - tlb_l2_base
        scheme.finalize(stats)
        if obs is not None:
            obs.run_end(stats)
        return stats
