"""The native (1D) trace-driven simulator.

Per trace record (one memory operation):

1. the TLB hierarchy is probed; a miss hands control to the configured
   translation scheme (`repro.schemes`),
2. the scheme may *probe* an alternative translation source before
   walking (Victima's cache-parked entries), *race* the walk with
   prefetches (ASAP, §3.4), or *speculate* and verify (Revelator),
3. the walker prices the walk against the shared cache hierarchy,
4. the data access itself goes through the same hierarchy,
5. an optional SMT co-runner issues one random access (§4).

Execution time accumulates ``base + walk + data`` cycles per record, giving
the Figure 2 / Table 6 fractions; walks are pre-faulted (steady state — the
paper measures long-running warmed-up services), so page-fault handling
never pollutes walk-latency measurements.

Scheme dispatch is hoisted out of the record loop: each hook is bound
once per run and a scheme that opts out contributes ``None``, so the
baseline costs exactly the ``is not None`` tests the pre-scheme code
paid for its optional ASAP prefetcher (tracked by
``tools/bench_schemes.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import AsapConfig, BASELINE
from repro.core.prefetcher import AsapPrefetcher
from repro.core.range_registers import VmaDescriptor
from repro.kernelsim.process import ProcessAddressSpace
from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.walker import PageWalker
from repro.params import DEFAULT_MACHINE, MachineParams
from repro.schemes import SchemeSpec, build_scheme
from repro.sim.order import first_touch_order
from repro.sim.stats import SimStats
from repro.tlb.hierarchy import TlbHierarchy
from repro.workloads.corunner import Corunner


def build_native_descriptors(
    process: ProcessAddressSpace, max_count: int
) -> list[VmaDescriptor]:
    """The descriptors the OS would load for this process: its largest
    VMAs, with bases from the ASAP PT layout."""
    layout = process.asap_layout
    if layout is None:
        return []
    descriptors = []
    for vma in process.vmas.largest(max_count):
        bases = layout.descriptor_bases(vma)
        if bases:
            descriptors.append(
                VmaDescriptor(
                    start=vma.start,
                    end=vma.end,
                    level_bases=tuple(sorted(bases.items())),
                )
            )
    return descriptors


class NativeSimulation:
    """Drives one process's trace through the native machine model."""

    def __init__(
        self,
        process: ProcessAddressSpace,
        machine: MachineParams = DEFAULT_MACHINE,
        asap: AsapConfig = BASELINE,
        clustered_tlb: bool = False,
        infinite_tlb: bool = False,
        corunner: Corunner | None = None,
        scheme: SchemeSpec | None = None,
    ) -> None:
        self.process = process
        self.machine = machine
        self.asap = asap
        self.clustered_tlb = clustered_tlb
        self.hierarchy = CacheHierarchy(machine.hierarchy)
        self.tlbs = TlbHierarchy(
            machine.tlb, clustered=clustered_tlb, infinite=infinite_tlb
        )
        self.pwc = SplitPwc(machine.pwc,
                            top_level=process.page_table.levels)
        self.walker = PageWalker(self.hierarchy, self.pwc)
        self.corunner = corunner
        #: Set by AsapScheme.bind_native for introspection/back-compat.
        self.prefetcher: AsapPrefetcher | None = None
        self.scheme = build_scheme(scheme, asap)
        self.scheme.bind_native(self)

    # ------------------------------------------------------------------
    def populate(self, trace: np.ndarray, order: str = "sequential") -> int:
        """Pre-fault every page of the trace in first-touch order.

        In infinite-TLB mode (Table 6's "execution without TLB misses",
        the analog of the paper's libhugetlbfs trick) the translations are
        pre-installed too, so the measured run has no walks at all.
        """
        vpns = trace >> 12
        ordered = first_touch_order(vpns, order)
        faults = self.process.populate(ordered.tolist())
        if self.tlbs.infinite:
            for vpn in ordered.tolist():
                frame = self.process.frame_of(int(vpn))
                assert frame is not None
                self.tlbs.fill(int(vpn), frame)
        return faults

    # ------------------------------------------------------------------
    def run(
        self,
        trace: np.ndarray,
        warmup: int = 0,
        populate: bool = True,
        collect_service: bool = True,
        init_order: str = "sequential",
    ) -> SimStats:
        """Simulate the trace; statistics cover post-warmup records only."""
        if populate:
            self.populate(trace, order=init_order)
        if self.corunner is not None:
            self.corunner.prefill(self.hierarchy)
        stats = SimStats()
        process = self.process
        tlbs = self.tlbs
        walker = self.walker
        hierarchy = self.hierarchy
        corunner = self.corunner
        clustered = self.clustered_tlb
        scheme = self.scheme
        probe = scheme.probe_hook()
        walk_start = scheme.walk_start_hook()
        walk_end = scheme.walk_end_hook()
        fill_hook = scheme.fill_hook()
        base_cycles = self.machine.core.base_cycles
        service = stats.service
        now = 0
        measuring = warmup == 0
        tlb_l1_base = tlb_l2_base = 0
        addresses = trace.tolist()
        for index, va in enumerate(addresses):
            if not measuring and index >= warmup:
                measuring = True
                tlb_l1_base = tlbs.l1_hits
                tlb_l2_base = tlbs.l2_hits
            vpn = va >> 12
            frame = tlbs.lookup(vpn)
            translation = 0
            if frame is None:
                walked = True
                offset = 0
                if probe is not None:
                    frame, offset = probe(va, vpn, now)
                    if frame is not None:
                        translation = offset
                        walked = False
                        tlbs.fill(vpn, frame)
                if walked:
                    path = process.walk_path(va)
                    prefetches = None
                    if walk_start is not None:
                        prefetches = walk_start(va, now + offset)
                    outcome = walker.walk(path, now + offset, prefetches)
                    translation = offset + outcome.latency
                    if walk_end is not None:
                        translation = walk_end(va, vpn, now, translation,
                                               outcome)
                    neighbours = None
                    if clustered and path.leaf_level == 1:
                        neighbours = process.cluster_frames(vpn)
                    tlbs.fill(
                        vpn,
                        path.frame,
                        large=path.is_large,
                        neighbour_frames=neighbours,
                    )
                    frame = path.frame
                if fill_hook is not None:
                    fill_hook(vpn, frame)
                if measuring:
                    stats.walk_cycles += translation
                    if walked:
                        stats.walks += 1
                        if collect_service:
                            service.record_walk(outcome.records)
            data_line = ((frame << 12) | (va & 0xFFF)) >> 6
            result = hierarchy.access_line(data_line, now + translation)
            now += base_cycles + translation + result.latency
            if measuring:
                stats.accesses += 1
                stats.base_cycles += base_cycles
                stats.data_cycles += result.latency
                stats.cycles += base_cycles + translation + result.latency
            if corunner is not None:
                corunner.step(hierarchy, now)
        stats.tlb_l1_hits = tlbs.l1_hits - tlb_l1_base
        stats.tlb_l2_hits = tlbs.l2_hits - tlb_l2_base
        scheme.finalize(stats)
        return stats
