"""Executable checklist of the paper's qualitative claims.

Each check re-runs the relevant scenarios at a configurable scale and
verifies one *shape* the paper reports — an ordering, a monotonicity, a
sign.  ``python -m repro validate`` runs them all; the test suite runs
them at a tiny scale.  This is the repository's continuously verified
statement of what "reproduced" means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core import config as cfg
from repro.sim.runner import Scale, run_native, run_virtualized


@dataclass(frozen=True)
class ShapeCheck:
    claim: str
    where: str  # paper section / figure
    check: Callable[[Scale], bool]


def _walk_latency(workload, config, scale, **kwargs) -> float:
    runner = (run_virtualized if kwargs.pop("virtualized", False)
              else run_native)
    return runner(workload, config, scale=scale, collect_service=False,
                  **kwargs).avg_walk_latency


def _check_pressure_ladder(scale: Scale) -> bool:
    native = _walk_latency("mc80", cfg.BASELINE, scale)
    coloc = _walk_latency("mc80", cfg.BASELINE, scale, colocated=True)
    virt = _walk_latency("mc80", cfg.BASELINE, scale, virtualized=True)
    virt_coloc = _walk_latency("mc80", cfg.BASELINE, scale,
                               virtualized=True, colocated=True)
    return native < coloc < virt < virt_coloc


def _check_bigger_dataset_slower(scale: Scale) -> bool:
    return (_walk_latency("mc400", cfg.BASELINE, scale)
            > _walk_latency("mc80", cfg.BASELINE, scale))


def _check_native_asap_ladder(scale: Scale) -> bool:
    base = _walk_latency("mc400", cfg.BASELINE, scale)
    p1 = _walk_latency("mc400", cfg.P1, scale)
    p12 = _walk_latency("mc400", cfg.P1_P2, scale)
    return p12 <= p1 * 1.01 and p1 < base


def _check_coloc_grows_asap_win(scale: Scale) -> bool:
    base_iso = _walk_latency("mc80", cfg.BASELINE, scale)
    asap_iso = _walk_latency("mc80", cfg.P1_P2, scale)
    base_col = _walk_latency("mc80", cfg.BASELINE, scale, colocated=True)
    asap_col = _walk_latency("mc80", cfg.P1_P2, scale, colocated=True)
    return (1 - asap_col / base_col) > (1 - asap_iso / base_iso)


def _check_host_dimension_dominates(scale: Scale) -> bool:
    # mc400: the large-footprint case where host walks dominate (§5.2).
    # The effect needs the host PT to outgrow the caches, which takes a
    # minimum trace length — below it, this check runs at a scale floor.
    if scale.trace_length < 30_000:
        scale = Scale(trace_length=30_000, warmup=6_000, seed=scale.seed)
    guest_only = _walk_latency("mc400", cfg.P1G_P2G, scale,
                               virtualized=True)
    with_host = _walk_latency("mc400", cfg.P1G_P1H, scale,
                              virtualized=True)
    return with_host < guest_only


def _check_full_2d_best(scale: Scale) -> bool:
    latencies = [
        _walk_latency("mc80", config, scale, virtualized=True)
        for config in cfg.VIRT_LADDER
    ]
    return latencies[-1] == min(latencies) and latencies[-1] < latencies[0]


def _check_large_host_pages(scale: Scale) -> bool:
    base_4k = _walk_latency("mc80", cfg.BASELINE, scale, virtualized=True)
    base_2m = _walk_latency("mc80", cfg.BASELINE, scale, virtualized=True,
                            host_page_level=2)
    asap_2m = _walk_latency("mc80", cfg.LARGE_HOST, scale, virtualized=True,
                            host_page_level=2)
    return base_2m < base_4k and asap_2m < base_2m


def _check_clustered_tlb_composes(scale: Scale) -> bool:
    base = run_native("mcf", cfg.BASELINE, scale=scale,
                      collect_service=False)
    clustered = run_native("mcf", cfg.BASELINE, clustered_tlb=True,
                           scale=scale, collect_service=False)
    both = run_native("mcf", cfg.P1_P2, clustered_tlb=True, scale=scale,
                      collect_service=False)
    return (clustered.walks < base.walks
            and both.walk_cycles < base.walk_cycles)


def _check_pwc_doubling_marginal(scale: Scale) -> bool:
    from repro.params import DEFAULT_MACHINE

    base = _walk_latency("redis", cfg.BASELINE, scale)
    doubled = run_native("redis", cfg.BASELINE,
                         machine=DEFAULT_MACHINE.with_pwc_scale(2),
                         scale=scale, collect_service=False)
    return doubled.avg_walk_latency > base * 0.85  # buys < 15%


CHECKS: tuple[ShapeCheck, ...] = (
    ShapeCheck("walk latency: native < +SMT < virtualized < virt+SMT",
               "Table 1 / Figure 3", _check_pressure_ladder),
    ShapeCheck("5x dataset -> longer walks", "Table 1",
               _check_bigger_dataset_slower),
    ShapeCheck("native ladder: Baseline > P1 >= P1+P2", "Figure 8",
               _check_native_asap_ladder),
    ShapeCheck("ASAP's reduction grows under colocation", "Figure 8b",
               _check_coloc_grows_asap_win),
    ShapeCheck("host-dimension prefetching beats guest-only", "Figure 10",
               _check_host_dimension_dominates),
    ShapeCheck("P1g+P1h+P2g+P2h is the best virtualized config",
               "Figure 10", _check_full_2d_best),
    ShapeCheck("2MB host pages shorten walks; ASAP still helps",
               "Figure 12", _check_large_host_pages),
    ShapeCheck("Clustered TLB removes walks and composes with ASAP",
               "Figure 11 / Table 7", _check_clustered_tlb_composes),
    ShapeCheck("doubling PWC capacity buys little", "§5.1.1",
               _check_pwc_doubling_marginal),
)


def validate_shapes(scale: Scale, verbose: bool = False) -> list[str]:
    """Run every shape check; returns the claims that failed."""
    failures = []
    for check in CHECKS:
        ok = check.check(scale)
        if verbose:
            print(f"[{'PASS' if ok else 'FAIL'}] {check.claim} "
                  f"({check.where})")
        if not ok:
            failures.append(check.claim)
    if verbose:
        print(f"\n{len(CHECKS) - len(failures)}/{len(CHECKS)} shapes hold.")
    return failures
