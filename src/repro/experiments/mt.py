"""Multi-tenant consolidation sweep (`repro mt`).

Not a figure from the source paper: the paper measures per-process costs
and gestures at consolidation through the §4 co-runner; this experiment
simulates it directly with the `repro.sim.multitenant` subsystem — N
address spaces sharing one physical memory, cache hierarchy and TLB/PWC
set, scheduled round-robin — and sweeps the four translation schemes
across process count, scheduling quantum and context-switch policy
(full translation-state flush vs ASID-tagged retention).

The ranking metric is the translation-cycle fraction, as in ``repro
compare``, measured over ``seeds`` replicate trace seeds per cell and
rendered ``mean ±95% CI`` with a ``*`` where the scheme differs from
the baseline column at Mann-Whitney p < 0.05 (``seeds=1`` reproduces
the pre-statistics tables byte-for-byte).  The single-tenant reference
row averages the mix's members at full trace length; those cells are
value-equal to ``repro compare``'s jobs — replicate by replicate — so
a ``repro sweep`` executes them once for both experiments.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.common import (
    DEFAULT_SCALE,
    REPORT_SEEDS,
    SCHEMES,
    Engine,
    SchemeEntry,
    Table,
    aggregate,
    execute,
    mean,
    replicates,
    sample_key,
    scheme_job,
)
from repro.runtime.job import NATIVE, VIRTUALIZED, Job
from repro.sim.multitenant import MultiTenantSpec
from repro.sim.runner import Scale
from repro.workloads.suite import MT_MIXES

#: The consolidated-server mix driving every cell (see workloads/suite.py).
MIX = "mix-server"

#: Native grid: process count x quantum x switch policy.  Quanta are
#: expressed as fractions of the scale's trace length so every scale —
#: the 60k report runs and CI's 2-3k smoke runs — schedules several
#: rounds per tenant (a fixed record count would swallow a whole tenant
#: in one slice at small scales, making the policies indistinguishable).
#: The small divisor-128 quantum sits below the L2 S-TLB's churn
#: horizon (~1500 fills), where ASID retention visibly beats flushing;
#: at the divisor-8 quantum the intervening tenants evict nearly
#: everything and the two policies converge — the table shows both ends.
TENANT_COUNTS = (2, 4)
QUANTUM_DIVISORS = (128, 8)
POLICIES = ("flush", "asid")

#: Virtualized grid (kept small: 2D walks are an order of magnitude
#: slower): the paper's design vs the baseline, two VMs, one quantum.
VIRT_SCHEMES = ("baseline", "asap")
VIRT_TENANTS = (2,)
VIRT_QUANTUM_DIVISORS = (8,)

#: The column the significance markers compare against.
BASELINE_SCHEME = "baseline"


def _quanta(kind: str, scale: Scale) -> tuple[int, ...]:
    divisors = (QUANTUM_DIVISORS if kind == NATIVE
                else VIRT_QUANTUM_DIVISORS)
    return tuple(max(1, scale.trace_length // d) for d in divisors)


def _mt_job(kind: str, entry: SchemeEntry, tenants: int, quantum: int,
            policy: str, scale: Scale) -> Job:
    config = entry.native_config if kind == NATIVE else entry.virt_config
    return Job(kind=kind, workload=MIX, config=config, scale=scale,
               scheme=entry.spec,
               multi_tenant=MultiTenantSpec(tenants, quantum, policy))


def _grid(kind: str, scale: Scale) -> list[tuple[int, int, str]]:
    tenants = TENANT_COUNTS if kind == NATIVE else VIRT_TENANTS
    return [(t, q, p) for t in tenants for q in _quanta(kind, scale)
            for p in POLICIES]


def _roster(kind: str) -> list[str]:
    return list(SCHEMES) if kind == NATIVE else list(VIRT_SCHEMES)


def jobs(scale: Scale, seeds: int = REPORT_SEEDS) -> list[Job]:
    out: list[Job] = []
    for kind in (NATIVE, VIRTUALIZED):
        for name in _roster(kind):
            entry = SCHEMES[name]
            for rep in replicates(scale, seeds):
                # Single-tenant reference: the mix's members at full
                # length (value-equal to the `repro compare` cells at
                # the same replicate -> deduplicated).
                for member in MT_MIXES[MIX]:
                    out.append(scheme_job(kind, member, entry, rep))
                for tenants, quantum, policy in _grid(kind, scale):
                    out.append(_mt_job(kind, entry, tenants, quantum,
                                       policy, rep))
    return out


def _mt_cell(kind: str, name: str, tenants: int, quantum: int,
             policy: str, scale: Scale, seeds: int) -> list[Job]:
    return [_mt_job(kind, SCHEMES[name], tenants, quantum, policy, rep)
            for rep in replicates(scale, seeds)]


def _samples(results: Mapping[Job, Any], cell: list[Job]) -> list[float]:
    return [100.0 * results[job].walk_fraction for job in cell]


def _isolated_samples(results: Mapping[Job, Any], kind: str, name: str,
                      scale: Scale, seeds: int) -> list[float]:
    """Per-seed mean over the mix's members, each run alone."""
    member_samples = [
        _samples(results,
                 [scheme_job(kind, member, SCHEMES[name], rep)
                  for rep in replicates(scale, seeds)])
        for member in MT_MIXES[MIX]
    ]
    return [mean([samples[r] for samples in member_samples])
            for r in range(seeds)]


def _detail(results: Mapping[Job, Any], kind: str,
            scale: Scale, seeds: int) -> Table:
    roster = _roster(kind)
    table = Table(
        title=f"Multi-tenant ({kind}): translation-cycle fraction, "
              f"{MIX} (%; lower is better)",
        columns=["scenario"] + roster,
        notes="isolated = mean over the mix's members, each run alone at "
              "full trace length; N x qQ = N tenants, Q-record quantum; "
              "flush = full translation-state flush per switch, asid = "
              "ASID-tagged retention.",
        baseline=BASELINE_SCHEME,
    )
    isolated = {name: _isolated_samples(results, kind, name, scale, seeds)
                for name in roster}
    table.add_row(scenario="isolated", **{
        name: aggregate(
            isolated[name],
            key="isolated:" + sample_key(
                scheme_job(kind, member, SCHEMES[name], rep)
                for member in MT_MIXES[MIX]
                for rep in replicates(scale, seeds)),
            baseline=None if name == BASELINE_SCHEME
            else isolated[BASELINE_SCHEME])
        for name in roster
    })
    for tenants, quantum, policy in _grid(kind, scale):
        cells = {name: _mt_cell(kind, name, tenants, quantum, policy,
                                scale, seeds)
                 for name in roster}
        base = _samples(results, cells[BASELINE_SCHEME])
        table.add_row(scenario=f"{tenants} x q{quantum} {policy}", **{
            name: aggregate(
                _samples(results, cells[name]),
                key=sample_key(cells[name]),
                baseline=None if name == BASELINE_SCHEME else base)
            for name in roster
        })
    return table


def _retention(results: Mapping[Job, Any], scale: Scale,
               seeds: int) -> Table:
    """ASID retention's win over full flushing, in percentage points."""
    table = Table(
        title="Multi-tenant: ASID retention benefit over full flush "
              "(translation-fraction percentage points; higher = "
              "retention matters more)",
        columns=["scheme", "native_mean", "native_max", "virtualized_mean"],
        notes="Per (tenants, quantum) cell: fraction(flush) - "
              "fraction(asid).  Retention pays most at small quanta, "
              "where a flushed TLB never warms up within a slice.",
    )

    def cell_deltas(kind: str, name: str, tenants: int,
                    quantum: int) -> list[float]:
        flush = _samples(results, _mt_cell(kind, name, tenants, quantum,
                                           "flush", scale, seeds))
        asid = _samples(results, _mt_cell(kind, name, tenants, quantum,
                                          "asid", scale, seeds))
        return [f - a for f, a in zip(flush, asid)]

    for name in SCHEMES:
        deltas = [cell_deltas(NATIVE, name, tenants, quantum)
                  for tenants in TENANT_COUNTS
                  for quantum in _quanta(NATIVE, scale)]
        # Per-seed mean over the grid's cells -> the interval describes
        # the grid-average retention benefit itself.
        per_seed = [mean([cell[r] for cell in deltas])
                    for r in range(seeds)]
        native_key = "retention-native:" + sample_key(
            job for tenants in TENANT_COUNTS
            for quantum in _quanta(NATIVE, scale)
            for policy in POLICIES
            for job in _mt_cell(NATIVE, name, tenants, quantum, policy,
                                scale, seeds))
        virt_cell: Any = "-"
        if name in VIRT_SCHEMES:
            virt_deltas = [cell_deltas(VIRTUALIZED, name, tenants, quantum)
                           for tenants in VIRT_TENANTS
                           for quantum in _quanta(VIRTUALIZED, scale)]
            virt_per_seed = [mean([cell[r] for cell in virt_deltas])
                             for r in range(seeds)]
            virt_cell = aggregate(
                virt_per_seed,
                key="retention-virt:" + sample_key(
                    job for tenants in VIRT_TENANTS
                    for quantum in _quanta(VIRTUALIZED, scale)
                    for policy in POLICIES
                    for job in _mt_cell(VIRTUALIZED, name, tenants,
                                        quantum, policy, scale, seeds)))
        table.add_row(scheme=name,
                      native_mean=aggregate(per_seed, key=native_key),
                      native_max=max(mean(cell) for cell in deltas),
                      virtualized_mean=virt_cell)
    return table


def tables(results: Mapping[Job, Any], scale: Scale,
           seeds: int = REPORT_SEEDS) -> tuple[Table, Table, Table]:
    return (_detail(results, NATIVE, scale, seeds),
            _detail(results, VIRTUALIZED, scale, seeds),
            _retention(results, scale, seeds))


def run(scale: Scale | None = None, engine: Engine | None = None,
        seeds: int = REPORT_SEEDS) -> tuple[Table, Table, Table]:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale, seeds), engine), scale, seeds)


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table.render())
        print()
