"""Multi-tenant consolidation sweep (`repro mt`).

Not a figure from the source paper: the paper measures per-process costs
and gestures at consolidation through the §4 co-runner; this experiment
simulates it directly with the `repro.sim.multitenant` subsystem — N
address spaces sharing one physical memory, cache hierarchy and TLB/PWC
set, scheduled round-robin — and sweeps the four translation schemes
across process count, scheduling quantum and context-switch policy
(full translation-state flush vs ASID-tagged retention).

The ranking metric is the translation-cycle fraction, as in ``repro
compare``.  The single-tenant reference row averages the mix's members
at full trace length; those cells are value-equal to ``repro compare``'s
jobs, so a ``repro sweep`` executes them once for both experiments.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.common import (
    DEFAULT_SCALE,
    SCHEMES,
    Engine,
    ExperimentTable,
    SchemeEntry,
    execute,
    mean,
    scheme_job,
)
from repro.runtime.job import NATIVE, VIRTUALIZED, Job
from repro.sim.multitenant import MultiTenantSpec
from repro.sim.runner import Scale
from repro.workloads.suite import MT_MIXES

#: The consolidated-server mix driving every cell (see workloads/suite.py).
MIX = "mix-server"

#: Native grid: process count x quantum x switch policy.  Quanta are
#: expressed as fractions of the scale's trace length so every scale —
#: the 60k report runs and CI's 2-3k smoke runs — schedules several
#: rounds per tenant (a fixed record count would swallow a whole tenant
#: in one slice at small scales, making the policies indistinguishable).
#: The small divisor-128 quantum sits below the L2 S-TLB's churn
#: horizon (~1500 fills), where ASID retention visibly beats flushing;
#: at the divisor-8 quantum the intervening tenants evict nearly
#: everything and the two policies converge — the table shows both ends.
TENANT_COUNTS = (2, 4)
QUANTUM_DIVISORS = (128, 8)
POLICIES = ("flush", "asid")

#: Virtualized grid (kept small: 2D walks are an order of magnitude
#: slower): the paper's design vs the baseline, two VMs, one quantum.
VIRT_SCHEMES = ("baseline", "asap")
VIRT_TENANTS = (2,)
VIRT_QUANTUM_DIVISORS = (8,)


def _quanta(kind: str, scale: Scale) -> tuple[int, ...]:
    divisors = (QUANTUM_DIVISORS if kind == NATIVE
                else VIRT_QUANTUM_DIVISORS)
    return tuple(max(1, scale.trace_length // d) for d in divisors)


def _mt_job(kind: str, entry: SchemeEntry, tenants: int, quantum: int,
            policy: str, scale: Scale) -> Job:
    config = entry.native_config if kind == NATIVE else entry.virt_config
    return Job(kind=kind, workload=MIX, config=config, scale=scale,
               scheme=entry.spec,
               multi_tenant=MultiTenantSpec(tenants, quantum, policy))


def _grid(kind: str, scale: Scale) -> list[tuple[int, int, str]]:
    tenants = TENANT_COUNTS if kind == NATIVE else VIRT_TENANTS
    return [(t, q, p) for t in tenants for q in _quanta(kind, scale)
            for p in POLICIES]


def _roster(kind: str) -> list[str]:
    return list(SCHEMES) if kind == NATIVE else list(VIRT_SCHEMES)


def jobs(scale: Scale) -> list[Job]:
    out: list[Job] = []
    for kind in (NATIVE, VIRTUALIZED):
        for name in _roster(kind):
            entry = SCHEMES[name]
            # Single-tenant reference: the mix's members at full length
            # (value-equal to the `repro compare` cells -> deduplicated).
            for member in MT_MIXES[MIX]:
                out.append(scheme_job(kind, member, entry, scale))
            for tenants, quantum, policy in _grid(kind, scale):
                out.append(_mt_job(kind, entry, tenants, quantum, policy,
                                   scale))
    return out


def _fraction(results: Mapping[Job, Any], job: Job) -> float:
    return 100.0 * results[job].walk_fraction


def _detail(results: Mapping[Job, Any], kind: str,
            scale: Scale) -> ExperimentTable:
    roster = _roster(kind)
    table = ExperimentTable(
        title=f"Multi-tenant ({kind}): translation-cycle fraction, "
              f"{MIX} (%; lower is better)",
        columns=["scenario"] + roster,
        notes="isolated = mean over the mix's members, each run alone at "
              "full trace length; N x qQ = N tenants, Q-record quantum; "
              "flush = full translation-state flush per switch, asid = "
              "ASID-tagged retention.",
    )
    table.add_row(scenario="isolated", **{
        name: mean([
            _fraction(results,
                      scheme_job(kind, member, SCHEMES[name], scale))
            for member in MT_MIXES[MIX]
        ])
        for name in roster
    })
    for tenants, quantum, policy in _grid(kind, scale):
        table.add_row(scenario=f"{tenants} x q{quantum} {policy}", **{
            name: _fraction(results,
                            _mt_job(kind, SCHEMES[name], tenants, quantum,
                                    policy, scale))
            for name in roster
        })
    return table


def _retention(results: Mapping[Job, Any], scale: Scale) -> ExperimentTable:
    """ASID retention's win over full flushing, in percentage points."""
    table = ExperimentTable(
        title="Multi-tenant: ASID retention benefit over full flush "
              "(translation-fraction percentage points; higher = "
              "retention matters more)",
        columns=["scheme", "native_mean", "native_max", "virtualized_mean"],
        notes="Per (tenants, quantum) cell: fraction(flush) - "
              "fraction(asid).  Retention pays most at small quanta, "
              "where a flushed TLB never warms up within a slice.",
    )
    for name in SCHEMES:
        deltas = []
        for tenants in TENANT_COUNTS:
            for quantum in _quanta(NATIVE, scale):
                flush = _fraction(results, _mt_job(
                    NATIVE, SCHEMES[name], tenants, quantum, "flush", scale))
                asid = _fraction(results, _mt_job(
                    NATIVE, SCHEMES[name], tenants, quantum, "asid", scale))
                deltas.append(flush - asid)
        virt_deltas = []
        if name in VIRT_SCHEMES:
            for tenants in VIRT_TENANTS:
                for quantum in _quanta(VIRTUALIZED, scale):
                    flush = _fraction(results, _mt_job(
                        VIRTUALIZED, SCHEMES[name], tenants, quantum,
                        "flush", scale))
                    asid = _fraction(results, _mt_job(
                        VIRTUALIZED, SCHEMES[name], tenants, quantum,
                        "asid", scale))
                    virt_deltas.append(flush - asid)
        table.add_row(scheme=name,
                      native_mean=mean(deltas),
                      native_max=max(deltas),
                      virtualized_mean=mean(virt_deltas)
                      if virt_deltas else "-")
    return table


def tables(results: Mapping[Job, Any], scale: Scale
           ) -> tuple[ExperimentTable, ExperimentTable, ExperimentTable]:
    return (_detail(results, NATIVE, scale),
            _detail(results, VIRTUALIZED, scale),
            _retention(results, scale))


def run(scale: Scale | None = None, engine: Engine | None = None
        ) -> tuple[ExperimentTable, ExperimentTable, ExperimentTable]:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table.render())
        print()
