"""Figure 11 + Table 7: Clustered TLB vs ASAP vs the two combined.

Figure 11 reports the reduction in total page-walk *cycles* (frequency x
latency) for native execution in isolation: Clustered TLB mostly removes
cheap walks (5% average), ASAP shortens the expensive ones (14%), and the
two compose additively (22%, up to 41%).  Table 7 reports the TLB MPKI
reduction from Clustered TLB alone (58%/48% for the small-footprint mcf
and canneal, 4-16% for the rest).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.config import BASELINE, P1_P2
from repro.experiments.common import (
    DEFAULT_SCALE,
    Engine,
    Table,
    execute,
    mean,
    reduction,
)
from repro.runtime.job import NATIVE, Job
from repro.sim.runner import Scale
from repro.workloads.suite import ALL_NAMES

#: (variant label, config, clustered_tlb)
VARIANTS = (
    ("base", BASELINE, False),
    ("clustered", BASELINE, True),
    ("asap", P1_P2, False),
    ("both", P1_P2, True),
)


def _job(name: str, config, clustered: bool, scale: Scale) -> Job:
    return Job(kind=NATIVE, workload=name, config=config, scale=scale,
               clustered_tlb=clustered)


def jobs(scale: Scale) -> list[Job]:
    return [_job(name, config, clustered, scale)
            for name in ALL_NAMES
            for _, config, clustered in VARIANTS]


def tables(results: Mapping[Job, Any],
           scale: Scale) -> tuple[Table, Table]:
    fig = Table(
        title="Figure 11: reduction in page-walk cycles, native isolation "
              "(higher is better)",
        columns=["workload", "ClusteredTLB_%", "ASAP_%",
                 "Clustered+ASAP_%"],
        notes="Paper averages: 5% / 14% / 22% (41% best case).",
    )
    tab7 = Table(
        title="Table 7: reduction in TLB MPKI with Clustered TLB",
        columns=["workload", "baseline_mpki", "clustered_mpki",
                 "reduction_%"],
        notes="Paper: 58/48/10/16/4/9/12 %, average 15%.",
    )
    for name in ALL_NAMES:
        base, clustered, asap, both = (
            results[_job(name, config, flag, scale)]
            for _, config, flag in VARIANTS
        )
        fig.add_row(
            workload=name,
            **{
                "ClusteredTLB_%": reduction(base.walk_cycles,
                                            clustered.walk_cycles),
                "ASAP_%": reduction(base.walk_cycles, asap.walk_cycles),
                "Clustered+ASAP_%": reduction(base.walk_cycles,
                                              both.walk_cycles),
            },
        )
        tab7.add_row(
            workload=name,
            baseline_mpki=base.mpki,
            clustered_mpki=clustered.mpki,
            **{"reduction_%": reduction(base.mpki, clustered.mpki)},
        )
    for table in (fig, tab7):
        table.add_row(
            workload="Average",
            **{
                column: mean([row[column] for row in table.rows])
                for column in table.columns[1:]
            },
        )
    return fig, tab7


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> tuple[Table,
                                               Table]:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    fig, tab7 = run()
    print(fig.render())
    print()
    print(tab7.render())
