"""Figure 11 + Table 7: Clustered TLB vs ASAP vs the two combined.

Figure 11 reports the reduction in total page-walk *cycles* (frequency x
latency) for native execution in isolation: Clustered TLB mostly removes
cheap walks (5% average), ASAP shortens the expensive ones (14%), and the
two compose additively (22%, up to 41%).  Table 7 reports the TLB MPKI
reduction from Clustered TLB alone (58%/48% for the small-footprint mcf
and canneal, 4-16% for the rest).
"""

from __future__ import annotations

from repro.core.config import BASELINE, P1_P2
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentTable,
    mean,
    reduction,
)
from repro.sim.runner import Scale, run_native
from repro.workloads.suite import ALL_NAMES


def run(scale: Scale | None = None) -> tuple[ExperimentTable,
                                             ExperimentTable]:
    scale = scale or DEFAULT_SCALE
    fig = ExperimentTable(
        title="Figure 11: reduction in page-walk cycles, native isolation "
              "(higher is better)",
        columns=["workload", "ClusteredTLB_%", "ASAP_%",
                 "Clustered+ASAP_%"],
        notes="Paper averages: 5% / 14% / 22% (41% best case).",
    )
    tab7 = ExperimentTable(
        title="Table 7: reduction in TLB MPKI with Clustered TLB",
        columns=["workload", "baseline_mpki", "clustered_mpki",
                 "reduction_%"],
        notes="Paper: 58/48/10/16/4/9/12 %, average 15%.",
    )
    for name in ALL_NAMES:
        base = run_native(name, BASELINE, scale=scale,
                          collect_service=False)
        clustered = run_native(name, BASELINE, clustered_tlb=True,
                               scale=scale, collect_service=False)
        asap = run_native(name, P1_P2, scale=scale, collect_service=False)
        both = run_native(name, P1_P2, clustered_tlb=True, scale=scale,
                          collect_service=False)
        fig.add_row(
            workload=name,
            **{
                "ClusteredTLB_%": reduction(base.walk_cycles,
                                            clustered.walk_cycles),
                "ASAP_%": reduction(base.walk_cycles, asap.walk_cycles),
                "Clustered+ASAP_%": reduction(base.walk_cycles,
                                              both.walk_cycles),
            },
        )
        tab7.add_row(
            workload=name,
            baseline_mpki=base.mpki,
            clustered_mpki=clustered.mpki,
            **{"reduction_%": reduction(base.mpki, clustered.mpki)},
        )
    for table in (fig, tab7):
        table.add_row(
            workload="Average",
            **{
                column: mean([row[column] for row in table.rows])
                for column in table.columns[1:]
            },
        )
    return fig, tab7


if __name__ == "__main__":  # pragma: no cover
    fig, tab7 = run()
    print(fig.render())
    print()
    print(tab7.render())
