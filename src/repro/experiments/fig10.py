"""Figure 10: virtualized page-walk latency across the ASAP ladder.

Configurations: Baseline, P1g, P1g+P2g, P1g+P1h, P1g+P1h+P2g+P2h, in
isolation (a) and under SMT colocation (b).  Paper: guest-only prefetching
buys 13-15%; adding the host dimension 35-39% (isolation) and 37-45%
(colocation), with a 55% best case on mc400.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.common import VIRT_LADDER
from repro.experiments.common import (
    DEFAULT_SCALE,
    Engine,
    Table,
    execute,
    mean,
    reduction,
)
from repro.runtime.job import VIRTUALIZED, Job
from repro.sim.runner import Scale
from repro.workloads.suite import ALL_NAMES


def _job(name: str, config, colocated: bool, scale: Scale) -> Job:
    return Job(kind=VIRTUALIZED, workload=name, config=config, scale=scale,
               colocated=colocated)


def jobs(scale: Scale) -> list[Job]:
    return [_job(name, config, colocated, scale)
            for colocated in (False, True)
            for name in ALL_NAMES
            for config in VIRT_LADDER]


def _panel(results: Mapping[Job, Any], colocated: bool,
           scale: Scale) -> Table:
    label = "under SMT colocation" if colocated else "in isolation"
    config_names = [config.name for config in VIRT_LADDER]
    table = Table(
        title=f"Figure 10{'b' if colocated else 'a'}: virtualized walk "
              f"latency {label} (cycles; lower is better)",
        columns=["workload", *config_names, "best_red_%"],
    )
    for name in ALL_NAMES:
        row: dict[str, object] = {"workload": name}
        for config in VIRT_LADDER:
            stats = results[_job(name, config, colocated, scale)]
            row[config.name] = stats.avg_walk_latency
        row["best_red_%"] = reduction(
            row[config_names[0]], row[config_names[-1]]
        )
        table.add_row(**row)
    table.add_row(
        workload="Average",
        **{
            column: mean([r[column] for r in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


def tables(results: Mapping[Job, Any],
           scale: Scale) -> tuple[Table, Table]:
    return (_panel(results, False, scale), _panel(results, True, scale))


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> tuple[Table,
                                               Table]:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    isolation, colocation = run()
    print(isolation.render())
    print()
    print(colocation.render())
