"""Figure 10: virtualized page-walk latency across the ASAP ladder.

Configurations: Baseline, P1g, P1g+P2g, P1g+P1h, P1g+P1h+P2g+P2h, in
isolation (a) and under SMT colocation (b).  Paper: guest-only prefetching
buys 13-15%; adding the host dimension 35-39% (isolation) and 37-45%
(colocation), with a 55% best case on mc400.
"""

from __future__ import annotations

from repro.core.config import VIRT_LADDER
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentTable,
    mean,
    reduction,
)
from repro.sim.runner import Scale, run_virtualized
from repro.workloads.suite import ALL_NAMES


def _panel(colocated: bool, scale: Scale) -> ExperimentTable:
    label = "under SMT colocation" if colocated else "in isolation"
    config_names = [config.name for config in VIRT_LADDER]
    table = ExperimentTable(
        title=f"Figure 10{'b' if colocated else 'a'}: virtualized walk "
              f"latency {label} (cycles; lower is better)",
        columns=["workload", *config_names, "best_red_%"],
    )
    for name in ALL_NAMES:
        row: dict[str, object] = {"workload": name}
        baseline_latency = None
        for config in VIRT_LADDER:
            stats = run_virtualized(name, config, colocated=colocated,
                                    scale=scale, collect_service=False)
            row[config.name] = stats.avg_walk_latency
            if baseline_latency is None:
                baseline_latency = stats.avg_walk_latency
        row["best_red_%"] = reduction(
            baseline_latency, row[config_names[-1]]
        )
        table.add_row(**row)
    table.add_row(
        workload="Average",
        **{
            column: mean([r[column] for r in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


def run(scale: Scale | None = None) -> tuple[ExperimentTable,
                                             ExperimentTable]:
    scale = scale or DEFAULT_SCALE
    return _panel(False, scale), _panel(True, scale)


if __name__ == "__main__":  # pragma: no cover
    isolation, colocation = run()
    print(isolation.render())
    print()
    print(colocation.render())
