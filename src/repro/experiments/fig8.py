"""Figure 8: native page-walk latency — Baseline vs P1 vs P1+P2.

(a) in isolation, (b) under SMT colocation.  Paper: P1 cuts 12% (20% under
colocation), P1+P2 cuts 14% (25% under colocation, up to 42% on mc400).
"""

from __future__ import annotations

from repro.core.config import BASELINE, P1, P1_P2
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentTable,
    mean,
    reduction,
)
from repro.sim.runner import Scale, run_native
from repro.workloads.suite import ALL_NAMES


def _panel(colocated: bool, scale: Scale) -> ExperimentTable:
    label = "under SMT colocation" if colocated else "in isolation"
    table = ExperimentTable(
        title=f"Figure 8{'b' if colocated else 'a'}: native walk latency "
              f"{label} (cycles; lower is better)",
        columns=["workload", "Baseline", "P1", "P1+P2",
                 "P1_red_%", "P1+P2_red_%"],
    )
    for name in ALL_NAMES:
        base = run_native(name, BASELINE, colocated=colocated, scale=scale,
                          collect_service=False)
        p1 = run_native(name, P1, colocated=colocated, scale=scale,
                        collect_service=False)
        p12 = run_native(name, P1_P2, colocated=colocated, scale=scale,
                         collect_service=False)
        table.add_row(
            workload=name,
            Baseline=base.avg_walk_latency,
            P1=p1.avg_walk_latency,
            **{
                "P1+P2": p12.avg_walk_latency,
                "P1_red_%": reduction(base.avg_walk_latency,
                                      p1.avg_walk_latency),
                "P1+P2_red_%": reduction(base.avg_walk_latency,
                                         p12.avg_walk_latency),
            },
        )
    table.add_row(
        workload="Average",
        Baseline=mean([r["Baseline"] for r in table.rows]),
        P1=mean([r["P1"] for r in table.rows]),
        **{
            "P1+P2": mean([r["P1+P2"] for r in table.rows]),
            "P1_red_%": mean([r["P1_red_%"] for r in table.rows]),
            "P1+P2_red_%": mean([r["P1+P2_red_%"] for r in table.rows]),
        },
    )
    return table


def run(scale: Scale | None = None) -> tuple[ExperimentTable,
                                             ExperimentTable]:
    scale = scale or DEFAULT_SCALE
    return _panel(False, scale), _panel(True, scale)


if __name__ == "__main__":  # pragma: no cover
    isolation, colocation = run()
    print(isolation.render())
    print()
    print(colocation.render())
