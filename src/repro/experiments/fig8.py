"""Figure 8: native page-walk latency — Baseline vs P1 vs P1+P2.

(a) in isolation, (b) under SMT colocation.  Paper: P1 cuts 12% (20% under
colocation), P1+P2 cuts 14% (25% under colocation, up to 42% on mc400).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.common import (
    DEFAULT_SCALE,
    NATIVE_LADDER,
    Engine,
    Table,
    execute,
    mean,
    reduction,
)
from repro.runtime.job import NATIVE, Job
from repro.sim.runner import Scale
from repro.workloads.suite import ALL_NAMES

LADDER = NATIVE_LADDER


def _job(name: str, config, colocated: bool, scale: Scale) -> Job:
    return Job(kind=NATIVE, workload=name, config=config, scale=scale,
               colocated=colocated)


def jobs(scale: Scale) -> list[Job]:
    return [_job(name, config, colocated, scale)
            for colocated in (False, True)
            for name in ALL_NAMES
            for config in LADDER]


def _panel(results: Mapping[Job, Any], colocated: bool,
           scale: Scale) -> Table:
    label = "under SMT colocation" if colocated else "in isolation"
    table = Table(
        title=f"Figure 8{'b' if colocated else 'a'}: native walk latency "
              f"{label} (cycles; lower is better)",
        columns=["workload", "Baseline", "P1", "P1+P2",
                 "P1_red_%", "P1+P2_red_%"],
    )
    for name in ALL_NAMES:
        base, p1, p12 = (
            results[_job(name, config, colocated, scale)].avg_walk_latency
            for config in LADDER
        )
        table.add_row(
            workload=name,
            Baseline=base,
            P1=p1,
            **{
                "P1+P2": p12,
                "P1_red_%": reduction(base, p1),
                "P1+P2_red_%": reduction(base, p12),
            },
        )
    table.add_row(
        workload="Average",
        Baseline=mean([r["Baseline"] for r in table.rows]),
        P1=mean([r["P1"] for r in table.rows]),
        **{
            "P1+P2": mean([r["P1+P2"] for r in table.rows]),
            "P1_red_%": mean([r["P1_red_%"] for r in table.rows]),
            "P1+P2_red_%": mean([r["P1+P2_red_%"] for r in table.rows]),
        },
    )
    return table


def tables(results: Mapping[Job, Any],
           scale: Scale) -> tuple[Table, Table]:
    return (_panel(results, False, scale), _panel(results, True, scale))


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> tuple[Table,
                                               Table]:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    isolation, colocation = run()
    print(isolation.render())
    print()
    print(colocation.render())
