"""Head-to-head comparison of translation schemes (`repro compare`).

Not a figure from the source paper: this races the paper's design (ASAP)
against the related-work schemes modelled in `repro.schemes` — Victima's
cache-parked TLB entries and Revelator's hash-based speculation — on the
identical workload suite, machine model and trace streams, in both
native and virtualized modes.

The ranking metric is the **translation-cycle fraction**: the share of
execution cycles the core spends stalled on address translation (probe
latencies, page walks, speculation penalties — everything the scheme is
responsible for).  Lower is better; an infinite TLB would score 0.

Every cell is replicated over ``seeds`` trace seeds (default
:data:`~repro.experiments.common.REPORT_SEEDS`) and rendered as
``mean ±95% CI``; a ``*`` marks cells whose difference from the
``baseline`` column is Mann-Whitney significant at p < 0.05.  With
``seeds=1`` the tables are byte-identical to the pre-statistics output.

The replicate-0 baseline and ASAP cells are value-equal to the figure
modules' jobs, so a ``repro sweep`` executes them once for both; the
runtime engine deduplicates and caches like every other experiment.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.common import (
    DEFAULT_SCALE,
    REPORT_SEEDS,
    SCHEMES,
    Engine,
    Table,
    aggregate,
    execute,
    mean,
    replicates,
    sample_key,
    scheme_job,
)
from repro.runtime.job import NATIVE, VIRTUALIZED, Job
from repro.sim.runner import Scale
from repro.workloads.suite import ALL_NAMES

MODES = (NATIVE, VIRTUALIZED)

#: The column every significance marker compares against.
BASELINE_SCHEME = "baseline"


def _roster(schemes: list[str] | None) -> list[str]:
    if schemes is None:
        return list(SCHEMES)
    unknown = [name for name in schemes if name not in SCHEMES]
    if unknown:
        raise ValueError(f"unknown scheme(s) {unknown}; "
                         f"one of {sorted(SCHEMES)}")
    return list(schemes)


def jobs(scale: Scale,
         schemes: list[str] | None = None,
         kernel: str = "scalar",
         seeds: int = REPORT_SEEDS) -> list[Job]:
    return [scheme_job(kind, workload, SCHEMES[name], rep, kernel)
            for kind in MODES
            for name in _roster(schemes)
            for workload in ALL_NAMES
            for rep in replicates(scale, seeds)]


def _cell_jobs(kind: str, name: str, workload: str, scale: Scale,
               kernel: str, seeds: int) -> list[Job]:
    return [scheme_job(kind, workload, SCHEMES[name], rep, kernel)
            for rep in replicates(scale, seeds)]


def _samples(results: Mapping[Job, Any], cell: list[Job]) -> list[float]:
    return [100.0 * results[job].walk_fraction for job in cell]


def _detail(results: Mapping[Job, Any], kind: str, roster: list[str],
            scale: Scale, kernel: str, seeds: int) -> Table:
    table = Table(
        title=f"Compare ({kind}): translation-cycle fraction per "
              "workload (%; lower is better)",
        columns=["workload"] + roster,
        baseline=BASELINE_SCHEME if BASELINE_SCHEME in roster else None,
    )
    samples = {
        (workload, name): _samples(
            results, _cell_jobs(kind, name, workload, scale, kernel, seeds))
        for workload in ALL_NAMES for name in roster
    }
    keys = {
        (workload, name): sample_key(
            _cell_jobs(kind, name, workload, scale, kernel, seeds))
        for workload in ALL_NAMES for name in roster
    }
    for workload in ALL_NAMES:
        base = (samples[(workload, BASELINE_SCHEME)]
                if table.baseline else None)
        table.add_row(workload=workload, **{
            name: aggregate(
                samples[(workload, name)], key=keys[(workload, name)],
                baseline=None if name == BASELINE_SCHEME else base)
            for name in roster
        })
    # Average row: sample r is the cross-workload mean at seed r, so the
    # interval and marker describe the suite average itself.
    avg = {
        name: [mean([samples[(workload, name)][r]
                     for workload in ALL_NAMES])
               for r in range(seeds)]
        for name in roster
    }
    base_avg = avg[BASELINE_SCHEME] if table.baseline else None
    table.add_row(workload="Average", **{
        name: aggregate(
            avg[name],
            key="average:" + ",".join(keys[(workload, name)]
                                      for workload in ALL_NAMES),
            baseline=None if name == BASELINE_SCHEME else base_avg)
        for name in roster
    })
    return table


def _ranking(native: Table, virtualized: Table,
             roster: list[str]) -> Table:
    table = Table(
        title="Compare: schemes ranked by translation-cycle fraction "
              "(%; lower is better)",
        columns=["rank", "scheme", "native_%", "virtualized_%", "mean_%"],
        notes="asap = P1+P2 native / P1g+P1h+P2g+P2h virtualized; "
              "victima parks L2-TLB victims in the L2 data cache; "
              "revelator speculates on hash-placed pages (85% coverage).",
    )
    native_avg = native.row_by("workload", "Average")
    virt_avg = virtualized.row_by("workload", "Average")
    scored = sorted(
        ((native_avg[name] + virt_avg[name]) / 2.0, name)
        for name in roster
    )
    for rank, (score, name) in enumerate(scored, start=1):
        table.add_row(rank=rank, scheme=name,
                      **{"native_%": native_avg[name],
                         "virtualized_%": virt_avg[name],
                         "mean_%": score})
    return table


def tables(results: Mapping[Job, Any], scale: Scale,
           schemes: list[str] | None = None,
           kernel: str = "scalar",
           seeds: int = REPORT_SEEDS,
           ) -> tuple[Table, Table, Table]:
    roster = _roster(schemes)
    native = _detail(results, NATIVE, roster, scale, kernel, seeds)
    virtualized = _detail(results, VIRTUALIZED, roster, scale, kernel,
                          seeds)
    return (_ranking(native, virtualized, roster), native, virtualized)


def run(scale: Scale | None = None,
        engine: Engine | None = None,
        schemes: list[str] | None = None,
        kernel: str = "scalar",
        seeds: int = REPORT_SEEDS,
        ) -> tuple[Table, Table, Table]:
    """``kernel`` selects the simulation engine per cell; the tables are
    byte-identical across kernels (the determinism CI gate compares
    them), so it never appears in a title."""
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale, schemes, kernel, seeds), engine),
                  scale, schemes, kernel, seeds)


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table.render())
        print()
