"""Head-to-head comparison of translation schemes (`repro compare`).

Not a figure from the source paper: this races the paper's design (ASAP)
against the related-work schemes modelled in `repro.schemes` — Victima's
cache-parked TLB entries and Revelator's hash-based speculation — on the
identical workload suite, machine model and trace streams, in both
native and virtualized modes.

The ranking metric is the **translation-cycle fraction**: the share of
execution cycles the core spends stalled on address translation (probe
latencies, page walks, speculation penalties — everything the scheme is
responsible for).  Lower is better; an infinite TLB would score 0.

The baseline and ASAP cells are value-equal to the figure modules' jobs,
so a ``repro sweep`` executes them once for both; the runtime engine
deduplicates and caches like every other experiment.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.common import (
    DEFAULT_SCALE,
    SCHEMES,
    Engine,
    ExperimentTable,
    execute,
    mean,
    scheme_job,
)
from repro.runtime.job import NATIVE, VIRTUALIZED, Job
from repro.sim.runner import Scale
from repro.workloads.suite import ALL_NAMES

MODES = (NATIVE, VIRTUALIZED)


def _roster(schemes: list[str] | None) -> list[str]:
    if schemes is None:
        return list(SCHEMES)
    unknown = [name for name in schemes if name not in SCHEMES]
    if unknown:
        raise ValueError(f"unknown scheme(s) {unknown}; "
                         f"one of {sorted(SCHEMES)}")
    return list(schemes)


def jobs(scale: Scale,
         schemes: list[str] | None = None,
         kernel: str = "scalar") -> list[Job]:
    return [scheme_job(kind, workload, SCHEMES[name], scale, kernel)
            for kind in MODES
            for name in _roster(schemes)
            for workload in ALL_NAMES]


def _fraction(results: Mapping[Job, Any], kind: str, name: str,
              workload: str, scale: Scale, kernel: str) -> float:
    stats = results[scheme_job(kind, workload, SCHEMES[name], scale,
                               kernel)]
    return 100.0 * stats.walk_fraction


def _detail(results: Mapping[Job, Any], kind: str, roster: list[str],
            scale: Scale, kernel: str) -> ExperimentTable:
    table = ExperimentTable(
        title=f"Compare ({kind}): translation-cycle fraction per "
              "workload (%; lower is better)",
        columns=["workload"] + roster,
    )
    for workload in ALL_NAMES:
        table.add_row(workload=workload, **{
            name: _fraction(results, kind, name, workload, scale, kernel)
            for name in roster
        })
    table.add_row(workload="Average", **{
        name: mean([row[name] for row in table.rows]) for name in roster
    })
    return table


def _ranking(native: ExperimentTable,
             virtualized: ExperimentTable,
             roster: list[str]) -> ExperimentTable:
    table = ExperimentTable(
        title="Compare: schemes ranked by translation-cycle fraction "
              "(%; lower is better)",
        columns=["rank", "scheme", "native_%", "virtualized_%", "mean_%"],
        notes="asap = P1+P2 native / P1g+P1h+P2g+P2h virtualized; "
              "victima parks L2-TLB victims in the L2 data cache; "
              "revelator speculates on hash-placed pages (85% coverage).",
    )
    native_avg = native.row_by("workload", "Average")
    virt_avg = virtualized.row_by("workload", "Average")
    scored = sorted(
        ((native_avg[name] + virt_avg[name]) / 2.0, name)
        for name in roster
    )
    for rank, (score, name) in enumerate(scored, start=1):
        table.add_row(rank=rank, scheme=name,
                      **{"native_%": native_avg[name],
                         "virtualized_%": virt_avg[name],
                         "mean_%": score})
    return table


def tables(results: Mapping[Job, Any], scale: Scale,
           schemes: list[str] | None = None,
           kernel: str = "scalar",
           ) -> tuple[ExperimentTable, ExperimentTable, ExperimentTable]:
    roster = _roster(schemes)
    native = _detail(results, NATIVE, roster, scale, kernel)
    virtualized = _detail(results, VIRTUALIZED, roster, scale, kernel)
    return (_ranking(native, virtualized, roster), native, virtualized)


def run(scale: Scale | None = None,
        engine: Engine | None = None,
        schemes: list[str] | None = None,
        kernel: str = "scalar",
        ) -> tuple[ExperimentTable, ExperimentTable, ExperimentTable]:
    """``kernel`` selects the simulation engine per cell; the tables are
    byte-identical across kernels (the determinism CI gate compares
    them), so it never appears in a title."""
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale, schemes, kernel), engine), scale,
                  schemes, kernel)


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table.render())
        print()
