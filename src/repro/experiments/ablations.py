"""Design-choice ablations called out in the paper's text.

* **PWC capacity** (§5.1.1): doubling every PWC buys only ~2-3% walk
  latency — the motivation for attacking latency with prefetching rather
  than more caching.
* **Five-level page tables** (§2.6/§3.5): the coming fifth level deepens
  every walk; ASAP extends naturally with one more prefetch target and
  claws the extra latency back.
* **Region holes** (§3.7.2): growing VMAs past their reserved PT regions
  leaves holes that simply lose acceleration — walks stay correct and the
  hit is proportional to the hole rate.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.config import BASELINE, P1_P2, P1_P2_P3
from repro.experiments.common import (
    DEFAULT_SCALE,
    Engine,
    Table,
    execute,
    mean,
    reduction,
)
from repro.runtime.job import NATIVE, Job
from repro.sim.runner import Scale

PWC_WORKLOADS = ("mcf", "pagerank", "mc80", "redis")
FIVE_LEVEL_WORKLOADS = ("mcf", "mc80", "redis")
HOLE_RATES = (0.0, 0.05, 0.2, 0.5)


# ----------------------------------------------------------------------
# PWC capacity (§5.1.1)
# ----------------------------------------------------------------------
def _pwc_job(name: str, pwc_scale: int, scale: Scale) -> Job:
    return Job(kind=NATIVE, workload=name, config=BASELINE, scale=scale,
               pwc_scale=pwc_scale)


def pwc_jobs(scale: Scale) -> list[Job]:
    return [_pwc_job(name, pwc_scale, scale)
            for name in PWC_WORKLOADS
            for pwc_scale in (1, 2)]


def pwc_tables(results: Mapping[Job, Any], scale: Scale) -> Table:
    table = Table(
        title="Ablation (§5.1.1): doubling every PWC's capacity",
        columns=["workload", "default_pwc", "doubled_pwc", "red_%"],
        notes="Paper: ~2% reduction in native scenarios.",
    )
    for name in PWC_WORKLOADS:
        base = results[_pwc_job(name, 1, scale)]
        big = results[_pwc_job(name, 2, scale)]
        table.add_row(
            workload=name,
            default_pwc=base.avg_walk_latency,
            doubled_pwc=big.avg_walk_latency,
            **{"red_%": reduction(base.avg_walk_latency,
                                  big.avg_walk_latency)},
        )
    table.add_row(
        workload="Average",
        **{
            column: mean([row[column] for row in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


def run_pwc_scaling(scale: Scale | None = None,
                    engine: Engine | None = None) -> Table:
    """Doubling PWC capacity (native, isolation)."""
    scale = scale or DEFAULT_SCALE
    return pwc_tables(execute(pwc_jobs(scale), engine), scale)


# ----------------------------------------------------------------------
# Five-level page tables (§3.5)
# ----------------------------------------------------------------------
_FIVE_LEVEL_GRID = (
    ("4L_base", BASELINE, 4),
    ("5L_base", BASELINE, 5),
    ("5L_P1+P2", P1_P2, 5),
    ("5L_P1+P2+P3", P1_P2_P3, 5),
)


def _five_job(name: str, config, pt_levels: int, scale: Scale) -> Job:
    return Job(kind=NATIVE, workload=name, config=config, scale=scale,
               pt_levels=pt_levels)


def five_level_jobs(scale: Scale) -> list[Job]:
    return [_five_job(name, config, pt_levels, scale)
            for name in FIVE_LEVEL_WORKLOADS
            for _, config, pt_levels in _FIVE_LEVEL_GRID]


def five_level_tables(results: Mapping[Job, Any],
                      scale: Scale) -> Table:
    table = Table(
        title="Ablation (§3.5): five-level page tables",
        columns=["workload", "4L_base", "5L_base", "5L_P1+P2",
                 "5L_P1+P2+P3", "5L_red_%"],
        notes="The extra level deepens walks; the P3 prefetch target "
              "recovers the added latency.",
    )
    for name in FIVE_LEVEL_WORKLOADS:
        row: dict[str, object] = {"workload": name}
        for label, config, pt_levels in _FIVE_LEVEL_GRID:
            stats = results[_five_job(name, config, pt_levels, scale)]
            row[label] = stats.avg_walk_latency
        row["5L_red_%"] = reduction(row["5L_base"], row["5L_P1+P2+P3"])
        table.add_row(**row)
    return table


def run_five_level(scale: Scale | None = None,
                   engine: Engine | None = None) -> Table:
    """Four- vs five-level page tables, baseline and ASAP (§3.5)."""
    scale = scale or DEFAULT_SCALE
    return five_level_tables(execute(five_level_jobs(scale), engine), scale)


# ----------------------------------------------------------------------
# PT-region holes (§3.7.2)
# ----------------------------------------------------------------------
def _hole_job(hole_rate: float, scale: Scale) -> Job:
    # Holes are injected at node-placement (fault) time, so the failure
    # probability is part of the job spec rather than a post-hoc mutation.
    return Job(kind=NATIVE, workload="mc80", config=P1_P2, scale=scale,
               hole_rate=hole_rate)


def hole_jobs(scale: Scale) -> list[Job]:
    return [_hole_job(rate, scale) for rate in HOLE_RATES]


def hole_tables(results: Mapping[Job, Any], scale: Scale) -> Table:
    table = Table(
        title="Ablation (§3.7.2): ASAP with PT-region holes (mc80, P1+P2)",
        columns=["hole_rate", "avg_walk", "useful_prefetch_%"],
        notes="Holes lose acceleration for their walks but never break "
              "correctness.",
    )
    for hole_rate in HOLE_RATES:
        stats = results[_hole_job(hole_rate, scale)]
        useful = (100.0 * stats.prefetches_useful / stats.prefetches_issued
                  if stats.prefetches_issued else 0.0)
        table.add_row(
            hole_rate=f"{hole_rate:.0%}",
            avg_walk=stats.avg_walk_latency,
            **{"useful_prefetch_%": useful},
        )
    return table


def run_holes(scale: Scale | None = None,
              engine: Engine | None = None) -> Table:
    """PT-region holes degrade gracefully (§3.7.2)."""
    scale = scale or DEFAULT_SCALE
    return hole_tables(execute(hole_jobs(scale), engine), scale)


# ----------------------------------------------------------------------
def jobs(scale: Scale) -> list[Job]:
    return [*pwc_jobs(scale), *five_level_jobs(scale), *hole_jobs(scale)]


def tables(results: Mapping[Job, Any],
           scale: Scale) -> list[Table]:
    return [
        pwc_tables(results, scale),
        five_level_tables(results, scale),
        hole_tables(results, scale),
    ]


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> list[Table]:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table.render())
        print()
