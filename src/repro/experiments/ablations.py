"""Design-choice ablations called out in the paper's text.

* **PWC capacity** (§5.1.1): doubling every PWC buys only ~2-3% walk
  latency — the motivation for attacking latency with prefetching rather
  than more caching.
* **Five-level page tables** (§2.6/§3.5): the coming fifth level deepens
  every walk; ASAP extends naturally with one more prefetch target and
  claws the extra latency back.
* **Region holes** (§3.7.2): growing VMAs past their reserved PT regions
  leaves holes that simply lose acceleration — walks stay correct and the
  hit is proportional to the hole rate.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import AsapConfig, BASELINE, P1_P2, P1_P2_P3
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentTable,
    mean,
    reduction,
)
from repro.params import DEFAULT_MACHINE
from repro.sim.runner import Scale, make_trace, run_native
from repro.sim.simulator import NativeSimulation
from repro.workloads.suite import ALL_NAMES, get

PWC_WORKLOADS = ("mcf", "pagerank", "mc80", "redis")


def run_pwc_scaling(scale: Scale | None = None) -> ExperimentTable:
    """Doubling PWC capacity (native, isolation)."""
    scale = scale or DEFAULT_SCALE
    doubled = DEFAULT_MACHINE.with_pwc_scale(2)
    table = ExperimentTable(
        title="Ablation (§5.1.1): doubling every PWC's capacity",
        columns=["workload", "default_pwc", "doubled_pwc", "red_%"],
        notes="Paper: ~2% reduction in native scenarios.",
    )
    for name in PWC_WORKLOADS:
        base = run_native(name, BASELINE, scale=scale,
                          collect_service=False)
        big = run_native(name, BASELINE, machine=doubled, scale=scale,
                         collect_service=False)
        table.add_row(
            workload=name,
            default_pwc=base.avg_walk_latency,
            doubled_pwc=big.avg_walk_latency,
            **{"red_%": reduction(base.avg_walk_latency,
                                  big.avg_walk_latency)},
        )
    table.add_row(
        workload="Average",
        **{
            column: mean([row[column] for row in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


def run_five_level(scale: Scale | None = None) -> ExperimentTable:
    """Four- vs five-level page tables, baseline and ASAP (§3.5)."""
    scale = scale or DEFAULT_SCALE
    table = ExperimentTable(
        title="Ablation (§3.5): five-level page tables",
        columns=["workload", "4L_base", "5L_base", "5L_P1+P2",
                 "5L_P1+P2+P3", "5L_red_%"],
        notes="The extra level deepens walks; the P3 prefetch target "
              "recovers the added latency.",
    )
    for name in ("mcf", "mc80", "redis"):
        base4 = run_native(name, BASELINE, scale=scale, pt_levels=4,
                           collect_service=False)
        base5 = run_native(name, BASELINE, scale=scale, pt_levels=5,
                           collect_service=False)
        p12 = run_native(name, P1_P2, scale=scale, pt_levels=5,
                         collect_service=False)
        p123 = run_native(name, P1_P2_P3, scale=scale, pt_levels=5,
                          collect_service=False)
        table.add_row(
            workload=name,
            **{
                "4L_base": base4.avg_walk_latency,
                "5L_base": base5.avg_walk_latency,
                "5L_P1+P2": p12.avg_walk_latency,
                "5L_P1+P2+P3": p123.avg_walk_latency,
                "5L_red_%": reduction(base5.avg_walk_latency,
                                      p123.avg_walk_latency),
            },
        )
    return table


def run_holes(scale: Scale | None = None) -> ExperimentTable:
    """PT-region holes degrade gracefully (§3.7.2)."""
    scale = scale or DEFAULT_SCALE
    spec = get("mc80")
    trace = make_trace(spec, scale)
    table = ExperimentTable(
        title="Ablation (§3.7.2): ASAP with PT-region holes (mc80, P1+P2)",
        columns=["hole_rate", "avg_walk", "useful_prefetch_%"],
        notes="Holes lose acceleration for their walks but never break "
              "correctness.",
    )
    for hole_rate in (0.0, 0.05, 0.2, 0.5):
        # Holes are injected at node-placement (fault) time, so the
        # failure probability must be set before anything is populated.
        process = spec.build_process(asap_levels=(1, 2), seed=scale.seed)
        assert process.asap_layout is not None
        process.asap_layout.pinned_failure_prob = hole_rate
        simulation = NativeSimulation(process, asap=P1_P2)
        stats = simulation.run(trace, warmup=scale.warmup,
                               collect_service=False)
        useful = (100.0 * stats.prefetches_useful / stats.prefetches_issued
                  if stats.prefetches_issued else 0.0)
        table.add_row(
            hole_rate=f"{hole_rate:.0%}",
            avg_walk=stats.avg_walk_latency,
            **{"useful_prefetch_%": useful},
        )
    return table


def run(scale: Scale | None = None) -> list[ExperimentTable]:
    return [
        run_pwc_scaling(scale),
        run_five_level(scale),
        run_holes(scale),
    ]


if __name__ == "__main__":  # pragma: no cover
    for table in run():
        print(table.render())
        print()
