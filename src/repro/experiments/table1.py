"""Table 1: memcached page-walk latency under deployment pressure.

Normalised to native execution in isolation with the 80GB dataset.  The
paper reports: 5x larger dataset 1.2x, SMT colocation 2.7x, virtualization
5.3x, virtualization + colocation 12.0x.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.common import (
    DEFAULT_SCALE,
    Engine,
    Table,
    deployment_job,
    execute,
)
from repro.runtime.job import NATIVE, VIRTUALIZED, Job
from repro.sim.runner import Scale

#: (row label, workload, job kind, colocated).  The cells are the same
#: baseline deployment jobs Figures 2/3 sweep, so the engine runs them
#: once per sweep.
SCENARIOS = (
    ("native 80GB (reference)", "mc80", NATIVE, False),
    ("5x larger dataset (400GB)", "mc400", NATIVE, False),
    ("SMT colocation", "mc80", NATIVE, True),
    ("virtualization", "mc80", VIRTUALIZED, False),
    ("virtualization + SMT colocation", "mc80", VIRTUALIZED, True),
)


def jobs(scale: Scale) -> list[Job]:
    return [deployment_job(workload, kind, colocated, scale)
            for _, workload, kind, colocated in SCENARIOS]


def tables(results: Mapping[Job, Any], scale: Scale) -> Table:
    reference = results[deployment_job("mc80", NATIVE, False,
                                       scale)].avg_walk_latency
    table = Table(
        title=("Table 1: increase in memcached page walk latency "
               "(normalised to native, isolated, 80GB)"),
        columns=["scenario", "avg_walk_cycles", "normalised"],
        notes="Paper: 1.2x / 2.7x / 5.3x / 12.0x.",
    )
    for label, workload, kind, colocated in SCENARIOS:
        stats = results[deployment_job(workload, kind, colocated, scale)]
        table.add_row(
            scenario=label,
            avg_walk_cycles=stats.avg_walk_latency,
            normalised=stats.avg_walk_latency / reference,
        )
    return table


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> Table:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
