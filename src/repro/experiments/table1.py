"""Table 1: memcached page-walk latency under deployment pressure.

Normalised to native execution in isolation with the 80GB dataset.  The
paper reports: 5x larger dataset 1.2x, SMT colocation 2.7x, virtualization
5.3x, virtualization + colocation 12.0x.
"""

from __future__ import annotations

from repro.core.config import BASELINE
from repro.experiments.common import DEFAULT_SCALE, ExperimentTable
from repro.sim.runner import Scale, run_native, run_virtualized


def run(scale: Scale | None = None) -> ExperimentTable:
    scale = scale or DEFAULT_SCALE
    base = run_native("mc80", BASELINE, scale=scale, collect_service=False)
    bigger = run_native("mc400", BASELINE, scale=scale,
                        collect_service=False)
    coloc = run_native("mc80", BASELINE, colocated=True, scale=scale,
                       collect_service=False)
    virt = run_virtualized("mc80", BASELINE, scale=scale,
                           collect_service=False)
    virt_coloc = run_virtualized("mc80", BASELINE, colocated=True,
                                 scale=scale, collect_service=False)
    reference = base.avg_walk_latency
    table = ExperimentTable(
        title=("Table 1: increase in memcached page walk latency "
               "(normalised to native, isolated, 80GB)"),
        columns=["scenario", "avg_walk_cycles", "normalised"],
        notes="Paper: 1.2x / 2.7x / 5.3x / 12.0x.",
    )
    for label, stats in (
        ("native 80GB (reference)", base),
        ("5x larger dataset (400GB)", bigger),
        ("SMT colocation", coloc),
        ("virtualization", virt),
        ("virtualization + SMT colocation", virt_coloc),
    ):
        table.add_row(
            scenario=label,
            avg_walk_cycles=stats.avg_walk_latency,
            normalised=stats.avg_walk_latency / reference,
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
