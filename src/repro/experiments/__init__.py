"""One module per reproduced table/figure of the paper's evaluation (§5).

Each module exposes ``jobs(scale)`` (its grid as declarative
:class:`~repro.runtime.job.Job` specs), ``tables(results, scale)`` and
``run(scale=None, engine=None)`` returning one or more
:class:`~repro.stats.tables.Table` objects (the structured cell model
shared with the service layer) that render in the paper's layout.  ``repro.experiments.report`` regenerates everything;
``python -m repro sweep`` batches all grids through one engine call.

Paper cross-references: Tables 1/2 and Figures 2/3 (§1-2 motivation),
Figures 8-10 (§5.1-5.2 ASAP ladders), Table 6 (§5.3 projection),
Figure 11/Table 7 (§5.4.1 Clustered TLB), Figure 12 (§5.4.2 2MB host
pages), ablations (§5.1.1 PWC capacity, §3.5 five-level, §3.7.2 holes).
``compare`` goes beyond the paper: it races the translation schemes of
`repro.schemes` head-to-head on the same substrate.
"""

from repro.experiments import (
    ablations,
    compare,
    fig2,
    fig3,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table2,
    table6,
)
from repro.experiments.common import DEFAULT_SCALE, ExperimentTable, Table

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentTable",
    "Table",
    "ablations",
    "compare",
    "fig10",
    "fig11",
    "fig12",
    "fig2",
    "fig3",
    "fig8",
    "fig9",
    "table1",
    "table2",
    "table6",
]
