"""One module per reproduced table/figure of the paper's evaluation.

Each module exposes ``run(scale=None)`` returning one or more
:class:`~repro.experiments.common.ExperimentTable` objects that render in
the paper's layout.  ``repro.experiments.report`` regenerates everything.
"""

from repro.experiments import (
    ablations,
    fig2,
    fig3,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table2,
    table6,
)
from repro.experiments.common import DEFAULT_SCALE, ExperimentTable

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentTable",
    "ablations",
    "fig10",
    "fig11",
    "fig12",
    "fig2",
    "fig3",
    "fig8",
    "fig9",
    "table1",
    "table2",
    "table6",
]
