"""Figure 12: ASAP under virtualization with 2MB host pages (§5.4.2).

The hypervisor backs guest-physical memory with 2MB pages, shortening
every host 1D walk from four accesses to three (19 per 2D walk).  ASAP
prefetches PL1+PL2 in the guest and PL2 only in the host (the host leaf
*is* PL2).  Paper: ASAP still cuts 25% in isolation (31% best) and 30%
under colocation (44% best).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.config import BASELINE, LARGE_HOST
from repro.experiments.common import (
    DEFAULT_SCALE,
    Engine,
    Table,
    execute,
    mean,
    reduction,
)
from repro.runtime.job import VIRTUALIZED, Job
from repro.sim.runner import Scale
from repro.workloads.suite import ALL_NAMES


def _job(name: str, config, colocated: bool, scale: Scale) -> Job:
    return Job(kind=VIRTUALIZED, workload=name, config=config, scale=scale,
               colocated=colocated, host_page_level=2)


def jobs(scale: Scale) -> list[Job]:
    return [_job(name, config, colocated, scale)
            for name in ALL_NAMES
            for config in (BASELINE, LARGE_HOST)
            for colocated in (False, True)]


def tables(results: Mapping[Job, Any], scale: Scale) -> Table:
    table = Table(
        title="Figure 12: virtualized walk latency with 2MB host pages "
              "(cycles; lower is better)",
        columns=["workload", "Baseline", "ASAP", "red_%",
                 "Baseline+coloc", "ASAP+coloc", "coloc_red_%"],
        notes="ASAP = P1g+P2g+P2h.  Paper: 25% avg / 31% max isolation; "
              "30% avg / 44% max colocation.",
    )
    for name in ALL_NAMES:
        base = results[_job(name, BASELINE, False, scale)]
        asap = results[_job(name, LARGE_HOST, False, scale)]
        base_c = results[_job(name, BASELINE, True, scale)]
        asap_c = results[_job(name, LARGE_HOST, True, scale)]
        table.add_row(
            workload=name,
            Baseline=base.avg_walk_latency,
            ASAP=asap.avg_walk_latency,
            **{
                "red_%": reduction(base.avg_walk_latency,
                                   asap.avg_walk_latency),
                "Baseline+coloc": base_c.avg_walk_latency,
                "ASAP+coloc": asap_c.avg_walk_latency,
                "coloc_red_%": reduction(base_c.avg_walk_latency,
                                         asap_c.avg_walk_latency),
            },
        )
    table.add_row(
        workload="Average",
        **{
            column: mean([row[column] for row in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> Table:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
