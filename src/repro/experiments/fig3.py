"""Figure 3: average page-walk latency in the four deployment scenarios.

The paper's headline motivation: latency climbs from tens of cycles
(native, isolated) to hundreds (virtualized + colocated).
"""

from __future__ import annotations

from repro.core.config import BASELINE
from repro.experiments.common import DEFAULT_SCALE, ExperimentTable, mean
from repro.sim.runner import Scale, run_native, run_virtualized
from repro.workloads.suite import ALL_NAMES


def run(scale: Scale | None = None) -> ExperimentTable:
    scale = scale or DEFAULT_SCALE
    table = ExperimentTable(
        title="Figure 3: average page walk latency (cycles)",
        columns=["workload", "native", "native+coloc", "virtualized",
                 "virt+coloc"],
    )
    for name in ALL_NAMES:
        native = run_native(name, BASELINE, scale=scale,
                            collect_service=False)
        coloc = run_native(name, BASELINE, colocated=True, scale=scale,
                           collect_service=False)
        virt = run_virtualized(name, BASELINE, scale=scale,
                               collect_service=False)
        virt_coloc = run_virtualized(name, BASELINE, colocated=True,
                                     scale=scale, collect_service=False)
        table.add_row(
            workload=name,
            **{
                "native": native.avg_walk_latency,
                "native+coloc": coloc.avg_walk_latency,
                "virtualized": virt.avg_walk_latency,
                "virt+coloc": virt_coloc.avg_walk_latency,
            },
        )
    table.add_row(
        workload="Average",
        **{
            column: mean([row[column] for row in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
