"""Figure 3: average page-walk latency in the four deployment scenarios.

The paper's headline motivation: latency climbs from tens of cycles
(native, isolated) to hundreds (virtualized + colocated).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.common import (
    DEFAULT_SCALE,
    DEPLOYMENT_SCENARIOS,
    Engine,
    Table,
    deployment_job,
    execute,
    mean,
)
from repro.runtime.job import Job
from repro.sim.runner import Scale
from repro.workloads.suite import ALL_NAMES


def jobs(scale: Scale) -> list[Job]:
    return [deployment_job(name, kind, colocated, scale)
            for name in ALL_NAMES
            for _, kind, colocated in DEPLOYMENT_SCENARIOS]


def tables(results: Mapping[Job, Any], scale: Scale) -> Table:
    table = Table(
        title="Figure 3: average page walk latency (cycles)",
        columns=["workload",
                 *(label for label, _, _ in DEPLOYMENT_SCENARIOS)],
    )
    for name in ALL_NAMES:
        table.add_row(
            workload=name,
            **{
                label: results[deployment_job(name, kind, coloc,
                                              scale)].avg_walk_latency
                for label, kind, coloc in DEPLOYMENT_SCENARIOS
            },
        )
    table.add_row(
        workload="Average",
        **{
            column: mean([row[column] for row in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> Table:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
