"""Figure 9: which memory-hierarchy level serves each PT level's requests.

Four panels: mcf and redis, in isolation and under SMT colocation.  The
paper's reading: mcf's upper levels are ~all PWC hits and its PL1 mostly
L1-D (little for ASAP to overlap); redis misses the PWC far more at PL2,
giving ASAP room; colocation drains the L1-D share everywhere.

These four cells deliberately carry ``collect_service=True`` and are
therefore distinct specs from the Figure 2/3 baseline cells of the same
scenarios: the sweep re-simulates them (four extra jobs, ~1% of a full
sweep) rather than letting a job's results differ from what its spec
alone determines.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.config import BASELINE
from repro.experiments.common import (
    DEFAULT_SCALE,
    Engine,
    Table,
    execute,
)
from repro.runtime.job import NATIVE, Job
from repro.sim.runner import Scale
from repro.sim.stats import SERVICE_LABELS

PANELS = (
    ("a", "mcf", False),
    ("b", "redis", False),
    ("c", "mcf", True),
    ("d", "redis", True),
)


def _job(workload: str, colocated: bool, scale: Scale) -> Job:
    return Job(kind=NATIVE, workload=workload, config=BASELINE,
               scale=scale, colocated=colocated, collect_service=True)


def jobs(scale: Scale) -> list[Job]:
    return [_job(workload, colocated, scale)
            for _, workload, colocated in PANELS]


def _panel(results: Mapping[Job, Any], letter: str, workload: str,
           colocated: bool, scale: Scale) -> Table:
    label = "under SMT colocation" if colocated else "in isolation"
    stats = results[_job(workload, colocated, scale)]
    table = Table(
        title=f"Figure 9{letter}: {workload} {label} — % of walk requests "
              "served per level",
        columns=["pt_level", *SERVICE_LABELS],
    )
    for pt_level in (4, 3, 2, 1):
        fractions = stats.service.fractions(pt_level)
        table.add_row(
            pt_level=f"PL{pt_level}",
            **{lbl: 100 * fractions.get(lbl, 0.0) for lbl in SERVICE_LABELS},
        )
    return table


def tables(results: Mapping[Job, Any],
           scale: Scale) -> list[Table]:
    return [_panel(results, letter, workload, colocated, scale)
            for letter, workload, colocated in PANELS]


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> list[Table]:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    for panel in run():
        print(panel.render())
        print()
