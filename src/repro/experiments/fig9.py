"""Figure 9: which memory-hierarchy level serves each PT level's requests.

Four panels: mcf and redis, in isolation and under SMT colocation.  The
paper's reading: mcf's upper levels are ~all PWC hits and its PL1 mostly
L1-D (little for ASAP to overlap); redis misses the PWC far more at PL2,
giving ASAP room; colocation drains the L1-D share everywhere.
"""

from __future__ import annotations

from repro.core.config import BASELINE
from repro.experiments.common import DEFAULT_SCALE, ExperimentTable
from repro.sim.runner import Scale, run_native
from repro.sim.stats import SERVICE_LABELS

PANELS = (
    ("a", "mcf", False),
    ("b", "redis", False),
    ("c", "mcf", True),
    ("d", "redis", True),
)


def _panel(letter: str, workload: str, colocated: bool,
           scale: Scale) -> ExperimentTable:
    label = "under SMT colocation" if colocated else "in isolation"
    stats = run_native(workload, BASELINE, colocated=colocated, scale=scale)
    table = ExperimentTable(
        title=f"Figure 9{letter}: {workload} {label} — % of walk requests "
              "served per level",
        columns=["pt_level", *SERVICE_LABELS],
    )
    for pt_level in (4, 3, 2, 1):
        fractions = stats.service.fractions(pt_level)
        table.add_row(
            pt_level=f"PL{pt_level}",
            **{lbl: 100 * fractions.get(lbl, 0.0) for lbl in SERVICE_LABELS},
        )
    return table


def run(scale: Scale | None = None) -> list[ExperimentTable]:
    scale = scale or DEFAULT_SCALE
    return [_panel(letter, workload, colocated, scale)
            for letter, workload, colocated in PANELS]


if __name__ == "__main__":  # pragma: no cover
    for panel in run():
        print(panel.render())
        print()
