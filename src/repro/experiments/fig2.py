"""Figure 2: fraction of execution time spent in page walks.

Four scenarios per workload — native, native + SMT colocation,
virtualized, virtualized + colocation — for the Figure 2 workload set
(mc400 is excluded there, as in the paper).  The paper reports up to 82%
(native) and 93% (virtualized) of CPU cycles lost to walks.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.common import (
    DEFAULT_SCALE,
    DEPLOYMENT_SCENARIOS,
    Engine,
    Table,
    deployment_job,
    execute,
    mean,
)
from repro.runtime.job import Job
from repro.sim.runner import Scale
from repro.workloads.suite import FIGURE2_NAMES


def jobs(scale: Scale) -> list[Job]:
    return [deployment_job(name, kind, colocated, scale)
            for name in FIGURE2_NAMES
            for _, kind, colocated in DEPLOYMENT_SCENARIOS]


def tables(results: Mapping[Job, Any], scale: Scale) -> Table:
    table = Table(
        title="Figure 2: % of execution time spent in page walks",
        columns=["workload",
                 *(label for label, _, _ in DEPLOYMENT_SCENARIOS)],
    )
    for name in FIGURE2_NAMES:
        table.add_row(
            workload=name,
            **{
                label: 100 * results[deployment_job(name, kind, coloc,
                                                    scale)].walk_fraction
                for label, kind, coloc in DEPLOYMENT_SCENARIOS
            },
        )
    table.add_row(
        workload="Average",
        **{
            column: mean([row[column] for row in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> Table:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
