"""Figure 2: fraction of execution time spent in page walks.

Four scenarios per workload — native, native + SMT colocation,
virtualized, virtualized + colocation — for the Figure 2 workload set
(mc400 is excluded there, as in the paper).  The paper reports up to 82%
(native) and 93% (virtualized) of CPU cycles lost to walks.
"""

from __future__ import annotations

from repro.core.config import BASELINE
from repro.experiments.common import DEFAULT_SCALE, ExperimentTable, mean
from repro.sim.runner import Scale, run_native, run_virtualized
from repro.workloads.suite import FIGURE2_NAMES


def run(scale: Scale | None = None) -> ExperimentTable:
    scale = scale or DEFAULT_SCALE
    table = ExperimentTable(
        title="Figure 2: % of execution time spent in page walks",
        columns=["workload", "native", "native+coloc", "virtualized",
                 "virt+coloc"],
    )
    for name in FIGURE2_NAMES:
        native = run_native(name, BASELINE, scale=scale,
                            collect_service=False)
        coloc = run_native(name, BASELINE, colocated=True, scale=scale,
                           collect_service=False)
        virt = run_virtualized(name, BASELINE, scale=scale,
                               collect_service=False)
        virt_coloc = run_virtualized(name, BASELINE, colocated=True,
                                     scale=scale, collect_service=False)
        table.add_row(
            workload=name,
            **{
                "native": 100 * native.walk_fraction,
                "native+coloc": 100 * coloc.walk_fraction,
                "virtualized": 100 * virt.walk_fraction,
                "virt+coloc": 100 * virt_coloc.walk_fraction,
            },
        )
    table.add_row(
        workload="Average",
        **{
            column: mean([row[column] for row in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
