"""Table 6: conservative projection of ASAP's performance improvement.

Methodology (§5.3): (1) measure the fraction of cycles spent in page walks
on the critical path by comparing normal execution against execution with
(almost) no TLB misses — the paper uses libhugetlbfs + small datasets, we
use an infinite TLB, which likewise leaves only cold misses; (2) multiply
by ASAP's walk-latency reduction under virtualization in isolation
(the P1g+P1h+P2g+P2h configuration of Figure 10a).

memcached is excluded, as in the paper (libhugetlbfs does not affect it).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.config import BASELINE, FULL_2D
from repro.experiments.common import (
    DEFAULT_SCALE,
    Engine,
    Table,
    execute,
    mean,
    reduction,
)
from repro.runtime.job import NATIVE, VIRTUALIZED, Job
from repro.sim.runner import Scale
from repro.workloads.suite import TABLE6_NAMES


def _normal(name: str, scale: Scale) -> Job:
    return Job(kind=NATIVE, workload=name, config=BASELINE, scale=scale)


def _no_walks(name: str, scale: Scale) -> Job:
    return Job(kind=NATIVE, workload=name, config=BASELINE, scale=scale,
               infinite_tlb=True)


def _virt_base(name: str, scale: Scale) -> Job:
    return Job(kind=VIRTUALIZED, workload=name, config=BASELINE,
               scale=scale)


def _virt_asap(name: str, scale: Scale) -> Job:
    return Job(kind=VIRTUALIZED, workload=name, config=FULL_2D,
               scale=scale)


def jobs(scale: Scale) -> list[Job]:
    return [builder(name, scale)
            for name in TABLE6_NAMES
            for builder in (_normal, _no_walks, _virt_base, _virt_asap)]


def tables(results: Mapping[Job, Any], scale: Scale) -> Table:
    table = Table(
        title="Table 6: conservative projection of ASAP's performance "
              "improvement",
        columns=["workload", "critical_path_%", "asap_reduction_%",
                 "min_improvement_%"],
        notes="Paper averages: 34% / 39% / 12%.",
    )
    for name in TABLE6_NAMES:
        normal = results[_normal(name, scale)]
        no_walks = results[_no_walks(name, scale)]
        if normal.cycles:
            critical = 100.0 * max(
                0.0, (normal.cycles - no_walks.cycles) / normal.cycles
            )
        else:
            critical = 0.0
        asap_reduction = reduction(
            results[_virt_base(name, scale)].avg_walk_latency,
            results[_virt_asap(name, scale)].avg_walk_latency,
        )
        table.add_row(
            workload=name,
            **{
                "critical_path_%": critical,
                "asap_reduction_%": asap_reduction,
                "min_improvement_%": critical * asap_reduction / 100.0,
            },
        )
    table.add_row(
        workload="Average",
        **{
            column: mean([row[column] for row in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> Table:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
