"""Table 6: conservative projection of ASAP's performance improvement.

Methodology (§5.3): (1) measure the fraction of cycles spent in page walks
on the critical path by comparing normal execution against execution with
(almost) no TLB misses — the paper uses libhugetlbfs + small datasets, we
use an infinite TLB, which likewise leaves only cold misses; (2) multiply
by ASAP's walk-latency reduction under virtualization in isolation
(the P1g+P1h+P2g+P2h configuration of Figure 10a).

memcached is excluded, as in the paper (libhugetlbfs does not affect it).
"""

from __future__ import annotations

from repro.core.config import BASELINE, FULL_2D
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentTable,
    mean,
    reduction,
)
from repro.sim.runner import Scale, run_native, run_virtualized
from repro.workloads.suite import TABLE6_NAMES


def run(scale: Scale | None = None) -> ExperimentTable:
    scale = scale or DEFAULT_SCALE
    table = ExperimentTable(
        title="Table 6: conservative projection of ASAP's performance "
              "improvement",
        columns=["workload", "critical_path_%", "asap_reduction_%",
                 "min_improvement_%"],
        notes="Paper averages: 34% / 39% / 12%.",
    )
    for name in TABLE6_NAMES:
        normal = run_native(name, BASELINE, scale=scale,
                            collect_service=False)
        no_walks = run_native(name, BASELINE, infinite_tlb=True,
                              scale=scale, collect_service=False)
        if normal.cycles:
            critical = 100.0 * max(
                0.0, (normal.cycles - no_walks.cycles) / normal.cycles
            )
        else:
            critical = 0.0
        virt_base = run_virtualized(name, BASELINE, scale=scale,
                                    collect_service=False)
        virt_asap = run_virtualized(name, FULL_2D, scale=scale,
                                    collect_service=False)
        asap_reduction = reduction(virt_base.avg_walk_latency,
                                   virt_asap.avg_walk_latency)
        table.add_row(
            workload=name,
            **{
                "critical_path_%": critical,
                "asap_reduction_%": asap_reduction,
                "min_improvement_%": critical * asap_reduction / 100.0,
            },
        )
    table.add_row(
        workload="Average",
        **{
            column: mean([row[column] for row in table.rows])
            for column in table.columns[1:]
        },
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
