"""Trace-scale convergence sweep (`repro scaling`).

Not a figure from the source paper — it is the experiment that
justifies trusting all the others.  The paper's evaluation replays
billions of instructions; this repro's default cells replay 60k
records, where translation-cycle fractions are still warmup-dominated
(cold page-table fetches weigh more, TLB/PWC reach never hits steady
state — calibration effect C1 of EXPERIMENTS.md).  This module sweeps
the record count across more than two orders of magnitude — at the
default report scale exactly {60k, 1M, 10M} — for the baseline and
ASAP pipelines and reports how the translation-cycle fraction
converges; the drift columns quantify how far each smaller scale sits
from the largest run.

Anything past one generation chunk streams through `repro.traces`
(bounded memory, identical statistics to a monolithic run); the
companion tool ``tools/bench_scaling.py`` measures the wall-clock/RSS
side of the same cells into the BENCH trajectory.

``jobs_for_trace`` builds the same pair of cells around a materialised
``repro trace`` file (``repro scaling --trace``), which is how CI
streams an on-disk trace through the full job/engine/cache pipeline.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.experiments.common import (
    DEFAULT_SCALE,
    REPORT_SEEDS,
    SCHEMES,
    Engine,
    SchemeEntry,
    Table,
    aggregate,
    execute,
    mean,
    reduction,
    replicates,
    sample_key,
)
from repro.runtime.job import NATIVE, Job
from repro.sim.runner import Scale
from repro.traces.store import TraceRef

#: The convergence workload: memcached-80GB, the Table 1 anchor — a
#: big-footprint service whose 60k-record fraction is visibly far from
#: its steady state.
WORKLOAD = "mc80"

#: The two pipelines whose gap the other experiments measure.
SCHEME_NAMES = ("baseline", "asap")

#: Record-count multipliers, as fractions of the driving scale: x1,
#: x50/3 and x500/3, so the default 60k report scale lands exactly on
#: the issue's {60k, 1M, 10M} ladder and smoke scales shrink
#: proportionally.
_MULTIPLIERS = ((1, 1), (50, 3), (500, 3))


def record_counts(scale: Scale) -> tuple[int, ...]:
    return tuple(scale.trace_length * num // den
                 for num, den in _MULTIPLIERS)


def _entry(name: str) -> SchemeEntry:
    return SCHEMES[name]


def _job(records: int, entry: SchemeEntry, scale: Scale,
         trace: TraceRef | None = None, kernel: str = "scalar") -> Job:
    # Warmup stays at the driving scale's absolute count: the sweep
    # shows the *measured window* converging as it dwarfs the warmup.
    return Job(
        kind=NATIVE,
        workload=trace.workload if trace else WORKLOAD,
        config=entry.native_config,
        scale=dataclasses.replace(scale, trace_length=records),
        scheme=entry.spec,
        trace=trace,
        kernel=kernel,
    )


def _cell_scales(records: int, scale: Scale, seeds: int) -> list[Scale]:
    """Replicate only the base rung: the larger rungs exist to measure
    convergence against a single long run, and replicating a 10M-record
    cell would multiply the sweep's dominant cost for a column whose
    variance the base rung already characterizes."""
    if records == scale.trace_length:
        return replicates(scale, seeds)
    return [scale]


def jobs(scale: Scale | None = None,
         kernel: str = "scalar",
         seeds: int = REPORT_SEEDS) -> list[Job]:
    scale = scale or DEFAULT_SCALE
    return [_job(records, _entry(name), rep, kernel=kernel)
            for records in record_counts(scale)
            for name in SCHEME_NAMES
            for rep in _cell_scales(records, scale, seeds)]


def jobs_for_trace(ref: TraceRef, seed: int | None = None,
                   kernel: str = "scalar") -> list[Job]:
    """The baseline/ASAP pair replaying one materialised trace."""
    scale = Scale(trace_length=ref.records,
                  warmup=min(DEFAULT_SCALE.warmup, ref.records // 5),
                  seed=ref.seed if seed is None else seed)
    return [_job(ref.records, _entry(name), scale, trace=ref,
                 kernel=kernel)
            for name in SCHEME_NAMES]


# ----------------------------------------------------------------------
def _table_for(job_list: list[Job], results: Mapping[Job, Any],
               title: str) -> Table:
    # Group each (records, scheme) cell's replicate jobs in list order;
    # single-replicate cells degenerate to the historical one-job cell.
    cells: dict[tuple[int, str], list[Job]] = {}
    for job in job_list:
        cells.setdefault(
            (job.scale.trace_length, job.scheme.kind), []).append(job)
    counts = sorted({records for records, _ in cells})
    samples = {
        key: [100.0 * results[job].walk_fraction for job in jobs_]
        for key, jobs_ in cells.items()
    }
    largest = counts[-1]
    table = Table(
        title=title,
        columns=["records", "baseline_pct", "asap_pct", "asap_reduction",
                 "baseline_drift_pp", "asap_drift_pp"],
        notes=("Translation-cycle fraction (% of execution cycles; lower "
               "is better).  drift_pp: percentage-point distance from "
               "the largest run — how far a small-trace measurement "
               "sits from converged steady state."),
        baseline="baseline_pct",
    )
    # The largest rung is the single convergence anchor every drift
    # column measures against.
    anchor = {name: mean(samples[(largest, name)])
              for name in SCHEME_NAMES}
    for records in counts:
        base = samples[(records, "baseline")]
        asap = samples[(records, "asap")]
        base_key = sample_key(cells[(records, "baseline")])
        asap_key = sample_key(cells[(records, "asap")])
        table.add_row(
            records=records,
            baseline_pct=aggregate(base, key=base_key),
            asap_pct=aggregate(asap, key=asap_key, baseline=base),
            asap_reduction=aggregate(
                [reduction(b, a) for b, a in zip(base, asap)],
                key="reduction:" + base_key + ";" + asap_key),
            baseline_drift_pp=aggregate(
                [b - anchor["baseline"] for b in base],
                key="drift:" + base_key),
            asap_drift_pp=aggregate(
                [a - anchor["asap"] for a in asap],
                key="drift:" + asap_key),
        )
    return table


def tables(results: Mapping[Job, Any],
           scale: Scale | None = None,
           kernel: str = "scalar",
           seeds: int = REPORT_SEEDS) -> Table:
    # The title deliberately omits the kernel: scalar and columnar runs
    # of the same cells must render byte-identical tables (CI's
    # sweep-determinism job diffs them).
    scale = scale or DEFAULT_SCALE
    job_list = jobs(scale, kernel=kernel, seeds=seeds)
    return _table_for(
        job_list, results,
        title=(f"Scaling: translation-cycle fraction convergence "
               f"({WORKLOAD}, native, warmup {scale.warmup})"),
    )


def run(scale: Scale | None = None,
        engine: Engine | None = None,
        kernel: str = "scalar",
        seeds: int = REPORT_SEEDS) -> Table:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale, kernel=kernel, seeds=seeds),
                          engine), scale, kernel=kernel, seeds=seeds)


def run_for_trace(ref: TraceRef, engine: Engine | None = None,
                  seed: int | None = None,
                  kernel: str = "scalar") -> Table:
    """``repro scaling --trace``: the pair of cells over one file."""
    job_list = jobs_for_trace(ref, seed=seed, kernel=kernel)
    results = execute(job_list, engine)
    return _table_for(
        job_list, results,
        title=(f"Scaling (trace {ref.digest[:12]}...): {ref.workload}, "
               f"{ref.records} records, native"),
    )
