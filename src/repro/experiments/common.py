"""Shared infrastructure for the per-figure/table experiment modules.

Every experiment module exposes three functions:

* ``jobs(scale) -> list[Job]`` — the experiment's grid as declarative
  :class:`~repro.runtime.job.Job` specs;
* ``tables(results, scale)`` — assemble the module's
  :class:`ExperimentTable` objects from an executed results mapping;
* ``run(scale=None, engine=None)`` — the historical one-call entry point,
  now ``tables(engine.run_jobs(jobs(scale)), scale)``.

Splitting grid construction from table assembly is what lets ``repro
sweep`` batch every experiment's jobs into one engine invocation: shared
cells (every ladder's baseline, Table 1's reuse of Figure 3 scenarios, …)
execute once, and the whole batch fans out over ``--jobs`` processes.

The table carries labelled rows and renders itself in the paper's layout
so benchmark output reads side by side with the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core import config as cfg
from repro.core.config import (
    BASELINE,
    NATIVE_LADDER,
    VIRT_LADDER,
    AsapConfig,
)
from repro.runtime.engine import Engine, execute
from repro.runtime.job import NATIVE, VIRTUALIZED, Job
from repro.schemes import SchemeSpec
from repro.sim.runner import Scale

__all__ = [
    "CONFIGS",
    "DEFAULT_SCALE",
    "DEPLOYMENT_SCENARIOS",
    "Engine",
    "ExperimentTable",
    "NATIVE_LADDER",
    "SCHEMES",
    "SchemeEntry",
    "VIRT_LADDER",
    "deployment_job",
    "execute",
    "mean",
    "reduction",
    "scheme_job",
]

#: Default scale for experiment modules when none is given.
DEFAULT_SCALE = Scale(trace_length=60_000, warmup=12_000, seed=42)

#: Canonical name -> AsapConfig registry: the one source of truth for
#: the CLI's ``--config`` choices and any module that needs a ladder by
#: name.  The ladders themselves (:data:`NATIVE_LADDER`,
#: :data:`VIRT_LADDER`) are re-exported above so figure modules stop
#: re-listing configs locally.
CONFIGS: dict[str, AsapConfig] = {
    "baseline": cfg.BASELINE,
    "p1": cfg.P1,
    "p1+p2": cfg.P1_P2,
    "p1g": cfg.P1G,
    "p1g+p2g": cfg.P1G_P2G,
    "p1g+p1h": cfg.P1G_P1H,
    "full": cfg.FULL_2D,
    "large-host": cfg.LARGE_HOST,
}


@dataclass(frozen=True)
class SchemeEntry:
    """One competitor in the head-to-head comparison: the scheme spec
    plus the ASAP ladder config it rides in each mode (non-ASAP schemes
    carry the baseline config in both)."""

    name: str
    spec: SchemeSpec
    native_config: AsapConfig = BASELINE
    virt_config: AsapConfig = BASELINE


#: The ``repro compare`` roster, strongest config per scheme and mode.
SCHEMES: dict[str, SchemeEntry] = {
    "baseline": SchemeEntry("baseline", SchemeSpec(kind="baseline")),
    "asap": SchemeEntry("asap", SchemeSpec(kind="asap"),
                        native_config=cfg.P1_P2, virt_config=cfg.FULL_2D),
    "victima": SchemeEntry("victima", SchemeSpec.victima()),
    "revelator": SchemeEntry("revelator", SchemeSpec.revelator()),
}


def scheme_job(kind: str, workload: str, entry: SchemeEntry,
               scale: Scale, kernel: str = "scalar") -> Job:
    """One comparison cell: ``entry``'s scheme in ``kind`` mode.

    At the default (scalar) kernel the baseline and ASAP cells are
    value-equal to the jobs the figure modules emit (same config, same
    derived scheme), so the engine deduplicates them across ``repro
    compare`` and the ladders.
    """
    config = (entry.native_config if kind == NATIVE
              else entry.virt_config)
    return Job(kind=kind, workload=workload, config=config, scale=scale,
               scheme=entry.spec, kernel=kernel)

#: The four deployment scenarios of Figures 2/3 as (column label, job
#: kind, colocated).  Shared so both figures — and anything else sweeping
#: the deployment dimension — emit value-equal jobs that the engine can
#: deduplicate across experiments.
DEPLOYMENT_SCENARIOS = (
    ("native", NATIVE, False),
    ("native+coloc", NATIVE, True),
    ("virtualized", VIRTUALIZED, False),
    ("virt+coloc", VIRTUALIZED, True),
)


def deployment_job(name: str, kind: str, colocated: bool,
                   scale: Scale) -> Job:
    """One baseline deployment-scenario cell (Figures 2/3, Table 1)."""
    return Job(kind=kind, workload=name, config=BASELINE, scale=scale,
               colocated=colocated)


@dataclass
class ExperimentTable:
    """Labelled rows plus formatting, one per reproduced table/figure."""

    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def row_by(self, key_column: str, key: Any) -> dict[str, Any]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")

    # ------------------------------------------------------------------
    def render(self) -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        widths = {
            column: max(
                len(column),
                *(len(fmt(row.get(column, ""))) for row in self.rows),
            ) if self.rows else len(column)
            for column in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(
                    fmt(row.get(c, "")).rjust(widths[c])
                    if isinstance(row.get(c), (int, float))
                    else fmt(row.get(c, "")).ljust(widths[c])
                    for c in self.columns
                )
            )
        lines.append(rule)
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def reduction(baseline: float, improved: float) -> float:
    """Relative reduction (%), the paper's headline arithmetic."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (1.0 - improved / baseline)


def mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
