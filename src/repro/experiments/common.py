"""Shared infrastructure for the per-figure/table experiment modules.

Every experiment module exposes three functions:

* ``jobs(scale) -> list[Job]`` — the experiment's grid as declarative
  :class:`~repro.runtime.job.Job` specs;
* ``tables(results, scale)`` — assemble the module's
  :class:`ExperimentTable` objects from an executed results mapping;
* ``run(scale=None, engine=None)`` — the historical one-call entry point,
  now ``tables(engine.run_jobs(jobs(scale)), scale)``.

Splitting grid construction from table assembly is what lets ``repro
sweep`` batch every experiment's jobs into one engine invocation: shared
cells (every ladder's baseline, Table 1's reuse of Figure 3 scenarios, …)
execute once, and the whole batch fans out over ``--jobs`` processes.

Tables are :class:`repro.stats.tables.Table` objects — the structured
cell model shared with the incremental reporter and the HTTP endpoint —
and render in the paper's layout so benchmark output reads side by side
with the original.  ``ExperimentTable`` remains as an alias for the many
historical call sites.

The replication axis (multi-seed cells with confidence intervals and
significance markers) lives here too: :func:`replicates` expands a base
scale into :data:`REPORT_SEEDS` seed-perturbed copies via
``Scale.with_replicate``; replicate 0 is the base scale itself, so
adding replication never invalidates a cached cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core import config as cfg
from repro.core.config import (
    BASELINE,
    NATIVE_LADDER,
    VIRT_LADDER,
    AsapConfig,
)
from repro.runtime.engine import Engine, execute
from repro.runtime.job import NATIVE, VIRTUALIZED, Job
from repro.schemes import SchemeSpec
from repro.sim.runner import Scale
from repro.stats.tables import Cell, Table, aggregate

__all__ = [
    "CONFIGS",
    "Cell",
    "DEFAULT_SCALE",
    "DEPLOYMENT_SCENARIOS",
    "Engine",
    "ExperimentTable",
    "NATIVE_LADDER",
    "REPORT_SEEDS",
    "SCHEMES",
    "SchemeEntry",
    "Table",
    "VIRT_LADDER",
    "aggregate",
    "deployment_job",
    "execute",
    "mean",
    "reduction",
    "replicates",
    "sample_key",
    "scheme_job",
]

#: Default scale for experiment modules when none is given.
DEFAULT_SCALE = Scale(trace_length=60_000, warmup=12_000, seed=42)

#: Default replicate count for the comparative experiments
#: (compare/mt/scaling): every report-scale cell is measured over this
#: many seeds and rendered as ``mean ±95% CI``.
REPORT_SEEDS = 5


def replicates(scale: Scale, seeds: int) -> list[Scale]:
    """``seeds`` replicate scales of ``scale`` (replicate 0 = itself)."""
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    return [scale.with_replicate(r) for r in range(seeds)]


def sample_key(jobs: Iterable[Job]) -> str:
    """The deterministic seeding key for a cell's resampling streams:
    the joined spec hashes of the jobs whose samples it summarizes."""
    return ",".join(job.spec_hash() for job in jobs)

#: Canonical name -> AsapConfig registry: the one source of truth for
#: the CLI's ``--config`` choices and any module that needs a ladder by
#: name.  The ladders themselves (:data:`NATIVE_LADDER`,
#: :data:`VIRT_LADDER`) are re-exported above so figure modules stop
#: re-listing configs locally.
CONFIGS: dict[str, AsapConfig] = {
    "baseline": cfg.BASELINE,
    "p1": cfg.P1,
    "p1+p2": cfg.P1_P2,
    "p1g": cfg.P1G,
    "p1g+p2g": cfg.P1G_P2G,
    "p1g+p1h": cfg.P1G_P1H,
    "full": cfg.FULL_2D,
    "large-host": cfg.LARGE_HOST,
}


@dataclass(frozen=True)
class SchemeEntry:
    """One competitor in the head-to-head comparison: the scheme spec
    plus the ASAP ladder config it rides in each mode (non-ASAP schemes
    carry the baseline config in both)."""

    name: str
    spec: SchemeSpec
    native_config: AsapConfig = BASELINE
    virt_config: AsapConfig = BASELINE


#: The ``repro compare`` roster, strongest config per scheme and mode.
SCHEMES: dict[str, SchemeEntry] = {
    "baseline": SchemeEntry("baseline", SchemeSpec(kind="baseline")),
    "asap": SchemeEntry("asap", SchemeSpec(kind="asap"),
                        native_config=cfg.P1_P2, virt_config=cfg.FULL_2D),
    "victima": SchemeEntry("victima", SchemeSpec.victima()),
    "revelator": SchemeEntry("revelator", SchemeSpec.revelator()),
}


def scheme_job(kind: str, workload: str, entry: SchemeEntry,
               scale: Scale, kernel: str = "scalar") -> Job:
    """One comparison cell: ``entry``'s scheme in ``kind`` mode.

    At the default (scalar) kernel the baseline and ASAP cells are
    value-equal to the jobs the figure modules emit (same config, same
    derived scheme), so the engine deduplicates them across ``repro
    compare`` and the ladders.
    """
    config = (entry.native_config if kind == NATIVE
              else entry.virt_config)
    return Job(kind=kind, workload=workload, config=config, scale=scale,
               scheme=entry.spec, kernel=kernel)

#: The four deployment scenarios of Figures 2/3 as (column label, job
#: kind, colocated).  Shared so both figures — and anything else sweeping
#: the deployment dimension — emit value-equal jobs that the engine can
#: deduplicate across experiments.
DEPLOYMENT_SCENARIOS = (
    ("native", NATIVE, False),
    ("native+coloc", NATIVE, True),
    ("virtualized", VIRTUALIZED, False),
    ("virt+coloc", VIRTUALIZED, True),
)


def deployment_job(name: str, kind: str, colocated: bool,
                   scale: Scale) -> Job:
    """One baseline deployment-scenario cell (Figures 2/3, Table 1)."""
    return Job(kind=kind, workload=name, config=BASELINE, scale=scale,
               colocated=colocated)


#: Back-compat alias: the table model moved to :mod:`repro.stats.tables`
#: so the service layer can use it without importing experiment code.
ExperimentTable = Table


def reduction(baseline: float, improved: float) -> float:
    """Relative reduction (%), the paper's headline arithmetic."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (1.0 - improved / baseline)


def mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
