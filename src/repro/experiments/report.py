"""Regenerate every reproduced table and figure in one pass.

Run as ``python -m repro.experiments.report [--fast]``.  The full pass at
the default scale takes tens of minutes (it reruns every scenario of the
paper's evaluation); ``--fast`` uses a reduced scale for a quick look.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablations,
    fig2,
    fig3,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table2,
    table6,
)
from repro.experiments.common import DEFAULT_SCALE
from repro.sim.runner import Scale

#: (name, callable) in the paper's presentation order.
SECTIONS = (
    ("Table 1", table1.run),
    ("Table 2", table2.run),
    ("Figure 2", fig2.run),
    ("Figure 3", fig3.run),
    ("Figure 8", fig8.run),
    ("Figure 9", fig9.run),
    ("Figure 10", fig10.run),
    ("Table 6", table6.run),
    ("Figure 11 + Table 7", fig11.run),
    ("Figure 12", fig12.run),
    ("Ablations", ablations.run),
)


def _tables(result) -> list:
    if isinstance(result, (list, tuple)):
        return list(result)
    return [result]


def generate(scale: Scale, out=sys.stdout) -> None:
    for name, runner in SECTIONS:
        started = time.time()
        for table in _tables(runner(scale)):
            print(table.render(), file=out)
            print(file=out)
        print(f"[{name}: {time.time() - started:.0f}s]", file=out)
        print(file=out)
        out.flush()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced scale (quick smoke pass)")
    parser.add_argument("--trace-length", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)
    scale = DEFAULT_SCALE
    if args.fast:
        scale = scale.smaller(4)
    if args.trace_length:
        scale = Scale(
            trace_length=args.trace_length,
            warmup=args.warmup
            if args.warmup is not None else args.trace_length // 5,
            seed=args.seed if args.seed is not None else scale.seed,
        )
    generate(scale)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
