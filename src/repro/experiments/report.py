"""Regenerate every reproduced table and figure in one pass.

Run as ``python -m repro.experiments.report [--fast] [--jobs N]``.  The
full pass at the default scale takes tens of minutes serially (it reruns
every scenario of the paper's evaluation); ``--fast`` uses a reduced
scale, ``--jobs`` fans the job grid out over worker processes, and the
on-disk result cache (``--cache-dir`` / ``--no-cache``) makes re-rendering
free when no simulator source changed.

``run_sweep`` is the batch entry point behind ``python -m repro sweep``:
it concatenates every experiment's job grid into one
:class:`~repro.runtime.sweep.Sweep`, executes it once (cells shared
between experiments — every ladder's baseline, Table 1's reuse of the
Figure 3 scenarios — run a single time), then assembles all tables from
the shared results.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.experiments import (
    ablations,
    compare,
    fig2,
    fig3,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    mt,
    scaling,
    table1,
    table2,
    table6,
)
from repro.experiments.common import DEFAULT_SCALE
from repro.runtime.cache import DEFAULT_CACHE_DIR
from repro.runtime.engine import Engine, positive_int
from repro.runtime.progress import SweepReport
from repro.runtime.sweep import Sweep
from repro.sim.runner import Scale

#: (name, module) in the paper's presentation order.  Every module exposes
#: ``jobs(scale)``, ``tables(results, scale)`` and ``run(scale, engine)``.
MODULES = (
    ("Table 1", table1),
    ("Table 2", table2),
    ("Figure 2", fig2),
    ("Figure 3", fig3),
    ("Figure 8", fig8),
    ("Figure 9", fig9),
    ("Figure 10", fig10),
    ("Table 6", table6),
    ("Figure 11 + Table 7", fig11),
    ("Figure 12", fig12),
    ("Ablations", ablations),
    ("Compare", compare),
    ("Multi-tenant", mt),
    ("Scaling", scaling),
)

#: (name, callable) back-compat view of :data:`MODULES`.
SECTIONS = tuple((name, module.run) for name, module in MODULES)


def _tables(result) -> list:
    if isinstance(result, (list, tuple)):
        return list(result)
    return [result]


def generate(scale: Scale, out=None,
             engine: Engine | None = None) -> None:
    """Render every experiment section in order (one engine call each)."""
    out = out if out is not None else sys.stdout
    for name, module in MODULES:
        started = time.time()
        for table in _tables(module.run(scale, engine)):
            print(table.render(), file=out)
            print(file=out)
        print(f"[{name}: {time.time() - started:.0f}s]", file=out)
        print(file=out)
        out.flush()


def sweep_jobs(scale: Scale, only: list[str] | None = None) -> Sweep:
    """Every selected experiment's grid as one batch."""
    selected = _select(only)
    grids = [module.jobs(scale) for _, module in selected]
    return Sweep.build("report", *grids)


def _select(only: list[str] | None) -> list[tuple[str, object]]:
    if not only:
        return list(MODULES)
    wanted = {_canonical(token) for token in only}
    selected = [(name, module) for name, module in MODULES
                if _canonical(name) in wanted]
    known = {_canonical(name) for name, _ in MODULES}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown experiment(s) {sorted(unknown)}; one of {sorted(known)}"
        )
    return selected


def _canonical(name: str) -> str:
    """Map 'Figure 8', 'fig8', 'table7', ... onto one canonical token."""
    token = name.lower().replace(" ", "")
    token = token.replace("figure", "fig").replace("+table7", "")
    if token in ("fig11", "table7"):
        return "fig11"
    if token in ("mt", "multitenant"):
        return "multi-tenant"
    return token


def run_sweep(scale: Scale, engine: Engine, out=None,
              only: list[str] | None = None) -> SweepReport:
    """Execute every experiment as one deduplicated parallel batch."""
    out = out if out is not None else sys.stdout
    selected = _select(only)
    sweep = Sweep.build("report",
                        *(module.jobs(scale) for _, module in selected))
    results = engine.run_jobs(sweep)
    for name, module in selected:
        for table in _tables(module.tables(results, scale)):
            print(table.render(), file=out)
            print(file=out)
        out.flush()
    report = engine.last_report
    print(f"[sweep] {report.summary()}", file=out)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced scale (quick smoke pass)")
    parser.add_argument("--trace-length", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--jobs", type=positive_int, default=1,
                        help="worker processes for the job grid")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="on-disk result cache location")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--progress", action="store_true",
                        help="stream per-job progress to stderr")
    parser.add_argument("--obs", action="store_true",
                        help="record a structured event log (repro.obs)")
    parser.add_argument("--obs-dir", default=None, metavar="DIR",
                        help="event log directory (default: "
                             "<cache-dir>/obs)")
    args = parser.parse_args(argv)
    scale = DEFAULT_SCALE
    if args.fast:
        scale = scale.smaller(4)
    if args.trace_length:
        scale = dataclasses.replace(
            scale,
            trace_length=args.trace_length,
            warmup=args.warmup
            if args.warmup is not None else args.trace_length // 5,
        )
    elif args.warmup is not None:
        scale = dataclasses.replace(scale, warmup=args.warmup)
    if args.seed is not None:
        scale = dataclasses.replace(scale, seed=args.seed)
    engine = Engine.from_options(jobs=args.jobs, cache_dir=args.cache_dir,
                                 no_cache=args.no_cache,
                                 progress=args.progress,
                                 obs=args.obs, obs_dir=args.obs_dir)
    generate(scale, engine=engine)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
