"""Table 2: VMA and page-table inventory per application.

Columns: total VMAs, VMAs covering 99% of the footprint, number of
physically contiguous PT regions, and total PT page count — the
measurements motivating both the range-register file size (8-16 entries)
and the need to *induce* PT contiguity (§3.2-3.3).

The numbers are measured from the simulated OS: the process is built, its
full footprint is (arithmetically) resident, PT pages are allocated
through the buddy allocator's PT pool, and the contiguous runs are counted
from actual frame numbers.  The measurement itself runs as a
:data:`~repro.runtime.job.PT_INVENTORY` job (no trace is simulated).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.experiments.common import (
    DEFAULT_SCALE,
    Engine,
    Table,
    execute,
)
from repro.runtime.job import PT_INVENTORY, Job
from repro.sim.runner import Scale
from repro.workloads.suite import ALL_NAMES


def _job(name: str, scale: Scale) -> Job:
    return Job(kind=PT_INVENTORY, workload=name, scale=scale)


def jobs(scale: Scale) -> list[Job]:
    return [_job(name, scale) for name in ALL_NAMES]


def tables(results: Mapping[Job, Any], scale: Scale) -> Table:
    table = Table(
        title=("Table 2: VMAs, physical PT contiguity and PT page count "
               "(measured from the simulated OS)"),
        columns=["application", "total_vmas", "vmas_for_99pct",
                 "contig_phys_regions", "pt_page_count"],
        notes=("PT page count covers a fully resident footprint; contiguous "
               "regions counted from buddy-allocated PT frame numbers."),
    )
    for name in ALL_NAMES:
        inventory = results[_job(name, scale)]
        table.add_row(application=name, **inventory)
    return table


def run(scale: Scale | None = None,
        engine: Engine | None = None) -> Table:
    scale = scale or DEFAULT_SCALE
    return tables(execute(jobs(scale), engine), scale)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
