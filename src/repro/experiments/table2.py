"""Table 2: VMA and page-table inventory per application.

Columns: total VMAs, VMAs covering 99% of the footprint, number of
physically contiguous PT regions, and total PT page count — the
measurements motivating both the range-register file size (8-16 entries)
and the need to *induce* PT contiguity (§3.2-3.3).

The numbers are measured from the simulated OS: the process is built, its
full footprint is (arithmetically) resident, PT pages are allocated
through the buddy allocator's PT pool, and the contiguous runs are counted
from actual frame numbers.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SCALE, ExperimentTable
from repro.pagetable import constants as c
from repro.sim.runner import Scale
from repro.workloads.suite import ALL_NAMES, get


def _populate_full_pt(process) -> None:
    """Create every PT node the fully resident footprint needs.

    One touch per PL1 node (one page per 2MB) builds the complete PT
    without faulting in millions of data pages.
    """
    for vma in process.vmas:
        va = vma.start
        while va < vma.end:
            process.touch(va)
            va += c.LARGE_PAGE_SIZE


def run(scale: Scale | None = None) -> ExperimentTable:
    scale = scale or DEFAULT_SCALE
    table = ExperimentTable(
        title=("Table 2: VMAs, physical PT contiguity and PT page count "
               "(measured from the simulated OS)"),
        columns=["application", "total_vmas", "vmas_for_99pct",
                 "contig_phys_regions", "pt_page_count"],
        notes=("PT page count covers a fully resident footprint; contiguous "
               "regions counted from buddy-allocated PT frame numbers."),
    )
    for name in ALL_NAMES:
        spec = get(name)
        process = spec.build_process(seed=scale.seed)
        _populate_full_pt(process)
        table.add_row(
            application=name,
            total_vmas=len(process.vmas),
            vmas_for_99pct=process.vmas.count_for_coverage(0.99),
            contig_phys_regions=process.pt_contiguous_regions(),
            pt_page_count=process.pt_page_count(),
        )
    return table


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
