"""The 2D nested page walker (Figure 7) with per-dimension ASAP.

A nested walk interleaves up to five host 1D walks (translating the
guest-physical address of each guest PT node, then of the data page) with
four guest PT entry accesses — up to 24 memory accesses.  Each dimension
has its own split PWC (Table 5); the host PWC is tagged by guest-physical
addresses, the guest PWC by guest-virtual ones.

ASAP applies independently per dimension (§3.6):

* *guest* prefetches are issued once, at 2D-walk start, targeting the
  host-physical lines of the guest PL2/PL1 entries (valid because the
  hypervisor backs the guest PT regions contiguously);
* *host* prefetches are issued at the start of every host 1D walk,
  targeting the host PL2/PL1 entries for that walk's gPA.

Service records are keyed ``"g<level>"`` for guest entry accesses and
``"h<level>"`` for host walk accesses, with the data translation's host
walk counted like any other host walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable import constants as c
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.radix import WalkStep
from repro.pagetable.walker import PWC_LABEL, WalkOutcome


@dataclass(frozen=True)
class NestedStep:
    """One guest-dimension step of a 2D walk: the host 1D walk that
    translates ``gpa`` plus (for PT steps) the guest-entry access itself."""

    guest_level: int  # 4..1 for guest PT levels, 0 for the data address
    gpa: int
    host_steps: tuple[WalkStep, ...]
    entry_host_addr: int | None  # None for the final data translation


@dataclass(frozen=True)
class NestedWalkPath:
    """The full Figure 7 schedule for one guest virtual address."""

    va: int
    steps: tuple[NestedStep, ...]
    data_host_addr: int
    guest_leaf_level: int
    host_leaf_level: int

    @property
    def vpn(self) -> int:
        return self.va >> c.PAGE_SHIFT

    @property
    def data_frame(self) -> int:
        return self.data_host_addr >> c.PAGE_SHIFT


class HostPrefetcher(Protocol):
    """Issued at each host 1D walk start; returns level -> completion."""

    def on_tlb_miss(self, address: int, now: int) -> dict[int, int]: ...


class NestedPageWalker:
    """Prices Figure 7 schedules against the shared memory hierarchy."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        guest_pwc: SplitPwc,
        host_pwc: SplitPwc,
    ) -> None:
        self.hierarchy = hierarchy
        self.guest_pwc = guest_pwc
        self.host_pwc = host_pwc
        self.walks = 0
        self.total_latency = 0
        self.total_accesses = 0

    # ------------------------------------------------------------------
    def _host_walk(
        self,
        step_gpa: int,
        host_steps,
        t: int,
        records: list[tuple[str, str]] | None,
        host_prefetcher: HostPrefetcher | None,
    ) -> int:
        """Price one host 1D walk starting at ``t``; returns finish time.

        ``records`` may be None (measurement-off fast path): pricing and
        stats are identical, only the service labels are skipped.
        """
        t += self.host_pwc.latency
        skip_from = self.host_pwc.probe(step_gpa)
        start = 0
        if skip_from is not None:
            for index, hstep in enumerate(host_steps):
                if hstep.level >= skip_from:
                    if records is not None:
                        records.append((f"h{hstep.level}", PWC_LABEL))
                    start = index + 1
                else:
                    break
        prefetches: dict[int, int] = {}
        if host_prefetcher is not None:
            prefetches = host_prefetcher.on_tlb_miss(step_gpa, t)
        access = self.hierarchy.access
        last_level = self.hierarchy.last_level
        for hstep in host_steps[start:]:
            latency = access(hstep.line, t)
            finish = t + latency
            completion = prefetches.get(hstep.level)
            if completion is not None and completion > finish:
                finish = completion
            if records is not None:
                records.append((f"h{hstep.level}", last_level[0]))
            t = finish
            self.total_accesses += 1
        host_leaf = host_steps[-1].level if host_steps else 1
        self.host_pwc.insert(step_gpa, host_leaf)
        return t

    def walk(
        self,
        path: NestedWalkPath,
        now: int = 0,
        guest_prefetches: dict[int, int] | None = None,
        host_prefetcher: HostPrefetcher | None = None,
        collect: bool = True,
    ) -> WalkOutcome:
        """Price the 2D walk for ``path`` starting at ``now``.

        ``guest_prefetches`` maps guest PT level -> completion time of the
        guest-dimension ASAP prefetches issued at walk start.  With
        ``collect=False`` the per-step service records are skipped (the
        returned outcome carries an empty list); pricing is unchanged.
        """
        records: list[tuple[str, str]] | None = [] if collect else None
        t = now + self.guest_pwc.latency
        skip_from = self.guest_pwc.probe(path.va)
        steps = path.steps
        start = 0
        if skip_from is not None:
            for index, step in enumerate(steps):
                if step.guest_level >= skip_from and step.guest_level != 0:
                    if records is not None:
                        records.append((f"g{step.guest_level}", PWC_LABEL))
                    start = index + 1
                else:
                    break
        access = self.hierarchy.access
        last_level = self.hierarchy.last_level
        for step in steps[start:]:
            t = self._host_walk(step.gpa, step.host_steps, t, records,
                                host_prefetcher)
            if step.entry_host_addr is None:
                continue  # the final data translation has no entry access
            latency = access(step.entry_host_addr >> 6, t)
            finish = t + latency
            if guest_prefetches:
                completion = guest_prefetches.get(step.guest_level)
                if completion is not None and completion > finish:
                    finish = completion
            if records is not None:
                records.append((f"g{step.guest_level}", last_level[0]))
            t = finish
            self.total_accesses += 1
        self.guest_pwc.insert(path.va, path.guest_leaf_level)
        latency = t - now
        self.walks += 1
        self.total_latency += latency
        return WalkOutcome(latency=latency,
                           records=records if records is not None else [])

    @property
    def average_latency(self) -> float:
        if not self.walks:
            return 0.0
        return self.total_latency / self.walks
