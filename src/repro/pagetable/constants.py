"""x86-64 radix page-table geometry (Figure 1 of the paper).

A 48-bit virtual address splits into four 9-bit radix indices plus a 12-bit
page offset; the optional fifth level (Intel's 5-level paging white paper,
reference [3] of the paper) adds another 9-bit index for 57-bit addresses.

Levels are numbered as in the paper: PL4 is the root, PL1 holds the leaf
PTEs.  With five-level paging the root becomes PL5.
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

#: Bits of virtual address consumed by one radix level.
LEVEL_BITS = 9
#: Fan-out of every intermediate node.
ENTRIES_PER_NODE = 1 << LEVEL_BITS
#: Size of one page-table entry in bytes.
ENTRY_BYTES = 8
#: A PT node occupies exactly one page.
NODE_BYTES = ENTRIES_PER_NODE * ENTRY_BYTES

#: 2MB large page: one PL2 entry maps 512 base pages (Section 2.3).
LARGE_PAGE_SHIFT = PAGE_SHIFT + LEVEL_BITS
LARGE_PAGE_SIZE = 1 << LARGE_PAGE_SHIFT
#: 1GB huge page: one PL3 entry maps 512 large pages.
HUGE_PAGE_SHIFT = LARGE_PAGE_SHIFT + LEVEL_BITS
HUGE_PAGE_SIZE = 1 << HUGE_PAGE_SHIFT

#: Canonical four-level walk order, root first.
FOUR_LEVELS = (4, 3, 2, 1)
FIVE_LEVELS = (5, 4, 3, 2, 1)

VA_BITS_4LEVEL = 48
VA_BITS_5LEVEL = 57

LINE_SHIFT = 6
LINE_BYTES = 1 << LINE_SHIFT


def level_shift(level: int) -> int:
    """Bit position where the radix index of ``level`` starts.

    PL1 indexes with bits [12, 21), PL2 with [21, 30), and so on.
    """
    if level < 1:
        raise ValueError(f"page-table levels are numbered from 1, got {level}")
    return PAGE_SHIFT + LEVEL_BITS * (level - 1)


def level_index(va: int, level: int) -> int:
    """Radix index of virtual address ``va`` at page-table ``level``."""
    return (va >> level_shift(level)) & (ENTRIES_PER_NODE - 1)


def level_tag(va: int, level: int) -> int:
    """All VA bits above (and including) ``level``'s index field.

    Two addresses share the same level-L node iff they share the tag of
    level L: the node is selected by every index above it.
    """
    return va >> level_shift(level)


def node_tag(va: int, level: int) -> int:
    """Identity of the level-``level`` node that translates ``va``.

    The node reached at level L is selected by the indices of all levels
    *above* L, i.e. by the VA bits from ``level_shift(level) + LEVEL_BITS``
    upward.
    """
    return va >> (level_shift(level) + LEVEL_BITS)


def pages_mapped_by(level: int) -> int:
    """Number of 4KB pages reachable through a single level-``level`` entry."""
    return 1 << (LEVEL_BITS * (level - 1))


def vpn(va: int) -> int:
    return va >> PAGE_SHIFT

def page_offset(va: int) -> int:
    return va & (PAGE_SIZE - 1)


def line_of(phys_addr: int) -> int:
    """Cache-line number of a physical byte address."""
    return phys_addr >> LINE_SHIFT


def entry_phys_addr(node_phys_base: int, index: int) -> int:
    """Physical byte address of entry ``index`` inside a PT node."""
    if not 0 <= index < ENTRIES_PER_NODE:
        raise ValueError(f"PT node index out of range: {index}")
    return node_phys_base + index * ENTRY_BYTES
