"""Split page-walk caches (Table 5, modelled on Intel Core i7).

Each intermediate PT level has its own small cache of recently produced
entries, tagged by the VA prefix that selects the entry: a PWC hit at level
L hands the walker the pointer *produced by* the level-L lookup, so the walk
resumes directly at level L-1.  The walker probes deepest-first (PL2, then
PL3, then PL4) — one 2-cycle probe regardless of outcome.

Under virtualization each dimension gets its own SplitPwc instance (Table 5:
"one dedicated PWC for guest PT, one for host PT"); host PWCs are tagged by
guest-physical addresses.

Multi-tenant runs set :attr:`SplitPwc.asid_bias` (``asid_bias(asid)`` from
`repro.tlb.tlb`) before driving a tenant's records: the bias is ORed into
every level tag — the same high-bits encoding the TLB hierarchy uses — so
entries of different address spaces (or, for host PWCs, different VMs)
coexist.  The simulators' inlined flat-walk path applies the identical
bias when it precomputes per-page PWC tags, keeping both probe paths
coherent.  Bias 0 is the identity.
"""

from __future__ import annotations

from repro.pagetable.constants import level_tag
from repro.params import PwcParams, TlbParams
from repro.tlb.tlb import Tlb


class SplitPwc:
    """Per-level translation caches for the intermediate PT levels."""

    def __init__(self, params: PwcParams | None = None, top_level: int = 4) -> None:
        self.params = params or PwcParams()
        self.top_level = top_level
        geometry = {
            2: TlbParams(self.params.pl2_entries, self.params.pl2_ways),
            3: TlbParams(self.params.pl3_entries, self.params.pl3_ways),
        }
        # PL4 (and PL5 when present) share the root-level geometry.
        for level in range(4, top_level + 1):
            geometry[level] = TlbParams(self.params.pl4_entries,
                                        self.params.pl4_ways)
        self._caches = {
            level: Tlb(geometry[level], name=f"PWC-PL{level}")
            for level in range(2, top_level + 1)
        }
        #: Probe-ordered (level, cache) pairs — deepest (PL2) first.  The
        #: walkers' inlined fast paths iterate this instead of the dict.
        self.view: tuple[tuple[int, Tlb], ...] = tuple(
            sorted(self._caches.items()))
        #: ASID bias ORed into every level tag (multi-tenant runs; see
        #: module docstring).  0 — the single-tenant default — is a no-op.
        self.asid_bias = 0
        self.probes = 0
        self.hits = 0

    @property
    def latency(self) -> int:
        return self.params.latency

    def probe(self, va: int) -> int | None:
        """Deepest cached level for ``va`` (2 is best), or None.

        A hit at level L means the walker skips the accesses to levels
        top..L and proceeds straight to level L-1.
        """
        self.probes += 1
        bias = self.asid_bias
        for level in range(2, self.top_level + 1):
            if self._caches[level].lookup(
                    level_tag(va, level) | bias) is not None:
                self.hits += 1
                return level
        return None

    def insert(self, va: int, leaf_level: int = 1) -> None:
        """Cache the intermediate entries a completed walk produced.

        Entries at the leaf level itself belong in the TLB, not the PWC,
        so a 2MB walk (leaf at PL2) populates only PL3 and above.
        """
        bias = self.asid_bias
        for level in range(leaf_level + 1, self.top_level + 1):
            self._caches[level].fill(level_tag(va, level) | bias, 1)

    def flush(self) -> None:
        for cache in self._caches.values():
            cache.flush()

    def hit_rate(self) -> float:
        if not self.probes:
            return 0.0
        return self.hits / self.probes

    def occupancy(self, level: int) -> int:
        return self._caches[level].occupancy
