"""The hardware page-table walker (1D walks) with ASAP overlap timing.

A walk is priced as: one PWC probe (2 cycles), then a *serial* chain of
memory-hierarchy accesses for every level the PWC could not skip.  ASAP
prefetch completions are folded in with the overlap rule of DESIGN.md §5:

    finish(level) = max(t_arrival + latency_seen_now, prefetch_completion)

Since an ASAP prefetch installs the PT line into the L1-D, the walker's
demand access typically sees an L1 hit whose *data* is architecturally
available only once the in-flight prefetch completes — hence the max().
The walker never consumes a translation that the walk itself did not
produce, mirroring the paper's security argument (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.radix import FaultPath, WalkPath

#: Label used in service records for levels skipped via the PWC.
PWC_LABEL = "PWC"


@dataclass
class WalkOutcome:
    """Result of pricing one page walk."""

    latency: int
    #: (pt_level, serving label) per request — feeds Figure 9.
    records: list[tuple[int, str]] = field(default_factory=list)
    faulted: bool = False
    prefetched_levels: tuple[int, ...] = ()


class PageWalker:
    """Walks :class:`WalkPath` objects against a shared cache hierarchy."""

    def __init__(self, hierarchy: CacheHierarchy, pwc: SplitPwc) -> None:
        self.hierarchy = hierarchy
        self.pwc = pwc
        self.walks = 0
        self.total_latency = 0
        #: Inlined fast path over pre-flattened walk paths (closure; the
        #: simulators' record loops call this once per walk).
        self.walk_flat = self._build_walk_flat()

    def walk(
        self,
        path: WalkPath,
        now: int = 0,
        prefetches: dict[int, int] | None = None,
    ) -> WalkOutcome:
        """Price the walk for ``path`` starting at time ``now``.

        ``prefetches`` maps PT level -> absolute completion time of a
        *useful* ASAP prefetch (wrong-address prefetches, e.g. into region
        holes, must not be passed here — they help nobody).
        """
        records: list[tuple[int, str]] = []
        t = now + self.pwc.latency
        skip_from = self.pwc.probe(path.va)
        steps = path.steps
        start = 0
        if skip_from is not None:
            for index, step in enumerate(steps):
                if step.level >= skip_from:
                    records.append((step.level, PWC_LABEL))
                    start = index + 1
                else:
                    break
        access = self.hierarchy.access
        last_level = self.hierarchy.last_level
        for step in steps[start:]:
            latency = access(step.line, t)
            finish = t + latency
            if prefetches:
                completion = prefetches.get(step.level)
                if completion is not None and completion > finish:
                    finish = completion
            records.append((step.level, last_level[0]))
            t = finish
        self.pwc.insert(path.va, path.leaf_level)
        latency = t - now
        self.walks += 1
        self.total_latency += latency
        return WalkOutcome(
            latency=latency,
            records=records,
            prefetched_levels=tuple(sorted(prefetches)) if prefetches else (),
        )

    def _build_walk_flat(self):
        """Build ``walk_flat(lines, levels, pwc_tags, leaf_level, now,
        prefetches, records) -> latency``.

        The simulators cache each page's walk path once as flat tuples —
        ``lines``/``levels`` per step (root first) and one PWC tag per
        :attr:`SplitPwc.view` entry — so repeat walks skip path
        reconstruction entirely.  Semantics match :meth:`walk` exactly
        (PWC probe order, overlap rule, every stats counter), but the PWC
        probe and insert run inline on the per-level flat arrays and
        ``records`` is appended to only when the caller needs service
        records, keeping the measurement-off path allocation-free.
        """
        from repro.tlb.tlb import EMPTY

        pwc = self.pwc
        pwc_latency = pwc.params.latency
        #: (level, tags, frames, sizes, stride, num_sets, ways, stats)
        #: per PWC level, probe order (deepest first).
        level_views = tuple(
            (level, tlb.tags, tlb.frames, tlb.sizes, tlb.stride,
             tlb.num_sets, tlb.ways, tlb.stats)
            for level, tlb in pwc.view
        )
        access = self.hierarchy.access
        last_level = self.hierarchy.last_level

        def walk_flat(lines, levels, pwc_tags, leaf_level, now,
                      prefetches, records):
            # --- PWC probe: deepest cached level wins -----------------
            t = now + pwc_latency
            pwc.probes += 1
            skip_from = None
            view_index = 0
            for (level, vtags, vframes, vsizes, vstride, vnsets, _ways,
                 vstats) in level_views:
                tag = pwc_tags[view_index]
                view_index += 1
                set_index = tag % vnsets
                base = set_index * vstride
                if vtags[base] == tag:
                    # MRU shortcut: hit in place.
                    vstats.hits += 1
                    pwc.hits += 1
                    skip_from = level
                    break
                limit = base + vsizes[set_index]
                vtags[limit] = tag
                pos = vtags.index(tag, base)
                vtags[limit] = EMPTY
                if pos != limit:
                    vstats.hits += 1
                    frame = vframes[pos]
                    vtags[base + 1:pos + 1] = vtags[base:pos]
                    vtags[base] = tag
                    vframes[base + 1:pos + 1] = vframes[base:pos]
                    vframes[base] = frame
                    pwc.hits += 1
                    skip_from = level
                    break
                vstats.misses += 1
            # --- steps the PWC could not skip -------------------------
            n = len(lines)
            start = 0
            if skip_from is not None:
                while start < n and levels[start] >= skip_from:
                    if records is not None:
                        records.append((levels[start], PWC_LABEL))
                    start += 1
            if records is None and prefetches is None:
                for i in range(start, n):
                    t += access(lines[i], t)
            else:
                for i in range(start, n):
                    latency = access(lines[i], t)
                    finish = t + latency
                    if prefetches:
                        completion = prefetches.get(levels[i])
                        if completion is not None and completion > finish:
                            finish = completion
                    if records is not None:
                        records.append((levels[i], last_level[0]))
                    t = finish
            # --- PWC insert: cache the produced intermediate entries --
            view_index = 0
            for (level, vtags, vframes, vsizes, vstride, vnsets, vways,
                 _vstats) in level_views:
                tag = pwc_tags[view_index]
                view_index += 1
                if level <= leaf_level:
                    continue
                set_index = tag % vnsets
                base = set_index * vstride
                if vtags[base] == tag:
                    # Already MRU: refresh the (constant) payload only.
                    vframes[base] = 1
                    continue
                size = vsizes[set_index]
                limit = base + size
                vtags[limit] = tag
                pos = vtags.index(tag, base)
                vtags[limit] = EMPTY
                if pos != limit:
                    vtags[base + 1:pos + 1] = vtags[base:pos]
                    vframes[base + 1:pos + 1] = vframes[base:pos]
                elif size >= vways:
                    last = base + vways - 1
                    vtags[base + 1:last + 1] = vtags[base:last]
                    vframes[base + 1:last + 1] = vframes[base:last]
                else:
                    vtags[base + 1:limit + 1] = vtags[base:limit]
                    vframes[base + 1:limit + 1] = vframes[base:limit]
                    vsizes[set_index] = size + 1
                vtags[base] = tag
                vframes[base] = 1
            latency = t - now
            self.walks += 1
            self.total_latency += latency
            return latency

        return walk_flat

    def walk_to_fault(
        self,
        path: FaultPath,
        now: int = 0,
        prefetches: dict[int, int] | None = None,
    ) -> WalkOutcome:
        """Price fault *detection* for an unmapped address (§3.7.1).

        The walker reads every resolved entry and discovers the
        not-present entry at the end; ASAP prefetches to the deep levels
        still overlap and shorten detection when the reserved regions make
        those entry locations computable.
        """
        records: list[tuple[int, str]] = []
        t = now + self.pwc.latency
        access = self.hierarchy.access
        last_level = self.hierarchy.last_level
        for step in path.resolved_steps:
            latency = access(step.line, t)
            finish = t + latency
            if prefetches:
                completion = prefetches.get(step.level)
                if completion is not None and completion > finish:
                    finish = completion
            records.append((step.level, last_level[0]))
            t = finish
        self.walks += 1
        self.total_latency += t - now
        return WalkOutcome(latency=t - now, records=records, faulted=True)

    @property
    def average_latency(self) -> float:
        if not self.walks:
            return 0.0
        return self.total_latency / self.walks
