"""The hardware page-table walker (1D walks) with ASAP overlap timing.

A walk is priced as: one PWC probe (2 cycles), then a *serial* chain of
memory-hierarchy accesses for every level the PWC could not skip.  ASAP
prefetch completions are folded in with the overlap rule of DESIGN.md §5:

    finish(level) = max(t_arrival + latency_seen_now, prefetch_completion)

Since an ASAP prefetch installs the PT line into the L1-D, the walker's
demand access typically sees an L1 hit whose *data* is architecturally
available only once the in-flight prefetch completes — hence the max().
The walker never consumes a translation that the walk itself did not
produce, mirroring the paper's security argument (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.radix import FaultPath, WalkPath

#: Label used in service records for levels skipped via the PWC.
PWC_LABEL = "PWC"


@dataclass
class WalkOutcome:
    """Result of pricing one page walk."""

    latency: int
    #: (pt_level, serving label) per request — feeds Figure 9.
    records: list[tuple[int, str]] = field(default_factory=list)
    faulted: bool = False
    prefetched_levels: tuple[int, ...] = ()


class PageWalker:
    """Walks :class:`WalkPath` objects against a shared cache hierarchy."""

    def __init__(self, hierarchy: CacheHierarchy, pwc: SplitPwc) -> None:
        self.hierarchy = hierarchy
        self.pwc = pwc
        self.walks = 0
        self.total_latency = 0

    def walk(
        self,
        path: WalkPath,
        now: int = 0,
        prefetches: dict[int, int] | None = None,
    ) -> WalkOutcome:
        """Price the walk for ``path`` starting at time ``now``.

        ``prefetches`` maps PT level -> absolute completion time of a
        *useful* ASAP prefetch (wrong-address prefetches, e.g. into region
        holes, must not be passed here — they help nobody).
        """
        records: list[tuple[int, str]] = []
        t = now + self.pwc.latency
        skip_from = self.pwc.probe(path.va)
        steps = path.steps
        start = 0
        if skip_from is not None:
            for index, step in enumerate(steps):
                if step.level >= skip_from:
                    records.append((step.level, PWC_LABEL))
                    start = index + 1
                else:
                    break
        for step in steps[start:]:
            result = self.hierarchy.access_line(step.line, t)
            finish = t + result.latency
            if prefetches:
                completion = prefetches.get(step.level)
                if completion is not None and completion > finish:
                    finish = completion
            records.append((step.level, result.level))
            t = finish
        self.pwc.insert(path.va, path.leaf_level)
        latency = t - now
        self.walks += 1
        self.total_latency += latency
        return WalkOutcome(
            latency=latency,
            records=records,
            prefetched_levels=tuple(sorted(prefetches)) if prefetches else (),
        )

    def walk_to_fault(
        self,
        path: FaultPath,
        now: int = 0,
        prefetches: dict[int, int] | None = None,
    ) -> WalkOutcome:
        """Price fault *detection* for an unmapped address (§3.7.1).

        The walker reads every resolved entry and discovers the
        not-present entry at the end; ASAP prefetches to the deep levels
        still overlap and shorten detection when the reserved regions make
        those entry locations computable.
        """
        records: list[tuple[int, str]] = []
        t = now + self.pwc.latency
        for step in path.resolved_steps:
            result = self.hierarchy.access_line(step.line, t)
            finish = t + result.latency
            if prefetches:
                completion = prefetches.get(step.level)
                if completion is not None and completion > finish:
                    finish = completion
            records.append((step.level, result.level))
            t = finish
        self.walks += 1
        self.total_latency += t - now
        return WalkOutcome(latency=t - now, records=records, faulted=True)

    @property
    def average_latency(self) -> float:
        if not self.walks:
            return 0.0
        return self.total_latency / self.walks
