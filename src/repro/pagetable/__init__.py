"""Page-table substrate: the radix tree, walk paths, PWCs and both walkers."""

from repro.pagetable import constants
from repro.pagetable.nested import NestedPageWalker, NestedStep, NestedWalkPath
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.radix import (
    FaultPath,
    PageFault,
    RadixPageTable,
    WalkPath,
    WalkStep,
)
from repro.pagetable.walker import PWC_LABEL, PageWalker, WalkOutcome

__all__ = [
    "FaultPath",
    "NestedPageWalker",
    "NestedStep",
    "NestedWalkPath",
    "PWC_LABEL",
    "PageFault",
    "PageWalker",
    "RadixPageTable",
    "SplitPwc",
    "WalkOutcome",
    "WalkPath",
    "WalkStep",
    "constants",
]
