"""Page-table substrate: the radix tree, walk paths, PWCs and both walkers.

Paper cross-references: §2.1 (x86-64 radix walks, PL4-PL1 naming), §2.2
(page-walk caches; Table 5 geometry), §2.3 (two-dimensional nested walks,
up to 24 accesses), §3.5 (five-level paging).
"""

from repro.pagetable import constants
from repro.pagetable.nested import NestedPageWalker, NestedStep, NestedWalkPath
from repro.pagetable.pwc import SplitPwc
from repro.pagetable.radix import (
    FaultPath,
    PageFault,
    RadixPageTable,
    WalkPath,
    WalkStep,
)
from repro.pagetable.walker import PWC_LABEL, PageWalker, WalkOutcome

__all__ = [
    "FaultPath",
    "NestedPageWalker",
    "NestedStep",
    "NestedWalkPath",
    "PWC_LABEL",
    "PageFault",
    "PageWalker",
    "RadixPageTable",
    "SplitPwc",
    "WalkOutcome",
    "WalkPath",
    "WalkStep",
    "constants",
]
