"""The radix-tree page table (Figure 1) and walk paths through it.

The tree is stored *flat*: a node is identified by ``(level, tag)`` where
the tag is the VA prefix above that level's index field — exactly the bits
that select the node during a real walk.  The stored value is the node's
physical base address, assigned by a pluggable *placer* (the buddy
allocator for vanilla Linux, the ASAP layout allocator for sorted regions).
Leaf translations live in flat vpn→frame maps, with 2MB large pages kept at
their own granularity (one PL2 entry per 512 pages, §2.3/§3.5).

Nothing in this module knows about caches or timing; it produces
:class:`WalkPath` objects — the exact sequence of physical entry addresses a
hardware walker would touch — which the walker prices against the memory
hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.pagetable import constants as c

#: placer(level, tag) -> physical byte address of the 4KB node.
NodePlacer = Callable[[int, int], int]


class PageFault(Exception):
    """Raised when translating an address with no mapping."""


@dataclass(frozen=True)
class WalkStep:
    """One pointer fetch of a page walk: the PT level and the physical
    byte address of the entry read at that level."""

    level: int
    entry_addr: int

    @property
    def line(self) -> int:
        return self.entry_addr >> c.LINE_SHIFT


@dataclass(frozen=True)
class WalkPath:
    """The full pointer chase for one virtual address (root first)."""

    va: int
    steps: tuple[WalkStep, ...]
    frame: int
    leaf_level: int  # 1 for 4KB pages, 2 for 2MB pages

    @property
    def vpn(self) -> int:
        return self.va >> c.PAGE_SHIFT

    @property
    def is_large(self) -> bool:
        return self.leaf_level >= 2


@dataclass(frozen=True)
class FaultPath:
    """A truncated walk that ends at the first non-present entry.

    ``resolved_steps`` are readable entries; the walk discovers the fault
    when the entry *after* them reads as not-present.  With ASAP's reserved
    regions the missing deep node's location is still known, so the fault
    is detected after a prefetched read (§3.7.1).
    """

    va: int
    resolved_steps: tuple[WalkStep, ...]
    missing_level: int


class RadixPageTable:
    """An x86-style 4- or 5-level radix page table."""

    def __init__(
        self,
        levels: int = 4,
        node_placer: NodePlacer | None = None,
    ) -> None:
        if levels not in (4, 5):
            raise ValueError("only 4- and 5-level page tables exist on x86")
        self.levels = levels
        self._placer = node_placer or self._bump_placer
        self._bump_next = 1 << 50  # fallback placer: distinct, stable addrs
        #: Node bases per level, tag -> phys base.  Split by level (index
        #: 0 unused) so the hot flat_walk/map_page paths probe plain
        #: int-keyed dicts instead of allocating (level, tag) tuples.
        self._nodes_by_level: list[dict[int, int]] = [
            {} for _ in range(levels + 1)
        ]
        self._pages: dict[int, int] = {}  # vpn -> frame (4KB)
        self._large: dict[int, int] = {}  # vpn >> 9 -> frame (2MB)
        # The root always exists (CR3 points at it).
        self._ensure_node(levels, 0, self._placer)

    def _bump_placer(self, level: int, tag: int) -> int:
        addr = self._bump_next
        self._bump_next += c.NODE_BYTES
        return addr

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _ensure_node(
        self, level: int, tag: int, placer: NodePlacer
    ) -> tuple[int, bool]:
        nodes = self._nodes_by_level[level]
        base = nodes.get(tag)
        if base is not None:
            return base, False
        base = placer(level, tag)
        if base % c.NODE_BYTES:
            raise ValueError("PT nodes must be 4KB aligned")
        nodes[tag] = base
        return base, True

    def map_page(
        self,
        va: int,
        frame: int,
        leaf_level: int = 1,
        placer: NodePlacer | None = None,
    ) -> list[tuple[int, int, int]]:
        """Create the mapping for the page containing ``va``.

        Returns the list of newly created nodes as ``(level, tag,
        phys_base)`` so callers (e.g. the hypervisor) can track PT-page
        frames.  ``leaf_level=2`` installs a 2MB mapping; ``frame`` must
        then be 512-frame aligned.
        """
        if leaf_level not in (1, 2):
            raise ValueError("leaf level must be 1 (4KB) or 2 (2MB)")
        # Fast path for the common steady-population case: if the node
        # directly above the leaf exists, every ancestor does too (nodes
        # are only ever created root-first below), so only the leaf entry
        # needs installing.
        if c.node_tag(va, leaf_level) in self._nodes_by_level[leaf_level]:
            if leaf_level == 1:
                self._pages[c.vpn(va)] = frame
            else:
                if frame & (c.ENTRIES_PER_NODE - 1):
                    raise ValueError(
                        "2MB mappings need 512-frame aligned frames")
                self._large[c.vpn(va) >> c.LEVEL_BITS] = frame
            return []
        place = placer or self._placer
        created: list[tuple[int, int, int]] = []
        for level in range(self.levels, leaf_level - 1, -1):
            tag = c.node_tag(va, level)
            base, is_new = self._ensure_node(level, tag, place)
            if is_new:
                created.append((level, tag, base))
        if leaf_level == 1:
            self._pages[c.vpn(va)] = frame
        else:
            if frame & (c.ENTRIES_PER_NODE - 1):
                raise ValueError("2MB mappings need 512-frame aligned frames")
            self._large[c.vpn(va) >> c.LEVEL_BITS] = frame
        return created

    def unmap_page(self, va: int) -> bool:
        """Remove a leaf mapping (nodes are not reclaimed, as in Linux)."""
        if self._pages.pop(c.vpn(va), None) is not None:
            return True
        return self._large.pop(c.vpn(va) >> c.LEVEL_BITS, None) is not None

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def lookup(self, va: int) -> tuple[int, int] | None:
        """Return ``(frame, leaf_level)`` for ``va`` or None if unmapped.

        For a 2MB mapping the returned frame is the frame of the 4KB page
        *within* the large page, so callers can form byte addresses without
        caring about the page size.
        """
        page = c.vpn(va)
        frame = self._pages.get(page)
        if frame is not None:
            return frame, 1
        large = self._large.get(page >> c.LEVEL_BITS)
        if large is not None:
            return large + (page & (c.ENTRIES_PER_NODE - 1)), 2
        return None

    def frame_of(self, vpn: int) -> int | None:
        """Frame of a 4KB vpn (either granularity), or None."""
        hit = self.lookup(vpn << c.PAGE_SHIFT)
        return hit[0] if hit else None

    def cluster_frames(self, vpn: int) -> list[int | None]:
        """Frames of the aligned 8-page cluster holding ``vpn``.

        This is what a walker sees in the PT cache line it fetched; it
        feeds the Clustered TLB's eager coalescing.
        """
        base = vpn & ~7
        return [self.frame_of(base + i) for i in range(8)]

    # ------------------------------------------------------------------
    # walk paths
    # ------------------------------------------------------------------
    def entry_addr(self, va: int, level: int) -> int | None:
        """Physical address of the level-``level`` entry for ``va``."""
        base = self._nodes_by_level[level].get(c.node_tag(va, level))
        if base is None:
            return None
        return c.entry_phys_addr(base, c.level_index(va, level))

    def walk_path(self, va: int) -> WalkPath:
        """The walk for a *mapped* address; raises PageFault otherwise."""
        hit = self.lookup(va)
        if hit is None:
            raise PageFault(f"no translation for {va:#x}")
        frame, leaf_level = hit
        steps = []
        for level in range(self.levels, leaf_level - 1, -1):
            addr = self.entry_addr(va, level)
            assert addr is not None, "mapped page lost an interior node"
            steps.append(WalkStep(level, addr))
        return WalkPath(va=va, steps=tuple(steps), frame=frame,
                        leaf_level=leaf_level)

    def flat_walk(
        self, va: int
    ) -> tuple[tuple[int, ...], tuple[int, ...], int, int]:
        """:meth:`walk_path` without the step objects: ``(lines, levels,
        frame, leaf_level)``, root first.

        This is what the simulators' per-vpn path caches store — the
        walker fast path consumes line numbers and PT levels only, so
        building :class:`WalkStep`/:class:`WalkPath` instances for every
        first-touched page would be pure allocation overhead.  Raises
        PageFault for unmapped addresses, like :meth:`walk_path`.
        """
        hit = self.lookup(va)
        if hit is None:
            raise PageFault(f"no translation for {va:#x}")
        frame, leaf_level = hit
        by_level = self._nodes_by_level
        lines = []
        levels = []
        shift = c.PAGE_SHIFT + c.LEVEL_BITS * (self.levels - 1)
        for level in range(self.levels, leaf_level - 1, -1):
            # entry_addr unfolded: node base + index * entry size.
            base = by_level[level][va >> (shift + c.LEVEL_BITS)]
            lines.append((base + ((va >> shift) & 511) * 8) >> 6)
            levels.append(level)
            shift -= c.LEVEL_BITS
        return tuple(lines), tuple(levels), frame, leaf_level

    def fault_path(self, va: int) -> FaultPath:
        """The truncated walk for an *unmapped* address (§3.7.1)."""
        if self.lookup(va) is not None:
            raise ValueError(f"{va:#x} is mapped; use walk_path")
        steps = []
        for level in range(self.levels, 0, -1):
            addr = self.entry_addr(va, level)
            if addr is None:
                return FaultPath(va=va, resolved_steps=tuple(steps),
                                 missing_level=level)
            steps.append(WalkStep(level, addr))
        # All nodes exist but the PTE slot is empty: the fault is detected
        # when the (readable) PL1 entry is seen to be not-present.
        return FaultPath(va=va, resolved_steps=tuple(steps), missing_level=0)

    # ------------------------------------------------------------------
    # inventory (Table 2's "PT page count")
    # ------------------------------------------------------------------
    def node_count(self, level: int | None = None) -> int:
        if level is None:
            return sum(len(nodes) for nodes in self._nodes_by_level)
        if not 0 <= level < len(self._nodes_by_level):
            return 0
        return len(self._nodes_by_level[level])

    def node_frames(self) -> Iterable[int]:
        """Physical frame numbers of all PT pages."""
        for nodes in self._nodes_by_level:
            for base in nodes.values():
                yield base >> c.PAGE_SHIFT

    def leaf_maps(self) -> tuple[dict[int, int], dict[int, int]]:
        """The raw leaf translation maps ``(pages, large)``.

        ``pages`` is vpn -> frame for 4KB mappings, ``large`` is
        ``vpn >> 9`` -> base frame for 2MB ones.  Exposed (read/write)
        for the kernelsim's bulk population loop, which installs leaves
        directly once the interior nodes exist; everyone else should go
        through :meth:`lookup` / :meth:`map_page`.
        """
        return self._pages, self._large

    def leaf_nodes(self, leaf_level: int) -> dict[int, int]:
        """The node map for ``leaf_level`` (see :meth:`leaf_maps`)."""
        return self._nodes_by_level[leaf_level]

    @property
    def mapped_pages(self) -> int:
        return len(self._pages) + len(self._large) * c.ENTRIES_PER_NODE

    @property
    def has_large_pages(self) -> bool:
        """Whether any 2MB mapping exists — when False the TLB large-tag
        probes can never hit and the simulators tell the TLB hierarchy
        to skip them."""
        return bool(self._large)

    def has_node(self, level: int, tag: int) -> bool:
        if not 0 <= level < len(self._nodes_by_level):
            return False
        return tag in self._nodes_by_level[level]
