"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``list``                     — show workloads, ASAP configs and schemes
* ``run WORKLOAD [options]``   — one scenario, print its statistics
* ``experiment NAME``          — regenerate one table/figure (e.g. fig8)
* ``compare [--schemes ...]``  — race translation schemes head-to-head
* ``mt``                       — multi-tenant consolidation sweep
* ``scaling``                  — translation-fraction convergence vs scale
* ``trace materialize|info|hash`` — on-disk streaming traces
* ``sweep [--only NAME ...]``  — every experiment as one parallel batch
* ``report [--fast|--incremental]`` — regenerate everything
* ``serve``                    — long-lived daemon draining the job queue
* ``submit | status | cancel`` — service clients for the queue
* ``obs summary|timeline|export|dashboard|validate`` — run telemetry
* ``validate``                 — check the paper's qualitative shapes

Parallelism and caching
-----------------------
``experiment``, ``sweep`` and ``report`` all accept ``--jobs N`` (fan the
job grid out over N worker processes), ``--cache-dir DIR`` and
``--no-cache`` (on-disk result cache keyed by job spec and code version).
Results are identical for any ``--jobs`` value: every job seeds its own
randomness from its spec.

When a ``repro serve`` daemon is alive on the same cache directory,
engine-backed commands become thin submit-and-wait clients of its
persistent job queue (byte-identical output); ``--no-service`` forces
the historical in-process path.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import CONFIGS, REPORT_SEEDS, SCHEMES
from repro.runtime.cache import DEFAULT_CACHE_DIR
from repro.runtime.engine import Engine, positive_int
from repro.sim.runner import Scale, run_native, run_virtualized
from repro.workloads.suite import ALL_NAMES, WORKLOADS

#: One source of truth for config names: the experiments' registry.
_CONFIGS = CONFIGS


def _engine_from(args) -> Engine:
    from repro.service.client import ServiceEngine

    return ServiceEngine.from_options(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        progress=getattr(args, "progress", False),
        obs=getattr(args, "obs", False),
        obs_dir=getattr(args, "obs_dir", None),
        priority=getattr(args, "priority", 0),
        no_service=getattr(args, "no_service", False),
    )


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=positive_int, default=1,
                        help="worker processes (default: 1, serial)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="on-disk result cache "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--progress", action="store_true",
                        help="stream per-job progress to stderr")
    parser.add_argument("--obs", action="store_true",
                        help="record a structured event log for the run "
                             "(or set REPRO_OBS=1)")
    parser.add_argument("--obs-dir", default=None, metavar="DIR",
                        help="where event logs land "
                             "(default: <cache-dir>/obs)")
    parser.add_argument("--no-service", action="store_true",
                        help="bypass the job-queue service layer even "
                             "when a daemon is alive")
    parser.add_argument("--priority", type=int, default=0,
                        help="queue priority when routed through the "
                             "service (default: 0; higher runs first)")


def _cmd_list(_args) -> int:
    print("Workloads (Table 3):")
    for name, spec in WORKLOADS.items():
        print(f"  {name:10s} {spec.footprint_bytes / (1 << 30):6.0f} GB  "
              f"{spec.description}")
    print("\nASAP configurations:")
    for key, config in _CONFIGS.items():
        print(f"  {key:12s} {config.name}")
    print("\nTranslation schemes (repro compare):")
    for key, entry in SCHEMES.items():
        print(f"  {key:12s} native={entry.native_config.name:10s} "
              f"virtualized={entry.virt_config.name}")
    print("\nMulti-tenant mixes (repro mt):")
    from repro.workloads.suite import MT_MIXES
    for key, members in MT_MIXES.items():
        print(f"  {key:12s} {' + '.join(members)}")
    return 0


def _cmd_run(args) -> int:
    config = _CONFIGS[args.config]
    scale = Scale(trace_length=args.trace_length,
                  warmup=args.trace_length // 5, seed=args.seed)
    runner = run_virtualized if args.virtualized else run_native
    kwargs = dict(colocated=args.colocated, scale=scale)
    if args.virtualized:
        if config.native_levels:
            print("note: native-dimension configs are ignored under "
                  "--virtualized; use p1g/full/...", file=sys.stderr)
        kwargs["host_page_level"] = 2 if args.large_host_pages else 1
    else:
        if config.guest_levels or config.host_levels:
            print("error: guest/host configs need --virtualized",
                  file=sys.stderr)
            return 2
    stats = runner(args.workload, config, **kwargs)
    print(f"workload={args.workload} config={config.name} "
          f"virtualized={args.virtualized} colocated={args.colocated}")
    print(f"  avg walk latency : {stats.avg_walk_latency:8.1f} cycles")
    print(f"  walks            : {stats.walks:8d} "
          f"({100 * stats.tlb_miss_ratio:.1f}% of accesses)")
    print(f"  % time in walks  : {100 * stats.walk_fraction:8.1f}%")
    print(f"  TLB MPKI         : {stats.mpki:8.1f}")
    if stats.prefetches_issued:
        print(f"  prefetches       : {stats.prefetches_issued:8d} issued, "
              f"{stats.prefetches_useful} useful, "
              f"{stats.prefetches_dropped} dropped")
    print("  service distribution (per PT level):")
    for level in stats.service.levels():
        fractions = stats.service.fractions(level)
        row = "  ".join(f"{k}:{100 * v:5.1f}%"
                        for k, v in fractions.items())
        print(f"    {level}: {row}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import report

    try:
        selected = report._select([args.name])
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    scale = Scale(trace_length=args.trace_length,
                  warmup=args.trace_length // 5, seed=args.seed)
    engine = _engine_from(args)
    for _, module in selected:
        result = module.run(scale, engine)
        for table in report._tables(result):
            print(table.render())
            print()
    return 0


def _cmd_compare(args) -> int:
    from repro.experiments import compare

    schemes = None
    if args.schemes:
        schemes = [token.strip() for token in args.schemes.split(",")
                   if token.strip()]
    scale = Scale(trace_length=args.trace_length,
                  warmup=args.trace_length // 5, seed=args.seed)
    engine = _engine_from(args)
    try:
        tables = compare.run(scale, engine, schemes=schemes,
                             kernel=args.kernel,
                             seeds=args.seeds or REPORT_SEEDS)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for table in tables:
        print(table.render())
        print()
    return 0


def _cmd_mt(args) -> int:
    from repro.experiments import mt

    scale = Scale(trace_length=args.trace_length,
                  warmup=args.trace_length // 5, seed=args.seed)
    engine = _engine_from(args)
    for table in mt.run(scale, engine, seeds=args.seeds or REPORT_SEEDS):
        print(table.render())
        print()
    return 0


def _cmd_scaling(args) -> int:
    from repro.experiments import scaling
    from repro.traces.store import read_ref

    engine = _engine_from(args)
    try:
        if args.trace:
            # No explicit --seed: the trace's own seed drives the OS
            # substrate, so the replay matches the generated run the
            # trace was materialised from.
            table = scaling.run_for_trace(read_ref(args.trace), engine,
                                          seed=args.seed,
                                          kernel=args.kernel)
        else:
            scale = Scale(trace_length=args.trace_length,
                          warmup=args.trace_length // 5,
                          seed=42 if args.seed is None else args.seed)
            table = scaling.run(scale, engine, kernel=args.kernel,
                                seeds=args.seeds or REPORT_SEEDS)
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(table.render())
    return 0


def _cmd_trace(args) -> int:
    from repro.traces import store
    from repro.workloads.suite import get as get_workload

    try:
        if args.trace_command == "materialize":
            ref = store.materialize_trace(
                get_workload(args.workload), args.records, args.seed,
                args.out, force=args.force)
            print(f"materialized {ref.records} records of {ref.workload} "
                  f"(seed {ref.seed}) at {ref.path}")
            print(f"  sha256: {ref.digest}")
        elif args.trace_command == "info":
            header, payload = store.open_trace(args.path)
            for key in ("format_version", "workload", "records", "seed",
                        "gen_chunk_records", "dtype", "sha256"):
                print(f"  {key:18s} {header[key]}")
            print(f"  {'payload_bytes':18s} {payload.nbytes}")
        else:  # hash
            ref = store.verify_trace(args.path)
            print(f"ok: {ref.path} ({ref.records} records of "
                  f"{ref.workload})")
            print(f"  sha256: {ref.digest}")
    except (ValueError, FileNotFoundError, FileExistsError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _sweep_scale(args) -> Scale:
    """The sweep/submit scale from ``--fast``/``--trace-length``/``--seed``
    (shared so a submitted grid hashes identically to the sweep's)."""
    import dataclasses

    from repro.experiments.common import DEFAULT_SCALE

    scale = DEFAULT_SCALE
    if args.fast:
        scale = scale.smaller(4)
    if args.trace_length:
        scale = dataclasses.replace(scale, trace_length=args.trace_length,
                                    warmup=args.trace_length // 5)
    return dataclasses.replace(scale, seed=args.seed)


def _cmd_sweep(args) -> int:
    from repro.experiments import report

    engine = _engine_from(args)
    try:
        report.run_sweep(_sweep_scale(args), engine, only=args.only)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_report(args) -> int:
    from repro.experiments import report

    if args.incremental:
        return _cmd_report_incremental(args)
    if args.only:
        print("error: --only needs --incremental (the classic report "
              "is always the full document)", file=sys.stderr)
        return 2
    argv = ["--fast"] if args.fast else []
    if args.trace_length:
        argv += ["--trace-length", str(args.trace_length)]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    argv += ["--jobs", str(args.jobs), "--cache-dir", args.cache_dir]
    if args.no_cache:
        argv.append("--no-cache")
    if args.progress:
        argv.append("--progress")
    if args.obs:
        argv.append("--obs")
    if args.obs_dir:
        argv += ["--obs-dir", args.obs_dir]
    return report.main(argv)


def _cmd_report_incremental(args) -> int:
    import dataclasses

    from repro.experiments.common import DEFAULT_SCALE
    from repro.service.reporter import IncrementalReporter

    engine = _engine_from(args)
    if engine.cache is None:
        print("error: --incremental needs the result cache "
              "(drop --no-cache)", file=sys.stderr)
        return 2
    scale = DEFAULT_SCALE.smaller(4) if args.fast else DEFAULT_SCALE
    if args.trace_length:
        scale = dataclasses.replace(scale, trace_length=args.trace_length,
                                    warmup=args.trace_length // 5)
    if args.seed is not None:
        scale = dataclasses.replace(scale, seed=args.seed)
    reporter = IncrementalReporter(engine.cache)
    try:
        update = reporter.update(scale, engine, only=args.only)
    except ValueError as error:  # unknown --only section
        print(f"error: {error}", file=sys.stderr)
        return 2
    target = reporter.write_outputs(update, markdown_path=args.output)
    print(f"[report] {update.summary()}")
    for name in update.rebuilt:
        print(f"[report]   rebuilt: {name}")
    print(f"[report] wrote {target}")
    return 0


# ----------------------------------------------------------------------
# service commands
# ----------------------------------------------------------------------
def _cmd_serve(args) -> int:
    from repro.service.daemon import Daemon

    if args.no_cache:
        print("error: the service daemon needs the result cache "
              "(it is the queue's result channel); drop --no-cache",
              file=sys.stderr)
        return 2
    daemon = Daemon(args.cache_dir, jobs=args.jobs,
                    poll_interval=args.poll_interval, once=args.once,
                    idle_exit=args.idle_exit, http_port=args.http,
                    obs=args.obs, obs_dir=args.obs_dir)
    return daemon.serve()


def _cmd_submit(args) -> int:
    from repro.experiments import report
    from repro.runtime.cache import ResultCache
    from repro.service.queue import JobQueue, daemon_alive

    try:
        sweep = report.sweep_jobs(_sweep_scale(args), only=args.only)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)
    queue = JobQueue.for_cache_dir(args.cache_dir)
    out = queue.submit(list(sweep.jobs), priority=args.priority,
                       cache=cache)
    print(f"submitted: {len(out['enqueued'])} enqueued, "
          f"{len(out['queued'])} already queued, "
          f"{len(out['cached'])} already cached")
    if not daemon_alive(queue.dir):
        print("note: no daemon is serving this cache dir; start one with "
              "`repro serve`", file=sys.stderr)
    return 0


def _cmd_status(args) -> int:
    import json

    from repro.service.queue import (JobQueue, daemon_alive,
                                     read_daemon_meta)

    queue = JobQueue.for_cache_dir(args.cache_dir)
    entries = queue.load()
    counts = queue.counts(entries)
    meta = read_daemon_meta(queue.dir)
    alive = daemon_alive(queue.dir)
    if args.json:
        print(json.dumps({"daemon": meta, "alive": alive,
                          "queue": counts}, indent=1, sort_keys=True))
        return 0
    if alive and meta is not None:
        extras = [f"workers={meta.get('jobs', '?')}"]
        if meta.get("http_port"):
            extras.append(f"http={meta['http_port']}")
        print(f"daemon: alive, pid {meta.get('pid')} "
              f"({', '.join(extras)})")
    else:
        print("daemon: none")
    print("queue: " + ", ".join(f"{counts[state]} {state}"
                                for state in counts))
    if args.verbose:
        for entry in sorted(entries.values(), key=lambda e: e.seq):
            extra = ""
            if entry.state == "running":
                extra = f" pid {entry.pid}"
            elif entry.seconds is not None:
                extra = f" {entry.seconds:.1f}s"
            elif entry.error:
                extra = f" {entry.error}"
            print(f"  {entry.spec[:12]} {entry.state:9s} "
                  f"p{entry.priority}{extra}  {entry.label}")
    return 0


def _cmd_cancel(args) -> int:
    from repro.service.queue import JobQueue

    queue = JobQueue.for_cache_dir(args.cache_dir)
    if not args.all and not args.spec:
        print("error: give spec-hash prefixes or --all", file=sys.stderr)
        return 2
    cancelled = queue.cancel(args.spec, all_pending=args.all)
    print(f"cancelled {len(cancelled)} pending job(s)")
    for entry in cancelled:
        print(f"  {entry.spec[:12]}  {entry.label}")
    return 0


def _find_obs_log(args) -> str:
    """Resolve the log to operate on: explicit path, or the newest
    ``sweep-*.jsonl`` under the obs directory."""
    from pathlib import Path

    log = getattr(args, "log", None)
    if log:
        if not Path(log).exists():
            raise FileNotFoundError(f"no such event log: {log}")
        return log
    directory = Path(args.obs_dir or Path(args.cache_dir) / "obs")
    candidates = sorted(directory.glob("*.jsonl"),
                        key=lambda p: p.stat().st_mtime)
    if not candidates:
        raise FileNotFoundError(
            f"no event logs under {directory}; run a sweep with --obs "
            f"first, or pass a log path")
    return str(candidates[-1])


def _cmd_obs(args) -> int:
    import json

    from repro.obs import export as obs_export
    from repro.obs import reader as obs_reader
    from repro.obs import summary as obs_summary
    from repro.obs import timeline as obs_timeline

    try:
        if args.obs_command == "dashboard":
            return _cmd_obs_dashboard(args)
        path = _find_obs_log(args)
        header, events = obs_reader.read_log(path)
    except (FileNotFoundError, obs_reader.ObsLogError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.obs_command == "summary":
        print(f"[obs] {path}", file=sys.stderr)
        print(obs_summary.render_summary(
            obs_summary.summarize(header, events)))
    elif args.obs_command == "timeline":
        print(f"[obs] {path}", file=sys.stderr)
        print(obs_timeline.render_timeline(header, events,
                                           width=args.width))
    elif args.obs_command == "export":
        out = args.out or (path[: -len(".jsonl")] + ".trace.json"
                           if path.endswith(".jsonl")
                           else path + ".trace.json")
        obs_export.write_chrome_trace(out, header, events)
        print(f"wrote {out} ({len(events)} events); open in "
              f"chrome://tracing or ui.perfetto.dev")
    elif args.obs_command == "validate":
        problems = obs_reader.validate(header, events)
        if args.json:
            print(json.dumps({"path": path, "events": len(events),
                              "problems": problems}, indent=2))
        else:
            for problem in problems:
                print(f"  {problem}")
            print(f"{'FAIL' if problems else 'ok'}: {path} "
                  f"({len(events)} events, {len(problems)} problem(s))")
        return 1 if problems else 0
    return 0


def _cmd_obs_dashboard(args) -> int:
    import json
    from pathlib import Path

    from repro.obs import reader as obs_reader
    from repro.obs.dashboard import build_dashboard

    logs = []
    paths = args.logs or []
    if not paths:
        try:
            paths = [_find_obs_log(args)]
        except FileNotFoundError:
            paths = []  # BENCH-only dashboards are fine
    for path in paths:
        logs.append(obs_reader.read_log(path))

    def load(path: str | None):
        if path is None:
            return None
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)

    html = build_dashboard(
        logs,
        bench_schemes=load(args.bench_schemes),
        bench_scaling=load(args.bench_scaling),
    )
    Path(args.out).write_text(html, encoding="utf-8")
    print(f"wrote {args.out} ({len(logs)} run(s)"
          + (", schemes trajectory" if args.bench_schemes else "")
          + (", scaling trajectory" if args.bench_scaling else "") + ")")
    return 0


def _cmd_validate(args) -> int:
    from repro.validation import validate_shapes

    scale = Scale(trace_length=args.trace_length,
                  warmup=args.trace_length // 5, seed=args.seed)
    failures = validate_shapes(scale, verbose=True)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show workloads and configs")

    run = sub.add_parser("run", help="run one scenario")
    run.add_argument("workload", choices=ALL_NAMES)
    run.add_argument("--config", choices=sorted(_CONFIGS),
                     default="baseline")
    run.add_argument("--virtualized", action="store_true")
    run.add_argument("--colocated", action="store_true")
    run.add_argument("--large-host-pages", action="store_true")
    run.add_argument("--trace-length", type=positive_int, default=30_000)
    run.add_argument("--seed", type=int, default=42)

    exp = sub.add_parser("experiment", help="regenerate one table/figure")
    exp.add_argument("name")
    exp.add_argument("--trace-length", type=positive_int, default=30_000)
    exp.add_argument("--seed", type=int, default=42)
    _add_engine_options(exp)

    comp = sub.add_parser(
        "compare", help="race translation schemes head-to-head")
    comp.add_argument("--schemes", default=None, metavar="LIST",
                      help="comma-separated roster (default: "
                           "baseline,asap,victima,revelator)")
    comp.add_argument("--trace-length", type=positive_int, default=30_000)
    comp.add_argument("--seed", type=int, default=42)
    comp.add_argument("--kernel", choices=("scalar", "columnar"),
                      default="scalar",
                      help="simulation kernel per cell (byte-identical "
                           "tables; scheme cells without a compiled "
                           "fast path fall back per run)")
    comp.add_argument("--seeds", type=positive_int, default=None,
                      help="replicate seeds per cell; tables render "
                           "mean ±95%% CI with Mann-Whitney significance "
                           "markers vs the baseline column (default: "
                           f"{REPORT_SEEDS})")
    _add_engine_options(comp)

    mt = sub.add_parser(
        "mt", help="multi-tenant consolidation sweep "
                   "(schemes x tenants x quantum x switch policy)")
    mt.add_argument("--trace-length", type=positive_int, default=30_000)
    mt.add_argument("--seed", type=int, default=42)
    mt.add_argument("--seeds", type=positive_int, default=None,
                    help="replicate seeds per cell (default: "
                         f"{REPORT_SEEDS})")
    _add_engine_options(mt)

    scal = sub.add_parser(
        "scaling", help="translation-fraction convergence vs trace scale "
                        "(streamed 10M+-record runs)")
    scal.add_argument("--trace", default=None, metavar="DIR",
                      help="replay one materialized trace instead of the "
                           "generated scale ladder")
    scal.add_argument("--trace-length", type=positive_int, default=60_000,
                      help="base of the x1/x~17/x~167 record ladder "
                           "(default: 60000 -> 60k/1M/10M)")
    scal.add_argument("--seed", type=int, default=None,
                      help="seed for the generated ladder (default 42); "
                           "with --trace, overrides the trace's own seed "
                           "for the OS substrate (default: the trace's)")
    scal.add_argument("--kernel", choices=("scalar", "columnar"),
                      default="scalar",
                      help="simulation kernel: the per-record loop or "
                           "the compiled columnar chunk kernel "
                           "(byte-identical statistics)")
    scal.add_argument("--seeds", type=positive_int, default=None,
                      help="replicate seeds for the base rung only — "
                           "the larger rungs stay single-run convergence "
                           f"anchors (default: {REPORT_SEEDS}; ignored "
                           "with --trace)")
    _add_engine_options(scal)

    trace = sub.add_parser(
        "trace", help="materialize / inspect on-disk streaming traces")
    tsub = trace.add_subparsers(dest="trace_command", required=True)
    tmat = tsub.add_parser(
        "materialize", help="generate a trace to disk, chunk by chunk")
    tmat.add_argument("workload", choices=ALL_NAMES)
    tmat.add_argument("--records", type=positive_int, required=True)
    tmat.add_argument("--seed", type=int, default=42)
    tmat.add_argument("--out", required=True, metavar="DIR")
    tmat.add_argument("--force", action="store_true",
                      help="overwrite an existing trace directory")
    tinfo = tsub.add_parser("info", help="print a trace's header")
    tinfo.add_argument("path")
    thash = tsub.add_parser(
        "hash", help="recompute the content digest and verify the header")
    thash.add_argument("path")

    sweep = sub.add_parser(
        "sweep", help="run every experiment as one parallel batch")
    sweep.add_argument("--only", action="append", default=None,
                       metavar="NAME",
                       help="limit to one experiment (repeatable), "
                            "e.g. --only fig8 --only table2")
    sweep.add_argument("--fast", action="store_true",
                       help="reduced scale (quick smoke pass)")
    sweep.add_argument("--trace-length", type=positive_int, default=None)
    sweep.add_argument("--seed", type=int, default=42)
    _add_engine_options(sweep)

    rep = sub.add_parser("report", help="regenerate everything")
    rep.add_argument("--fast", action="store_true")
    rep.add_argument("--trace-length", type=positive_int, default=None)
    rep.add_argument("--seed", type=int, default=None)
    rep.add_argument("--incremental", action="store_true",
                     help="regenerate only the sections whose cached "
                          "cells changed (repro.service.reporter)")
    rep.add_argument("--only", action="append", default=None,
                     metavar="NAME",
                     help="with --incremental: restrict the pass to "
                          "these sections (repeatable, e.g. fig8)")
    rep.add_argument("--output", default=None, metavar="FILE",
                     help="with --incremental: where to write the "
                          "assembled EXPERIMENTS.md (default: "
                          "<cache-dir>/service/report/EXPERIMENTS.md)")
    _add_engine_options(rep)

    serve = sub.add_parser(
        "serve", help="long-lived daemon draining the job queue")
    serve.add_argument("--jobs", type=positive_int, default=1,
                       help="worker processes per batch (default: 1)")
    serve.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help="cache directory to serve "
                            f"(default: {DEFAULT_CACHE_DIR})")
    serve.add_argument("--no-cache", action="store_true",
                       help=argparse.SUPPRESS)
    serve.add_argument("--poll-interval", type=float, default=0.5,
                       metavar="SECONDS",
                       help="queue poll cadence while idle (default: 0.5)")
    serve.add_argument("--once", action="store_true",
                       help="drain the queue once and exit")
    serve.add_argument("--idle-exit", type=float, default=None,
                       metavar="SECONDS",
                       help="exit after this long without work "
                            "(default: serve forever)")
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="serve status/dashboard/report over HTTP on "
                            "this localhost port (0 picks a free one)")
    serve.add_argument("--obs", action="store_true",
                       help="record daemon spans/instants (repro.obs)")
    serve.add_argument("--obs-dir", default=None, metavar="DIR",
                       help="event log directory "
                            "(default: <cache-dir>/obs)")

    def _scale_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--only", action="append", default=None,
                       metavar="NAME",
                       help="limit to one experiment (repeatable)")
        p.add_argument("--fast", action="store_true",
                       help="reduced scale (quick smoke pass)")
        p.add_argument("--trace-length", type=positive_int, default=None)
        p.add_argument("--seed", type=int, default=42)

    submit = sub.add_parser(
        "submit", help="enqueue experiment cells without waiting")
    _scale_options(submit)
    submit.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="cache directory whose queue to submit to "
                             f"(default: {DEFAULT_CACHE_DIR})")
    submit.add_argument("--priority", type=int, default=0,
                        help="queue priority (default: 0; higher first)")

    status = sub.add_parser(
        "status", help="daemon heartbeat + queue state")
    status.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help=f"(default: {DEFAULT_CACHE_DIR})")
    status.add_argument("--json", action="store_true",
                        help="machine-readable output")
    status.add_argument("--verbose", action="store_true",
                        help="list every journal entry")

    cancel = sub.add_parser(
        "cancel", help="cancel pending queue entries")
    cancel.add_argument("spec", nargs="*",
                        help="spec-hash prefixes to cancel")
    cancel.add_argument("--all", action="store_true",
                        help="cancel every pending entry")
    cancel.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help=f"(default: {DEFAULT_CACHE_DIR})")

    obs = sub.add_parser(
        "obs", help="inspect run-telemetry event logs (repro.obs)")
    osub = obs.add_subparsers(dest="obs_command", required=True)

    def _obs_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("log", nargs="?", default=None,
                       help="event log path (default: newest under "
                            "the obs directory)")
        p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=argparse.SUPPRESS)
        p.add_argument("--obs-dir", default=None, metavar="DIR",
                       help="where event logs live "
                            "(default: <cache-dir>/obs)")

    osum = osub.add_parser(
        "summary", help="phase/component time table per job")
    _obs_common(osum)
    otl = osub.add_parser(
        "timeline", help="terminal Gantt of workers x jobs")
    _obs_common(otl)
    otl.add_argument("--width", type=positive_int, default=72,
                     help="chart columns (default: 72)")
    oexp = osub.add_parser(
        "export", help="convert to Chrome-trace / Perfetto JSON")
    _obs_common(oexp)
    oexp.add_argument("--out", default=None, metavar="FILE",
                      help="output path (default: <log>.trace.json)")
    oval = osub.add_parser(
        "validate", help="check a log against the event schema")
    _obs_common(oval)
    oval.add_argument("--json", action="store_true",
                      help="machine-readable verdict")
    odash = osub.add_parser(
        "dashboard", help="build the static HTML dashboard")
    odash.add_argument("logs", nargs="*", default=None,
                       help="event log path(s) (default: newest under "
                            "the obs directory)")
    odash.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       help=argparse.SUPPRESS)
    odash.add_argument("--obs-dir", default=None, metavar="DIR",
                       help="where event logs live "
                            "(default: <cache-dir>/obs)")
    odash.add_argument("--out", default="dashboard.html", metavar="FILE",
                       help="output HTML path (default: dashboard.html)")
    odash.add_argument("--bench-schemes", default=None, metavar="JSON",
                       help="BENCH_schemes.json for the perf trajectory")
    odash.add_argument("--bench-scaling", default=None, metavar="JSON",
                       help="BENCH_scaling.json for the scaling "
                            "trajectory")

    val = sub.add_parser("validate", help="check paper-shape invariants")
    val.add_argument("--trace-length", type=positive_int, default=20_000)
    val.add_argument("--seed", type=int, default=42)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "compare": _cmd_compare,
        "mt": _cmd_mt,
        "scaling": _cmd_scaling,
        "trace": _cmd_trace,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "cancel": _cmd_cancel,
        "obs": _cmd_obs,
        "validate": _cmd_validate,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
