"""The baseline scheme: plain radix walks, no acceleration.

Every hook accessor inherits the base class's ``None``, so the
simulators' per-record dispatch cost degenerates to the same
``is not None`` tests the pre-scheme code paid for its optional ASAP
prefetcher — ``tools/bench_schemes.py`` tracks that this stays true.
"""

from __future__ import annotations

from repro.schemes.base import TranslationScheme


class BaselineRadix(TranslationScheme):
    """x86-64 radix page walks exactly as the hardware ships them."""

    name = "BaselineRadix"
