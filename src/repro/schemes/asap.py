"""ASAP behind the scheme interface (the source paper's design, §3).

This wraps the existing prefetcher/range-register machinery —
:class:`~repro.core.prefetcher.AsapPrefetcher` riding on the reserved
contiguous PT layout — without re-implementing any of it: binding builds
the same descriptor files the simulators used to build inline, and the
walk-start hook *is* the prefetcher's bound ``on_tlb_miss`` (no extra
call layer on the hot path, so ASAP-through-the-interface is
instruction-identical to the pre-scheme dispatch).
"""

from __future__ import annotations

from repro.core.config import AsapConfig
from repro.core.prefetcher import AsapPrefetcher
from repro.core.range_registers import RangeRegisterFile
from repro.schemes.base import SchemeSpec, TranslationScheme, WalkStartHook


class AsapScheme(TranslationScheme):
    """Range-register-guided PT prefetching racing the page walk."""

    def __init__(self, spec: SchemeSpec, config: AsapConfig) -> None:
        super().__init__(spec)
        self.config = config
        self.name = f"ASAP {config.name}" if config.enabled else "ASAP"
        self._walk_start: WalkStartHook | None = None
        self._prefetchers: list[AsapPrefetcher] = []

    # ------------------------------------------------------------------
    def bind_native(self, sim) -> None:
        from repro.sim.simulator import build_native_descriptors

        config = self.config
        if not config.native_levels:
            return
        process = sim.process
        if process.asap_layout is None:
            raise ValueError(
                "ASAP configs need a process built with the ASAP PT "
                "layout (asap_levels=...)"
            )
        registers = RangeRegisterFile(sim.machine.asap.range_registers)
        registers.load(
            build_native_descriptors(process,
                                     sim.machine.asap.range_registers)
        )
        layout = process.asap_layout
        vmas = process.vmas

        def hole_checker(va: int, level: int) -> bool:
            vma = vmas.find(va)
            return vma is None or layout.is_hole(vma, level, va)

        prefetcher = AsapPrefetcher(
            sim.hierarchy,
            registers,
            levels=config.native_levels,
            require_mshr=sim.machine.asap.require_free_mshr,
            hole_checker=hole_checker,
        )
        sim.prefetcher = prefetcher
        self._prefetchers.append(prefetcher)
        self._walk_start = prefetcher.on_tlb_miss

    # ------------------------------------------------------------------
    def bind_virtualized(self, sim) -> None:
        from repro.sim.virt import build_guest_descriptors, \
            build_host_descriptor

        config = self.config
        vm = sim.vm
        if config.guest_levels:
            registers = RangeRegisterFile(sim.machine.asap.range_registers)
            descriptors = build_guest_descriptors(
                vm, sim.machine.asap.range_registers
            )
            if not descriptors:
                raise ValueError(
                    "guest ASAP needs a guest built with the ASAP layout "
                    "and a VM backing guest PT regions contiguously"
                )
            registers.load(descriptors)
            layout = vm.guest.asap_layout
            vmas = vm.guest.vmas

            def hole_checker(va: int, level: int) -> bool:
                vma = vmas.find(va)
                return vma is None or layout.is_hole(vma, level, va)

            guest_prefetcher = AsapPrefetcher(
                sim.hierarchy,
                registers,
                levels=config.guest_levels,
                require_mshr=sim.machine.asap.require_free_mshr,
                hole_checker=hole_checker,
            )
            sim.guest_prefetcher = guest_prefetcher
            self._prefetchers.append(guest_prefetcher)
            self._walk_start = guest_prefetcher.on_tlb_miss

        if config.host_levels:
            descriptor = build_host_descriptor(vm)
            if descriptor is None:
                raise ValueError(
                    "host ASAP needs a VM built with host_asap_levels"
                )
            registers = RangeRegisterFile(1)
            registers.load([descriptor])
            host_prefetcher = AsapPrefetcher(
                sim.hierarchy,
                registers,
                levels=config.host_levels,
                require_mshr=sim.machine.asap.require_free_mshr,
            )
            sim.host_prefetcher = host_prefetcher
            self._prefetchers.append(host_prefetcher)
            self.host_prefetcher = host_prefetcher

    # ------------------------------------------------------------------
    def walk_start_hook(self) -> WalkStartHook | None:
        return self._walk_start

    def scheme_stats(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for prefetcher in self._prefetchers:
            s = prefetcher.stats
            out["prefetches_issued"] = out.get("prefetches_issued", 0) \
                + s.issued
            out["prefetches_useful"] = out.get("prefetches_useful", 0) \
                + s.useful
            out["wasted_on_hole"] = out.get("wasted_on_hole", 0) \
                + s.wasted_on_hole
        return out

    def finalize(self, stats) -> None:
        super().finalize(stats)
        for prefetcher in self._prefetchers:
            stats.prefetches_issued += prefetcher.stats.issued
            stats.prefetches_useful += prefetcher.stats.useful
            stats.prefetches_dropped += prefetcher.stats.dropped_no_mshr
