"""The pluggable translation-scheme interface and its hashable spec.

A *translation scheme* is everything a design adds to the baseline
radix-walk pipeline of the simulators: what happens on a TLB miss before
the walk starts, what races the walk, and what happens when a
translation is filled or evicted.  The source paper's ASAP prefetcher is
one scheme; the related-work designs modelled in this package (Victima,
Revelator) are others, and each new scheme is one small module.

Two objects per scheme:

* :class:`SchemeSpec` — a frozen, hashable description that slots into
  :class:`~repro.runtime.job.Job` specs (cache identity, CLI names);
* :class:`TranslationScheme` — the per-simulation runtime object, built
  from a spec by :func:`repro.schemes.build_scheme` and bound to one
  simulator instance.

Hook protocol (hot-path contract)
---------------------------------
The simulators bind each hook **once per run** via the ``*_hook()``
accessors, which return either a callable or ``None``.  A scheme that
does not participate in a stage returns ``None`` and the simulator's
per-record cost for that stage is a single ``is not None`` test — this
is what keeps :class:`~repro.schemes.baseline.BaselineRadix` at ~zero
overhead over a scheme-less loop (measured by ``tools/bench_schemes.py``).

* ``probe_hook() -> (va, vpn, now) -> (frame | None, cycles)`` —
  consulted on a TLB miss *before* the page walk.  Returning a frame
  short-circuits the walk entirely (Victima's cache-parked TLB entries);
  returning ``(None, cycles)`` charges the failed probe and the walk
  starts ``cycles`` later.
* ``walk_start_hook() -> (va, now) -> {pt_level: completion}`` — called
  when a walk begins; the returned completion times feed the walker's
  overlap rule (ASAP's prefetches race the walk).
* ``walk_end_hook() -> (va, vpn, now, translation, outcome) -> cycles``
  — called when a walk finishes with the walk's priced latency and its
  :class:`~repro.pagetable.walker.WalkOutcome` (per-step service records
  give walk-step granularity); returns the translation latency the core
  actually stalls for (Revelator's speculation hides or penalises it).
* ``fill_hook() -> (vpn, frame) -> None`` — called after each TLB fill.
  Eviction-driven schemes instead attach to
  ``TlbHierarchy.l2_evict_hook`` at bind time (Victima parks victims).

Binding and stats: ``bind_native(sim)`` / ``bind_virtualized(sim)`` wire
the scheme to one simulator (build prefetchers, attach eviction hooks);
``scheme_stats()`` returns the scheme's own counters and ``finalize``
publishes them into :attr:`~repro.sim.stats.SimStats.scheme_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports us)
    from repro.core.config import AsapConfig
    from repro.pagetable.walker import WalkOutcome
    from repro.sim.stats import SimStats

#: Scheme kinds understood by :func:`repro.schemes.build_scheme`.
SCHEME_KINDS = ("baseline", "asap", "victima", "revelator")

#: probe hook: (va, vpn, now) -> (frame or None, cycles consumed).
ProbeHook = Callable[[int, int, int], "tuple[int | None, int]"]
#: walk-start hook: (va, now) -> {pt_level: absolute completion time}.
WalkStartHook = Callable[[int, int], "dict[int, int]"]
#: walk-end hook: (va, vpn, now, translation, outcome) -> translation.
WalkEndHook = Callable[[int, int, int, int, "WalkOutcome"], int]
#: fill hook: (vpn, frame) -> None.
FillHook = Callable[[int, int], None]


@dataclass(frozen=True)
class SchemeSpec:
    """Hashable identity of one translation scheme (a Job field).

    ``params`` holds the scheme's knobs as a sorted tuple of
    ``(name, value)`` pairs so the spec stays hashable and canonically
    JSON-serialisable whatever a future scheme needs.  The ASAP ladder's
    knobs live in :class:`~repro.core.config.AsapConfig` (carried
    separately by the Job), so ``kind="asap"`` has no params here.
    """

    kind: str = "baseline"
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in SCHEME_KINDS:
            raise ValueError(f"unknown scheme kind {self.kind!r}; "
                             f"one of {SCHEME_KINDS}")
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    # ------------------------------------------------------------------
    @classmethod
    def for_config(cls, config: "AsapConfig") -> "SchemeSpec":
        """The spec implied by an :class:`AsapConfig` alone — what every
        pre-scheme call site meant: ASAP when enabled, else baseline."""
        return cls(kind="asap") if config.enabled else cls(kind="baseline")

    @classmethod
    def victima(cls, parked_entries: int = 4096) -> "SchemeSpec":
        """Victima-like: L2-TLB victims parked in the L2 data cache.

        ``parked_entries`` bounds the tracked victim set (the cache's own
        capacity and replacement decide which parked entries survive).
        """
        return cls(kind="victima",
                   params=(("parked_entries", parked_entries),))

    @classmethod
    def revelator(cls, coverage: float = 0.85, spec_latency: int = 6,
                  penalty: int = 24) -> "SchemeSpec":
        """Revelator-like: hash-based speculative PA + verification walk.

        ``coverage`` is the fraction of pages the system software could
        place at their hash-predicted frame; ``spec_latency`` the hash +
        speculative-issue cost on a correct speculation; ``penalty`` the
        squash cost added to the verification walk on a wrong one.
        """
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be within [0, 1]")
        return cls(kind="revelator",
                   params=(("coverage", coverage),
                           ("penalty", penalty),
                           ("spec_latency", spec_latency)))

    # ------------------------------------------------------------------
    def param(self, name: str, default: float) -> float:
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def is_default_pipeline(self) -> bool:
        """True for the two kinds expressible before this subsystem
        existed (baseline/ASAP) — used for Job back-compat labelling."""
        return self.kind in ("baseline", "asap")

    def payload(self) -> dict:
        """Canonical JSON-serialisable form (cache identity)."""
        return {"kind": self.kind,
                "params": [[key, value] for key, value in self.params]}

    def label(self) -> str:
        if not self.params:
            return self.kind
        knobs = ",".join(f"{key}={value:g}" for key, value in self.params)
        return f"{self.kind}({knobs})"

    def __str__(self) -> str:
        return self.kind


#: The no-op spec (plain radix walks) — the paper's baseline.
BASELINE_SCHEME = SchemeSpec(kind="baseline")
#: ASAP spec; the ladder config rides on ``Job.config`` as before.
ASAP_SCHEME = SchemeSpec(kind="asap")


class TranslationScheme:
    """Base class: the no-op scheme every hook accessor opts out of.

    Subclasses override ``bind_native`` / ``bind_virtualized`` to wire
    themselves to one simulator and the ``*_hook`` accessors to return
    bound callables for the stages they participate in.  Instances are
    single-use: build one per simulation via
    :func:`repro.schemes.build_scheme`.
    """

    #: Display name used by experiment tables and progress labels.
    name: str = "BaselineRadix"

    def __init__(self, spec: SchemeSpec) -> None:
        self.spec = spec
        #: Host-dimension prefetcher handed to the nested walker
        #: (virtualized runs only; ASAP's 2D configs set it).
        self.host_prefetcher = None

    # -- lifecycle ------------------------------------------------------
    def bind_native(self, sim) -> None:
        """Attach to a :class:`~repro.sim.simulator.NativeSimulation`."""

    def bind_virtualized(self, sim) -> None:
        """Attach to a :class:`~repro.sim.virt.VirtualizedSimulation`."""

    # -- hot-path hook accessors (bound once per run) -------------------
    def probe_hook(self) -> ProbeHook | None:
        return None

    def walk_start_hook(self) -> WalkStartHook | None:
        return None

    def walk_end_hook(self) -> WalkEndHook | None:
        return None

    def fill_hook(self) -> FillHook | None:
        return None

    # -- translation-state lifecycle ------------------------------------
    def on_translation_flush(self) -> None:
        """A full translation-state flush is happening: drop any
        *translation-bearing* state this scheme caches outside the
        TLB/PWC structures (Victima's cache-parked entries).  State that
        is OS-owned configuration rather than cached translations —
        ASAP's range registers, Revelator's placement lottery — survives,
        exactly as it would survive a CR3 write.  Counters are kept.
        """

    # -- accounting -----------------------------------------------------
    def scheme_stats(self) -> dict[str, int]:
        """Per-scheme counters, published into ``SimStats.scheme_stats``."""
        return {}

    def finalize(self, stats: "SimStats") -> None:
        """Fold this scheme's counters into the run's statistics."""
        extra = self.scheme_stats()
        if extra:
            stats.scheme_stats.update(extra)
