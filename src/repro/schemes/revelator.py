"""Revelator-like scheme: hash-based speculative address translation.

Models the core idea of *Revelator: Rapid Data Fetching via
System-Software-Guided Hash-based Speculative Address Translation*
(PAPERS.md): system software places pages so that their physical frame
is computable from a hash of the virtual page number; on a TLB miss the
core *speculatively* issues the data access at the hash-predicted
physical address while the normal radix walk runs purely to verify.

Model mapping:

* ``coverage`` — the fraction of pages the OS could place at their
  hash-predicted frame (placement fails when the buddy allocator cannot
  honour the hint).  Whether a given page is hash-placed is a
  deterministic per-VPN lottery (crc32, process-independent) so the
  same job always speculates on the same pages;
* correct speculation hides the walk behind the speculative data fetch:
  the core stalls only for ``spec_latency`` (hash + issue), while the
  verification walk still runs through the shared hierarchy at full
  price — its cache contention is real, only its latency leaves the
  critical path;
* wrong speculation fetches a bogus line into the caches (wrong-path
  pollution, modelled as a real hierarchy access) and adds ``penalty``
  squash cycles on top of the full walk.

The verification walk always completes and its result is what fills the
TLB, mirroring Revelator's (and ASAP §3.1's) security posture: no
translation is consumed that the walk did not produce.
"""

from __future__ import annotations

import zlib

from repro.schemes.base import SchemeSpec, TranslationScheme, WalkEndHook

#: Salt for the wrong-frame generator so mispredicted lines do not
#: collide with the hash-placement lottery stream.
_WRONG_SALT = 0x5EED


def _hash_placed(vpn: int, coverage_pct: int) -> bool:
    """Deterministic, process-independent placement lottery."""
    return zlib.crc32(vpn.to_bytes(8, "little")) % 10_000 < coverage_pct


class RevelatorLike(TranslationScheme):
    """Speculative PA generation with a verification walk."""

    name = "RevelatorLike"

    def __init__(self, spec: SchemeSpec) -> None:
        super().__init__(spec)
        self.coverage_pct = int(round(spec.param("coverage", 0.85) * 10_000))
        self.spec_latency = int(spec.param("spec_latency", 6))
        self.penalty = int(spec.param("penalty", 24))
        self._hierarchy = None
        self.stats = {"speculations": 0, "correct": 0, "mispredicts": 0}

    # ------------------------------------------------------------------
    def _bind(self, sim) -> None:
        self._hierarchy = sim.hierarchy

    bind_native = _bind
    bind_virtualized = _bind

    # ------------------------------------------------------------------
    def _walk_end(self, va: int, vpn: int, now: int, translation: int,
                  outcome) -> int:
        self.stats["speculations"] += 1
        if _hash_placed(vpn, self.coverage_pct):
            # The speculative fetch at the predicted (correct) PA ran
            # concurrently with the verification walk; the core stalls
            # only for the speculation engine itself.
            self.stats["correct"] += 1
            return min(self.spec_latency, translation)
        # Wrong prediction: the speculative fetch touched a bogus line
        # (cache pollution) and the squash serialises after the walk.
        self.stats["mispredicts"] += 1
        wrong_frame = zlib.crc32(
            (vpn ^ _WRONG_SALT).to_bytes(8, "little"))
        wrong_line = ((wrong_frame << 12) | (va & 0xFFF)) >> 6
        self._hierarchy.access_line(wrong_line, now + self.spec_latency)
        return translation + self.penalty

    def walk_end_hook(self) -> WalkEndHook:
        return self._walk_end

    def scheme_stats(self) -> dict[str, int]:
        return dict(self.stats)
