"""Victima-like scheme: TLB victims parked in the L2 data cache.

Models the core idea of *Victima: Drastically Increasing Address
Translation Reach by Leveraging Underutilized Cache Resources*
(PAPERS.md): translations evicted from the L2 S-TLB are not discarded
but written into the L2 **data** cache as cache-resident TLB entries.  A
later TLB miss probes the L2 cache before walking; a hit returns the
translation at L2 latency instead of a multi-access radix walk.

Model mapping onto this repo's substrate:

* each parked translation occupies one synthetic line in the shared
  :class:`~repro.mem.hierarchy.CacheHierarchy`'s L2 (a tag namespace
  disjoint from physical lines), so parked entries *contend with data*
  — data traffic can evict them, which is exactly the capacity tension
  the paper exploits and the co-runner experiments stress;
* a probe is valid only while its line is still L2-resident; the probe
  itself is a real L2 access (promotes LRU, charged at L2 latency);
* the probe races the walk's first stages (the paper issues the PTW
  concurrently and squashes it on a probe hit), so a *failed* probe
  costs no extra latency — the scheme's price is paid in cache
  capacity: parked lines evict data, and data evicts parked lines.

Only small (4KB) translations park; large pages already have reach.
"""

from __future__ import annotations

from repro.schemes.base import ProbeHook, SchemeSpec, TranslationScheme

#: Synthetic line namespace for parked entries: far above any physical
#: line the kernelsim can allocate, so parked lines never alias data.
_PARK_TAG_BASE = 1 << 50


class VictimaLike(TranslationScheme):
    """L2-cache-parked TLB victims probed before the page walk."""

    name = "VictimaLike"

    def __init__(self, spec: SchemeSpec) -> None:
        super().__init__(spec)
        self.max_parked = int(spec.param("parked_entries", 4096))
        self._parked: dict[int, int] = {}  # vpn -> frame
        self._hierarchy = None
        self._tlbs = None
        self._probe_latency = 0
        self.stats = {
            "parked": 0,
            "probe_hits": 0,
            "probe_misses": 0,
            "parked_lost_to_data": 0,
        }

    # ------------------------------------------------------------------
    def _bind(self, sim) -> None:
        tlbs = sim.tlbs
        if tlbs.l2_plain is None and not tlbs.infinite:
            raise ValueError(
                "VictimaLike parks plain L2 S-TLB victims; it does not "
                "compose with the clustered TLB")
        self._hierarchy = sim.hierarchy
        self._tlbs = tlbs
        self._probe_latency = sim.hierarchy.latency_of("L2")
        tlbs.l2_evict_hook = self._park

    bind_native = _bind
    bind_virtualized = _bind

    # ------------------------------------------------------------------
    def _park(self, vpn: int, frame: int) -> None:
        """L2 S-TLB eviction: write the translation into the L2 cache."""
        if len(self._parked) >= self.max_parked and vpn not in self._parked:
            # Victim-set bookkeeping is bounded; beyond it the oldest
            # tracked entry is dropped (its cache line simply goes stale).
            self._parked.pop(next(iter(self._parked)))
        self._parked[vpn] = frame
        self._hierarchy.l2.install(_PARK_TAG_BASE | vpn)
        self.stats["parked"] += 1

    def _probe(self, va: int, vpn: int, now: int) -> tuple[int | None, int]:
        frame = self._parked.get(vpn)
        if frame is not None and self._hierarchy.l2.lookup(
                _PARK_TAG_BASE | vpn):
            # The entry moves back into the TLB; its cache line is
            # freed rather than left to rot at MRU.
            self._hierarchy.l2.invalidate(_PARK_TAG_BASE | vpn)
            del self._parked[vpn]
            self.stats["probe_hits"] += 1
            return frame, self._probe_latency
        if frame is not None:
            # Bookkept but its line was evicted by data traffic: the
            # cache, not the scheme, is the source of truth.
            del self._parked[vpn]
            self.stats["parked_lost_to_data"] += 1
        self.stats["probe_misses"] += 1
        # The walk was issued concurrently; a failed probe adds nothing.
        return None, 0

    def probe_hook(self) -> ProbeHook:
        return self._probe

    def on_translation_flush(self) -> None:
        """Parked entries *are* cached translations: a full flush must
        kill them — bookkeeping and their L2-resident lines — or a
        flush-then-continue run would keep short-circuiting walks with
        supposedly-flushed state (the multi-tenant full-flush switch
        policy was the first caller to hit this)."""
        for vpn in self._parked:
            self._hierarchy.l2.invalidate(_PARK_TAG_BASE | vpn)
        self._parked.clear()

    def scheme_stats(self) -> dict[str, int]:
        return dict(self.stats)
