"""Pluggable translation schemes: the simulators' acceleration layer.

The paper under reproduction proposes one way to hide page-walk latency
(ASAP's layout-guided prefetching); the related work proposes others.
This package makes the design axis explicit: each scheme implements the
:class:`~repro.schemes.base.TranslationScheme` hook protocol and the
simulators dispatch through it, so `repro compare` can race designs
head-to-head on the identical TLB/cache/page-table substrate — and a new
idea is one new module, not a simulator fork.

Shipped schemes (registry below):

* ``baseline`` — plain radix walks (the hardware status quo);
* ``asap`` — the source paper, wrapping the existing prefetcher and
  range-register machinery (ladder config on ``Job.config``);
* ``victima`` — Victima-like: L2-TLB victims parked in the L2 data
  cache, probed before walking;
* ``revelator`` — Revelator-like: hash-based speculative PA generation
  with a verification walk and mis-speculation penalty.
"""

from __future__ import annotations

from repro.core.config import AsapConfig, BASELINE
from repro.schemes.asap import AsapScheme
from repro.schemes.base import (
    ASAP_SCHEME,
    BASELINE_SCHEME,
    SCHEME_KINDS,
    SchemeSpec,
    TranslationScheme,
)
from repro.schemes.baseline import BaselineRadix
from repro.schemes.revelator import RevelatorLike
from repro.schemes.victima import VictimaLike

__all__ = [
    "ASAP_SCHEME",
    "AsapScheme",
    "BASELINE_SCHEME",
    "BaselineRadix",
    "RevelatorLike",
    "SCHEME_KINDS",
    "SchemeSpec",
    "TranslationScheme",
    "VictimaLike",
    "build_scheme",
]


def build_scheme(spec: SchemeSpec | None,
                 config: AsapConfig = BASELINE) -> TranslationScheme:
    """Instantiate the runtime scheme for one simulation.

    ``spec=None`` derives the scheme from ``config`` alone (ASAP when any
    ladder level is enabled, baseline otherwise) — the exact behaviour
    every call site had before the scheme layer existed.
    """
    if spec is None:
        spec = SchemeSpec.for_config(config)
    if spec.kind == "asap":
        return AsapScheme(spec, config)
    if config.enabled:
        raise ValueError(
            f"scheme {spec.kind!r} does not take an ASAP config "
            f"({config.name!r}); pass BASELINE")
    if spec.kind == "baseline":
        return BaselineRadix(spec)
    if spec.kind == "victima":
        return VictimaLike(spec)
    assert spec.kind == "revelator"
    return RevelatorLike(spec)
