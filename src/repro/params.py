"""Machine-model parameters for the ASAP reproduction.

The defaults mirror Table 5 of the paper (an Intel Broadwell-like memory
hierarchy) plus the ASAP-specific architectural parameters from Section 3.4.
Everything is a frozen dataclass so experiment configurations are hashable,
comparable and safe to share between simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CacheParams:
    """Geometry and access latency of one cache level."""

    size_bytes: int
    ways: int
    latency: int
    line_bytes: int = 64

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def sets(self) -> int:
        return self.lines // self.ways

    def __post_init__(self) -> None:
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        if self.lines % self.ways:
            raise ValueError("line count must be a multiple of associativity")


@dataclass(frozen=True)
class HierarchyParams:
    """The three-level cache hierarchy plus main memory of Table 5."""

    l1: CacheParams = CacheParams(size_bytes=32 * 1024, ways=8, latency=4)
    l2: CacheParams = CacheParams(size_bytes=256 * 1024, ways=8, latency=12)
    l3: CacheParams = CacheParams(size_bytes=20 * 1024 * 1024, ways=20, latency=40)
    memory_latency: int = 191
    mshr_entries: int = 10

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes


@dataclass(frozen=True)
class TlbParams:
    """Geometry of one TLB structure."""

    entries: int
    ways: int

    @property
    def sets(self) -> int:
        return self.entries // self.ways

    def __post_init__(self) -> None:
        if self.entries % self.ways:
            raise ValueError("TLB entries must be a multiple of associativity")


@dataclass(frozen=True)
class TlbHierarchyParams:
    """L1 D-TLB plus the unified second-level TLB (Table 5)."""

    l1: TlbParams = TlbParams(entries=64, ways=8)
    l2: TlbParams = TlbParams(entries=1536, ways=6)


@dataclass(frozen=True)
class PwcParams:
    """Split page-walk caches, per Table 5 (similar to Intel Core i7).

    ``pl4``/``pl3``/``pl2`` give (entries, ways); a PWC entry for level L
    caches the pointer produced by the level-L lookup, letting the walker
    resume directly below it.
    """

    latency: int = 2
    pl4_entries: int = 2
    pl4_ways: int = 2  # fully associative
    pl3_entries: int = 4
    pl3_ways: int = 4  # fully associative
    pl2_entries: int = 32
    pl2_ways: int = 4

    def scaled(self, factor: int) -> "PwcParams":
        """Return a copy with every PWC level ``factor``x larger.

        Used by the PWC-capacity ablation (Section 5.1.1 of the paper reports
        that doubling PWCs buys only 2-3%).
        """
        return replace(
            self,
            pl4_entries=self.pl4_entries * factor,
            pl4_ways=self.pl4_ways * factor,
            pl3_entries=self.pl3_entries * factor,
            pl3_ways=self.pl3_ways * factor,
            pl2_entries=self.pl2_entries * factor,
            pl2_ways=self.pl2_ways * factor,
        )


@dataclass(frozen=True)
class AsapParams:
    """Architectural parameters of the ASAP extension (Section 3.4)."""

    #: Number of VMA descriptors (range-register sets) per hardware thread.
    #: The paper finds 8-16 suffice to cover 99% of the footprint.
    range_registers: int = 16
    #: Prefetches are dropped (best effort) when no L1-D MSHR is available.
    require_free_mshr: bool = True


@dataclass(frozen=True)
class CoreParams:
    """Minimal core cost model used only for execution-time fractions.

    Each trace record (one memory operation) costs ``base_cycles`` of
    non-memory work plus its data-access latency plus any translation
    overhead.  This is intentionally simple: the paper's primary metric is
    page-walk latency; fractions of execution time (Figure 2, Table 6) only
    need a consistent denominator.
    """

    base_cycles: int = 2


@dataclass(frozen=True)
class MachineParams:
    """Everything the simulator needs to price one memory access."""

    hierarchy: HierarchyParams = HierarchyParams()
    tlb: TlbHierarchyParams = TlbHierarchyParams()
    pwc: PwcParams = PwcParams()
    asap: AsapParams = AsapParams()
    core: CoreParams = CoreParams()

    def with_pwc_scale(self, factor: int) -> "MachineParams":
        return replace(self, pwc=self.pwc.scaled(factor))


DEFAULT_MACHINE = MachineParams()
