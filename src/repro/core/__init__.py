"""ASAP — the paper's contribution: range registers, configurations and the
prefetch engine that accelerates page walks."""

from repro.core.config import (
    BASELINE,
    FULL_2D,
    LARGE_HOST,
    NATIVE_LADDER,
    P1,
    P1G,
    P1G_P1H,
    P1G_P2G,
    P1_P2,
    P1_P2_P3,
    VIRT_LADDER,
    AsapConfig,
)
from repro.core.prefetcher import AsapPrefetcher, PrefetchStats
from repro.core.range_registers import RangeRegisterFile, VmaDescriptor

__all__ = [
    "AsapConfig",
    "AsapPrefetcher",
    "BASELINE",
    "FULL_2D",
    "LARGE_HOST",
    "NATIVE_LADDER",
    "P1",
    "P1G",
    "P1G_P1H",
    "P1G_P2G",
    "P1_P2",
    "P1_P2_P3",
    "PrefetchStats",
    "RangeRegisterFile",
    "VIRT_LADDER",
    "VmaDescriptor",
]
