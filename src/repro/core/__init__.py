"""ASAP — the paper's contribution: range registers, configurations and the
prefetch engine that accelerates page walks.

Paper cross-references: §3.1 (walk-ahead concept), §3.4 (the prefetcher
and its range-register file, 8-16 VMA descriptors), §3.5 (five-level
extension), §3.6 (the two-dimensional guest/host ladder of Figure 10).
"""

from repro.core.config import (
    BASELINE,
    FULL_2D,
    LARGE_HOST,
    NATIVE_LADDER,
    P1,
    P1G,
    P1G_P1H,
    P1G_P2G,
    P1_P2,
    P1_P2_P3,
    VIRT_LADDER,
    AsapConfig,
)
from repro.core.prefetcher import AsapPrefetcher, PrefetchStats
from repro.core.range_registers import RangeRegisterFile, VmaDescriptor

__all__ = [
    "AsapConfig",
    "AsapPrefetcher",
    "BASELINE",
    "FULL_2D",
    "LARGE_HOST",
    "NATIVE_LADDER",
    "P1",
    "P1G",
    "P1G_P1H",
    "P1G_P2G",
    "P1_P2",
    "P1_P2_P3",
    "PrefetchStats",
    "RangeRegisterFile",
    "VIRT_LADDER",
    "VmaDescriptor",
]
