"""Architecturally exposed range registers — ASAP's VMA descriptors (§3.4).

One descriptor per tracked VMA: the virtual range plus, per prefetch-target
PT level, the base operand of the base-plus-offset computation

    entry_addr(va, L) = base_L + ((va >> level_shift(L)) << 3)

The shift amounts (the paper's ``s1``/``s2``) are fixed per level; the base
absorbs both the region's physical position and the VMA's first node tag
(see `repro.kernelsim.pt_layout`).  Descriptors are part of per-thread
architectural state, loaded by the OS — here via
:meth:`RangeRegisterFile.load` — and looked up on every TLB miss.

The file holds at most ``capacity`` descriptors (16 by default; the paper
shows 8-16 cover 99% of the footprint, Table 2), sorted for bisection.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.pagetable.constants import ENTRY_BYTES, level_shift


@dataclass(frozen=True)
class VmaDescriptor:
    """Range registers for one VMA: [start, end) plus per-level bases."""

    start: int
    end: int
    level_bases: tuple[tuple[int, int], ...]  # ((level, base), ...)

    def covers(self, va: int) -> bool:
        return self.start <= va < self.end

    def entry_addr(self, va: int, level: int) -> int | None:
        """Physical address of the level-``level`` entry for ``va``,
        or None when this descriptor has no base for that level."""
        for lvl, base in self.level_bases:
            if lvl == level:
                return base + ((va >> level_shift(level)) * ENTRY_BYTES)
        return None

    @property
    def levels(self) -> tuple[int, ...]:
        return tuple(lvl for lvl, _ in self.level_bases)


class RangeRegisterFile:
    """Fixed-capacity, bisect-searchable set of VMA descriptors."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("the register file needs at least one entry")
        self.capacity = capacity
        self._descriptors: list[VmaDescriptor] = []
        self._starts: list[int] = []
        self.hits = 0
        self.misses = 0

    def load(self, descriptors: list[VmaDescriptor]) -> None:
        """Load descriptors (an OS context-switch), largest ranges first
        when over capacity."""
        chosen = descriptors
        if len(chosen) > self.capacity:
            chosen = sorted(
                descriptors, key=lambda d: d.end - d.start, reverse=True
            )[: self.capacity]
        chosen = sorted(chosen, key=lambda d: d.start)
        for prev, cur in zip(chosen, chosen[1:]):
            if prev.end > cur.start:
                raise ValueError("descriptors must not overlap")
        self._descriptors = chosen
        self._starts = [d.start for d in chosen]

    def lookup(self, va: int) -> VmaDescriptor | None:
        """The descriptor covering ``va``, consulted on each TLB miss."""
        idx = bisect_right(self._starts, va) - 1
        if idx >= 0:
            descriptor = self._descriptors[idx]
            if descriptor.covers(va):
                self.hits += 1
                return descriptor
        self.misses += 1
        return None

    def __len__(self) -> int:
        return len(self._descriptors)

    @property
    def coverage_bytes(self) -> int:
        return sum(d.end - d.start for d in self._descriptors)
