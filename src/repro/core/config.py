"""ASAP configurations — which PT levels are prefetched in which dimension.

The paper evaluates a specific ladder of configurations; the presets below
carry the exact names used in Figures 8, 10 and 12 so experiment tables read
like the paper:

* native: ``P1`` (prefetch PL1), ``P1+P2`` (PL1 and PL2) — Figure 8;
* virtualized: ``P1g``, ``P1g+P2g``, ``P1g+P1h``, ``P1g+P1h+P2g+P2h`` —
  Figure 10;
* 2MB host pages: ``P1g+P2g+P2h`` (host leaf is PL2, so host PL1 does not
  exist) — Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass


def _validated(levels: tuple[int, ...], what: str) -> tuple[int, ...]:
    for level in levels:
        if level not in (1, 2, 3):
            raise ValueError(
                f"{what} prefetch level {level} is not a deep PT level; "
                "ASAP targets PL1/PL2 (PL3 only for the 5-level extension)"
            )
    return tuple(sorted(set(levels)))


@dataclass(frozen=True)
class AsapConfig:
    """Which page-table levels ASAP prefetches, per dimension.

    ``native_levels`` drive the 1D (non-virtualized) prefetcher;
    ``guest_levels``/``host_levels`` drive the two dimensions of nested
    walks.  An empty config is the paper's baseline.
    """

    name: str = "Baseline"
    native_levels: tuple[int, ...] = ()
    guest_levels: tuple[int, ...] = ()
    host_levels: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "native_levels", _validated(self.native_levels, "native")
        )
        object.__setattr__(
            self, "guest_levels", _validated(self.guest_levels, "guest")
        )
        object.__setattr__(
            self, "host_levels", _validated(self.host_levels, "host")
        )

    @property
    def enabled(self) -> bool:
        return bool(self.native_levels or self.guest_levels
                    or self.host_levels)

    @property
    def needs_native_layout(self) -> bool:
        return bool(self.native_levels)

    @property
    def needs_guest_layout(self) -> bool:
        return bool(self.guest_levels)

    @property
    def needs_host_layout(self) -> bool:
        return bool(self.host_levels)

    def __str__(self) -> str:
        return self.name


BASELINE = AsapConfig()

# --- native (Figure 8) -------------------------------------------------
P1 = AsapConfig(name="P1", native_levels=(1,))
P1_P2 = AsapConfig(name="P1+P2", native_levels=(1, 2))

# --- 5-level extension (§3.5) ------------------------------------------
P1_P2_P3 = AsapConfig(name="P1+P2+P3", native_levels=(1, 2, 3))

# --- virtualized (Figure 10) -------------------------------------------
P1G = AsapConfig(name="P1g", guest_levels=(1,))
P1G_P2G = AsapConfig(name="P1g+P2g", guest_levels=(1, 2))
P1G_P1H = AsapConfig(name="P1g+P1h", guest_levels=(1,), host_levels=(1,))
FULL_2D = AsapConfig(
    name="P1g+P1h+P2g+P2h", guest_levels=(1, 2), host_levels=(1, 2)
)

# --- virtualized with 2MB host pages (Figure 12) -----------------------
LARGE_HOST = AsapConfig(name="P1g+P2g+P2h", guest_levels=(1, 2),
                        host_levels=(2,))

NATIVE_LADDER = (BASELINE, P1, P1_P2)
VIRT_LADDER = (BASELINE, P1G, P1G_P2G, P1G_P1H, FULL_2D)
