"""The ASAP prefetch engine (§3.4).

On a TLB miss the triggering VA is checked against the range registers; on
a hit, the target physical addresses in the prefetch-target PT levels are
computed with base-plus-offset arithmetic and best-effort prefetches are
issued into the L1-D (dropped when no MSHR is free).

The same class serves all three dimensions:

* native walks — descriptors over guest==host virtual VMAs;
* the guest dimension of nested walks — descriptors whose bases are
  *host-physical* addresses of the contiguously backed guest PT regions;
* the host dimension — a single descriptor over the VM's guest-physical
  space, consulted with gPAs at every host 1D walk start.

A prefetch can be *useless* without being harmful: if the node sits in a
layout hole (§3.7.2) the computed line is fetched anyway (pollution, which
the caches model) but no completion is reported, so the walker overlaps
nothing — matching the paper's "walks that target holes are simply not
accelerated".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.mem.hierarchy import CacheHierarchy
from repro.core.range_registers import RangeRegisterFile

#: hole_checker(va, level) -> True when the computed address will NOT
#: contain the real PT node (region hole or out-of-region growth).
HoleChecker = Callable[[int, int], bool]


@dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0
    dropped_no_mshr: int = 0
    no_descriptor: int = 0
    wasted_on_hole: int = 0

    @property
    def accuracy(self) -> float:
        if not self.issued:
            return 0.0
        return self.useful / self.issued


class AsapPrefetcher:
    """Issues base-plus-offset PT prefetches for one walk dimension."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        registers: RangeRegisterFile,
        levels: tuple[int, ...],
        require_mshr: bool = True,
        hole_checker: HoleChecker | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.registers = registers
        self.levels = tuple(sorted(levels))
        self.require_mshr = require_mshr
        self.hole_checker = hole_checker
        self.stats = PrefetchStats()

    def on_tlb_miss(self, va: int, now: int) -> dict[int, int]:
        """Issue prefetches for ``va``; returns level -> completion time
        for the *useful* ones (the walker's overlap input)."""
        if not self.levels:
            return {}
        descriptor = self.registers.lookup(va)
        if descriptor is None:
            self.stats.no_descriptor += 1
            return {}
        completions: dict[int, int] = {}
        for level in self.levels:
            target = descriptor.entry_addr(va, level)
            if target is None:
                continue
            completion = self.hierarchy.prefetch_line(
                target >> 6, now, require_mshr=self.require_mshr
            )
            if completion is None:
                self.stats.dropped_no_mshr += 1
                continue
            self.stats.issued += 1
            if self.hole_checker is not None and self.hole_checker(va, level):
                # The line was fetched (pollution) but the real node lives
                # elsewhere: no overlap benefit for the walker.
                self.stats.wasted_on_hole += 1
                continue
            self.stats.useful += 1
            completions[level] = completion
        return completions
