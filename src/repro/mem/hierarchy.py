"""Three-level cache hierarchy plus main memory (Table 5).

An access probes L1 → L2 → L3 and is served by the first hit (or memory).
The line is then installed in every level above the serving one, modelling
the fill path.  Latencies are *total* access latencies at the serving level:
4 / 12 / 40 / 191 cycles for L1 / L2 / LLC / memory.

The hierarchy operates on line numbers (physical byte address >> 6); helper
``access_addr`` accepts byte addresses.  It is shared state: the application
thread, the page walker, ASAP prefetches and any SMT co-runner all touch the
same instance, which is what creates the cache pressure the paper studies.

Prefetches (ASAP's path) are best effort: they allocate an L1 MSHR before
anything is fetched and are dropped — with no architectural side effect —
when the MSHR file is full (§3.4).  A demand access that misses the L1 while
a prefetch to the same line is still in flight *merges* with it and
completes when the prefetch does.

Hot-path note: ``access`` is a closure built once per instance that probes
and fills the three levels *inline* on their flat array storage
(`repro.mem.cache`) and returns the latency as a plain int, leaving the
serving-level label in the one-slot ``last_level`` cell — the simulators
and walkers call it millions of times per run and mostly ignore the
label, so returning a tuple would be pure allocation overhead.
``access_line`` wraps the same closure in the stable
:class:`AccessResult` API for everything off the hot path (tests,
schemes, the co-runner).  Because the closure captures the underlying
lists and stat objects, every mutating operation must stay in place
(``flush``/``reset_stats`` reuse the same containers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.mem.cache import EMPTY, SetAssociativeCache
from repro.mem.mshr import MshrFile
from repro.params import HierarchyParams

#: Canonical serving-level labels, closest first.
LEVELS = ("L1", "L2", "L3", "MEM")


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    level: str  # one of LEVELS, or "MSHR" for merges with a prefetch


class CacheHierarchy:
    """Shared L1/L2/L3 + memory with an L1 MSHR file for prefetches."""

    def __init__(self, params: HierarchyParams | None = None) -> None:
        self.params = params or HierarchyParams()
        self.l1 = SetAssociativeCache(self.params.l1, name="L1")
        self.l2 = SetAssociativeCache(self.params.l2, name="L2")
        self.l3 = SetAssociativeCache(self.params.l3, name="L3")
        self.mshrs = MshrFile(self.params.mshr_entries)
        self._latencies = {
            "L1": self.params.l1.latency,
            "L2": self.params.l2.latency,
            "L3": self.params.l3.latency,
            "MEM": self.params.memory_latency,
        }
        self.served: dict[str, int] = {level: 0 for level in LEVELS}
        self.prefetches_issued = 0
        self.prefetches_dropped = 0
        #: Serving level of the most recent ``access`` call ("L1", "L2",
        #: "L3", "MEM" or "MSHR"), as a one-slot cell.
        self.last_level: list[str] = ["L1"]
        #: The inlined hot-path probe: ``access(line, now) -> latency``;
        #: the serving level lands in ``last_level``.  Built once; see
        #: module docstring.
        self.access: Callable[[int, int], int] = self._build_access()

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------
    def _build_access(self) -> Callable[[int, int], int]:
        """Build the inlined L1→L2→L3→MEM probe/fill closure.

        Semantically identical to the unfolded ``lookup``/``install``
        calls it replaces, including every stats counter; the win is that
        one call prices an access end to end with zero further dispatch.
        Install steps exploit that the preceding probe already proved the
        line absent, so they skip the membership scan a generic
        ``install`` would pay.
        """
        l1, l2, l3 = self.l1, self.l2, self.l3
        l1_lines, l2_lines, l3_lines = l1.lines, l2.lines, l3.lines
        l1_sizes, l2_sizes, l3_sizes = l1.sizes, l2.sizes, l3.sizes
        l1_nsets, l2_nsets, l3_nsets = l1.num_sets, l2.num_sets, l3.num_sets
        l1_stride, l2_stride, l3_stride = l1.stride, l2.stride, l3.stride
        l1_ways, l2_ways, l3_ways = l1.ways, l2.ways, l3.ways
        l1_stats, l2_stats, l3_stats = l1.stats, l2.stats, l3.stats
        lat1 = self._latencies["L1"]
        lat2 = self._latencies["L2"]
        lat3 = self._latencies["L3"]
        latm = self._latencies["MEM"]
        served = self.served
        last_level = self.last_level
        mshr_inflight = self.mshrs._inflight
        inflight_completion = self.mshrs.inflight_completion

        def access(line: int, now: int = 0) -> int:
            # --- L1 probe --------------------------------------------
            l1_set = line % l1_nsets
            l1_base = l1_set * l1_stride
            if l1_lines[l1_base] == line:
                # MRU shortcut: hit in place, no reordering needed.
                l1_stats.hits += 1
                served["L1"] += 1
                last_level[0] = "L1"
                return lat1
            limit = l1_base + l1_sizes[l1_set]
            l1_lines[limit] = line
            pos = l1_lines.index(line, l1_base)
            l1_lines[limit] = EMPTY
            if pos != limit:
                l1_stats.hits += 1
                l1_lines[l1_base + 1:pos + 1] = l1_lines[l1_base:pos]
                l1_lines[l1_base] = line
                served["L1"] += 1
                last_level[0] = "L1"
                return lat1
            l1_stats.misses += 1
            # --- MSHR merge with an in-flight prefetch ---------------
            if mshr_inflight:
                merged = inflight_completion(line, now)
                if merged is not None and merged > now:
                    size = l1_sizes[l1_set]
                    if size >= l1_ways:
                        last = l1_base + l1_ways - 1
                        l1_lines[l1_base + 1:last + 1] = \
                            l1_lines[l1_base:last]
                        l1_stats.evictions += 1
                    else:
                        limit = l1_base + size
                        l1_lines[l1_base + 1:limit + 1] = \
                            l1_lines[l1_base:limit]
                        l1_sizes[l1_set] = size + 1
                    l1_lines[l1_base] = line
                    last_level[0] = "MSHR"
                    return merged - now
            # --- L2 probe --------------------------------------------
            l2_set = line % l2_nsets
            l2_base = l2_set * l2_stride
            if l2_lines[l2_base] == line:
                l2_stats.hits += 1
                latency, level = lat2, "L2"
            else:
                limit = l2_base + l2_sizes[l2_set]
                l2_lines[limit] = line
                pos = l2_lines.index(line, l2_base)
                l2_lines[limit] = EMPTY
                if pos != limit:
                    l2_stats.hits += 1
                    l2_lines[l2_base + 1:pos + 1] = l2_lines[l2_base:pos]
                    l2_lines[l2_base] = line
                    latency, level = lat2, "L2"
                else:
                    l2_stats.misses += 1
                    # --- L3 probe ------------------------------------
                    l3_set = line % l3_nsets
                    l3_base = l3_set * l3_stride
                    if l3_lines[l3_base] == line:
                        l3_stats.hits += 1
                        latency, level = lat3, "L3"
                    else:
                        limit = l3_base + l3_sizes[l3_set]
                        l3_lines[limit] = line
                        pos = l3_lines.index(line, l3_base)
                        l3_lines[limit] = EMPTY
                        if pos != limit:
                            l3_stats.hits += 1
                            l3_lines[l3_base + 1:pos + 1] = \
                                l3_lines[l3_base:pos]
                            l3_lines[l3_base] = line
                            latency, level = lat3, "L3"
                        else:
                            l3_stats.misses += 1
                            latency, level = latm, "MEM"
                            # install into L3 (line known absent)
                            size = l3_sizes[l3_set]
                            if size >= l3_ways:
                                last = l3_base + l3_ways - 1
                                l3_lines[l3_base + 1:last + 1] = \
                                    l3_lines[l3_base:last]
                                l3_stats.evictions += 1
                            else:
                                limit = l3_base + size
                                l3_lines[l3_base + 1:limit + 1] = \
                                    l3_lines[l3_base:limit]
                                l3_sizes[l3_set] = size + 1
                            l3_lines[l3_base] = line
                    # install into L2 (L3/MEM serve; line known absent)
                    size = l2_sizes[l2_set]
                    if size >= l2_ways:
                        last = l2_base + l2_ways - 1
                        l2_lines[l2_base + 1:last + 1] = \
                            l2_lines[l2_base:last]
                        l2_stats.evictions += 1
                    else:
                        limit = l2_base + size
                        l2_lines[l2_base + 1:limit + 1] = \
                            l2_lines[l2_base:limit]
                        l2_sizes[l2_set] = size + 1
                    l2_lines[l2_base] = line
            # install into L1 (every non-L1 serve; line known absent)
            size = l1_sizes[l1_set]
            if size >= l1_ways:
                last = l1_base + l1_ways - 1
                l1_lines[l1_base + 1:last + 1] = l1_lines[l1_base:last]
                l1_stats.evictions += 1
            else:
                limit = l1_base + size
                l1_lines[l1_base + 1:limit + 1] = l1_lines[l1_base:limit]
                l1_sizes[l1_set] = size + 1
            l1_lines[l1_base] = line
            served[level] += 1
            last_level[0] = level
            return latency

        return access

    def access_line(self, line: int, now: int = 0) -> AccessResult:
        """Demand access to ``line``; installs into upper levels on miss."""
        latency = self.access(line, now)
        return AccessResult(latency, self.last_level[0])

    def access_addr(self, phys_addr: int, now: int = 0) -> AccessResult:
        return self.access_line(phys_addr >> 6, now)

    def bulk_l1_hits(self, count: int) -> None:
        """Account ``count`` repeat L1 hits on the line the immediately
        preceding access left at MRU (the batched front-end's streak
        costing; the repeats would neither move LRU state nor miss)."""
        self.l1.stats.hits += count
        self.served["L1"] += count

    def _serving_level_below_l1(self, line: int) -> str:
        if self.l2.lookup(line):
            return "L2"
        if self.l3.lookup(line):
            return "L3"
        return "MEM"

    def _fill(self, line: int, served_at: str) -> None:
        self.l1.install(line)
        if served_at in ("L3", "MEM"):
            self.l2.install(line)
        if served_at == "MEM":
            self.l3.install(line)

    # ------------------------------------------------------------------
    # prefetch path (used by ASAP)
    # ------------------------------------------------------------------
    def prefetch_line(
        self, line: int, now: int, require_mshr: bool = True
    ) -> int | None:
        """Issue a best-effort prefetch for ``line`` at time ``now``.

        Returns the absolute completion time, or None when the prefetch was
        dropped for lack of an MSHR.  On success the line is installed into
        the L1-D (and intermediate levels), exactly like a demand fill.
        """
        if self.l1.lookup(line):
            # Already resident: the "prefetch" is a free L1 hit.
            self.served["L1"] += 1
            return now + self._latencies["L1"]
        level = self._serving_level_below_l1(line)
        completion = now + self._latencies[level]
        if require_mshr and not self.mshrs.try_allocate(line, now, completion):
            self.prefetches_dropped += 1
            return None
        self._fill(line, level)
        self.served[level] += 1
        self.prefetches_issued += 1
        return completion

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def warm(self, lines: Iterable[int]) -> None:
        """Pre-install lines in all levels (used by tests and warmup)."""
        for line in lines:
            self.l1.install(line)
            self.l2.install(line)
            self.l3.install(line)

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
        self.l3.flush()
        self.mshrs.reset()

    def latency_of(self, level: str) -> int:
        return self._latencies[level]

    def reset_stats(self) -> None:
        for cache in (self.l1, self.l2, self.l3):
            cache.stats.reset()
        # In place: the ``access`` closure captured this dict.
        for level in LEVELS:
            self.served[level] = 0
        self.prefetches_issued = 0
        self.prefetches_dropped = 0
