"""Three-level cache hierarchy plus main memory (Table 5).

An access probes L1 → L2 → L3 and is served by the first hit (or memory).
The line is then installed in every level above the serving one, modelling
the fill path.  Latencies are *total* access latencies at the serving level:
4 / 12 / 40 / 191 cycles for L1 / L2 / LLC / memory.

The hierarchy operates on line numbers (physical byte address >> 6); helper
``access_addr`` accepts byte addresses.  It is shared state: the application
thread, the page walker, ASAP prefetches and any SMT co-runner all touch the
same instance, which is what creates the cache pressure the paper studies.

Prefetches (ASAP's path) are best effort: they allocate an L1 MSHR before
anything is fetched and are dropped — with no architectural side effect —
when the MSHR file is full (§3.4).  A demand access that misses the L1 while
a prefetch to the same line is still in flight *merges* with it and
completes when the prefetch does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.mem.cache import SetAssociativeCache
from repro.mem.mshr import MshrFile
from repro.params import HierarchyParams

#: Canonical serving-level labels, closest first.
LEVELS = ("L1", "L2", "L3", "MEM")


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    level: str  # one of LEVELS, or "MSHR" for merges with a prefetch


class CacheHierarchy:
    """Shared L1/L2/L3 + memory with an L1 MSHR file for prefetches."""

    def __init__(self, params: HierarchyParams | None = None) -> None:
        self.params = params or HierarchyParams()
        self.l1 = SetAssociativeCache(self.params.l1, name="L1")
        self.l2 = SetAssociativeCache(self.params.l2, name="L2")
        self.l3 = SetAssociativeCache(self.params.l3, name="L3")
        self.mshrs = MshrFile(self.params.mshr_entries)
        self._latencies = {
            "L1": self.params.l1.latency,
            "L2": self.params.l2.latency,
            "L3": self.params.l3.latency,
            "MEM": self.params.memory_latency,
        }
        self.served: dict[str, int] = {level: 0 for level in LEVELS}
        self.prefetches_issued = 0
        self.prefetches_dropped = 0

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------
    def access_line(self, line: int, now: int = 0) -> AccessResult:
        """Demand access to ``line``; installs into upper levels on miss."""
        if self.l1.lookup(line):
            self.served["L1"] += 1
            return AccessResult(self._latencies["L1"], "L1")
        merged = self.mshrs.inflight_completion(line, now)
        if merged is not None and merged > now:
            # An in-flight prefetch to the same line: the demand access
            # completes when the prefetch does (already accounted for).
            self.l1.install(line)
            return AccessResult(merged - now, "MSHR")
        level = self._serving_level_below_l1(line)
        self._fill(line, level)
        self.served[level] += 1
        return AccessResult(self._latencies[level], level)

    def access_addr(self, phys_addr: int, now: int = 0) -> AccessResult:
        return self.access_line(phys_addr >> 6, now)

    def _serving_level_below_l1(self, line: int) -> str:
        if self.l2.lookup(line):
            return "L2"
        if self.l3.lookup(line):
            return "L3"
        return "MEM"

    def _fill(self, line: int, served_at: str) -> None:
        self.l1.install(line)
        if served_at in ("L3", "MEM"):
            self.l2.install(line)
        if served_at == "MEM":
            self.l3.install(line)

    # ------------------------------------------------------------------
    # prefetch path (used by ASAP)
    # ------------------------------------------------------------------
    def prefetch_line(
        self, line: int, now: int, require_mshr: bool = True
    ) -> int | None:
        """Issue a best-effort prefetch for ``line`` at time ``now``.

        Returns the absolute completion time, or None when the prefetch was
        dropped for lack of an MSHR.  On success the line is installed into
        the L1-D (and intermediate levels), exactly like a demand fill.
        """
        if self.l1.lookup(line):
            # Already resident: the "prefetch" is a free L1 hit.
            self.served["L1"] += 1
            return now + self._latencies["L1"]
        level = self._serving_level_below_l1(line)
        completion = now + self._latencies[level]
        if require_mshr and not self.mshrs.try_allocate(line, now, completion):
            self.prefetches_dropped += 1
            return None
        self._fill(line, level)
        self.served[level] += 1
        self.prefetches_issued += 1
        return completion

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def warm(self, lines: Iterable[int]) -> None:
        """Pre-install lines in all levels (used by tests and warmup)."""
        for line in lines:
            self.l1.install(line)
            self.l2.install(line)
            self.l3.install(line)

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
        self.l3.flush()
        self.mshrs.reset()

    def latency_of(self, level: str) -> int:
        return self._latencies[level]

    def reset_stats(self) -> None:
        for cache in (self.l1, self.l2, self.l3):
            cache.stats.reset()
        self.served = {level: 0 for level in LEVELS}
        self.prefetches_issued = 0
        self.prefetches_dropped = 0
