"""A set-associative, write-allocate cache model with true-LRU replacement.

The model tracks cache *lines by line number* (physical address >> 6); it
never stores data.  Each set is a dict used as an ordered LRU queue: Python
dicts preserve insertion order, so deleting and re-inserting a key moves it
to the MRU position in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.params import CacheParams


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class SetAssociativeCache:
    """LRU set-associative cache over abstract line numbers.

    Parameters
    ----------
    params:
        Geometry (size, associativity, line size).  Latency is *not* used
        here; the hierarchy is responsible for pricing accesses.
    name:
        Label used in stats reporting and repr.
    """

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.params = params
        self.name = name
        self.num_sets = params.sets
        self.ways = params.ways
        self._sets: list[dict[int, None]] = [{} for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def lookup(self, line: int, update_lru: bool = True) -> bool:
        """Probe for ``line``; on a hit optionally promote it to MRU."""
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set:
            self.stats.hits += 1
            if update_lru:
                del cache_set[line]
                cache_set[line] = None
            return True
        self.stats.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Non-mutating membership test (no stats, no LRU update)."""
        return line in self._sets[self._set_index(line)]

    def install(self, line: int) -> int | None:
        """Insert ``line`` as MRU; return the evicted line, if any."""
        cache_set = self._sets[self._set_index(line)]
        victim = None
        if line in cache_set:
            del cache_set[line]
        elif len(cache_set) >= self.ways:
            victim = next(iter(cache_set))
            del cache_set[victim]
            self.stats.evictions += 1
        cache_set[line] = None
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; returns whether it was resident."""
        cache_set = self._sets[self._set_index(line)]
        if line in cache_set:
            del cache_set[line]
            return True
        return False

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{self.name}: {self.params.size_bytes >> 10}KB "
            f"{self.ways}-way, {self.occupancy}/{self.params.lines} lines>"
        )
