"""A set-associative, write-allocate cache model with true-LRU replacement.

The model tracks cache *lines by line number* (physical address >> 6); it
never stores data.  Storage is the repository's shared flat-array LRU
layout (see `repro.tlb.tlb` and docs/ARCHITECTURE.md): one preallocated
``lines`` list of ``sets * (ways+1)`` slots, each set owning a contiguous
segment ordered MRU→LRU with a trailing guard slot, so a probe is one
C-speed ``list.index`` scan and the eviction victim is always the last
live slot.  The hot simulator loops additionally reach into this storage
directly (``repro.mem.hierarchy`` inlines the L1 probe), which is the
point of keeping it as plain indexed arrays rather than per-set dicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import CacheParams

#: Sentinel marking an empty slot; real line numbers are non-negative.
EMPTY = -1


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class SetAssociativeCache:
    """LRU set-associative cache over abstract line numbers.

    Parameters
    ----------
    params:
        Geometry (size, associativity, line size).  Latency is *not* used
        here; the hierarchy is responsible for pricing accesses.
    name:
        Label used in stats reporting and repr.
    """

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.params = params
        self.name = name
        self.num_sets = params.sets
        self.ways = params.ways
        #: Slots per set segment: ``ways`` entries plus the guard slot.
        self.stride = params.ways + 1
        self.lines: list[int] = [EMPTY] * (self.num_sets * self.stride)
        self.sizes: list[int] = [0] * self.num_sets
        self.stats = CacheStats()

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def lookup(self, line: int, update_lru: bool = True) -> bool:
        """Probe for ``line``; on a hit optionally promote it to MRU."""
        set_index = line % self.num_sets
        base = set_index * self.stride
        lines = self.lines
        limit = base + self.sizes[set_index]
        lines[limit] = line
        pos = lines.index(line, base)
        lines[limit] = EMPTY
        if pos == limit:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        if update_lru and pos != base:
            lines[base + 1:pos + 1] = lines[base:pos]
            lines[base] = line
        return True

    def contains(self, line: int) -> bool:
        """Non-mutating membership test (no stats, no LRU update)."""
        set_index = line % self.num_sets
        base = set_index * self.stride
        lines = self.lines
        limit = base + self.sizes[set_index]
        lines[limit] = line
        pos = lines.index(line, base)
        lines[limit] = EMPTY
        return pos != limit

    def install(self, line: int) -> int | None:
        """Insert ``line`` as MRU; return the evicted line, if any."""
        set_index = line % self.num_sets
        base = set_index * self.stride
        lines = self.lines
        size = self.sizes[set_index]
        limit = base + size
        lines[limit] = line
        pos = lines.index(line, base)
        lines[limit] = EMPTY
        victim = None
        if pos != limit:
            if pos != base:
                lines[base + 1:pos + 1] = lines[base:pos]
        elif size >= self.ways:
            last = base + self.ways - 1
            victim = lines[last]
            lines[base + 1:last + 1] = lines[base:last]
            self.stats.evictions += 1
        else:
            lines[base + 1:limit + 1] = lines[base:limit]
            self.sizes[set_index] = size + 1
        lines[base] = line
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; returns whether it was resident."""
        set_index = line % self.num_sets
        base = set_index * self.stride
        lines = self.lines
        size = self.sizes[set_index]
        limit = base + size
        lines[limit] = line
        pos = lines.index(line, base)
        lines[limit] = EMPTY
        if pos == limit:
            return False
        last = limit - 1
        lines[pos:last] = lines[pos + 1:limit]
        lines[last] = EMPTY
        self.sizes[set_index] = size - 1
        return True

    def flush(self) -> None:
        self.lines[:] = [EMPTY] * (self.num_sets * self.stride)
        self.sizes[:] = [0] * self.num_sets

    def resident_lines(self):
        """Iterate all resident line numbers (introspection/debug)."""
        stride = self.stride
        for set_index in range(self.num_sets):
            base = set_index * stride
            yield from self.lines[base:base + self.sizes[set_index]]

    @property
    def occupancy(self) -> int:
        return sum(self.sizes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{self.name}: {self.params.size_bytes >> 10}KB "
            f"{self.ways}-way, {self.occupancy}/{self.params.lines} lines>"
        )
