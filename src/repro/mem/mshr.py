"""Miss Status Holding Registers for the L1-D cache.

ASAP prefetches are best effort: a prefetch is issued only if an MSHR is
available (Section 3.4, "Prefetches are thus best-effort").  The file tracks
in-flight misses by completion time; entries whose completion time has
passed are retired lazily on each allocation attempt.

A demand access to a line that already has an in-flight MSHR *merges* with
it instead of allocating a new entry — that is how the walker's demand read
picks up an ASAP prefetch that has not yet completed.
"""

from __future__ import annotations


class MshrFile:
    """Fixed-capacity set of in-flight misses keyed by line number."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("an MSHR file needs at least one entry")
        self.capacity = entries
        self._inflight: dict[int, int] = {}
        self.allocations = 0
        self.rejections = 0
        self.merges = 0

    def _retire(self, now: int) -> None:
        if not self._inflight:
            return
        done = [line for line, t in self._inflight.items() if t <= now]
        for line in done:
            del self._inflight[line]

    def inflight_completion(self, line: int, now: int) -> int | None:
        """Completion time of an in-flight miss on ``line``, if any."""
        self._retire(now)
        when = self._inflight.get(line)
        if when is not None:
            self.merges += 1
        return when

    def try_allocate(self, line: int, now: int, completion: int) -> bool:
        """Reserve an MSHR for a miss on ``line`` finishing at ``completion``.

        Returns False (prefetch must be dropped) when the file is full.
        Allocating for a line that is already in flight merges and succeeds.
        """
        self._retire(now)
        if line in self._inflight:
            self.merges += 1
            return True
        if len(self._inflight) >= self.capacity:
            self.rejections += 1
            return False
        self._inflight[line] = completion
        self.allocations += 1
        return True

    def drain(self) -> None:
        """Abandon every in-flight miss, keeping the counters.

        Context switches and translation-state flushes use this: whatever
        was in flight is conceptually completed-and-discarded, and a new
        simulation epoch (whose clock restarts) must not merge with stale
        completion times from the previous one.
        """
        self._inflight.clear()

    @property
    def occupancy(self) -> int:
        return len(self._inflight)

    def reset(self) -> None:
        self._inflight.clear()
        self.allocations = 0
        self.rejections = 0
        self.merges = 0
