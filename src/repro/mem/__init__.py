"""Cache-hierarchy substrate: set-associative caches, MSHRs, L1/L2/L3+DRAM."""

from repro.mem.cache import CacheStats, SetAssociativeCache
from repro.mem.hierarchy import LEVELS, AccessResult, CacheHierarchy
from repro.mem.mshr import MshrFile

__all__ = [
    "AccessResult",
    "CacheHierarchy",
    "CacheStats",
    "LEVELS",
    "MshrFile",
    "SetAssociativeCache",
]
