"""Cache-hierarchy substrate: set-associative caches, MSHRs, L1/L2/L3+DRAM.

Paper cross-references: Table 5 (Broadwell-like hierarchy: 32KB L1D,
256KB L2, 20MB LLC, ~191-cycle DRAM), §3.4 (prefetches are dropped
without a free L1-D MSHR; best-effort semantics), Figure 9 (which level
serves each PT level's requests).
"""

from repro.mem.cache import CacheStats, SetAssociativeCache
from repro.mem.hierarchy import LEVELS, AccessResult, CacheHierarchy
from repro.mem.mshr import MshrFile

__all__ = [
    "AccessResult",
    "CacheHierarchy",
    "CacheStats",
    "LEVELS",
    "MshrFile",
    "SetAssociativeCache",
]
