"""Chunk-iterator trace sources for the simulators' batched front ends.

A :class:`TraceSource` is what the simulators consume when a trace is
too large (or deliberately not materialised) to pass as one ndarray:

* ``records`` — total record count (the scheduler and warmup logic need
  lengths up front);
* ``chunks()`` — the records as an ordered iterator of int64 ndarrays;
* ``section(start, stop)`` — a sub-range as another source, used by the
  multi-tenant quantum scheduler in place of array slicing.

Implementations:

* :class:`ArraySource` wraps any ndarray — in-memory or a memory-mapped
  trace payload — and yields views, so a 10M-record mmap trace streams
  through the simulator touching one execution chunk of pages at a
  time;
* :class:`GeneratedSource` yields the canonical generation chunks of
  ``(spec, records, seed)`` on the fly (nothing on disk, one generation
  chunk in memory).  Its sections re-slice the canonical chunks, with
  the most recent chunk cached so the round-robin scheduler's
  monotonically advancing cursors do not regenerate a 1M-record chunk
  per quantum.  Note the cost model: every *pass* over a generated
  source re-synthesises its chunks, and a simulation makes two passes
  (``populate`` then the record loop), so a generated streamed run pays
  generation twice — that is the price of O(chunk) memory with nothing
  on disk.  Generation is vectorised numpy (a few percent of simulation
  time); when a large trace will be replayed more than once,
  materialise it (`repro trace materialize`) and mmap-stream instead.

Passing a plain ndarray to ``run()`` remains the single-chunk fast
case: :func:`iter_trace_chunks` yields it whole, which is exactly the
historical monolithic execution.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.traces.stream import generate_chunk, generation_chunks
from repro.workloads.base import WorkloadSpec

#: Default execution-chunk size for array-backed sources: large enough
#: that per-chunk overhead (run re-detection, closure rebinding) is
#: noise, small enough that the per-chunk ``tolist`` stays ~8MB.
DEFAULT_CHUNK_RECORDS = 1 << 18


class TraceSource:
    """Protocol base for chunked trace access (see module docstring)."""

    records: int

    def chunks(self) -> Iterator[np.ndarray]:  # pragma: no cover
        raise NotImplementedError

    def section(self, start: int, stop: int) -> "TraceSource":
        raise NotImplementedError  # pragma: no cover

    def __len__(self) -> int:
        return self.records


class ArraySource(TraceSource):
    """A trace held in (or memory-mapped from) one ndarray."""

    def __init__(self, array: np.ndarray,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS) -> None:
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self.array = array
        self.records = len(array)
        self.chunk_records = chunk_records

    def chunks(self) -> Iterator[np.ndarray]:
        for start in range(0, self.records, self.chunk_records):
            yield self.array[start:start + self.chunk_records]

    def section(self, start: int, stop: int) -> "ArraySource":
        return ArraySource(self.array[start:stop], self.chunk_records)


class GeneratedSource(TraceSource):
    """The canonical trace of ``(spec, records, seed)``, generated on
    demand one generation chunk at a time."""

    def __init__(self, spec: WorkloadSpec, records: int, seed: int,
                 chunk_records: int | None = None) -> None:
        if records < 0:
            raise ValueError("record count cannot be negative")
        if chunk_records is not None and chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self.spec = spec
        self.records = records
        self.seed = seed
        #: Optional re-slicing of the canonical chunks into smaller
        #: execution chunks (tests sweep this; None = canonical).
        self.chunk_records = chunk_records
        #: (index, array) of the most recently generated chunk.
        self._cached: tuple[int, np.ndarray] | None = None

    def _canonical(self, index: int) -> np.ndarray:
        if self._cached is not None and self._cached[0] == index:
            return self._cached[1]
        chunk = generate_chunk(self.spec, self.records, self.seed, index)
        self._cached = (index, chunk)
        return chunk

    def _ranged_chunks(self, start: int,
                       stop: int) -> Iterator[np.ndarray]:
        """Canonical-chunk slices covering ``[start, stop)``, re-sliced
        to ``chunk_records`` when set."""
        step = self.chunk_records
        for index, c_start, c_stop in generation_chunks(self.records):
            if c_stop <= start:
                continue
            if c_start >= stop:
                break
            lo = max(start, c_start) - c_start
            hi = min(stop, c_stop) - c_start
            piece = self._canonical(index)[lo:hi]
            if step is None:
                yield piece
            else:
                for inner in range(0, len(piece), step):
                    yield piece[inner:inner + step]

    def chunks(self) -> Iterator[np.ndarray]:
        return self._ranged_chunks(0, self.records)

    def section(self, start: int, stop: int) -> "TraceSource":
        return _SectionSource(self, start, stop)


class _SectionSource(TraceSource):
    """A contiguous sub-range of a :class:`GeneratedSource`."""

    def __init__(self, parent: GeneratedSource, start: int,
                 stop: int) -> None:
        start = max(0, min(start, parent.records))
        stop = max(start, min(stop, parent.records))
        self.parent = parent
        self.start = start
        self.records = stop - start

    def chunks(self) -> Iterator[np.ndarray]:
        return self.parent._ranged_chunks(self.start,
                                          self.start + self.records)

    def section(self, start: int, stop: int) -> "TraceSource":
        return _SectionSource(self.parent, self.start + start,
                              self.start + stop)


def as_trace_source(trace, chunk_records: int | None = None) -> TraceSource:
    """Coerce an ndarray (or pass a source through) to a TraceSource."""
    if isinstance(trace, TraceSource):
        return trace
    if isinstance(trace, np.ndarray):
        return ArraySource(
            trace,
            chunk_records if chunk_records is not None
            else DEFAULT_CHUNK_RECORDS)
    raise TypeError(f"not a trace: {type(trace).__name__}")


def trace_records(trace) -> int:
    """Total record count of an ndarray or TraceSource."""
    return len(trace)


def kernel_chunk(chunk: np.ndarray) -> np.ndarray:
    """A C-contiguous int64 view of ``chunk`` for compiled kernels.

    Chunk iterators yield views into larger int64 arrays (mmap payloads,
    generation chunks); those are already contiguous and pass through
    untouched, so the compiled columnar kernel reads the same memory the
    scalar loop would.  Anything else (strided slices, narrower dtypes
    from synthetic tests) is copied once here, at chunk granularity.
    """
    if (isinstance(chunk, np.ndarray) and chunk.dtype == np.int64
            and chunk.flags.c_contiguous):
        return chunk
    return np.ascontiguousarray(chunk, dtype=np.int64)


def iter_trace_chunks(trace) -> Iterable[np.ndarray]:
    """The execution-chunk view the simulators consume.

    A plain ndarray is yielded whole — the historical monolithic path,
    preserved bit for bit; a :class:`TraceSource` streams its chunks.
    """
    if isinstance(trace, np.ndarray):
        return (trace,)
    if isinstance(trace, TraceSource):
        return trace.chunks()
    raise TypeError(f"not a trace: {type(trace).__name__}")
