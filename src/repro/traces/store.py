"""On-disk trace format and the runtime's trace references.

A materialised trace is a directory::

    <trace>/
      header.json    versioned metadata + content digest
      payload.npy    the addresses, one int64 per record (memory-mapped)

The payload is a plain ``.npy`` so it opens with ``np.load(...,
mmap_mode="r")`` — execution touches only the pages the current
execution chunk covers, which is what bounds a 10M-record run's memory
by chunk size rather than trace length.

The **content digest** is sha256 over the records as little-endian
int64 bytes (not over the file, so the npy header layout can never
perturb identity), computed chunkwise at materialisation.
:class:`TraceRef` carries ``(digest, records)`` into
:meth:`repro.runtime.job.Job.payload`: two jobs replaying the same
content share one cache entry wherever the file lives, and a job can
never silently run against a different trace than the one it was cached
for (``execute_job`` re-checks the header digest at open time).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.traces.stream import (
    GEN_CHUNK_RECORDS,
    generation_chunks,
    iter_generated_chunks,
)
from repro.workloads.base import WorkloadSpec

#: Bump together with any change to the payload layout, the digest
#: definition, or :data:`repro.traces.stream.GEN_CHUNK_RECORDS`.
FORMAT_VERSION = 1

HEADER_NAME = "header.json"
PAYLOAD_NAME = "payload.npy"


@dataclass(frozen=True)
class TraceRef:
    """Hashable reference to a materialised trace (a Job axis).

    ``digest``/``records`` are the cache identity; ``path`` and
    ``workload``/``seed`` are execution metadata (where to mmap the
    payload, which process layout to replay it against).
    """

    path: str
    workload: str
    records: int
    seed: int
    digest: str


def _header_path(path: str | Path) -> Path:
    return Path(path) / HEADER_NAME


def _payload_path(path: str | Path) -> Path:
    return Path(path) / PAYLOAD_NAME


def _record_bytes(chunk: np.ndarray) -> bytes:
    """The digest encoding of one chunk: little-endian int64 records.
    The single definition both the writer and the verifier hash."""
    return np.ascontiguousarray(chunk, dtype="<i8").tobytes()


def compute_digest(array: np.ndarray,
                   chunk_records: int = GEN_CHUNK_RECORDS) -> str:
    """Chunkwise content digest of an in-memory or mmap array."""
    digest = hashlib.sha256()
    for start in range(0, len(array), chunk_records):
        digest.update(_record_bytes(array[start:start + chunk_records]))
    return digest.hexdigest()


def materialize_trace(
    spec: WorkloadSpec,
    records: int,
    seed: int,
    path: str | Path,
    force: bool = False,
) -> TraceRef:
    """Write the canonical trace for ``(spec, records, seed)`` to disk.

    Generation, the payload write and the digest all proceed one
    generation chunk at a time, so peak memory is one chunk regardless
    of ``records``.  The header is written last: a directory without a
    readable header is an interrupted materialisation, never a valid
    trace.
    """
    if records < 1:
        raise ValueError("a trace needs at least one record")
    directory = Path(path)
    header_path = _header_path(directory)
    if header_path.exists():
        if not force:
            raise FileExistsError(
                f"{directory} already holds a trace (pass force=True / "
                f"--force to overwrite)")
        # Drop the old header *before* touching the payload: an
        # interrupted rewrite must leave a header-less directory (an
        # invalid trace), never a stale header whose digest happens to
        # validate against half-rewritten payload bytes.
        header_path.unlink()
    directory.mkdir(parents=True, exist_ok=True)
    payload = np.lib.format.open_memmap(
        _payload_path(directory), mode="w+", dtype=np.int64,
        shape=(records,))
    digest = hashlib.sha256()
    try:
        for chunk, (_index, start, stop) in zip(
                iter_generated_chunks(spec, records, seed),
                generation_chunks(records)):
            payload[start:stop] = chunk
            digest.update(_record_bytes(chunk))
        payload.flush()
    finally:
        del payload  # release the writable mapping before the header
    header = {
        "format_version": FORMAT_VERSION,
        "workload": spec.name,
        "records": records,
        "seed": seed,
        "gen_chunk_records": GEN_CHUNK_RECORDS,
        "dtype": "<i8",
        "sha256": digest.hexdigest(),
    }
    header_path.write_text(json.dumps(header, indent=2, sort_keys=True)
                           + "\n")
    return TraceRef(path=str(directory), workload=spec.name,
                    records=records, seed=seed,
                    digest=header["sha256"])


def read_header(path: str | Path) -> dict:
    """Load and validate a trace directory's header."""
    header_path = _header_path(path)
    try:
        header = json.loads(header_path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(
            f"{path} is not a trace directory (no {HEADER_NAME})") from None
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"unreadable trace header {header_path}: {error}")
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"trace {path} has format version {version!r}; this build "
            f"reads version {FORMAT_VERSION}")
    for key in ("workload", "records", "seed", "sha256"):
        if key not in header:
            raise ValueError(f"trace header {header_path} lacks {key!r}")
    return header


def read_ref(path: str | Path) -> TraceRef:
    """The :class:`TraceRef` for a trace directory (header only)."""
    header = read_header(path)
    return TraceRef(path=str(path), workload=header["workload"],
                    records=header["records"], seed=header["seed"],
                    digest=header["sha256"])


def open_trace(path: str | Path) -> tuple[dict, np.ndarray]:
    """Open a trace: validated header plus the memory-mapped payload."""
    header = read_header(path)
    payload = np.load(_payload_path(path), mmap_mode="r")
    if payload.dtype != np.int64 or payload.ndim != 1:
        raise ValueError(
            f"trace payload {path} is {payload.dtype}/{payload.ndim}D, "
            f"expected 1D int64")
    if len(payload) != header["records"]:
        raise ValueError(
            f"trace {path}: header says {header['records']} records, "
            f"payload holds {len(payload)}")
    return header, payload


def verify_trace(path: str | Path) -> TraceRef:
    """Recompute the payload digest and check it against the header."""
    header, payload = open_trace(path)
    digest = compute_digest(payload)
    if digest != header["sha256"]:
        raise ValueError(
            f"trace {path} digest mismatch: header {header['sha256']}, "
            f"payload {digest}")
    return read_ref(path)
