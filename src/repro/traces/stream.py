"""Canonical chunked trace generation.

A trace of ``records`` addresses for ``(spec, seed)`` is *defined* as
the concatenation of generation chunks of :data:`GEN_CHUNK_RECORDS`
records (the last one shorter), where chunk ``i`` is synthesised by the
workload's existing vectorised generators with the derived seed
:func:`chunk_seed`.  Two properties follow:

* **bounded memory** — producing any chunk allocates one chunk's worth
  of numpy state, regardless of total trace length, so 10M+-record
  traces never exist in memory at once;
* **seed identity for short traces** — ``chunk_seed(seed, 0) == seed``,
  so any trace that fits a single generation chunk (every historical
  experiment scale) is bit-identical to
  ``WorkloadSpec.generate_trace(records, seed)``, and every cached
  result keyed on those traces stays meaningful.

The chunk size is a *content-defining* constant: changing it changes
the addresses of every multi-chunk trace.  Bump it only together with
the on-disk format version (:data:`repro.traces.store.FORMAT_VERSION`).

Generation chunking is independent of *execution* chunking: the
simulators may consume a trace in slices of any size
(:mod:`repro.traces.source`); only the content is fixed here.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.workloads.base import WorkloadSpec

#: Records per generation chunk (content-defining; see module docstring).
GEN_CHUNK_RECORDS = 1 << 20

#: 64-bit odd mixing constant (golden-ratio) for per-chunk seeds.
_SEED_MIX = 0x9E3779B97F4A7C15
_SEED_MASK = 0x7FFF_FFFF_FFFF_FFFF


def chunk_seed(seed: int, index: int) -> int:
    """The seed generation chunk ``index`` draws from.

    Index 0 returns ``seed`` unchanged (the short-trace identity);
    later chunks get decorrelated streams via a golden-ratio mix.
    """
    if index == 0:
        return seed
    return (seed ^ (index * _SEED_MIX)) & _SEED_MASK


def generation_chunks(records: int) -> Iterator[tuple[int, int, int]]:
    """``(index, start, stop)`` bounds of every generation chunk."""
    if records < 0:
        raise ValueError("record count cannot be negative")
    for index in range(-(-records // GEN_CHUNK_RECORDS)):
        start = index * GEN_CHUNK_RECORDS
        yield index, start, min(start + GEN_CHUNK_RECORDS, records)


def generate_chunk(
    spec: WorkloadSpec, records: int, seed: int, index: int
) -> np.ndarray:
    """Synthesise one generation chunk of the canonical trace."""
    start = index * GEN_CHUNK_RECORDS
    if not 0 <= start < records:
        raise ValueError(
            f"chunk {index} out of range for a {records}-record trace")
    length = min(GEN_CHUNK_RECORDS, records - start)
    return spec.generate_trace(length, seed=chunk_seed(seed, index))


def iter_generated_chunks(
    spec: WorkloadSpec, records: int, seed: int
) -> Iterator[np.ndarray]:
    """Yield the canonical chunks of ``(spec, records, seed)`` in order."""
    for index, _start, _stop in generation_chunks(records):
        yield generate_chunk(spec, records, seed, index)


def canonical_trace(spec: WorkloadSpec, records: int, seed: int) -> np.ndarray:
    """Materialise the whole canonical trace in memory (tests, small
    runs); identical to ``generate_trace`` whenever it fits one chunk."""
    chunks = list(iter_generated_chunks(spec, records, seed))
    if not chunks:
        return np.empty(0, dtype=np.int64)
    if len(chunks) == 1:
        return chunks[0]
    return np.concatenate(chunks)
