"""Zero-copy trace sharing across sweep worker processes.

A streamed cell (``scale.trace_length > STREAM_RECORDS``) regenerates
its trace chunk by chunk inside whichever process runs it.  That keeps
one run's memory bounded, but a parallel sweep pays the generation cost
``N`` times — once per worker that draws a cell of the same
``(workload, records, seed)`` axis — and a 10M-record grid spends more
time re-deriving identical chunks than simulating some of its cells.

The versioned trace store (:mod:`repro.traces.store`) already gives the
fix: ``payload.npy`` is a plain ``.npy`` that opens as a read-only
memory map.  The sweep engine calls :func:`prepare` before opening its
process pool — each unique streamed axis is materialised **once** into
the shared trace directory — and passes the resulting mapping to
:func:`activate` as the pool's initializer.  Workers then resolve
:func:`lookup` inside :func:`repro.sim.runner.make_trace` and replay
the one on-disk payload as an :class:`~repro.traces.source.ArraySource`
mmap: every worker shares the same page-cache copy, and no worker
regenerates a byte.

Correctness containment:

* the overlay only short-circuits *how* the canonical trace is
  produced, never *what* it contains — ``materialize_trace`` writes
  exactly the ``iter_generated_chunks`` stream the worker would have
  generated, and replaying it through ``ArraySource`` is the same
  replay path every trace-backed job (``Job.trace``) already uses;
* job specs and the result cache are untouched — the overlay is
  per-process runtime state, so cached results and spec hashes cannot
  depend on whether a run was overlay-fed;
* any failure to materialise or validate falls back silently to
  per-worker generation (the pre-overlay behaviour).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path

#: Process-global overlay: ``(workload, records, seed) -> trace dir``.
#: Empty in every process that is not a sweep worker.
_OVERLAY: dict[tuple[str, int, int], str] = {}

#: Subdirectory of the result-cache root holding shared traces.
TRACES_SUBDIR = "traces"


def _fallback_dir() -> Path:
    return Path(tempfile.gettempdir()) / "repro-traces"


def shared_trace_dir(cache_root: str | Path | None) -> Path:
    """Where shared trace payloads live: under the result cache when
    one is configured (same lifecycle as cached results), else a
    per-machine temp directory."""
    if cache_root:
        return Path(cache_root) / TRACES_SUBDIR
    return _fallback_dir()


def _valid(path: Path, workload: str, records: int, seed: int) -> bool:
    """Does ``path`` hold a finished trace for exactly this axis?"""
    from repro.traces.store import read_ref

    try:
        ref = read_ref(path)
    except Exception:  # noqa: BLE001 - unreadable == not a trace
        return False
    return (ref.workload == workload and ref.records == records
            and ref.seed == seed)


def _materialize(workload: str, records: int, seed: int,
                 base: Path) -> Path | None:
    """The shared trace directory for one axis, materialising it if no
    valid one exists yet.  Concurrent materialisers race benignly: each
    writes a unique temp directory and renames it into place; the loser
    validates the winner's and discards its own."""
    from repro.traces.store import materialize_trace
    from repro.workloads.suite import get as get_workload

    final = base / f"{workload}-{records}-{seed}"
    if _valid(final, workload, records, seed):
        return final
    tmp = base / f".materialize-{workload}-{records}-{seed}-{os.getpid()}"
    try:
        spec = get_workload(workload)
        materialize_trace(spec, records, seed, tmp, force=True)
        try:
            os.rename(tmp, final)
        except OSError:
            # Another process won the rename; keep its copy if valid.
            shutil.rmtree(tmp, ignore_errors=True)
            if not _valid(final, workload, records, seed):
                return None
        return final
    except Exception:  # noqa: BLE001 - fall back to per-worker gen
        shutil.rmtree(tmp, ignore_errors=True)
        return None


def prepare(jobs, cache_root: str | Path | None) -> dict:
    """Materialise every unique streamed generated-trace axis in
    ``jobs`` once; returns the overlay mapping for :func:`activate`.

    Only jobs that would stream (records above the runner's
    ``STREAM_RECORDS``) and generate their own trace participate;
    explicitly trace-backed jobs (``job.trace``) already share their
    payload, and small cells are cheaper to regenerate than to touch
    disk for.
    """
    from repro.sim.runner import STREAM_RECORDS

    mapping: dict[tuple[str, int, int], str] = {}
    base = None
    for job in jobs:
        if getattr(job, "trace", None) is not None:
            continue
        scale = getattr(job, "scale", None)
        if scale is None or scale.trace_length <= STREAM_RECORDS:
            continue
        key = (job.workload, scale.trace_length, scale.seed)
        if key in mapping:
            continue
        if base is None:
            base = shared_trace_dir(cache_root)
            base.mkdir(parents=True, exist_ok=True)
        path = _materialize(*key, base)
        if path is not None:
            mapping[key] = str(path)
    return mapping


def activate(mapping: dict) -> None:
    """Install ``mapping`` as this process's overlay (the worker-pool
    initializer; also callable in-process for tests)."""
    _OVERLAY.clear()
    _OVERLAY.update(mapping)


def deactivate() -> None:
    """Drop the overlay (tests)."""
    _OVERLAY.clear()


def lookup(workload: str, records: int, seed: int):
    """The shared mmap trace for this axis, or ``None``.

    Returns an :class:`~repro.traces.source.ArraySource` over the
    shared read-only payload.  Validation failures (deleted directory,
    rewritten payload) demote to ``None`` — the caller regenerates.
    """
    path = _OVERLAY.get((workload, records, seed))
    if path is None:
        return None
    from repro.traces.source import ArraySource
    from repro.traces.store import open_trace

    try:
        header, payload = open_trace(path)
    except Exception:  # noqa: BLE001 - stale overlay entry
        return None
    if (header.get("workload") != workload
            or header.get("records") != records
            or header.get("seed") != seed):
        return None
    return ArraySource(payload)
