"""Streaming trace subsystem: bounded-memory traces at 10M+ records.

The paper's evaluation replays billions of instructions; the original
repro capped every workload at one in-memory numpy array (~60k records),
so TLB/PWC reach never approached steady state.  This package opens the
scale axis in three pieces:

* :mod:`repro.traces.stream` — canonical *chunked generation*: a trace
  of any length is defined as a sequence of fixed-size generation
  chunks, each synthesised independently from a per-chunk seed, so
  producing (or re-producing) any chunk needs memory proportional to
  the chunk, never the trace.  Traces that fit one chunk are
  bit-identical to the historical ``WorkloadSpec.generate_trace``
  output.
* :mod:`repro.traces.store` — the versioned on-disk format (a
  ``header.json`` beside a memory-mapped int64 ``payload.npy``) with a
  content digest, behind the ``repro trace`` CLI; :class:`TraceRef` is
  the hashable reference the runtime's Job carries (cache identity =
  content digest, not path).
* :mod:`repro.traces.source` — :class:`TraceSource`, the chunk-iterator
  protocol both simulators' batched front ends consume; array-backed
  (in-memory or mmap) and generator-backed implementations, with
  ``section()`` slicing for the multi-tenant quantum scheduler.

The execution-side invariant (docs/ARCHITECTURE.md §11): simulating a
trace through any chunking — one chunk, 4096-record chunks, one record
at a time — produces byte-identical SimStats, pinned by
tests/test_traces.py.
"""

from repro.traces.source import (
    DEFAULT_CHUNK_RECORDS,
    ArraySource,
    GeneratedSource,
    TraceSource,
    as_trace_source,
    iter_trace_chunks,
    trace_records,
)
from repro.traces.store import (
    TraceRef,
    materialize_trace,
    open_trace,
    read_ref,
    verify_trace,
)
from repro.traces.stream import (
    GEN_CHUNK_RECORDS,
    canonical_trace,
    chunk_seed,
    generation_chunks,
    iter_generated_chunks,
)

__all__ = [
    "ArraySource",
    "DEFAULT_CHUNK_RECORDS",
    "GEN_CHUNK_RECORDS",
    "GeneratedSource",
    "TraceRef",
    "TraceSource",
    "as_trace_source",
    "canonical_trace",
    "chunk_seed",
    "generation_chunks",
    "iter_generated_chunks",
    "iter_trace_chunks",
    "materialize_trace",
    "open_trace",
    "read_ref",
    "trace_records",
    "verify_trace",
]
