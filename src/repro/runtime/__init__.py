"""Parallel experiment runtime: jobs, sweeps, caching and fan-out.

This layer sits between the one-call simulators (:mod:`repro.sim.runner`,
§4 methodology) and the per-figure experiment modules
(:mod:`repro.experiments`, §5 evaluation).  Experiment grids are expressed
as hashable :class:`Job` specs collected into :class:`Sweep` batches; the
:class:`Engine` deduplicates shared cells, serves repeats from an on-disk
:class:`ResultCache` keyed by (spec hash, code version), and fans misses
out over a process pool — with results guaranteed identical to serial
execution because every job seeds all of its randomness from its own spec.

Quickstart
----------
>>> from repro.runtime import Engine, Job, NATIVE
>>> from repro import BASELINE, P1_P2, Scale
>>> scale = Scale(trace_length=5000, warmup=1000)
>>> engine = Engine(jobs=4)
>>> grid = [Job(kind=NATIVE, workload="mc80", config=c, scale=scale)
...         for c in (BASELINE, P1_P2)]
>>> base, asap = engine.map(grid)
>>> asap.avg_walk_latency < base.avg_walk_latency
True
"""

from repro.runtime.cache import (
    DEFAULT_CACHE_DIR,
    MISS,
    ResultCache,
    code_version,
)
from repro.runtime.engine import Engine, default_engine, execute
from repro.runtime.job import (
    KINDS,
    NATIVE,
    PT_INVENTORY,
    VIRTUALIZED,
    Job,
    execute_job,
)
from repro.runtime.progress import JobRecord, ProgressPrinter, SweepReport
from repro.runtime.sweep import Sweep

__all__ = [
    "DEFAULT_CACHE_DIR",
    "Engine",
    "Job",
    "JobRecord",
    "KINDS",
    "MISS",
    "NATIVE",
    "PT_INVENTORY",
    "ProgressPrinter",
    "ResultCache",
    "Sweep",
    "SweepReport",
    "VIRTUALIZED",
    "code_version",
    "default_engine",
    "execute",
    "execute_job",
]
