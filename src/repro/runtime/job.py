"""Declarative job specifications: one frozen dataclass per simulation.

A :class:`Job` captures *everything* that determines the outcome of one
experiment cell — the scenario kind, workload, ASAP configuration,
translation scheme, trace scale and every machine/OS knob the
experiment modules exercise.  Because
the spec is a frozen dataclass of hashable values it serves three roles at
once:

* **grid element** — experiment modules emit lists of jobs instead of
  calling the simulator directly, which is what lets the engine dedupe
  identical cells across experiments and fan them out over processes;
* **cache key** — :meth:`Job.spec_hash` is a stable content hash of the
  spec, combined with the code version by :mod:`repro.runtime.cache`;
* **unit of determinism** — executing a job is a pure function of the
  spec: every random stream (trace, buddy allocator, co-runner) is seeded
  from ``scale.seed``, so the same job yields the same statistics whether
  it runs inline, in a worker process, or on another machine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.core.config import AsapConfig, BASELINE
from repro.params import DEFAULT_MACHINE
from repro.schemes import SchemeSpec
from repro.sim.columnar import KERNELS
from repro.sim.multitenant import MultiTenantSpec
from repro.sim.runner import Scale, run_native, run_virtualized
from repro.traces.store import TraceRef

#: Bump when the payload layout or the meaning of a field changes; old
#: cache entries then miss instead of being misinterpreted.
#: 3: multi_tenant joined the spec (ASID-tagged multi-process scenarios).
#: 4: trace references joined the spec (on-disk traces, identified by
#:    content digest) and streamed generation opened trace lengths past
#:    one generation chunk.
#: 5: the simulation kernel joined the spec (scalar record loop vs the
#:    compiled columnar chunk kernel); both produce byte-identical
#:    statistics, but the engine is part of what a cached result claims
#:    to have run.
SPEC_VERSION = 5

#: Scenario kinds understood by :func:`execute_job`.
NATIVE = "native"
VIRTUALIZED = "virtualized"
PT_INVENTORY = "pt-inventory"

KINDS = (NATIVE, VIRTUALIZED, PT_INVENTORY)


@dataclass(frozen=True)
class Job:
    """One cell of an experiment grid, fully specified and hashable.

    ``kind`` selects the scenario: :data:`NATIVE` and :data:`VIRTUALIZED`
    run the trace-driven simulators and return
    :class:`~repro.sim.stats.SimStats`; :data:`PT_INVENTORY` builds the
    process, populates its full page table and returns the Table 2
    inventory dict (no trace is simulated).
    """

    kind: str
    workload: str
    config: AsapConfig = BASELINE
    scale: Scale = Scale()
    colocated: bool = False
    clustered_tlb: bool = False
    infinite_tlb: bool = False
    host_page_level: int = 1
    pt_levels: int = 4
    pwc_scale: int = 1
    hole_rate: float = 0.0
    collect_service: bool = False
    #: Translation scheme driving the simulators' miss path.  ``None``
    #: (the default) derives it from ``config`` — ASAP when any ladder
    #: level is enabled, plain baseline otherwise — so every pre-scheme
    #: call site keeps its meaning and its cache identity rules.
    scheme: SchemeSpec | None = None
    #: Multi-tenant scenario (`repro.sim.multitenant`): process count,
    #: scheduler quantum and context-switch policy.  ``None`` — the
    #: default — is the single-tenant path; with it set, ``workload``
    #: may also name an ``MT_MIXES`` mix.
    multi_tenant: MultiTenantSpec | None = None
    #: Materialised on-disk trace to replay (`repro.traces`) instead of
    #: generating the addresses from the workload spec.  Cache identity
    #: is the trace's *content digest* plus record count — never the
    #: path — so results stay sound wherever the file lives, and a
    #: rewritten payload can never serve a stale cached result
    #: (``execute_job`` re-checks the digest at open time).
    trace: TraceRef | None = None
    #: Simulation kernel (`repro.sim.columnar`): "scalar" is the
    #: historical per-record loop, "columnar" the compiled chunk kernel.
    #: Both are byte-identical by construction (the differential suite
    #: enforces it), but the kernel is still part of the spec — a cached
    #: result records which engine produced it.
    kernel: str = "scalar"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; "
                             f"one of {KINDS}")
        self._validate_workload()
        if self.scheme is None:
            object.__setattr__(self, "scheme",
                               SchemeSpec.for_config(self.config))
        # One spec, one scenario: the ASAP ladder must ride the "asap"
        # scheme and only that scheme, otherwise two distinct-looking
        # specs (e.g. baseline-kind vs asap-kind-with-empty-ladder)
        # would execute identically but cache separately.
        if self.scheme.kind == "asap" and not self.config.enabled:
            raise ValueError(
                "the asap scheme needs an enabled AsapConfig; use the "
                "baseline scheme for empty ladders")
        if self.scheme.kind != "asap" and self.config.enabled:
            raise ValueError(
                f"scheme {self.scheme.kind!r} does not take an ASAP "
                f"config ({self.config.name!r})")
        if self.scheme.kind in ("victima", "revelator") and (
                self.infinite_tlb or self.clustered_tlb):
            raise ValueError(
                f"{self.scheme.kind} does not compose with "
                "infinite/clustered TLBs")
        # Knobs are part of the spec's cache identity, so a knob the
        # executor would ignore must be rejected, not silently dropped —
        # otherwise two distinct-looking specs yield the same scenario.
        if self.kind != NATIVE and (self.clustered_tlb or self.hole_rate
                                    or self.pt_levels != 4):
            raise ValueError(
                f"clustered_tlb/pt_levels/hole_rate apply to {NATIVE} "
                f"jobs only, not {self.kind}")
        if self.hole_rate and not self.config.native_levels:
            raise ValueError(
                "hole_rate needs an ASAP-enabled native config (holes are "
                "injected into the ASAP PT layout)")
        if self.kind != VIRTUALIZED and self.host_page_level != 1:
            raise ValueError(
                f"host_page_level applies to {VIRTUALIZED} jobs only")
        if self.kernel not in KERNELS:
            raise ValueError(f"unknown simulation kernel {self.kernel!r}; "
                             f"one of {KERNELS}")
        if self.kind == PT_INVENTORY and (
                self.colocated or self.infinite_tlb or self.collect_service
                or self.pwc_scale != 1 or self.config.enabled
                or self.scheme.kind != "baseline"
                or self.kernel != "scalar"):
            raise ValueError(
                f"{PT_INVENTORY} jobs use only workload and scale")
        if self.multi_tenant is not None:
            mt = self.multi_tenant
            if self.kind not in (NATIVE, VIRTUALIZED):
                raise ValueError(
                    f"multi_tenant applies to {NATIVE}/{VIRTUALIZED} jobs "
                    f"only, not {self.kind}")
            if mt.tenants == 1 and mt.quantum == 0:
                # One tenant, no switching executes identically to the
                # plain path; two distinct-looking specs must not cache
                # separately (the sim-level identity itself is pinned by
                # tests/test_multitenant.py).
                raise ValueError(
                    "multi_tenant with one tenant and no switching is the "
                    "single-tenant scenario; use multi_tenant=None")
            if (self.colocated or self.clustered_tlb or self.infinite_tlb
                    or self.hole_rate or self.pt_levels != 4):
                raise ValueError(
                    "multi_tenant does not compose with colocated/"
                    "clustered/infinite TLBs, hole_rate or non-4-level "
                    "page tables")
        if self.trace is not None:
            if self.kind not in (NATIVE, VIRTUALIZED):
                raise ValueError(
                    f"trace references apply to {NATIVE}/{VIRTUALIZED} "
                    f"jobs only, not {self.kind}")
            if self.multi_tenant is not None:
                raise ValueError(
                    "trace references do not compose with multi_tenant "
                    "(each tenant generates its own per-seed trace)")
            if self.trace.records != self.scale.trace_length:
                raise ValueError(
                    f"trace holds {self.trace.records} records but the "
                    f"scale asks for {self.scale.trace_length}")
            if self.trace.workload != self.workload:
                raise ValueError(
                    f"trace was materialised from {self.trace.workload!r} "
                    f"but the job runs {self.workload!r}; the replayed "
                    f"addresses must match the process's VMA layout")

    def _validate_workload(self) -> None:
        """Reject unknown workload names at spec time with the full
        choice list, not as a KeyError from deep inside a worker."""
        from repro.workloads.suite import MT_MIXES, WORKLOADS

        known = set(WORKLOADS)
        if self.multi_tenant is not None:
            known |= set(MT_MIXES)
            extra = " or multi-tenant mix"
        else:
            extra = ""
        if self.workload not in known:
            raise ValueError(
                f"unknown workload{extra} {self.workload!r}; "
                f"one of {sorted(known)}")

    # ------------------------------------------------------------------
    def payload(self) -> dict[str, Any]:
        """Canonical JSON-serialisable form of the spec (cache identity)."""
        return {
            "spec_version": SPEC_VERSION,
            "kind": self.kind,
            "workload": self.workload,
            "config": {
                "name": self.config.name,
                "native": list(self.config.native_levels),
                "guest": list(self.config.guest_levels),
                "host": list(self.config.host_levels),
            },
            "scheme": self.scheme.payload(),
            # The scale's replicate index is deliberately absent: it is
            # provenance, not identity.  A replicated scale's *derived
            # seed* is what changes the simulation, and it is right
            # here — so replicate 0 hashes identically to every
            # pre-replication spec and its cached results stay valid.
            "scale": [self.scale.trace_length, self.scale.warmup,
                      self.scale.seed],
            "colocated": self.colocated,
            "clustered_tlb": self.clustered_tlb,
            "infinite_tlb": self.infinite_tlb,
            "host_page_level": self.host_page_level,
            "pt_levels": self.pt_levels,
            "pwc_scale": self.pwc_scale,
            "hole_rate": self.hole_rate,
            "collect_service": self.collect_service,
            "multi_tenant": (None if self.multi_tenant is None
                             else self.multi_tenant.payload()),
            "trace": (None if self.trace is None
                      else {"digest": self.trace.digest,
                            "records": self.trace.records}),
            "kernel": self.kernel,
        }

    def spec_hash(self) -> str:
        """Stable content hash of the spec, independent of the process."""
        canonical = json.dumps(self.payload(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable identity for progress lines."""
        parts = [self.kind, self.workload,
                 self.config.name if self.scheme.is_default_pipeline
                 else self.scheme.label()]
        for flag, text in (
            (self.colocated, "coloc"),
            (self.clustered_tlb, "ctlb"),
            (self.infinite_tlb, "inf-tlb"),
            (self.host_page_level != 1, "2MB-host"),
            (self.pt_levels != 4, f"{self.pt_levels}L"),
            (self.pwc_scale != 1, f"pwc-x{self.pwc_scale}"),
            (self.hole_rate != 0.0, f"holes={self.hole_rate:g}"),
            (self.multi_tenant is not None,
             self.multi_tenant.label() if self.multi_tenant else ""),
            (self.trace is not None,
             f"trace={self.trace.digest[:8]}" if self.trace else ""),
            (self.kernel != "scalar", self.kernel),
            (self.scale.replicate != 0, f"rep{self.scale.replicate}"),
        ):
            if flag:
                parts.append(text)
        return " ".join(parts)


# ----------------------------------------------------------------------
def _pt_inventory(job: Job) -> dict[str, int]:
    """Table 2 measurement: build the process, populate the full PT."""
    from repro.pagetable import constants as c
    from repro.workloads.suite import get as get_workload

    spec = get_workload(job.workload)
    process = spec.build_process(seed=job.scale.seed)
    for vma in process.vmas:
        va = vma.start
        while va < vma.end:
            process.touch(va)  # one touch per PL1 node builds the full PT
            va += c.LARGE_PAGE_SIZE
    return {
        "total_vmas": len(process.vmas),
        "vmas_for_99pct": process.vmas.count_for_coverage(0.99),
        "contig_phys_regions": process.pt_contiguous_regions(),
        "pt_page_count": process.pt_page_count(),
    }


def _open_trace_source(ref: TraceRef):
    """Memory-map a referenced trace, re-checking its identity.

    The header digest must equal the reference's: a payload rewritten
    since the reference was taken would otherwise run (and cache) under
    the old content hash.
    """
    from repro.traces.source import ArraySource
    from repro.traces.store import open_trace

    header, payload = open_trace(ref.path)
    if header["sha256"] != ref.digest:
        raise ValueError(
            f"trace {ref.path} content changed since it was referenced "
            f"(header digest {header['sha256'][:12]}..., job expects "
            f"{ref.digest[:12]}...)")
    return ArraySource(payload)


def execute_job(job: Job) -> Any:
    """Run one job to completion — a pure function of the spec."""
    if job.kind == PT_INVENTORY:
        return _pt_inventory(job)
    machine = DEFAULT_MACHINE
    if job.pwc_scale != 1:
        machine = machine.with_pwc_scale(job.pwc_scale)
    trace_source = (None if job.trace is None
                    else _open_trace_source(job.trace))
    if job.multi_tenant is not None:
        from repro.sim.multitenant import run_native_mt, run_virtualized_mt

        if job.kind == NATIVE:
            return run_native_mt(
                job.workload,
                job.config,
                job.multi_tenant,
                machine=machine,
                scale=job.scale,
                collect_service=job.collect_service,
                scheme=job.scheme,
                kernel=job.kernel,
            )
        return run_virtualized_mt(
            job.workload,
            job.config,
            job.multi_tenant,
            host_page_level=job.host_page_level,
            machine=machine,
            scale=job.scale,
            collect_service=job.collect_service,
            scheme=job.scheme,
            kernel=job.kernel,
        )
    if job.kind == NATIVE:
        return run_native(
            job.workload,
            job.config,
            colocated=job.colocated,
            clustered_tlb=job.clustered_tlb,
            infinite_tlb=job.infinite_tlb,
            machine=machine,
            scale=job.scale,
            pt_levels=job.pt_levels,
            collect_service=job.collect_service,
            hole_rate=job.hole_rate,
            scheme=job.scheme,
            trace_source=trace_source,
            kernel=job.kernel,
        )
    return run_virtualized(
        job.workload,
        job.config,
        colocated=job.colocated,
        host_page_level=job.host_page_level,
        infinite_tlb=job.infinite_tlb,
        machine=machine,
        scale=job.scale,
        collect_service=job.collect_service,
        scheme=job.scheme,
        trace_source=trace_source,
        kernel=job.kernel,
    )
