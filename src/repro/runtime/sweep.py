"""Sweeps: named, ordered collections of jobs.

A sweep is the declarative form of "everything this figure (or this whole
report) needs to run".  Order is preserved for reproducible scheduling and
readable progress output; duplicates are kept at this layer — deduplication
is the engine's job, so a sweep can honestly concatenate the grids of many
experiments that share cells (Figure 3 and Table 1 both run the baseline
memcached scenarios, for example) and still execute each cell once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.runtime.job import Job


@dataclass(frozen=True)
class Sweep:
    """A named batch of jobs, executed together by the engine."""

    name: str
    jobs: tuple[Job, ...]

    @classmethod
    def build(cls, name: str, *grids: Iterable[Job]) -> "Sweep":
        jobs: list[Job] = []
        for grid in grids:
            jobs.extend(grid)
        return cls(name=name, jobs=tuple(jobs))

    def unique_jobs(self) -> tuple[Job, ...]:
        """Jobs with duplicates removed, first occurrence wins."""
        return tuple(dict.fromkeys(self.jobs))

    @property
    def duplicates(self) -> int:
        return len(self.jobs) - len(self.unique_jobs())

    def __len__(self) -> int:
        return len(self.jobs)
