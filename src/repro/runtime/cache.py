"""On-disk result cache keyed by (job-spec hash, code version).

The cache makes re-rendering a figure free when nothing that could change
its numbers has changed.  The key has two components:

* the job's :meth:`~repro.runtime.job.Job.spec_hash` — the full canonical
  spec of the simulation;
* the **code version** — a content hash over every ``*.py`` file of the
  ``repro`` package, so touching documentation, tests or tools leaves the
  cache warm while editing any simulator source invalidates every entry
  at once.  Invalidating wholesale on any source edit is deliberately
  conservative: it can never serve stale statistics.

Entries are pickled simulation results, written atomically so a killed
worker never leaves a truncated entry behind.  Corrupt or unreadable
entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import time
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.runtime.job import Job

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Cache-root subdirectory for ``repro.obs`` event logs.  Telemetry
#: lives beside the result entries but is not keyed by code version —
#: the pruner must leave it alone.
OBS_SUBDIR = "obs"

#: Cache-root subdirectory for the experiment service (job-queue journal,
#: daemon heartbeat, reporter manifest — see ``repro.service``).  Like
#: ``obs/`` it is not keyed by code version and must survive the pruner.
SERVICE_SUBDIR = "service"

#: How recently a stale version directory (or an orphaned ``*.tmp.*``
#: file) must have been touched for the pruner to leave it alone.  A
#: second engine sharing the cache dir may still be running an older
#: code version — its directory is hot, not garbage.
PRUNE_GRACE_SECONDS = 300.0

_MISS = object()


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0; EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def _tmp_writer_pid(path: Path) -> int | None:
    """The pid encoded in a ``<spec>.tmp.<pid>`` temp-file name."""
    suffix = path.name.rsplit(".", 1)[-1]
    try:
        return int(suffix)
    except ValueError:
        return None


@lru_cache(maxsize=1)
def code_version() -> str:
    """Content hash of every ``repro/**/*.py`` source file."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """Pickle-per-job cache under ``root/<code-version>/<spec-hash>.pkl``."""

    def __init__(self, root: str | os.PathLike[str],
                 version: str | None = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else code_version()
        self._dir = self.root / self.version[:16]
        self._disabled = False
        self._prune_stale_versions()

    def _prune_stale_versions(self, now: float | None = None) -> None:
        """Drop entries from superseded code versions.

        Any source edit changes the version directory, so without pruning
        the cache root accumulates unreachable pickles forever.  Entries
        for the *current* version are never touched, and neither are the
        ``obs/`` event-log and ``service/`` queue directories — both
        outlive the code version that wrote them.

        The pruner must be safe against *concurrent* engines on the same
        cache root:

        * a stale version directory is removed only once it has been
          quiet for :data:`PRUNE_GRACE_SECONDS` — a daemon still running
          the previous code version is writing into it right now;
        * a ``*.tmp.*`` file is never unlinked while the pid encoded in
          its name is alive (it is mid-``os.replace``), and even a dead
          writer's temp gets the grace window against pid reuse.
        """
        import shutil

        now = time.time() if now is None else now
        keep = (self.version[:16], OBS_SUBDIR, SERVICE_SUBDIR)
        try:
            for entry in self.root.iterdir():
                if not entry.is_dir() or entry.name in keep:
                    continue
                try:
                    if now - entry.stat().st_mtime < PRUNE_GRACE_SECONDS:
                        continue
                except OSError:
                    continue  # vanished under us: another pruner won
                shutil.rmtree(entry, ignore_errors=True)
            # Orphaned temp files from interrupted writes in the live dir.
            for leftover in self._dir.glob("*.tmp.*"):
                writer = _tmp_writer_pid(leftover)
                if writer is not None and pid_alive(writer):
                    continue
                try:
                    if now - leftover.stat().st_mtime < PRUNE_GRACE_SECONDS:
                        continue
                except OSError:
                    continue
                leftover.unlink(missing_ok=True)
        except OSError:
            pass  # no cache root yet, or unreadable — nothing to prune

    # ------------------------------------------------------------------
    def _path(self, job: Job) -> Path:
        return self._dir / f"{job.spec_hash()}.pkl"

    def get(self, job: Job) -> Any:
        """Return the cached result or :data:`MISS`."""
        path = self._path(job)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Any unreadable entry — missing, truncated, corrupt bytes,
            # stale class layout — is a miss; the job simply re-runs.
            return _MISS

    def put(self, job: Job, value: Any) -> None:
        if self._disabled:
            return
        path = self._path(job)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception as error:
            # An unwritable cache or unpicklable result must never take
            # the run down; degrade to cacheless execution and say so once.
            self._disabled = True
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            print(f"warning: result cache disabled ({error})",
                  file=sys.stderr)

    def digest(self, job: Job) -> str | None:
        """sha256 of the raw cached entry bytes, or ``None`` when absent.

        The incremental reporter's change detector: hashing the pickle
        bytes on disk identifies a changed result without unpickling it
        (reused report sections never materialise their results at all).
        """
        try:
            return hashlib.sha256(self._path(job).read_bytes()).hexdigest()
        except OSError:
            return None

    @staticmethod
    def is_miss(value: Any) -> bool:
        return value is _MISS


#: Sentinel returned by :meth:`ResultCache.get` on a miss.
MISS = _MISS
