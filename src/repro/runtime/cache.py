"""On-disk result cache keyed by (job-spec hash, code version).

The cache makes re-rendering a figure free when nothing that could change
its numbers has changed.  The key has two components:

* the job's :meth:`~repro.runtime.job.Job.spec_hash` — the full canonical
  spec of the simulation;
* the **code version** — a content hash over every ``*.py`` file of the
  ``repro`` package, so touching documentation, tests or tools leaves the
  cache warm while editing any simulator source invalidates every entry
  at once.  Invalidating wholesale on any source edit is deliberately
  conservative: it can never serve stale statistics.

Entries are pickled simulation results, written atomically so a killed
worker never leaves a truncated entry behind.  Corrupt or unreadable
entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.runtime.job import Job

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Cache-root subdirectory for ``repro.obs`` event logs.  Telemetry
#: lives beside the result entries but is not keyed by code version —
#: the pruner must leave it alone.
OBS_SUBDIR = "obs"

_MISS = object()


@lru_cache(maxsize=1)
def code_version() -> str:
    """Content hash of every ``repro/**/*.py`` source file."""
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """Pickle-per-job cache under ``root/<code-version>/<spec-hash>.pkl``."""

    def __init__(self, root: str | os.PathLike[str],
                 version: str | None = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else code_version()
        self._dir = self.root / self.version[:16]
        self._disabled = False
        self._prune_stale_versions()

    def _prune_stale_versions(self) -> None:
        """Drop entries from superseded code versions.

        Any source edit changes the version directory, so without pruning
        the cache root accumulates unreachable pickles forever.  Entries
        for the *current* version are never touched, and neither is the
        ``obs/`` event-log directory — telemetry outlives the code
        version that recorded it.
        """
        import shutil

        try:
            for entry in self.root.iterdir():
                if (entry.is_dir() and entry.name != self.version[:16]
                        and entry.name != OBS_SUBDIR):
                    shutil.rmtree(entry, ignore_errors=True)
            # Orphaned temp files from interrupted writes in the live dir.
            for leftover in self._dir.glob("*.tmp.*"):
                leftover.unlink(missing_ok=True)
        except OSError:
            pass  # no cache root yet, or unreadable — nothing to prune

    # ------------------------------------------------------------------
    def _path(self, job: Job) -> Path:
        return self._dir / f"{job.spec_hash()}.pkl"

    def get(self, job: Job) -> Any:
        """Return the cached result or :data:`MISS`."""
        path = self._path(job)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Any unreadable entry — missing, truncated, corrupt bytes,
            # stale class layout — is a miss; the job simply re-runs.
            return _MISS

    def put(self, job: Job, value: Any) -> None:
        if self._disabled:
            return
        path = self._path(job)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception as error:
            # An unwritable cache or unpicklable result must never take
            # the run down; degrade to cacheless execution and say so once.
            self._disabled = True
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            print(f"warning: result cache disabled ({error})",
                  file=sys.stderr)

    @staticmethod
    def is_miss(value: Any) -> bool:
        return value is _MISS


#: Sentinel returned by :meth:`ResultCache.get` on a miss.
MISS = _MISS
