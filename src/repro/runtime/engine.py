"""The sweep engine: dedup, cache, fan out, report.

Execution pipeline for a batch of jobs:

1. **dedup** — identical specs collapse to one execution (experiments
   share many cells: every ladder includes the baseline, Table 1 re-runs
   Figure 3 scenarios, ...);
2. **cache** — each unique job is looked up in the on-disk
   :class:`~repro.runtime.cache.ResultCache` (spec hash x code version);
3. **execute** — misses run through
   :func:`~repro.runtime.job.execute_job`, either inline (``jobs=1``) or
   on a ``ProcessPoolExecutor`` with ``jobs`` workers.  Every job is a
   pure function of its spec with all randomness seeded from
   ``scale.seed``, so results are identical regardless of worker count or
   completion order;
4. **report** — per-job timings and cache/dedup counters aggregate into a
   :class:`~repro.runtime.progress.SweepReport` kept on
   :attr:`Engine.last_report`.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.runtime.cache import DEFAULT_CACHE_DIR, OBS_SUBDIR, ResultCache
from repro.runtime.job import Job, execute_job
from repro.runtime.progress import (
    JobRecord,
    NullProgress,
    ProgressPrinter,
    SweepReport,
)
from repro.runtime.sweep import Sweep


def positive_int(text: str) -> int:
    """argparse type for ``--jobs``-style worker counts (shared by the
    ``repro`` CLI and the report module's standalone parser)."""
    import argparse

    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _timed_execute(job: Job) -> tuple[Any, float]:
    """Worker entry point: run one job, measure its compute time."""
    started = time.perf_counter()
    value = execute_job(job)
    return value, time.perf_counter() - started


def _timed_execute_obs(job: Job) -> tuple[Any, float, dict]:
    """Worker entry point under observation.

    The job runs inside :func:`repro.obs.events.capture` — a fresh
    in-memory recorder becomes the process-wide active one, so every
    instrumentation seam the job crosses (simulator phases, chunk
    samples, mt quanta) records into it; the batch rides home with the
    result and the parent folds it into the run's file, rebased onto
    the sweep timeline.  Swapping the recorder first also shields the
    parent's file handle from fork-inherited writes.
    """
    from repro.obs.events import capture

    started = time.perf_counter()
    with capture() as recorder:
        with recorder.span("job", "engine", job=job.label(),
                           spec=job.spec_hash()[:12]):
            value = execute_job(job)
        seconds = time.perf_counter() - started
    return value, seconds, recorder.export_batch()


class JobExecutionError(RuntimeError):
    """A job failed in a worker; carries which one (label + spec hash).

    Raised in the parent in place of the bare exception that would
    otherwise surface from the pool with no indication of which of the
    N in-flight jobs died.
    """

    def __init__(self, job: Job, cause: BaseException) -> None:
        self.job = job
        self.cause = cause
        super().__init__(
            f"job {job.label()!r} (spec {job.spec_hash()[:12]}) failed: "
            f"{cause.__class__.__name__}: {cause}")


class Engine:
    """Runs job batches with deduplication, caching and fan-out.

    ``jobs``      worker processes; ``1`` executes inline (no pool).
    ``cache``     a :class:`ResultCache`, or ``None`` to disable caching.
    ``progress``  stream one line per completed job to stderr.
    ``obs``       record a structured event log for each batch
                  (``repro.obs``); ``obs_dir`` is where the JSONL run
                  files land (default ``<cache dir>/obs``).
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 progress: bool = False, obs: bool = False,
                 obs_dir: str | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.obs = obs
        self.obs_dir = obs_dir or str(Path(DEFAULT_CACHE_DIR) / OBS_SUBDIR)
        self.last_report: SweepReport = SweepReport()
        #: Path of the most recent batch's event log (``None`` until an
        #: observed batch completes).
        self.last_obs_path: Path | None = None

    @classmethod
    def from_options(cls, jobs: int = 1,
                     cache_dir: str | None = DEFAULT_CACHE_DIR,
                     no_cache: bool = False,
                     progress: bool = False,
                     obs: bool = False,
                     obs_dir: str | None = None) -> "Engine":
        """Build an engine from CLI-style options.

        ``REPRO_OBS=1`` in the environment enables observation even
        without ``--obs`` (so CI and wrappers can switch it on without
        plumbing flags).  Event logs default to ``<cache_dir>/obs`` —
        kept even under ``--no-cache``, which disables result reuse,
        not telemetry.
        """
        cache = None if (no_cache or not cache_dir) else ResultCache(cache_dir)
        if not obs:
            from repro.obs.events import env_enabled

            obs = env_enabled()
        if obs_dir is None and cache_dir:
            obs_dir = str(Path(cache_dir) / OBS_SUBDIR)
        return cls(jobs=jobs, cache=cache, progress=progress,
                   obs=obs, obs_dir=obs_dir)

    # ------------------------------------------------------------------
    def run_jobs(self, jobs: Iterable[Job] | Sweep) -> dict[Job, Any]:
        """Execute a batch; return results keyed by job spec."""
        if isinstance(jobs, Sweep):
            ordered = list(jobs.jobs)
        else:
            ordered = list(jobs)
        unique = list(dict.fromkeys(ordered))
        report = SweepReport(workers=self.jobs,
                             deduplicated=len(ordered) - len(unique))
        printer = (ProgressPrinter(len(unique), workers=self.jobs)
                   if self.progress else NullProgress())
        recorder = self._open_recorder(len(ordered), len(unique))
        started = time.perf_counter()

        results: dict[Job, Any] = {}
        pending: list[Job] = []
        try:
            for job in unique:
                value = (self.cache.get(job) if self.cache is not None
                         else None)
                if self.cache is not None and not ResultCache.is_miss(value):
                    results[job] = value
                    record = JobRecord(job=job, seconds=0.0, cached=True)
                    report.records.append(record)
                    printer.job_done(record)
                    if recorder is not None:
                        recorder.instant("cache_hit", "engine",
                                         job=job.label(),
                                         spec=job.spec_hash()[:12])
                else:
                    pending.append(job)

            if pending:
                self._execute_cold(pending, recorder, results=results,
                                   report=report, printer=printer)
        finally:
            report.wall_seconds = time.perf_counter() - started
            self.last_report = report
            self._close_recorder(recorder, report)
        return results

    def map(self, jobs: Iterable[Job]) -> list[Any]:
        """Like :meth:`run_jobs` but returns results in input order."""
        ordered = list(jobs)
        results = self.run_jobs(ordered)
        return [results[job] for job in ordered]

    def run(self, sweep: Sweep) -> dict[Job, Any]:
        """Execute a :class:`Sweep` (alias of :meth:`run_jobs`)."""
        return self.run_jobs(sweep)

    # ------------------------------------------------------------------
    def _execute_cold(self, pending: list[Job], recorder, *,
                      results: dict[Job, Any], report: SweepReport,
                      printer) -> None:
        """Execute the cache misses: inline for one job (or one worker),
        otherwise fanned out over the pool.

        This is the engine's execution seam: everything above it (dedup,
        cache probes, report accounting, obs lifecycle) is shared with
        :class:`repro.service.client.ServiceEngine`, which overrides
        only this method to route cold cells through the persistent
        queue instead of this process's pool.
        """
        if len(pending) == 1 or self.jobs == 1:
            for job in pending:
                self._finish(job, *self._execute_inline(job, recorder),
                             results=results, report=report,
                             printer=printer)
        else:
            self._execute_pool(pending, recorder, results=results,
                               report=report, printer=printer)

    def _execute_inline(self, job: Job, recorder) -> tuple[Any, float]:
        """Run one job in-process, under a ``job`` span when observed.

        The file recorder is already active process-wide, so the job's
        simulator probes stream straight into the run log — no batch
        hop needed.
        """
        if recorder is None:
            return _timed_execute(job)
        recorder.begin("job", "engine", job=job.label(),
                       spec=job.spec_hash()[:12])
        try:
            value, seconds = _timed_execute(job)
        except Exception as exc:
            recorder.instant("job_error", "engine", job=job.label(),
                             spec=job.spec_hash()[:12], error=repr(exc))
            recorder.end("job", error=True)
            raise
        recorder.end("job", seconds=round(seconds, 3))
        return value, seconds

    def _execute_pool(self, pending: list[Job], recorder, *,
                      results: dict[Job, Any], report: SweepReport,
                      printer) -> None:
        """Fan ``pending`` out over worker processes.

        A worker failure is re-raised as :class:`JobExecutionError`
        naming the job and spec hash — a pool traceback alone cannot
        say which of the in-flight jobs died.

        Streamed generated-trace axes shared by the batch are
        materialised once up front (``repro.traces.share``) and opened
        zero-copy (mmap) inside each worker, instead of every worker
        regenerating its own in-memory copy of the same records.
        """
        from repro.traces import share

        workers = min(self.jobs, len(pending))
        entry = _timed_execute if recorder is None else _timed_execute_obs
        overlay = share.prepare(
            pending, self.cache.root if self.cache is not None else None)
        pool_kwargs = ({"initializer": share.activate,
                        "initargs": (overlay,)} if overlay else {})
        with ProcessPoolExecutor(max_workers=workers, **pool_kwargs) as pool:
            futures = {pool.submit(entry, job): job for job in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    job = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        if recorder is not None:
                            recorder.instant(
                                "job_error", "engine", job=job.label(),
                                spec=job.spec_hash()[:12], error=repr(exc))
                        raise JobExecutionError(job, exc) from exc
                    if recorder is None:
                        value, seconds = outcome
                    else:
                        value, seconds, batch = outcome
                        recorder.merge_batch(batch)
                    self._finish(job, value, seconds, results=results,
                                 report=report, printer=printer)

    def _open_recorder(self, total: int, unique: int):
        if not self.obs:
            return None
        from repro.obs import events as obs_events

        recorder = obs_events.open_run_log(
            self.obs_dir, prefix="sweep",
            meta={"jobs": total, "unique": unique, "workers": self.jobs})
        obs_events.activate(recorder)
        recorder.begin("sweep", "engine", jobs=unique, workers=self.jobs)
        # stderr on purpose: sweep stdout is byte-compared by the
        # determinism CI job, and obs must not perturb it.
        print(f"[obs] recording to {recorder.path}", file=sys.stderr)
        return recorder

    def _close_recorder(self, recorder, report: SweepReport) -> None:
        if recorder is None:
            return
        from repro.obs import events as obs_events

        recorder.end("sweep", executed=report.executed,
                     cached=report.cache_hits,
                     deduplicated=report.deduplicated,
                     wall_seconds=round(report.wall_seconds, 3))
        obs_events.deactivate()
        recorder.close()
        self.last_obs_path = recorder.path

    # ------------------------------------------------------------------
    def _finish(self, job: Job, value: Any, seconds: float, *,
                results: dict[Job, Any], report: SweepReport,
                printer) -> None:
        results[job] = value
        if self.cache is not None:
            self.cache.put(job, value)
        record = JobRecord(job=job, seconds=seconds, cached=False)
        report.records.append(record)
        printer.job_done(record)


# ----------------------------------------------------------------------
_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """Process-wide serial engine (no cache) for library/test callers.

    Experiment modules fall back to this when no engine is passed, which
    preserves the pre-runtime behaviour exactly: inline execution, no
    on-disk state.  The CLI always builds an explicit engine from its
    ``--jobs`` / ``--cache-dir`` / ``--no-cache`` flags.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine(jobs=1, cache=None)
    return _DEFAULT_ENGINE


def execute(jobs: Iterable[Job] | Sweep,
            engine: Engine | None = None) -> Mapping[Job, Any]:
    """Run ``jobs`` on ``engine`` (or the default serial engine)."""
    return (engine or default_engine()).run_jobs(jobs)
