"""The sweep engine: dedup, cache, fan out, report.

Execution pipeline for a batch of jobs:

1. **dedup** — identical specs collapse to one execution (experiments
   share many cells: every ladder includes the baseline, Table 1 re-runs
   Figure 3 scenarios, ...);
2. **cache** — each unique job is looked up in the on-disk
   :class:`~repro.runtime.cache.ResultCache` (spec hash x code version);
3. **execute** — misses run through
   :func:`~repro.runtime.job.execute_job`, either inline (``jobs=1``) or
   on a ``ProcessPoolExecutor`` with ``jobs`` workers.  Every job is a
   pure function of its spec with all randomness seeded from
   ``scale.seed``, so results are identical regardless of worker count or
   completion order;
4. **report** — per-job timings and cache/dedup counters aggregate into a
   :class:`~repro.runtime.progress.SweepReport` kept on
   :attr:`Engine.last_report`.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Iterable, Mapping

from repro.runtime.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runtime.job import Job, execute_job
from repro.runtime.progress import (
    JobRecord,
    NullProgress,
    ProgressPrinter,
    SweepReport,
)
from repro.runtime.sweep import Sweep


def positive_int(text: str) -> int:
    """argparse type for ``--jobs``-style worker counts (shared by the
    ``repro`` CLI and the report module's standalone parser)."""
    import argparse

    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _timed_execute(job: Job) -> tuple[Any, float]:
    """Worker entry point: run one job, measure its compute time."""
    started = time.perf_counter()
    value = execute_job(job)
    return value, time.perf_counter() - started


class Engine:
    """Runs job batches with deduplication, caching and fan-out.

    ``jobs``      worker processes; ``1`` executes inline (no pool).
    ``cache``     a :class:`ResultCache`, or ``None`` to disable caching.
    ``progress``  stream one line per completed job to stderr.
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 progress: bool = False) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.last_report: SweepReport = SweepReport()

    @classmethod
    def from_options(cls, jobs: int = 1,
                     cache_dir: str | None = DEFAULT_CACHE_DIR,
                     no_cache: bool = False,
                     progress: bool = False) -> "Engine":
        """Build an engine from CLI-style options."""
        cache = None if (no_cache or not cache_dir) else ResultCache(cache_dir)
        return cls(jobs=jobs, cache=cache, progress=progress)

    # ------------------------------------------------------------------
    def run_jobs(self, jobs: Iterable[Job] | Sweep) -> dict[Job, Any]:
        """Execute a batch; return results keyed by job spec."""
        if isinstance(jobs, Sweep):
            ordered = list(jobs.jobs)
        else:
            ordered = list(jobs)
        unique = list(dict.fromkeys(ordered))
        report = SweepReport(workers=self.jobs,
                             deduplicated=len(ordered) - len(unique))
        printer = (ProgressPrinter(len(unique)) if self.progress
                   else NullProgress())
        started = time.perf_counter()

        results: dict[Job, Any] = {}
        pending: list[Job] = []
        for job in unique:
            value = self.cache.get(job) if self.cache is not None else None
            if self.cache is not None and not ResultCache.is_miss(value):
                results[job] = value
                record = JobRecord(job=job, seconds=0.0, cached=True)
                report.records.append(record)
                printer.job_done(record)
            else:
                pending.append(job)

        if len(pending) == 1 or self.jobs == 1:
            for job in pending:
                self._finish(job, *_timed_execute(job),
                             results=results, report=report,
                             printer=printer)
        elif pending:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(_timed_execute, job): job
                           for job in pending}
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining,
                                           return_when=FIRST_COMPLETED)
                    for future in done:
                        value, seconds = future.result()
                        self._finish(futures[future], value, seconds,
                                     results=results, report=report,
                                     printer=printer)

        report.wall_seconds = time.perf_counter() - started
        self.last_report = report
        return results

    def map(self, jobs: Iterable[Job]) -> list[Any]:
        """Like :meth:`run_jobs` but returns results in input order."""
        ordered = list(jobs)
        results = self.run_jobs(ordered)
        return [results[job] for job in ordered]

    def run(self, sweep: Sweep) -> dict[Job, Any]:
        """Execute a :class:`Sweep` (alias of :meth:`run_jobs`)."""
        return self.run_jobs(sweep)

    # ------------------------------------------------------------------
    def _finish(self, job: Job, value: Any, seconds: float, *,
                results: dict[Job, Any], report: SweepReport,
                printer) -> None:
        results[job] = value
        if self.cache is not None:
            self.cache.put(job, value)
        record = JobRecord(job=job, seconds=seconds, cached=False)
        report.records.append(record)
        printer.job_done(record)


# ----------------------------------------------------------------------
_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """Process-wide serial engine (no cache) for library/test callers.

    Experiment modules fall back to this when no engine is passed, which
    preserves the pre-runtime behaviour exactly: inline execution, no
    on-disk state.  The CLI always builds an explicit engine from its
    ``--jobs`` / ``--cache-dir`` / ``--no-cache`` flags.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine(jobs=1, cache=None)
    return _DEFAULT_ENGINE


def execute(jobs: Iterable[Job] | Sweep,
            engine: Engine | None = None) -> Mapping[Job, Any]:
    """Run ``jobs`` on ``engine`` (or the default serial engine)."""
    return (engine or default_engine()).run_jobs(jobs)
