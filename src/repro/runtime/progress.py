"""Structured progress and timing reporting for sweep execution.

The engine records one :class:`JobRecord` per job — how it was satisfied
(executed or cache hit) and how long it took — and aggregates them into a
:class:`SweepReport`.  The report is both machine-readable (records,
counters) and renderable: the CLI prints its :meth:`~SweepReport.summary`
after every sweep, and ``--progress`` streams one line per completed job
through :class:`ProgressPrinter`.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import IO

from repro.runtime.job import Job


@dataclass(frozen=True)
class JobRecord:
    """Outcome of scheduling one job."""

    job: Job
    seconds: float
    cached: bool


@dataclass
class SweepReport:
    """Aggregated timing of one engine invocation."""

    records: list[JobRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    deduplicated: int = 0

    @property
    def executed(self) -> int:
        return sum(1 for record in self.records if not record.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cached)

    @property
    def compute_seconds(self) -> float:
        """Total in-worker compute time (>= wall time when fanned out)."""
        return sum(record.seconds for record in self.records
                   if not record.cached)

    def summary(self) -> str:
        return (
            f"{len(self.records)} jobs: {self.executed} executed, "
            f"{self.cache_hits} cached, {self.deduplicated} deduplicated; "
            f"wall {self.wall_seconds:.1f}s, "
            f"compute {self.compute_seconds:.1f}s "
            f"(workers={self.workers})"
        )

    def slowest(self, count: int = 5) -> list[JobRecord]:
        executed = [r for r in self.records if not r.cached]
        executed.sort(key=lambda record: record.seconds, reverse=True)
        return executed[:count]


class ProgressPrinter:
    """Streams one status line per completed job to ``stream``.

    Each line carries the running cache-hit/recompute split and an ETA.
    The engine satisfies every cache hit before the first execution
    starts, so once jobs are executing, everything remaining is an
    execution — the ETA is simply ``remaining x mean execution time /
    workers`` and sharpens as the mean accumulates.
    """

    def __init__(self, total: int, stream: IO[str] | None = None,
                 workers: int = 1) -> None:
        self.total = total
        self.done = 0
        self.workers = max(workers, 1)
        self.hits = 0
        self.ran = 0
        self.exec_seconds = 0.0
        self.stream = stream if stream is not None else sys.stderr
        self.queue_depth: int | None = None
        self.queue_position: int | None = None

    def set_queue(self, depth: int | None,
                  position: int | None = None) -> None:
        """Attach service-queue context to subsequent lines.

        Set by :class:`repro.service.client.ServiceEngine` while a sweep
        waits on a daemon: ``depth`` is the queue's live entry count,
        ``position`` the best pending rank among this sweep's own cells.
        Lines are unchanged (byte-identical to the one-shot engine) until
        the first call.
        """
        self.queue_depth = depth
        self.queue_position = position

    def _eta(self) -> str:
        remaining = self.total - self.done
        if not remaining or not self.ran:
            return ""
        per_job = self.exec_seconds / self.ran
        return f" eta {remaining * per_job / self.workers:5.1f}s"

    def _queue(self) -> str:
        if self.queue_depth is None:
            return ""
        text = f" queue {self.queue_depth}"
        if self.queue_position is not None:
            text += f" pos {self.queue_position}"
        return text

    def job_done(self, record: JobRecord) -> None:
        self.done += 1
        if record.cached:
            self.hits += 1
            how = "cache"
        else:
            self.ran += 1
            self.exec_seconds += record.seconds
            how = f"{record.seconds:6.1f}s"
        print(f"[runtime] {self.done:4d}/{self.total} {how:>8s}  "
              f"[hit {self.hits} run {self.ran}{self._eta()}"
              f"{self._queue()}]  "
              f"{record.job.label()}", file=self.stream)
        self.stream.flush()


class NullProgress:
    """No-op progress sink (the default)."""

    def set_queue(self, depth: int | None,
                  position: int | None = None) -> None:  # pragma: no cover
        pass

    def job_done(self, record: JobRecord) -> None:  # pragma: no cover
        pass
