"""Vectorised primitives for synthesising memory-access traces.

The paper drives its simulator with DynamoRIO traces of real applications;
we synthesise traces whose TLB-relevant structure (footprint, popularity
skew, spatial run lengths) is matched per workload.  Everything here is
numpy-vectorised so multi-hundred-thousand-access traces generate in
milliseconds.
"""

from __future__ import annotations

import numpy as np

# ----------------------------------------------------------------------
# popularity distributions
# ----------------------------------------------------------------------


def bounded_zipf(
    rng: np.random.Generator, n_items: int, alpha: float, size: int
) -> np.ndarray:
    """Sample ``size`` ranks from a Zipf-like law over ``[0, n_items)``.

    Uses the continuous power-law inverse CDF, which (unlike
    ``numpy.random.zipf``) is bounded and supports any ``alpha > 0``,
    including the sub-1 exponents real key-value workloads show.
    """
    if n_items < 1:
        raise ValueError("need at least one item")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    u = rng.random(size)
    if abs(alpha - 1.0) < 1e-9:
        ranks = np.power(float(n_items), u)
    else:
        beta = 1.0 - alpha
        ranks = np.power(u * (float(n_items) ** beta - 1.0) + 1.0, 1.0 / beta)
    out = ranks.astype(np.int64) - 0  # floor, already >= 1? ranks >= 1
    out = np.minimum(np.maximum(out, 1), n_items) - 1
    return out


def permute(values: np.ndarray, n_items: int, seed: int) -> np.ndarray:
    """Apply a deterministic pseudo-random bijection of ``[0, n_items)``.

    Used to scatter popularity ranks across the address space: without it,
    the hottest pages are also the lowest-addressed ones, which would give
    page-table lines unrealistically perfect locality.  Implemented as a
    multiply-xor-rotate bijection over the next power of two with
    cycle-walking back into range.
    """
    if n_items < 2:
        return values.copy()
    bits = max(2, int(n_items - 1).bit_length())
    mask = np.uint64((1 << bits) - 1)
    multiplier = np.uint64(
        (((0x9E3779B97F4A7C15 ^ (seed * 0xBF58476D1CE4E5B9)) | 1)
         & 0xFFFFFFFFFFFFFFFF)
    )
    xor = np.uint64((seed * 0x94D049BB133111EB) & int(mask))
    rot = np.uint64((seed % (bits - 1)) + 1)
    inv_rot = np.uint64(bits) - rot

    def step(x: np.ndarray) -> np.ndarray:
        x = (x ^ xor) & mask
        x = (x * multiplier) & mask
        return ((x >> rot) | (x << inv_rot)) & mask

    out = step(values.astype(np.uint64))
    # Cycle-walk: re-apply until every value is back inside [0, n_items).
    for _ in range(64):
        outside = out >= n_items
        if not outside.any():
            break
        out[outside] = step(out[outside])
    else:  # pragma: no cover - astronomically unlikely
        out = np.minimum(out, n_items - 1)
    return out.astype(np.int64)


# ----------------------------------------------------------------------
# spatial patterns (all return page indices inside [0, space_pages))
# ----------------------------------------------------------------------


def uniform_pages(
    rng: np.random.Generator, space_pages: int, size: int
) -> np.ndarray:
    return rng.integers(0, space_pages, size=size, dtype=np.int64)


def zipf_pages(
    rng: np.random.Generator,
    space_pages: int,
    size: int,
    alpha: float,
    scatter_seed: int | None = None,
) -> np.ndarray:
    """Zipf-popular pages, optionally scattered across the space."""
    ranks = bounded_zipf(rng, space_pages, alpha, size)
    if scatter_seed is not None:
        ranks = permute(ranks, space_pages, scatter_seed)
    return ranks


def sequential_runs(
    rng: np.random.Generator,
    space_pages: int,
    size: int,
    mean_run: float,
) -> np.ndarray:
    """Random-start sequential scans with geometric run lengths.

    Models array sweeps: pick a random page, touch the following pages for
    one run, jump elsewhere.
    """
    if mean_run < 1:
        raise ValueError("mean run must be >= 1 page")
    n_runs = max(1, int(2 * size / mean_run) + 1)
    lengths = 1 + rng.geometric(1.0 / mean_run, size=n_runs)
    starts = rng.integers(0, space_pages, size=n_runs, dtype=np.int64)
    pages = np.concatenate(
        [start + np.arange(length, dtype=np.int64)
         for start, length in zip(starts, lengths)]
    )[:size]
    if len(pages) < size:  # pragma: no cover - defensive
        extra = uniform_pages(rng, space_pages, size - len(pages))
        pages = np.concatenate([pages, extra])
    return np.remainder(pages, space_pages)


def gaussian_walk(
    rng: np.random.Generator,
    space_pages: int,
    size: int,
    step_pages: float,
) -> np.ndarray:
    """A random walk over pages — pointer-chasing with spatial affinity."""
    steps = rng.normal(0.0, step_pages, size=size).astype(np.int64)
    start = rng.integers(0, space_pages)
    pages = np.remainder(start + np.cumsum(steps), space_pages)
    return pages.astype(np.int64)


def interleave(
    rng: np.random.Generator,
    streams: list[np.ndarray],
    weights: list[float],
    size: int,
) -> np.ndarray:
    """Mix several page streams according to ``weights``.

    Each stream is consumed in order, which preserves its internal
    sequential structure.
    """
    if len(streams) != len(weights):
        raise ValueError("one weight per stream")
    total = float(sum(weights))
    probabilities = [w / total for w in weights]
    choices = rng.choice(len(streams), size=size, p=probabilities)
    out = np.empty(size, dtype=np.int64)
    for index, stream in enumerate(streams):
        mask = choices == index
        needed = int(mask.sum())
        if needed > len(stream):
            reps = -(-needed // len(stream))
            stream = np.tile(stream, reps)
        out[mask] = stream[:needed]
    return out


def pages_to_addresses(
    rng: np.random.Generator, base: int, pages: np.ndarray
) -> np.ndarray:
    """Turn page indices into byte addresses.

    Each page gets a *fixed* (hashed) line offset: repeated accesses to a
    hot page reuse the same cache line, as real object accesses do, while
    different pages still spread across cache sets.  Random per-access
    offsets would inflate a hot page into 64 distinct lines and thrash the
    LLC with single-use lines.
    """
    del rng  # deterministic by design
    offsets = ((pages * 0x9E3779B1) >> 7) & 0x3F
    return base + (pages << 12) + offsets * 64
