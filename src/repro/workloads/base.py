"""Workload model: VMA layouts plus per-VMA access patterns.

A :class:`WorkloadSpec` is the complete recipe for one benchmark of
Table 3: its VMAs (how many, how big, which cover 99% of the footprint —
the Table 2 structure), the access pattern inside each VMA, and the
physical-memory fragmentation the machine shows for its data and PT pools
(the Table 2 "contiguous regions" structure).

Patterns are small declarative objects with a single vectorised
``generate`` method producing page indices; the spec turns them into
virtual addresses over the laid-out VMAs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.phys import PhysicalMemory
from repro.kernelsim.process import ProcessAddressSpace
from repro.kernelsim.pt_layout import AsapPtLayout
from repro.kernelsim.vma import Vma, VmaKind
from repro.pagetable.constants import PAGE_SIZE
from repro.workloads import generators as g

#: Where large data VMAs are laid out (1GB-aligned; adjacent mappings keep
#: one application's VMAs inside few PL4/PL3 subtrees, as mmap does).
BIG_VMA_BASE = 0x5555_0000_0000
BIG_VMA_GAP = 1 << 30
#: Where small VMAs (libraries, stack, arenas) go.
SMALL_VMA_BASE = 0x7F00_0000_0000
SMALL_VMA_GAP = 1 << 28


class PagePattern(Protocol):
    """Generates page indices within a VMA-sized space."""

    def generate(
        self, rng: np.random.Generator, space_pages: int, size: int
    ) -> np.ndarray: ...


@dataclass(frozen=True)
class Uniform:
    """Uniformly random pages — canneal-style random swaps."""

    def generate(self, rng, space_pages, size):
        return g.uniform_pages(rng, space_pages, size)


@dataclass(frozen=True)
class Zipf:
    """Skewed popularity; ``scatter`` decorrelates rank from address."""

    alpha: float = 1.0
    scatter: bool = True

    def generate(self, rng, space_pages, size):
        seed = int(rng.integers(1, 2**31)) if self.scatter else None
        return g.zipf_pages(rng, space_pages, size, self.alpha, seed)


@dataclass(frozen=True)
class Scans:
    """Sequential sweeps with geometric run lengths (array traversals)."""

    mean_run: float = 32.0

    def generate(self, rng, space_pages, size):
        return g.sequential_runs(rng, space_pages, size, self.mean_run)


@dataclass(frozen=True)
class Walk:
    """Gaussian pointer-chase — mcf-style local wandering."""

    step_pages: float = 16.0

    def generate(self, rng, space_pages, size):
        return g.gaussian_walk(rng, space_pages, size, self.step_pages)


@dataclass(frozen=True)
class Mix:
    """Weighted mixture of other patterns."""

    parts: tuple[tuple[float, "PagePattern"], ...]

    def generate(self, rng, space_pages, size):
        streams = [
            pattern.generate(rng, space_pages, size)
            for _weight, pattern in self.parts
        ]
        weights = [weight for weight, _pattern in self.parts]
        return g.interleave(rng, streams, weights, size)


@dataclass(frozen=True)
class KeyValue:
    """A key-value store: hash-bucket probe + Zipf-popular value access.

    The first ``hash_fraction`` of the VMA is the hash table (uniformly
    probed); the rest holds values reached by Zipf-ranked keys, each access
    touching ``value_run`` consecutive pages (large objects span pages).
    ``scatter=False`` models slab allocators that cluster hot items, which
    makes the PTE lines of the popular tail shareable (Figure 9's "PL1
    served by L1-D" behaviour).
    """

    alpha: float = 1.0
    hash_fraction: float = 0.1
    value_run: int = 1
    scatter: bool = True

    def __post_init__(self) -> None:
        if self.value_run < 1:
            raise ValueError("value_run must be >= 1 (each request touches "
                             "one bucket page plus value_run value pages)")
        if not 0.0 < self.hash_fraction < 1.0:
            raise ValueError("hash_fraction must be in (0, 1)")

    def generate(self, rng, space_pages, size):
        hash_pages = max(1, int(space_pages * self.hash_fraction))
        value_pages = max(1, space_pages - hash_pages)
        # One request = one bucket probe + value_run value pages; sizes
        # not divisible by per_request round the request count up and
        # truncate the final request, so the output is always exactly
        # ``size`` records (no silent mis-sizing; pinned by tests).
        per_request = 1 + self.value_run
        requests = -(-size // per_request)
        # Bucket popularity mirrors key popularity (a hot key lands in the
        # same bucket every time), scattered by the hash function.
        buckets = g.zipf_pages(
            rng, hash_pages, requests, self.alpha,
            scatter_seed=int(rng.integers(1, 2**31)),
        )
        seed = int(rng.integers(1, 2**31)) if self.scatter else None
        keys = g.zipf_pages(rng, value_pages, requests, self.alpha, seed)
        out = np.empty(requests * per_request, dtype=np.int64)
        out[::per_request] = buckets
        for i in range(self.value_run):
            out[i + 1:: per_request] = hash_pages + np.minimum(
                keys + i, value_pages - 1
            )
        return out[:size]


@dataclass(frozen=True)
class VmaSpec:
    """One VMA of a workload: geometry plus its access pattern."""

    name: str
    size_bytes: int
    weight: float  # share of the workload's accesses landing here
    pattern: PagePattern = field(default_factory=Uniform)
    kind: VmaKind = VmaKind.MMAP
    growable: bool = False
    page_level: int = 1

    @property
    def pages(self) -> int:
        return self.size_bytes // PAGE_SIZE


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete benchmark recipe (one row of Table 3)."""

    name: str
    description: str
    vmas: tuple[VmaSpec, ...]
    #: Fragmentation knobs: mean contiguous-run length in the buddy pools
    #: (calibrated against Table 2's contiguous-region counts).
    pt_run_mean: float = 8.0
    data_run_mean: float = 16.0
    #: How the application faults its footprint in: "sequential"
    #: (array/graph loaders touch VA order at start-up), "chunked" (slab
    #: allocators carve ~1MB chunks on demand but fill each sequentially —
    #: memcached), or "demand" (pure request order — redis).  First-touch
    #: order determines frame contiguity, which is what coalesced TLBs
    #: exploit (§5.4.1).
    init_order: str = "sequential"

    def __post_init__(self) -> None:
        if self.init_order not in ("sequential", "chunked", "demand"):
            raise ValueError(f"unknown init order {self.init_order!r}")

    @property
    def footprint_bytes(self) -> int:
        return sum(v.size_bytes for v in self.vmas)

    # ------------------------------------------------------------------
    def layout(self) -> list[tuple[VmaSpec, int]]:
        """Assign a base address to every VMA (big ones low, small high)."""
        placed = []
        big_cursor = BIG_VMA_BASE
        small_cursor = SMALL_VMA_BASE
        for spec in self.vmas:
            if spec.size_bytes >= (1 << 28):
                placed.append((spec, big_cursor))
                big_cursor += max(
                    BIG_VMA_GAP,
                    -(-spec.size_bytes // BIG_VMA_GAP) * BIG_VMA_GAP,
                )
            else:
                placed.append((spec, small_cursor))
                small_cursor += SMALL_VMA_GAP
        return placed

    # ------------------------------------------------------------------
    def build_process(
        self,
        asap_levels: tuple[int, ...] = (),
        seed: int = 0,
        buddy: BuddyAllocator | None = None,
        pt_levels: int = 4,
        memory_bytes: int = 1 << 41,
        data_pool: str = "data",
        pt_pool: str = "pt",
    ) -> ProcessAddressSpace:
        """Instantiate the process: VMAs mapped, nothing yet faulted in.

        ``data_pool``/``pt_pool`` name this process's allocation streams;
        multi-tenant runs give each process its own pair on one shared
        ``buddy`` so per-workload fragmentation knobs stay per-process
        while all tenants draw from the same physical memory.
        """
        if buddy is None:
            buddy = BuddyAllocator(PhysicalMemory(memory_bytes), seed=seed)
        buddy.configure_pool(data_pool, self.data_run_mean)
        buddy.configure_pool(pt_pool, self.pt_run_mean)
        layout = None
        if asap_levels:
            layout = AsapPtLayout(buddy, levels=asap_levels, seed=seed,
                                  fallback_pool=pt_pool)
        process = ProcessAddressSpace(
            buddy=buddy, levels=pt_levels, asap_layout=layout,
            data_pool=data_pool, pt_pool=pt_pool,
        )
        for spec, base in self.layout():
            process.mmap(
                base,
                spec.pages * PAGE_SIZE,
                kind=spec.kind,
                name=spec.name,
                growable=spec.growable,
                page_level=spec.page_level,
            )
        return process

    # ------------------------------------------------------------------
    def generate_trace(self, length: int, seed: int = 0) -> np.ndarray:
        """Synthesise ``length`` virtual addresses over the laid-out VMAs.

        The per-workload seed perturbation uses crc32, not ``hash()``:
        Python string hashes are randomised per interpreter invocation
        (PYTHONHASHSEED), which would make traces — and therefore every
        statistic and cached result — differ from run to run.

        Traces longer than one generation chunk should go through
        :mod:`repro.traces` instead of this monolithic path; a
        zero/negative length is rejected rather than silently yielding
        an empty trace whose statistics all read 0.
        """
        if length < 1:
            raise ValueError(
                f"trace length must be >= 1, got {length}")
        rng = np.random.default_rng(
            seed ^ zlib.crc32(self.name.encode()) & 0x7FFFFFFF)
        streams = []
        weights = []
        for spec, base in self.layout():
            if spec.weight <= 0:
                continue
            share = max(64, int(length * spec.weight * 1.3) + 1)
            pages = spec.pattern.generate(rng, spec.pages, share)
            streams.append(g.pages_to_addresses(rng, base, pages))
            weights.append(spec.weight)
        return g.interleave(rng, streams, weights, length)
