"""The seven evaluation workloads of Table 3.

Each spec reproduces the *TLB-relevant structure* of the paper's benchmark:
footprint, VMA composition (Table 2's total / 99%-coverage counts), access
skew and spatial behaviour, and the physical fragmentation of its PT pages
(Table 2's contiguous-region counts, via the ``pt_run_mean`` knob).

Footprints for bfs/pagerank (60GB), memcached (80/400GB) and redis (50GB)
follow Table 3.  For mcf and canneal the paper gives no size; we infer
~5-6GB from their Table 2 PT page counts (PT pages ~= footprint / 2MB).

These are calibrated once, here, and never tuned per experiment.
"""

from __future__ import annotations

from repro.kernelsim.vma import VmaKind
from repro.workloads.base import (
    KeyValue,
    Mix,
    Scans,
    Uniform,
    VmaSpec,
    Walk,
    WorkloadSpec,
    Zipf,
)
from repro.workloads.graph import GraphTraversal

GB = 1 << 30
MB = 1 << 20


def _small_vmas(count: int, total_weight: float = 0.01) -> tuple[VmaSpec, ...]:
    """Library/stack/arena VMAs: small, hot, high temporal reuse (§3.2)."""
    sizes = [128 * 1024, 256 * 1024, 512 * 1024, 1 * MB, 2 * MB]
    out = []
    weight = total_weight / count
    for index in range(count):
        size = sizes[index % len(sizes)]
        kind = VmaKind.LIBRARY if index else VmaKind.STACK
        out.append(
            VmaSpec(
                name=f"small-{index}",
                size_bytes=size,
                weight=weight,
                pattern=Zipf(alpha=1.2, scatter=False),
                kind=kind,
            )
        )
    return tuple(out)


MCF = WorkloadSpec(
    name="mcf",
    description="SPEC'06 benchmark (ref input): pointer-chasing over arcs",
    vmas=(
        VmaSpec(
            name="heap",
            size_bytes=int(5.6 * GB),
            weight=0.98,
            pattern=Mix((
                (0.55, Walk(step_pages=12.0)),
                (0.20, Scans(mean_run=48.0)),
                (0.25, Zipf(alpha=1.1, scatter=False)),
            )),
            kind=VmaKind.HEAP,
            growable=True,
        ),
    ) + _small_vmas(15, total_weight=0.02),
    pt_run_mean=5.0,
    data_run_mean=96.0,
)

CANNEAL = WorkloadSpec(
    name="canneal",
    description="PARSEC 3.0 benchmark (native input): random element swaps",
    vmas=tuple(
        VmaSpec(
            name=f"elements-{index}",
            size_bytes=int(0.64 * GB),
            weight=0.2475,
            pattern=Mix((
                (0.60, Zipf(alpha=1.05, scatter=False)),
                (0.30, Scans(mean_run=24.0)),
                (0.10, Uniform()),
            )),
            kind=VmaKind.HEAP,
        )
        for index in range(4)
    ) + _small_vmas(14, total_weight=0.01),
    pt_run_mean=6.0,
    data_run_mean=48.0,
)

BFS = WorkloadSpec(
    name="bfs",
    description="Breadth-first search, 60GB dataset (scaled from Twitter)",
    vmas=(
        VmaSpec(
            name="graph-csr",
            size_bytes=60 * GB,
            weight=0.99,
            pattern=GraphTraversal(
                mode="bfs",
                meta_fraction=0.01,
                frontier_alpha=1.05,
                neighbour_alpha=1.15,
                neighbour_samples=3,
                mean_degree=48.0,
            ),
            kind=VmaKind.MMAP,
        ),
    ) + _small_vmas(13, total_weight=0.01),
    pt_run_mean=15.0,
    data_run_mean=6.0,
)

PAGERANK = WorkloadSpec(
    name="pagerank",
    description="PageRank, 60GB dataset (scaled from Twitter)",
    vmas=(
        VmaSpec(
            name="graph-csr",
            size_bytes=60 * GB,
            weight=0.99,
            pattern=GraphTraversal(
                mode="pagerank",
                meta_fraction=0.01,
                neighbour_alpha=1.15,
                neighbour_samples=3,
                mean_degree=48.0,
            ),
            kind=VmaKind.MMAP,
        ),
    ) + _small_vmas(17, total_weight=0.01),
    pt_run_mean=18.0,
    data_run_mean=6.0,
)


def _memcached(name: str, total_gb: int, slabs: int,
               pt_run: float) -> WorkloadSpec:
    slab_bytes = (total_gb * GB) // slabs
    weight = 0.985 / slabs
    return WorkloadSpec(
        name=name,
        description=(
            f"Memcached, in-memory key-value cache, {total_gb}GB dataset"
        ),
        vmas=tuple(
            VmaSpec(
                name=f"slab-{index}",
                size_bytes=slab_bytes,
                weight=weight,
                pattern=KeyValue(alpha=1.1, hash_fraction=0.04,
                                 value_run=1, scatter=False),
                kind=VmaKind.MMAP,
                growable=True,
            )
            for index in range(slabs)
        ) + _small_vmas(33 - slabs if name == "mc400" else 26 - slabs,
                        total_weight=0.015),
        pt_run_mean=pt_run,
        data_run_mean=8.0,
        init_order="chunked",
    )


MC80 = _memcached("mc80", total_gb=80, slabs=6, pt_run=23.0)
MC400 = _memcached("mc400", total_gb=400, slabs=13, pt_run=40.0)

REDIS = WorkloadSpec(
    name="redis",
    description="In-memory key-value store (50GB YCSB dataset)",
    vmas=(
        VmaSpec(
            name="keyspace",
            size_bytes=int(49.5 * GB),
            weight=0.99,
            pattern=Mix((
                (0.75, KeyValue(alpha=1.0, hash_fraction=0.05, value_run=1)),
                (0.15, Scans(mean_run=64.0)),
                (0.10, Uniform()),
            )),
            kind=VmaKind.HEAP,
            growable=True,
        ),
    ) + _small_vmas(6, total_weight=0.01),
    pt_run_mean=12.0,
    data_run_mean=8.0,
    init_order="demand",
)

#: Registry in the paper's presentation order (Figures 2/3/8/10/11/12).
WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (MCF, CANNEAL, BFS, PAGERANK, MC80, MC400, REDIS)
}

#: The Figure 2 subset (no mc400) and Table 6 subset (no memcached).
FIGURE2_NAMES = ("mcf", "canneal", "bfs", "pagerank", "mc80", "redis")
TABLE6_NAMES = ("mcf", "canneal", "bfs", "pagerank", "redis")
ALL_NAMES = tuple(WORKLOADS)

#: Multi-tenant consolidation mixes (`repro mt`): named rosters of the
#: Table 3 workloads above.  Tenant ``i`` of an N-tenant run executes
#: ``mix[i % len(mix)]`` with a per-tenant seed, so one mix name scales
#: to any process count.  The mixes mirror §4's co-runner methodology:
#: a server consolidating key-value caches with batch analytics.
MT_MIXES: dict[str, tuple[str, ...]] = {
    #: A caching tier: big and small key-value stores side by side.
    "mix-kv": ("mc80", "redis"),
    #: Batch analytics: the two graph workloads sharing one socket.
    "mix-graph": ("bfs", "pagerank"),
    #: The consolidated server: caches + analytics + a SPEC-style batch
    #: job, the most heterogeneous pressure on shared TLB/PWC/caches.
    "mix-server": ("mc80", "redis", "bfs", "mcf"),
}

MIX_NAMES = tuple(MT_MIXES)


def get(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        # ValueError, not KeyError: every front end (CLI, Job
        # validation) treats bad names as invalid input with the choice
        # list attached, never as a missing-key traceback.
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None


def tenant_names(workload: str, tenants: int) -> list[str]:
    """Per-tenant workload names for a multi-tenant run.

    ``workload`` is either one Table 3 workload (every tenant runs it,
    each with its own seed) or an :data:`MT_MIXES` name (tenants cycle
    through the mix).
    """
    if tenants < 1:
        raise ValueError("a multi-tenant run needs at least one tenant")
    mix = MT_MIXES.get(workload)
    if mix is None:
        get(workload)  # raises the canonical error for unknown names
        mix = (workload,)
    return [mix[i % len(mix)] for i in range(tenants)]
