"""Graph-analytics access patterns (bfs and pagerank of Table 3).

The paper runs BFS and PageRank on a 60GB synthetic dataset whose edge
distribution is modelled after Twitter (Galois framework).  We synthesise
the *memory behaviour* of those kernels over a CSR-like layout directly:

* a vertex-metadata region (ranks / parent pointers), dense, small stride;
* an edge region (the bulk of the footprint) read in sequential runs, one
  run per visited vertex, run length following the power-law degree
  distribution;
* per edge, a random access back into the metadata region for the
  neighbour's entry — the irregular, TLB-hostile part.  Neighbour ids are
  Zipf-distributed (preferential attachment), scattered across the space.

``bfs`` visits vertices in popularity order (frontier effect); ``pagerank``
sweeps vertices sequentially each iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads import generators as g

#: Metadata entry bytes per vertex (rank + degree + offset).
_META_BYTES = 64
_EDGE_BYTES = 8


@dataclass(frozen=True)
class GraphTraversal:
    """Page pattern for CSR graph kernels inside one big VMA."""

    mode: str = "bfs"  # or "pagerank"
    meta_fraction: float = 0.04
    degree_alpha: float = 1.8  # Pareto-ish tail like Twitter
    mean_degree: float = 24.0
    max_degree: int = 4096
    neighbour_samples: int = 4  # metadata reads per visited vertex
    frontier_alpha: float = 0.7  # BFS frontier popularity skew
    neighbour_alpha: float = 1.001  # preferential-attachment skew
    neighbour_scatter: bool = True  # scatter neighbour ids across meta

    def __post_init__(self) -> None:
        if self.mode not in ("bfs", "pagerank"):
            raise ValueError("mode must be 'bfs' or 'pagerank'")

    # ------------------------------------------------------------------
    def _degrees(self, rng: np.random.Generator, count: int) -> np.ndarray:
        raw = (rng.pareto(self.degree_alpha, size=count) + 1.0)
        scale = self.mean_degree * (self.degree_alpha - 1) / self.degree_alpha
        degrees = np.minimum(raw * scale, self.max_degree)
        return np.maximum(degrees.astype(np.int64), 1)

    def generate(
        self, rng: np.random.Generator, space_pages: int, size: int
    ) -> np.ndarray:
        meta_pages = max(1, int(space_pages * self.meta_fraction))
        edge_pages = max(1, space_pages - meta_pages)
        vertices = max(2, (meta_pages << 12) // _META_BYTES)
        meta_per_page = 4096 // _META_BYTES

        # Edge runs average under a page, so one visit costs roughly
        # 1 (own meta) + ~1 (edges) + neighbour_samples accesses.
        per_visit = 2 + self.neighbour_samples
        visits = max(1, -(-size // per_visit))

        if self.mode == "bfs":
            visited = g.zipf_pages(
                rng, vertices, visits, self.frontier_alpha,
                scatter_seed=int(rng.integers(1, 2**31)),
            )
        else:
            start = int(rng.integers(0, vertices))
            visited = np.remainder(
                start + np.arange(visits, dtype=np.int64), vertices
            )

        degrees = self._degrees(rng, visits)
        neighbour_seed = (
            int(rng.integers(1, 2**31)) if self.neighbour_scatter else None
        )

        chunks: list[np.ndarray] = []
        # Own metadata page.
        chunks.append(visited // meta_per_page)
        # Edge-array run: CSR offset proportional to vertex id (prefix-sum
        # like), spanning ceil(degree * 8 / 4096) pages.
        edge_start = (
            (visited.astype(np.float64) / vertices) * edge_pages
        ).astype(np.int64)
        edge_span = 1 + (degrees * _EDGE_BYTES) // 4096
        # Interleave per visit: meta, edge run, neighbour reads.
        neighbour = g.zipf_pages(
            rng, vertices, visits * self.neighbour_samples,
            self.neighbour_alpha, scatter_seed=neighbour_seed,
        )
        neighbour_pages = meta_pages and (neighbour // meta_per_page)

        out: list[int] = []
        nb_index = 0
        meta_page = chunks[0]
        for i in range(visits):
            out.append(int(meta_page[i]))
            start = int(edge_start[i])
            for offset in range(int(edge_span[i])):
                out.append(meta_pages + (start + offset) % edge_pages)
            for _ in range(self.neighbour_samples):
                out.append(int(neighbour_pages[nb_index]))
                nb_index += 1
            if len(out) >= size:
                break
        pages = np.asarray(out[:size], dtype=np.int64)
        if len(pages) < size:  # pragma: no cover - defensive top-up
            extra = g.uniform_pages(rng, space_pages, size - len(pages))
            pages = np.concatenate([pages, extra])
        return pages
