"""Workload substrate: the Table 3 benchmark suite, trace generators and
the SMT co-runner."""

from repro.workloads.base import (
    KeyValue,
    Mix,
    PagePattern,
    Scans,
    Uniform,
    VmaSpec,
    Walk,
    WorkloadSpec,
    Zipf,
)
from repro.workloads.corunner import Corunner
from repro.workloads.graph import GraphTraversal
from repro.workloads.suite import (
    ALL_NAMES,
    FIGURE2_NAMES,
    TABLE6_NAMES,
    WORKLOADS,
    get,
)

__all__ = [
    "ALL_NAMES",
    "Corunner",
    "FIGURE2_NAMES",
    "GraphTraversal",
    "KeyValue",
    "Mix",
    "PagePattern",
    "Scans",
    "TABLE6_NAMES",
    "Uniform",
    "VmaSpec",
    "Walk",
    "WORKLOADS",
    "WorkloadSpec",
    "Zipf",
    "get",
]
