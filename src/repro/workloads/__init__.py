"""Workload substrate: the Table 3 benchmark suite, trace generators and
the SMT co-runner.

Paper cross-references: Table 3 (the seven server/HPC workloads and
footprints), Table 2 (VMA composition each spec reproduces), §4
(methodology: SMT colocation via a co-running thread that pressures the
caches and TLBs).
"""

from repro.workloads.base import (
    KeyValue,
    Mix,
    PagePattern,
    Scans,
    Uniform,
    VmaSpec,
    Walk,
    WorkloadSpec,
    Zipf,
)
from repro.workloads.corunner import Corunner
from repro.workloads.graph import GraphTraversal
from repro.workloads.suite import (
    ALL_NAMES,
    FIGURE2_NAMES,
    TABLE6_NAMES,
    WORKLOADS,
    get,
)

__all__ = [
    "ALL_NAMES",
    "Corunner",
    "FIGURE2_NAMES",
    "GraphTraversal",
    "KeyValue",
    "Mix",
    "PagePattern",
    "Scans",
    "TABLE6_NAMES",
    "Uniform",
    "VmaSpec",
    "Walk",
    "WORKLOADS",
    "WorkloadSpec",
    "Zipf",
    "get",
]
