"""The synthetic SMT co-runner of the paper's colocation methodology (§4).

"We use a synthetic co-runner that issues one request to a random address
for each memory access by the application thread."  The co-runner shares
the entire cache hierarchy (SMT), so its traffic — both its random data
reads and the page-walk reads those trigger (a random address over a big
footprint misses its TLB essentially every time) — evicts the application's
PT lines from L1/L2/LLC.  That is the mechanism behind Figure 8b/10b.

TLB and PWC *capacity* contention is deliberately not modelled, matching
the paper (which notes this makes ASAP's colocation gains conservative):
the co-runner's walks only generate cache traffic, touching its own PT
lines, never the application's translation structures.
"""

from __future__ import annotations

import numpy as np

from repro.mem.hierarchy import CacheHierarchy

#: The co-runner's physical lines live far above any simulated allocation
#: (our machines top out below 4TB).
_CORUNNER_LINE_BASE = 1 << 38
#: Its page table sits in a separate region.
_CORUNNER_PT_BASE = 1 << 37


class Corunner:
    """Issues one random data access plus its walk traffic per app access."""

    def __init__(
        self,
        footprint_bytes: int = 16 << 30,
        seed: int = 1234,
        batch: int = 65536,
        walk_lines_per_access: float = 1.5,
        intensity: int = 1,
    ) -> None:
        """``intensity`` scales the interference rate: how many co-runner
        (data + walk) access groups are replayed per application access.

        Simulated traces compress the application's reuse distances by
        orders of magnitude relative to the billions-of-accesses runs the
        paper measures; the co-runner's eviction rate must be compressed by
        the same factor for the LLC-residency transitions of Figures 8b/10b
        to stay at the same *relative* position.  See EXPERIMENTS.md.
        """
        self.footprint_lines = footprint_bytes >> 6
        # One PL1 line covers 8 pages = 32KB of the co-runner's footprint.
        self.pt_lines = max(1, footprint_bytes >> 15)
        self.walk_lines_per_access = walk_lines_per_access
        self.intensity = max(1, intensity)
        self._rng = np.random.default_rng(seed)
        self._batch = batch
        self._buffer: list[int] = []
        self._takes: list[int] = []
        self._cursor = 0
        self._take_cursor = 0
        self.accesses = 0

    def _refill(self) -> None:
        n = self._batch
        data = self._rng.integers(0, self.footprint_lines, size=n,
                                  dtype=np.int64) + _CORUNNER_LINE_BASE
        # Walk traffic: PL1 line of the accessed page, plus upper-level
        # lines with decreasing probability (they mostly hit the
        # co-runner's PWC, but the deep levels do not — §3.1).
        pt1 = self._rng.integers(0, self.pt_lines, size=n,
                                 dtype=np.int64) + _CORUNNER_PT_BASE
        extra_mask = self._rng.random(n) < (self.walk_lines_per_access - 1.0)
        pt2 = self._rng.integers(0, max(1, self.pt_lines >> 9), size=n,
                                 dtype=np.int64) + _CORUNNER_PT_BASE * 3
        # Vectorised merge into [data_i, pt1_i(, pt2_i)] groups: each
        # group's start is the running sum of the preceding group sizes,
        # so three scatter-assignments build the interleaved stream the
        # old per-element loop produced, byte for byte (same draws, same
        # order; pinned by the colocation goldens in test_fast_path.py).
        takes = np.where(extra_mask, np.int64(3), np.int64(2))
        ends = np.cumsum(takes)
        starts = ends - takes
        merged = np.empty(int(ends[-1]), dtype=np.int64)
        merged[starts] = data
        merged[starts + 1] = pt1
        merged[starts[extra_mask] + 2] = pt2[extra_mask]
        self._buffer = merged.tolist()
        self._takes = takes.tolist()
        self._cursor = 0
        self._take_cursor = 0

    def prefill(self, hierarchy: CacheHierarchy) -> None:
        """Install the co-runner's steady-state cache contents.

        A memory-intensive co-runner that has been running alongside the
        application for billions of accesses keeps the shared caches full
        of its single-use lines.  Simulated traces are far too short to
        reach that state by replay, so colocated runs start from it: every
        cache level begins full of co-runner junk, which the application
        then has to displace — exactly the §4 colocation pressure.
        """
        total = hierarchy.params.l3.lines + hierarchy.params.l2.lines
        step = max(1, self.footprint_lines // (total + 1))
        line = _CORUNNER_LINE_BASE
        for _ in range(total):
            hierarchy.l1.install(line)
            hierarchy.l2.install(line)
            hierarchy.l3.install(line)
            line += step

    def step(self, hierarchy: CacheHierarchy, now: int) -> None:
        """One co-runner slot (data + walk lines) through the hierarchy."""
        for _ in range(self.intensity):
            if self._take_cursor >= len(self._takes):
                self._refill()
            take = self._takes[self._take_cursor]
            cursor = self._cursor
            for offset in range(take):
                hierarchy.access_line(self._buffer[cursor + offset], now)
            self._cursor = cursor + take
            self._take_cursor += 1
        self.accesses += 1
