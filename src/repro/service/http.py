"""The daemon's stdlib HTTP endpoint.

``repro serve --http PORT`` exposes the serving system's state over
:class:`http.server.ThreadingHTTPServer` — no third-party dependency,
read-only, bound to localhost:

* ``/``              tiny index page linking everything below
* ``/status``        JSON: daemon heartbeat + queue state counts
* ``/queue``         JSON: every journal entry (spec, label, state, ...)
* ``/dashboard``     the obs HTML dashboard (scorecards, phase charts,
                     BENCH trajectories) built from the newest event
                     logs under ``<cache_dir>/obs`` plus the checked-in
                     ``BENCH_*.json`` trajectory files
* ``/report``        the incrementally regenerated EXPERIMENTS.md
* ``/report/raw``    its raw report text
* ``/tables``        JSON: every stored section's structured cell model
                     (per-seed samples, confidence intervals,
                     significance verdicts — `repro.stats.tables`)
* ``/bench/schemes`` and ``/bench/scaling`` — the trajectory JSONs

Handlers only read files and replay the journal; they never mutate
service state, so a request can race the daemon loop freely.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.runtime.cache import OBS_SUBDIR
from repro.service.queue import JobQueue, read_daemon_meta

#: How many of the newest obs run logs feed the dashboard.
DASHBOARD_LOGS = 3

REPO_ROOT = Path(__file__).resolve().parents[3]

_INDEX = """<!DOCTYPE html>
<html><head><meta charset='utf-8'><title>repro service</title></head>
<body><h1>repro experiment service</h1><ul>
<li><a href="/status">/status</a> — daemon + queue state (JSON)</li>
<li><a href="/queue">/queue</a> — journal entries (JSON)</li>
<li><a href="/dashboard">/dashboard</a> — obs dashboard (HTML)</li>
<li><a href="/report">/report</a> — EXPERIMENTS.md (markdown)</li>
<li><a href="/report/raw">/report/raw</a> — raw report text</li>
<li><a href="/tables">/tables</a> — structured cell models (JSON)</li>
<li><a href="/bench/schemes">/bench/schemes</a> — BENCH_schemes.json</li>
<li><a href="/bench/scaling">/bench/scaling</a> — BENCH_scaling.json</li>
</ul></body></html>
"""


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes one GET; all state comes from the server object."""

    server: "ServiceHTTPServer"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # stay quiet: the daemon's stderr is its own log

    # ------------------------------------------------------------------
    def _send(self, body: bytes, content_type: str,
              status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        self._send(_json_bytes(payload), "application/json", status)

    def _not_found(self) -> None:
        self._send_json({"error": f"no such route: {self.path}"}, 404)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        try:
            route = self.path.split("?", 1)[0].rstrip("/") or "/"
            if route == "/":
                self._send(_INDEX.encode("utf-8"), "text/html")
            elif route == "/status":
                self._send_json(self.server.status())
            elif route == "/queue":
                self._send_json(self.server.queue_entries())
            elif route == "/dashboard":
                self._send(self.server.dashboard().encode("utf-8"),
                           "text/html")
            elif route == "/report":
                self._send(self.server.report_markdown().encode("utf-8"),
                           "text/markdown; charset=utf-8")
            elif route == "/report/raw":
                self._send(self.server.report_raw().encode("utf-8"),
                           "text/plain; charset=utf-8")
            elif route == "/tables":
                self._send_json(self.server.tables_model())
            elif route == "/bench/schemes":
                self._send_json(self.server.bench("schemes"))
            elif route == "/bench/scaling":
                self._send_json(self.server.bench("scaling"))
            else:
                self._not_found()
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as error:  # surface, don't kill the thread
            try:
                self._send_json({"error": f"{error.__class__.__name__}: "
                                          f"{error}"}, 500)
            except OSError:
                pass


class ServiceHTTPServer(ThreadingHTTPServer):
    """The endpoint plus the read-only state accessors behind it."""

    daemon_threads = True

    def __init__(self, port: int, cache_dir: str, queue: JobQueue,
                 bench_schemes: str | Path | None = None,
                 bench_scaling: str | Path | None = None) -> None:
        super().__init__(("127.0.0.1", port), ServiceRequestHandler)
        self.cache_dir = Path(cache_dir)
        self.queue = queue
        self.bench_paths = {
            "schemes": Path(bench_schemes) if bench_schemes
            else REPO_ROOT / "BENCH_schemes.json",
            "scaling": Path(bench_scaling) if bench_scaling
            else REPO_ROOT / "BENCH_scaling.json",
        }

    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        return {
            "daemon": read_daemon_meta(self.queue.dir),
            "queue": self.queue.counts(),
            "cache_dir": str(self.cache_dir),
        }

    def queue_entries(self) -> list[dict[str, Any]]:
        entries = sorted(self.queue.load().values(),
                         key=lambda entry: entry.seq)
        return [{
            "spec": entry.spec,
            "label": entry.label,
            "state": entry.state,
            "priority": entry.priority,
            "seq": entry.seq,
            "pid": entry.pid,
            "seconds": entry.seconds,
            "error": entry.error,
        } for entry in entries]

    def dashboard(self) -> str:
        from repro.obs.dashboard import build_dashboard
        from repro.obs.reader import ObsLogError, read_log

        obs_dir = self.cache_dir / OBS_SUBDIR
        logs: list[tuple[dict[str, Any], list[dict[str, Any]]]] = []
        try:
            newest = sorted(obs_dir.glob("*.jsonl"),
                            key=lambda path: path.stat().st_mtime)
        except OSError:
            newest = []
        for path in newest[-DASHBOARD_LOGS:]:
            try:
                logs.append(read_log(path))
            except (ObsLogError, OSError):
                continue  # a log being written right now — skip it
        return build_dashboard(logs,
                               bench_schemes=self._bench_or_none("schemes"),
                               bench_scaling=self._bench_or_none("scaling"),
                               title="repro service dashboard")

    # ------------------------------------------------------------------
    def _report_file(self, name: str) -> str:
        from repro.service.reporter import REPORT_SUBDIR
        from repro.service.queue import service_dir

        path = service_dir(self.cache_dir) / REPORT_SUBDIR / name
        if not path.exists() and name == "EXPERIMENTS.md":
            path = REPO_ROOT / name  # fall back to the checked-in copy
        try:
            return path.read_text()
        except OSError:
            return (f"{name} not generated yet; run "
                    f"`repro report --incremental` or submit a sweep.\n")

    def report_markdown(self) -> str:
        return self._report_file("EXPERIMENTS.md")

    def report_raw(self) -> str:
        return self._report_file("experiments_raw.txt")

    def tables_model(self) -> dict[str, Any]:
        """Every stored section's cell model, keyed by section slug."""
        from repro.service.queue import service_dir
        from repro.service.reporter import MANIFEST_NAME, REPORT_SUBDIR

        root = service_dir(self.cache_dir) / REPORT_SUBDIR
        try:
            manifest = json.loads((root / MANIFEST_NAME).read_text())
        except (OSError, ValueError):
            manifest = {}
        sections: dict[str, Any] = {}
        for path in sorted((root / "sections").glob("*.json")):
            try:
                payloads = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # being rewritten right now — skip it
            slug = path.stem
            entry = manifest.get(slug, {})
            sections[slug] = {
                "title": entry.get("title", slug),
                "model_digest": entry.get("model_digest"),
                "tables": payloads,
            }
        return sections

    def _bench_or_none(self, which: str) -> dict[str, Any] | None:
        try:
            return json.loads(self.bench_paths[which].read_text())
        except (OSError, ValueError):
            return None

    def bench(self, which: str) -> dict[str, Any]:
        data = self._bench_or_none(which)
        if data is None:
            return {"error": f"no {self.bench_paths[which].name} found"}
        return data


def start_http_server(port: int, cache_dir: str, queue: JobQueue,
                      **kwargs: Any) -> ServiceHTTPServer:
    """Start the endpoint on a daemon thread; returns the server."""
    server = ServiceHTTPServer(port, cache_dir, queue, **kwargs)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    return server
