"""The persistent job queue: an append-only JSONL journal.

The queue lives under ``<cache_dir>/service/`` and survives any process:

* ``journal.jsonl`` — one JSON object per line.  The first op for an
  entry is ``submit`` (carrying the pickled :class:`~repro.runtime.job.
  Job`, its spec hash, priority and the submitting client); later ops —
  ``start``, ``done``, ``fail``, ``cancel``, ``recover`` — move the
  entry through its states.  State is reconstructed by replaying the
  file in order, so a crash can at worst lose the tail line being
  written, never corrupt history.
* ``journal.lock`` — an ``fcntl`` advisory lock serialising every
  read-decide-append sequence (submission dedup, claiming) across
  processes.  Appends themselves are single ``O_APPEND`` writes.
* ``daemon.json`` — the live daemon's heartbeat (pid, started, beat
  wall-clock), written atomically; :func:`daemon_alive` is how clients
  decide between submit-and-wait and the in-process fallback.

Entry identity is the job's **spec hash** — the same key as the result
cache — which is what makes dedup compositional: a submission first
consults the spec-hash × code-version cache (warm cells never enqueue),
then the journal (cells already pending/running never enqueue twice).

States: ``pending`` → ``running`` → ``done`` | ``failed``; ``pending``
entries can be ``cancelled``; a ``running`` entry whose executor pid is
dead reverts to ``pending`` on :meth:`JobQueue.recover` (the
daemon-restart path).  Terminal entries may be resubmitted (a new
``submit`` line re-opens them) — needed when a done entry's cached
result was evicted by a code-version change.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.runtime.cache import (
    SERVICE_SUBDIR,
    ResultCache,
    code_version,
    pid_alive,
)
from repro.runtime.job import Job

JOURNAL_NAME = "journal.jsonl"
LOCK_NAME = "journal.lock"
DAEMON_META_NAME = "daemon.json"

#: Entry states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (PENDING, RUNNING, DONE, FAILED, CANCELLED)

#: A daemon whose heartbeat is older than this many seconds is presumed
#: dead even if its pid is still allocated (pid reuse, hung process).
HEARTBEAT_STALENESS = 30.0

#: Journals longer than this many lines are compacted on daemon start.
COMPACT_THRESHOLD = 5_000


def service_dir(cache_dir: str | os.PathLike[str]) -> Path:
    """The service state directory for a cache root."""
    return Path(cache_dir) / SERVICE_SUBDIR


# ----------------------------------------------------------------------
# daemon heartbeat
# ----------------------------------------------------------------------
def write_daemon_meta(directory: Path, **extra: Any) -> None:
    """Atomically publish this process as the directory's daemon."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / DAEMON_META_NAME
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    payload = {"pid": os.getpid(), "beat_wall": time.time(), **extra}
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)


def clear_daemon_meta(directory: Path) -> None:
    try:
        (directory / DAEMON_META_NAME).unlink(missing_ok=True)
    except OSError:
        pass


def read_daemon_meta(directory: Path) -> dict[str, Any] | None:
    """The published daemon heartbeat, or ``None``."""
    try:
        return json.loads((directory / DAEMON_META_NAME).read_text())
    except (OSError, ValueError):
        return None


def daemon_alive(directory: Path,
                 staleness: float = HEARTBEAT_STALENESS) -> bool:
    """True when a daemon with a fresh heartbeat and a live pid exists."""
    meta = read_daemon_meta(directory)
    if meta is None:
        return False
    if time.time() - meta.get("beat_wall", 0.0) > staleness:
        return False
    return pid_alive(int(meta.get("pid", 0)))


# ----------------------------------------------------------------------
# journal entries
# ----------------------------------------------------------------------
@dataclass
class QueueEntry:
    """Reconstructed state of one queued job."""

    spec: str
    label: str
    priority: int
    seq: int
    submitted: float
    client: int
    code_version: str
    job_b64: str
    state: str = PENDING
    pid: int | None = None
    seconds: float | None = None
    error: str | None = None
    starts: int = 0
    _job: Job | None = field(default=None, repr=False)

    def job(self) -> Job:
        if self._job is None:
            self._job = pickle.loads(base64.b64decode(self.job_b64))
        return self._job


def _encode_job(job: Job) -> str:
    return base64.b64encode(
        pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


class _FileLock:
    """``fcntl.flock`` on a sidecar file; no-op where unavailable."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._fh = None

    def __enter__(self) -> "_FileLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a+")
        try:
            import fcntl

            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
        except ImportError:  # pragma: no cover - non-POSIX fallback
            pass
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._fh is not None:
            try:
                import fcntl

                fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            except ImportError:  # pragma: no cover
                pass
            self._fh.close()
            self._fh = None


class JobQueue:
    """Persistent queue over one cache directory's journal."""

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.dir = Path(directory)
        self.journal = self.dir / JOURNAL_NAME
        self._lock = _FileLock(self.dir / LOCK_NAME)
        self._seq = 0

    @classmethod
    def for_cache_dir(cls, cache_dir: str | os.PathLike[str]) -> "JobQueue":
        return cls(service_dir(cache_dir))

    # ------------------------------------------------------------------
    def _append(self, record: dict[str, Any]) -> None:
        """One record as one ``O_APPEND`` write (callers hold the lock)."""
        self.dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self.journal.open("a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def load(self) -> dict[str, QueueEntry]:
        """Replay the journal into per-entry state (last op wins)."""
        entries: dict[str, QueueEntry] = {}
        try:
            lines = self.journal.read_text(encoding="utf-8").splitlines()
        except OSError:
            return entries
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                continue  # torn tail line from a crashed writer
            self._apply(entries, record)
        return entries

    def _apply(self, entries: dict[str, QueueEntry],
               record: dict[str, Any]) -> None:
        op = record.get("op")
        spec = record.get("spec")
        if not spec:
            return
        if op == "submit":
            existing = entries.get(spec)
            if existing is not None and existing.state in (PENDING, RUNNING):
                return  # duplicate submission of a live entry: no-op
            entries[spec] = QueueEntry(
                spec=spec,
                label=record.get("label", spec[:12]),
                priority=int(record.get("priority", 0)),
                seq=int(record.get("seq", 0)),
                submitted=float(record.get("ts", 0.0)),
                client=int(record.get("client", 0)),
                code_version=record.get("code_version", ""),
                job_b64=record.get("job", ""),
                state=record.get("state", PENDING),
                seconds=record.get("seconds"),
                error=record.get("error"),
            )
            return
        entry = entries.get(spec)
        if entry is None:
            return  # op for an entry compacted away — ignore
        if op == "start":
            entry.state = RUNNING
            entry.pid = int(record.get("pid", 0))
            entry.starts += 1
        elif op == "done":
            entry.state = DONE
            entry.seconds = record.get("seconds")
        elif op == "fail":
            entry.state = FAILED
            entry.error = record.get("error")
        elif op == "cancel":
            if entry.state == PENDING:
                entry.state = CANCELLED
        elif op == "recover":
            if entry.state == RUNNING:
                entry.state = PENDING
                entry.pid = None

    # ------------------------------------------------------------------
    def _next_seq(self, entries: dict[str, QueueEntry]) -> int:
        top = max((entry.seq for entry in entries.values()), default=0)
        self._seq = max(self._seq, top) + 1
        return self._seq

    def submit(self, jobs: Iterable[Job], priority: int = 0,
               cache: ResultCache | None = None) -> dict[str, list[Job]]:
        """Enqueue the cold cells of ``jobs``; dedup against cache+queue.

        Returns a dict with the disposition of every (unique) job:
        ``cached`` (result already on disk), ``queued`` (already
        pending/running), ``enqueued`` (newly journaled).
        """
        unique = list(dict.fromkeys(jobs))
        out: dict[str, list[Job]] = {
            "cached": [], "queued": [], "enqueued": []}
        cold: list[Job] = []
        for job in unique:
            if cache is not None and not ResultCache.is_miss(cache.get(job)):
                out["cached"].append(job)
            else:
                cold.append(job)
        if not cold:
            return out
        version = code_version()
        with self._lock:
            entries = self.load()
            for job in cold:
                spec = job.spec_hash()
                existing = entries.get(spec)
                if existing is not None and existing.state in (PENDING,
                                                               RUNNING):
                    out["queued"].append(job)
                    continue
                record = {
                    "op": "submit",
                    "spec": spec,
                    "label": job.label(),
                    "priority": priority,
                    "seq": self._next_seq(entries),
                    "ts": time.time(),
                    "client": os.getpid(),
                    "code_version": version[:16],
                    "job": _encode_job(job),
                }
                self._append(record)
                self._apply(entries, record)
                out["enqueued"].append(job)
        return out

    def claim(self, limit: int, pid: int | None = None,
              specs: Iterable[str] | None = None) -> list[QueueEntry]:
        """Atomically move up to ``limit`` pending entries to running.

        Highest priority first, FIFO within a priority.  ``specs``
        restricts claiming to a subset (the client fallback claims only
        its own submissions).
        """
        pid = os.getpid() if pid is None else pid
        wanted = None if specs is None else set(specs)
        claimed: list[QueueEntry] = []
        with self._lock:
            entries = self.load()
            pending = [entry for entry in entries.values()
                       if entry.state == PENDING
                       and (wanted is None or entry.spec in wanted)]
            pending.sort(key=lambda entry: (-entry.priority, entry.seq))
            for entry in pending[:limit]:
                self._append({"op": "start", "spec": entry.spec,
                              "pid": pid, "ts": time.time()})
                entry.state = RUNNING
                entry.pid = pid
                claimed.append(entry)
        return claimed

    def mark_done(self, spec: str, seconds: float) -> None:
        with self._lock:
            self._append({"op": "done", "spec": spec,
                          "seconds": round(seconds, 3), "ts": time.time()})

    def mark_failed(self, spec: str, error: str) -> None:
        with self._lock:
            self._append({"op": "fail", "spec": spec, "error": error[:500],
                          "ts": time.time()})

    def release(self, specs: Iterable[str]) -> None:
        """Running → pending for entries this executor cannot finish."""
        with self._lock:
            entries = self.load()
            for spec in specs:
                entry = entries.get(spec)
                if entry is not None and entry.state == RUNNING:
                    self._append({"op": "recover", "spec": spec,
                                  "ts": time.time()})

    def cancel(self, spec_prefixes: Iterable[str] | None = None,
               all_pending: bool = False) -> list[QueueEntry]:
        """Cancel pending entries by spec-hash prefix (or all of them)."""
        prefixes = tuple(spec_prefixes or ())
        cancelled: list[QueueEntry] = []
        with self._lock:
            entries = self.load()
            for entry in entries.values():
                if entry.state != PENDING:
                    continue
                if all_pending or any(entry.spec.startswith(p)
                                      for p in prefixes):
                    self._append({"op": "cancel", "spec": entry.spec,
                                  "ts": time.time()})
                    entry.state = CANCELLED
                    cancelled.append(entry)
        return cancelled

    # ------------------------------------------------------------------
    def recover(self) -> list[QueueEntry]:
        """Revert running entries whose executor pid is dead to pending.

        The daemon-restart path: a SIGKILLed daemon leaves its claimed
        entries ``running``; replaying the journal alone would park them
        forever.  Entries running under a *live* pid (another daemon, a
        client fallback) are left alone.
        """
        recovered: list[QueueEntry] = []
        with self._lock:
            entries = self.load()
            for entry in entries.values():
                if entry.state == RUNNING and not pid_alive(entry.pid or -1):
                    self._append({"op": "recover", "spec": entry.spec,
                                  "ts": time.time()})
                    entry.state = PENDING
                    entry.pid = None
                    recovered.append(entry)
        return recovered

    def compact(self, threshold: int = COMPACT_THRESHOLD) -> bool:
        """Rewrite the journal as one submit line per entry.

        Runs under the lock, writes a temp file and ``os.replace``s it,
        so readers never observe a torn journal.  Entry state is folded
        into the submit line (``state`` field), which :meth:`_apply`
        honours on replay.
        """
        with self._lock:
            try:
                lines = self.journal.read_text(
                    encoding="utf-8").splitlines()
            except OSError:
                return False
            if len(lines) <= threshold:
                return False
            entries = self.load()
            tmp = self.journal.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("w", encoding="utf-8") as fh:
                for entry in sorted(entries.values(),
                                    key=lambda e: e.seq):
                    fh.write(json.dumps({
                        "op": "submit",
                        "spec": entry.spec,
                        "label": entry.label,
                        "priority": entry.priority,
                        "seq": entry.seq,
                        "ts": entry.submitted,
                        "client": entry.client,
                        "code_version": entry.code_version,
                        "job": entry.job_b64,
                        "state": entry.state,
                        "seconds": entry.seconds,
                        "error": entry.error,
                    }, separators=(",", ":")) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.journal)
        return True

    # ------------------------------------------------------------------
    def counts(self, entries: dict[str, QueueEntry] | None = None
               ) -> dict[str, int]:
        entries = self.load() if entries is None else entries
        out = {state: 0 for state in STATES}
        for entry in entries.values():
            out[entry.state] += 1
        return out

    def depth(self, entries: dict[str, QueueEntry] | None = None) -> int:
        """Live entries (pending + running)."""
        counts = self.counts(entries)
        return counts[PENDING] + counts[RUNNING]

    def position(self, spec: str,
                 entries: dict[str, QueueEntry] | None = None) -> int | None:
        """1-based rank of ``spec`` in the pending order, or ``None``."""
        entries = self.load() if entries is None else entries
        entry = entries.get(spec)
        if entry is None or entry.state != PENDING:
            return None
        pending = sorted((e for e in entries.values()
                          if e.state == PENDING),
                         key=lambda e: (-e.priority, e.seq))
        return 1 + [e.spec for e in pending].index(spec)
