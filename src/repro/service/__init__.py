"""Always-on experiment service: queue, daemon, clients, reporter.

The runtime engine (:mod:`repro.runtime`) executes one batch and exits;
this package makes the batch pipeline a *service* (ROADMAP item 1,
modelled on FuzzBench's scheduler → measurer → reporter split):

* :mod:`repro.service.queue` — a persistent job queue journaled as
  append-only JSONL under the cache directory.  Entries carry priority
  and move through pending → running → done/failed; identity is the
  job's spec hash, so submissions dedupe against both the queue and
  the spec-hash × code-version result cache.
* :mod:`repro.service.daemon` — the long-lived ``repro serve`` process:
  recovers the journal on start (running entries of dead pids revert to
  pending), drains the queue through the existing ProcessPool engine,
  emits obs spans/instants for every state transition, and drains
  in-flight jobs on SIGTERM instead of dying mid-batch.
* :mod:`repro.service.client` — ``repro submit`` / ``status`` /
  ``cancel`` plus :class:`~repro.service.client.ServiceEngine`, the
  drop-in engine that makes ``repro sweep`` a thin submit-and-wait
  client when a daemon is alive and an in-process fallback (journaled,
  byte-identical output) when none is.
* :mod:`repro.service.reporter` — incremental report regeneration: a
  manifest of which (spec hash, result digest) cells feed each
  EXPERIMENTS.md section, so only tables whose cells changed are
  re-rendered while the assembled document stays byte-identical to a
  full rebuild.
* :mod:`repro.service.http` — a stdlib HTTP endpoint on the daemon
  serving queue status, the obs dashboard (scorecards + BENCH
  trajectories) and the incrementally regenerated report.

Nothing here is imported by the simulation layers; the service wraps
the runtime, it does not change what a job computes.
"""

from repro.service.queue import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    JobQueue,
    QueueEntry,
    daemon_alive,
    read_daemon_meta,
    service_dir,
)

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JobQueue",
    "PENDING",
    "QueueEntry",
    "RUNNING",
    "daemon_alive",
    "read_daemon_meta",
    "service_dir",
]
