"""Incremental report regeneration.

A full report pass renders fourteen sections; between two passes almost
nothing changes — the cache satisfies every cell and every table comes
out identical.  This module makes that observation structural (the
FuzzBench measurer→reporter pattern): a **manifest** under
``<cache_dir>/service/report/`` records, per section, the *signature* of
the cells that feed it — ``sha256`` over the ordered ``(spec hash,
result-pickle digest)`` pairs of the section's job grid.  On the next
pass a section whose signature is unchanged is served from its stored
form without unpickling a single result; only sections whose cells
changed (new code version, changed scale, evicted entry) are re-rendered.

What is stored per section is the **cell model**, not rendered strings:
``sections/<slug>.json`` holds each table's
:meth:`~repro.stats.tables.Table.payload` — values, per-seed samples,
confidence intervals, significance verdicts — and the manifest records
a digest over that model.  Text is produced on demand through the one
shared renderer (:meth:`Table.render`), so the reporter, the HTTP
endpoint (``/tables`` serves the models directly) and a live
``tables()`` call can never disagree on formatting.

Parity is structural, not asserted: the assembled document goes through
:func:`repro.service.assemble.build` — the same code path as
``tools/build_experiments_md.py`` — and the raw text reproduces the
``generate()`` section format, so a fully-incremental pass and a full
rebuild emit byte-identical documents (the timing separator lines are
stripped by the assembler).  A pass restricted with ``--only`` updates
its selected sections and merges every other section's stored model
into the written document, so a partial refresh never degrades
EXPERIMENTS.md to placeholders.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.report import MODULES, _select, _tables
from repro.runtime.cache import ResultCache
from repro.runtime.engine import Engine
from repro.runtime.job import Job
from repro.runtime.sweep import Sweep
from repro.service import assemble
from repro.service.queue import service_dir
from repro.sim.runner import Scale
from repro.stats.tables import Table

REPORT_SUBDIR = "report"
MANIFEST_NAME = "manifest.json"


def _slug(name: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")


def _model_json(payloads: list[dict[str, Any]]) -> str:
    """Canonical JSON of a section's table payloads."""
    return json.dumps(payloads, indent=1, sort_keys=True)


def _model_digest(payloads: list[dict[str, Any]]) -> str:
    canonical = json.dumps(payloads, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _render_section(payloads: list[dict[str, Any]]) -> str:
    """A stored cell model back to ``generate()``-format section text."""
    rendered: list[str] = []
    for payload in payloads:
        rendered.append(Table.from_payload(payload).render())
        rendered.append("")
    return "\n".join(rendered) + "\n" if rendered else ""


def section_signature(jobs: list[Job], cache: ResultCache) -> str | None:
    """Signature of a section's feeding cells, or ``None`` on any miss."""
    digest = hashlib.sha256()
    for job in jobs:
        cell = cache.digest(job)
        if cell is None:
            return None
        digest.update(job.spec_hash().encode())
        digest.update(b":")
        digest.update(cell.encode())
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class ReportUpdate:
    """Outcome of one incremental pass.

    ``raw`` covers the *selected* sections (the parity contract with a
    full ``generate()`` pass over the same selection); ``sections``
    maps each selected section's name to its rendered text so
    :meth:`IncrementalReporter.write_outputs` can merge unselected
    sections' stored models into the published document.
    """

    raw: str
    rebuilt: list[str] = field(default_factory=list)
    reused: list[str] = field(default_factory=list)
    executed: int = 0
    sections: dict[str, str] = field(default_factory=dict)

    def summary(self) -> str:
        return (f"{len(self.rebuilt)} section(s) rebuilt, "
                f"{len(self.reused)} reused, "
                f"{self.executed} cold cell(s) executed")


class IncrementalReporter:
    """Regenerates only the report sections whose cells changed.

    State layout under ``<cache_dir>/service/report/``::

        manifest.json       {section: {signature, model_digest, file,
                                       title, seconds}}
        sections/<slug>.json  the section's cell model (table payloads)
        experiments_raw.txt  last assembled raw report text
        EXPERIMENTS.md       last assembled document
    """

    def __init__(self, cache: ResultCache) -> None:
        self.cache = cache
        self.root = service_dir(cache.root) / REPORT_SUBDIR
        self.sections_dir = self.root / "sections"
        self.manifest_path = self.root / MANIFEST_NAME

    # ------------------------------------------------------------------
    def _load_manifest(self) -> dict[str, Any]:
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return {}

    def _save_manifest(self, manifest: dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True))
        tmp.replace(self.manifest_path)

    # ------------------------------------------------------------------
    def update(self, scale: Scale, engine: Engine,
               only: list[str] | None = None) -> ReportUpdate:
        """One incremental pass over the selected sections.

        Cold cells (anything the cache cannot digest) are executed
        through ``engine`` first — a first run degenerates to a full
        report pass, a warm rerun touches nothing but file hashes.
        """
        selected = _select(only)
        grids = {name: list(dict.fromkeys(module.jobs(scale)))
                 for name, module in selected}
        cold = [job
                for jobs in grids.values()
                for job in jobs
                if self.cache.digest(job) is None]
        executed = 0
        if cold:
            sweep = Sweep.build("report", cold)
            engine.run_jobs(sweep)
            executed = engine.last_report.executed

        manifest = self._load_manifest()
        update = ReportUpdate(raw="", executed=executed)
        raw_parts: list[str] = []
        for name, module in selected:
            jobs = grids[name]
            signature = section_signature(jobs, self.cache)
            slug = _slug(name)
            entry = manifest.get(slug)
            section_file = self.sections_dir / f"{slug}.json"
            text: str | None = None
            model_digest = None
            if (entry is not None and signature is not None
                    and entry.get("signature") == signature):
                payloads = self._load_section(slug)
                if payloads is not None:
                    text = _render_section(payloads)
                    model_digest = entry.get("model_digest")
            if text is not None:
                update.reused.append(name)
                seconds = float(entry.get("seconds", 0.0))
            else:
                started = time.time()
                results = {job: self.cache.get(job) for job in jobs}
                payloads = [table.payload()
                            for table in _tables(module.tables(results,
                                                               scale))]
                text = _render_section(payloads)
                model_digest = _model_digest(payloads)
                seconds = time.time() - started
                self.sections_dir.mkdir(parents=True, exist_ok=True)
                tmp = section_file.with_suffix(".tmp")
                tmp.write_text(_model_json(payloads))
                tmp.replace(section_file)
                update.rebuilt.append(name)
            manifest[slug] = {
                "title": name,
                "signature": signature,
                "model_digest": model_digest,
                "file": f"sections/{slug}.json",
                "seconds": round(seconds, 3),
            }
            update.sections[name] = text
            raw_parts.append(text)
            raw_parts.append(f"[{name}: {seconds:.0f}s]\n\n")
        self._save_manifest(manifest)
        update.raw = "".join(raw_parts)
        return update

    def _load_section(self, slug: str) -> list[dict[str, Any]] | None:
        """The stored cell model of one section, or ``None``."""
        try:
            payloads = json.loads(
                (self.sections_dir / f"{slug}.json").read_text())
        except (OSError, ValueError):
            return None
        return payloads if isinstance(payloads, list) else None

    # ------------------------------------------------------------------
    def document_raw(self, update: ReportUpdate) -> str:
        """The full-document raw text for ``update``: selected sections
        from the pass itself, every other section from its stored cell
        model — so a ``--only`` refresh never publishes a document with
        placeholder sections."""
        manifest = self._load_manifest()
        parts: list[str] = []
        for name, _module in MODULES:
            slug = _slug(name)
            if name in update.sections:
                text = update.sections[name]
                seconds = float(manifest.get(slug, {}).get("seconds", 0.0))
            else:
                payloads = self._load_section(slug)
                if payloads is None:
                    continue  # never built; assemble() reports it missing
                text = _render_section(payloads)
                seconds = float(manifest.get(slug, {}).get("seconds", 0.0))
            parts.append(text)
            parts.append(f"[{name}: {seconds:.0f}s]\n\n")
        if not parts:
            return update.raw
        return "".join(parts)

    def write_outputs(self, update: ReportUpdate,
                      markdown_path: str | Path | None = None) -> Path:
        """Persist the raw text and the assembled document.

        Returns the path of the written markdown (default: the state
        directory's own copy; pass ``markdown_path`` to update the
        repository's EXPERIMENTS.md).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        raw = self.document_raw(update)
        (self.root / "experiments_raw.txt").write_text(raw)
        built = assemble.build(raw)
        target = Path(markdown_path) if markdown_path is not None \
            else self.root / "EXPERIMENTS.md"
        target.write_text(built)
        return target

    def full_raw_equivalent(self, scale: Scale,
                            only: list[str] | None = None) -> str:
        """The raw text a non-incremental pass over the same cached
        cells would produce, with zeroed timings (test/parity helper)."""
        selected = _select(only)
        parts: list[str] = []
        for name, module in selected:
            jobs = list(dict.fromkeys(module.jobs(scale)))
            results = {job: self.cache.get(job) for job in jobs}
            for table in _tables(module.tables(results, scale)):
                parts.append(table.render())
                parts.append("")
            parts.append(f"[{name}: 0s]")
            parts.append("")
        return "\n".join(parts) + "\n" if parts else ""


__all__ = [
    "IncrementalReporter",
    "MODULES",
    "ReportUpdate",
    "section_signature",
]
