"""Client side of the experiment service.

:class:`ServiceEngine` is a drop-in :class:`~repro.runtime.engine.Engine`
whose execution seam routes cold cells through the persistent queue:

* **daemon alive** → submit-and-wait: the cells are journaled, the
  ``repro serve`` process executes them, and this client streams
  completions (with queue depth/position on the ``--progress`` line)
  while reading results from the shared spec-hash × code-version cache.
* **no daemon** → in-process fallback: the cells are journaled, claimed
  by this pid and executed through the inherited inline/pool machinery
  — the journal gains a persistent record, stdout stays byte-identical
  to the plain engine, and a *concurrent* client that already claimed a
  cell is waited on instead of recomputed.
* **no cache** (``--no-cache``) → the service layer disables itself and
  the engine behaves exactly like the historical one-shot
  :class:`Engine` (the queue's result channel *is* the cache).

Everything above the seam — dedup, cache probes, report accounting, the
obs lifecycle — is inherited unchanged, which is what makes ``repro
sweep`` a thin client: same tables, same summary counters, whichever
path ran the jobs.
"""

from __future__ import annotations

import time
from typing import Any

from repro.runtime.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runtime.engine import Engine, JobExecutionError
from repro.runtime.job import Job
from repro.runtime.progress import JobRecord, SweepReport
from repro.service.queue import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    JobQueue,
    daemon_alive,
    pid_alive,
)

#: Seconds between journal polls while waiting on a daemon.
DEFAULT_POLL_INTERVAL = 0.2


class ServiceEngine(Engine):
    """An engine whose cold cells go through the persistent job queue.

    ``priority``      journal priority for cells this client enqueues.
    ``poll_interval`` journal poll cadence while waiting on a daemon.
    ``no_service``    force the plain in-process path (no journaling).
    ``wait_timeout``  give up waiting on remote cells after this many
                      seconds (``None`` — the default — waits forever;
                      tests use it to fail fast).
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 progress: bool = False, obs: bool = False,
                 obs_dir: str | None = None, priority: int = 0,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 no_service: bool = False,
                 wait_timeout: float | None = None) -> None:
        super().__init__(jobs=jobs, cache=cache, progress=progress,
                         obs=obs, obs_dir=obs_dir)
        self.priority = priority
        self.poll_interval = poll_interval
        self.wait_timeout = wait_timeout
        self.queue: JobQueue | None = None
        if cache is not None and not no_service:
            self.queue = JobQueue.for_cache_dir(cache.root)

    @classmethod
    def from_options(cls, jobs: int = 1,
                     cache_dir: str | None = DEFAULT_CACHE_DIR,
                     no_cache: bool = False, progress: bool = False,
                     obs: bool = False, obs_dir: str | None = None,
                     priority: int = 0, no_service: bool = False,
                     poll_interval: float = DEFAULT_POLL_INTERVAL,
                     wait_timeout: float | None = None) -> "ServiceEngine":
        base = Engine.from_options(jobs=jobs, cache_dir=cache_dir,
                                   no_cache=no_cache, progress=progress,
                                   obs=obs, obs_dir=obs_dir)
        return cls(jobs=base.jobs, cache=base.cache, progress=base.progress,
                   obs=base.obs, obs_dir=base.obs_dir, priority=priority,
                   poll_interval=poll_interval, no_service=no_service,
                   wait_timeout=wait_timeout)

    # ------------------------------------------------------------------
    def _execute_cold(self, pending: list[Job], recorder, *,
                      results: dict[Job, Any], report: SweepReport,
                      printer) -> None:
        if self.queue is None:
            super()._execute_cold(pending, recorder, results=results,
                                  report=report, printer=printer)
            return
        self.queue.submit(pending, priority=self.priority)
        specs = {job.spec_hash(): job for job in pending}
        if daemon_alive(self.queue.dir):
            self._wait_for(specs, recorder, results=results,
                           report=report, printer=printer)
            return
        # In-process fallback: claim whatever is claimable (our fresh
        # submissions plus any orphaned pending entries of the same
        # cells) and execute through the inherited machinery; cells a
        # live concurrent executor holds are waited on, not recomputed.
        claimed = self.queue.claim(limit=len(specs), specs=specs)
        if claimed:
            self._execute_claimed([entry.spec for entry in claimed],
                                  specs, recorder, results=results,
                                  report=report, printer=printer)
        remaining = {spec: job for spec, job in specs.items()
                     if job not in results}
        if remaining:
            self._wait_for(remaining, recorder, results=results,
                           report=report, printer=printer)

    # ------------------------------------------------------------------
    def _execute_claimed(self, claimed_specs: list[str],
                         specs: dict[str, Job], recorder, *,
                         results: dict[Job, Any], report: SweepReport,
                         printer) -> None:
        """Run claimed entries locally; journal every outcome."""
        assert self.queue is not None
        jobs = [specs[spec] for spec in claimed_specs]
        before = len(report.records)
        try:
            super()._execute_cold(jobs, recorder, results=results,
                                  report=report, printer=printer)
        except BaseException as error:
            finished = {record.job.spec_hash(): record
                        for record in report.records[before:]}
            failed_spec = (error.job.spec_hash()
                           if isinstance(error, JobExecutionError) else
                           claimed_specs[0] if len(claimed_specs) == 1
                           else None)
            for spec in claimed_specs:
                record = finished.get(spec)
                if record is not None:
                    self.queue.mark_done(spec, record.seconds)
                elif spec == failed_spec:
                    cause = (error.cause if isinstance(
                        error, JobExecutionError) else error)
                    self.queue.mark_failed(
                        spec, f"{cause.__class__.__name__}: {cause}")
            self.queue.release(
                spec for spec in claimed_specs
                if spec not in finished and spec != failed_spec)
            raise
        for record in report.records[before:]:
            self.queue.mark_done(record.job.spec_hash(), record.seconds)

    # ------------------------------------------------------------------
    def _wait_for(self, waiting: dict[str, Job], recorder, *,
                  results: dict[Job, Any], report: SweepReport,
                  printer) -> None:
        """Poll the journal until every awaited cell reaches a terminal
        state; stream completions through the progress printer.

        If the daemon dies mid-wait (stale heartbeat), claimable cells
        are taken over and executed locally — a sweep never hangs on a
        crashed daemon.
        """
        assert self.queue is not None and self.cache is not None
        waiting = dict(waiting)
        deadline = (None if self.wait_timeout is None
                    else time.monotonic() + self.wait_timeout)
        while waiting:
            entries = self.queue.load()
            alive = daemon_alive(self.queue.dir)
            if hasattr(printer, "set_queue"):
                position = min(
                    (rank for rank in (self.queue.position(spec, entries)
                                       for spec in waiting)
                     if rank is not None), default=None)
                printer.set_queue(self.queue.depth(entries), position)
            claimable: list[str] = []
            for spec in list(waiting):
                job = waiting[spec]
                entry = entries.get(spec)
                if entry is None:
                    claimable.append(spec)  # vanished (compaction race)
                    continue
                if entry.state == DONE:
                    value = self.cache.get(job)
                    if ResultCache.is_miss(value):
                        # Done under another code version, or evicted:
                        # the cell is cold again for *this* client.
                        claimable.append(spec)
                        continue
                    self._finish_remote(job, value,
                                        entry.seconds or 0.0,
                                        recorder, results=results,
                                        report=report, printer=printer)
                    del waiting[spec]
                elif entry.state == FAILED:
                    raise JobExecutionError(
                        job, RuntimeError(entry.error or "remote failure"))
                elif entry.state == CANCELLED:
                    raise JobExecutionError(
                        job, RuntimeError("cancelled in the queue"))
                elif entry.state == PENDING and not alive:
                    claimable.append(spec)
                elif (entry.state == RUNNING and not alive
                      and not pid_alive(entry.pid or -1)):
                    self.queue.release([spec])
                    claimable.append(spec)
            if claimable and not alive:
                resubmit = [waiting[spec] for spec in claimable
                            if spec in waiting]
                self.queue.submit(resubmit, priority=self.priority)
                claimed = self.queue.claim(limit=len(claimable),
                                           specs=claimable)
                if claimed:
                    subset = {entry.spec: waiting[entry.spec]
                              for entry in claimed}
                    self._execute_claimed(list(subset), subset, recorder,
                                          results=results, report=report,
                                          printer=printer)
                    for spec in subset:
                        waiting.pop(spec, None)
                continue
            if not waiting:
                break
            if deadline is not None and time.monotonic() > deadline:
                stuck = ", ".join(job.label() for job in waiting.values())
                raise TimeoutError(
                    f"gave up waiting on the service for: {stuck}")
            time.sleep(self.poll_interval)

    def _finish_remote(self, job: Job, value: Any, seconds: float,
                       recorder, *, results: dict[Job, Any],
                       report: SweepReport, printer) -> None:
        """Account one remotely executed cell (result read from cache)."""
        results[job] = value
        record = JobRecord(job=job, seconds=seconds, cached=False)
        report.records.append(record)
        printer.job_done(record)
        if recorder is not None:
            recorder.instant("job_remote", "service", job=job.label(),
                             spec=job.spec_hash()[:12],
                             seconds=round(seconds, 3))
