"""The long-lived executor: ``repro serve``.

One daemon per cache directory.  On start it recovers the journal
(running entries whose executor pid died revert to pending), compacts an
oversized journal, publishes a heartbeat (``daemon.json``, re-written
every few seconds from a background thread) and then drains the queue in
batches through the ordinary :class:`~repro.runtime.engine.Engine` —
the same dedup/cache/pool machinery a one-shot sweep uses, so a result
computed by the daemon is bit-identical to one computed inline.

Lifecycle:

* **SIGTERM / SIGINT** — graceful drain: the in-flight batch finishes
  and is journaled ``done``, the heartbeat file is removed, remaining
  pending entries stay journaled for the next daemon.
* **SIGKILL / crash** — the heartbeat goes stale, clients fall back to
  in-process execution, and the next ``repro serve`` recovers the
  orphaned running entries from the journal without recomputing
  anything already cached.
* a failing job marks only its own entry ``failed``; the rest of the
  claimed batch is released back to pending and the daemon keeps
  serving.

Every state transition is observable: with ``--obs`` (or ``REPRO_OBS=1``)
the daemon opens a ``serve-*.jsonl`` run log and emits a span per batch
plus instants for claim/done/fail/recover and a queue-depth counter.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from typing import Any

from repro.runtime.cache import ResultCache
from repro.runtime.engine import Engine, JobExecutionError
from repro.service.queue import (
    COMPACT_THRESHOLD,
    JobQueue,
    clear_daemon_meta,
    daemon_alive,
    read_daemon_meta,
    write_daemon_meta,
)

#: Seconds between heartbeat re-publications (must be well under
#: :data:`repro.service.queue.HEARTBEAT_STALENESS`).
HEARTBEAT_INTERVAL = 5.0

#: Default seconds between queue polls when idle.
DEFAULT_POLL_INTERVAL = 0.5


class Daemon:
    """Drains one cache directory's job queue until stopped.

    ``jobs``          worker processes per batch (the engine's pool).
    ``poll_interval`` queue poll cadence while idle.
    ``once``          exit as soon as the queue has no claimable work
                      (CI and tests; implies no idle waiting).
    ``idle_exit``     exit after this many seconds without work
                      (``None`` serves forever).
    ``http_port``     serve the status/dashboard endpoint on this port
                      (``None`` disables it; ``0`` picks a free port).
    """

    def __init__(self, cache_dir: str, jobs: int = 1,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 once: bool = False, idle_exit: float | None = None,
                 http_port: int | None = None, obs: bool = False,
                 obs_dir: str | None = None) -> None:
        self.cache = ResultCache(cache_dir)
        self.queue = JobQueue.for_cache_dir(cache_dir)
        self.jobs = jobs
        self.poll_interval = poll_interval
        self.once = once
        self.idle_exit = idle_exit
        self.http_port = http_port
        self.obs = obs
        self.obs_dir = obs_dir
        self.engine = Engine(jobs=jobs, cache=self.cache, progress=False)
        self.stop_event = threading.Event()
        self.batches = 0
        self.completed = 0
        self.failed = 0
        self._recorder = None
        self._http_server = None
        self._heartbeat_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        print(f"[serve] {message}", file=sys.stderr, flush=True)

    def _heartbeat_extra(self) -> dict[str, Any]:
        extra: dict[str, Any] = {"jobs": self.jobs,
                                 "batches": self.batches,
                                 "completed": self.completed,
                                 "failed": self.failed}
        if self._http_server is not None:
            extra["http_port"] = self._http_server.server_address[1]
        return extra

    def _beat(self) -> None:
        write_daemon_meta(self.queue.dir, **self._heartbeat_extra())

    def _heartbeat_loop(self) -> None:
        while not self.stop_event.wait(HEARTBEAT_INTERVAL):
            self._beat()

    def request_stop(self, *_signal_args: Any) -> None:
        """Signal-safe stop request: finish the in-flight batch, exit."""
        self.stop_event.set()

    # ------------------------------------------------------------------
    def _open_obs(self) -> None:
        if not self.obs:
            from repro.obs.events import env_enabled

            self.obs = env_enabled()
        if not self.obs:
            return
        from repro.obs import events as obs_events
        from repro.runtime.cache import OBS_SUBDIR

        directory = self.obs_dir or str(self.cache.root / OBS_SUBDIR)
        self._recorder = obs_events.open_run_log(
            directory, prefix="serve",
            meta={"jobs": self.jobs, "cache_dir": str(self.cache.root)})
        self._recorder.begin("serve", "daemon", workers=self.jobs)
        self._log(f"[obs] recording to {self._recorder.path}")

    def _obs_instant(self, name: str, **args: Any) -> None:
        if self._recorder is not None:
            self._recorder.instant(name, "daemon", **args)

    def _obs_depth(self) -> None:
        if self._recorder is not None:
            counts = self.queue.counts()
            self._recorder.counter("queue", "daemon",
                                   pending=counts["pending"],
                                   running=counts["running"])

    # ------------------------------------------------------------------
    def _serve_batch(self) -> bool:
        """Claim and execute one batch; True when work was done."""
        claimed = self.queue.claim(limit=self.jobs)
        if not claimed:
            return False
        self.batches += 1
        jobs = [entry.job() for entry in claimed]
        for entry in claimed:
            self._obs_instant("job_claimed", job=entry.label,
                              spec=entry.spec[:12], priority=entry.priority)
        self._obs_depth()
        span_recorder = self._recorder
        if span_recorder is not None:
            span_recorder.begin("batch", "daemon", jobs=len(jobs))
        try:
            self.engine.run_jobs(jobs)
        except BaseException as error:
            self._journal_partial_batch(claimed, error)
            if span_recorder is not None:
                span_recorder.end("batch", error=True)
            if isinstance(error, JobExecutionError):
                self.failed += 1
                self._log(f"job failed: {error}")
                return True
            raise
        by_spec = {record.job.spec_hash(): record
                   for record in self.engine.last_report.records}
        for entry in claimed:
            record = by_spec.get(entry.spec)
            seconds = record.seconds if record is not None else 0.0
            self.queue.mark_done(entry.spec, seconds)
            self.completed += 1
            self._obs_instant("job_done", job=entry.label,
                              spec=entry.spec[:12],
                              seconds=round(seconds, 3))
        if span_recorder is not None:
            span_recorder.end("batch", jobs=len(jobs))
        self._obs_depth()
        self._beat()
        return True

    def _journal_partial_batch(self, claimed, error: BaseException) -> None:
        """After a failed batch: done for the finished cells, fail for
        the culprit, release the rest back to pending."""
        finished = {record.job.spec_hash(): record
                    for record in self.engine.last_report.records
                    if not record.cached}
        failed_spec = (error.job.spec_hash()
                       if isinstance(error, JobExecutionError) else None)
        for entry in claimed:
            record = finished.get(entry.spec)
            if record is not None:
                self.queue.mark_done(entry.spec, record.seconds)
                self.completed += 1
            elif entry.spec == failed_spec:
                cause = error.cause if isinstance(
                    error, JobExecutionError) else error
                self.queue.mark_failed(
                    entry.spec, f"{cause.__class__.__name__}: {cause}")
                self._obs_instant("job_failed", job=entry.label,
                                  spec=entry.spec[:12],
                                  error=str(cause)[:200])
        self.queue.release(entry.spec for entry in claimed
                           if entry.spec not in finished
                           and entry.spec != failed_spec)

    # ------------------------------------------------------------------
    def serve(self) -> int:
        """Run the daemon loop; returns a process exit code."""
        if daemon_alive(self.queue.dir):
            meta = read_daemon_meta(self.queue.dir) or {}
            self._log(f"another daemon (pid {meta.get('pid')}) already "
                      f"serves {self.queue.dir}")
            return 1
        recovered = self.queue.recover()
        for entry in recovered:
            self._obs_instant("job_recovered", job=entry.label,
                              spec=entry.spec[:12])
        if recovered:
            self._log(f"recovered {len(recovered)} orphaned running "
                      f"entr{'y' if len(recovered) == 1 else 'ies'}")
        self.queue.compact(COMPACT_THRESHOLD)
        self._open_obs()
        if self.http_port is not None:
            from repro.service.http import start_http_server

            self._http_server = start_http_server(
                self.http_port, cache_dir=str(self.cache.root),
                queue=self.queue)
            self._log("http endpoint on port "
                      f"{self._http_server.server_address[1]}")
        self._beat()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-serve-heartbeat",
            daemon=True)
        self._heartbeat_thread.start()
        previous = {signal.SIGTERM: signal.signal(signal.SIGTERM,
                                                  self.request_stop),
                    signal.SIGINT: signal.signal(signal.SIGINT,
                                                 self.request_stop)}
        self._log(f"serving {self.queue.dir} "
                  f"(pid {read_daemon_meta(self.queue.dir)['pid']}, "
                  f"workers={self.jobs})")
        idle_since = time.monotonic()
        try:
            while not self.stop_event.is_set():
                worked = self._serve_batch()
                if worked:
                    idle_since = time.monotonic()
                    continue
                if self.once:
                    break
                if (self.idle_exit is not None
                        and time.monotonic() - idle_since > self.idle_exit):
                    self._log(f"idle for {self.idle_exit:.0f}s, exiting")
                    break
                self.stop_event.wait(self.poll_interval)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            if self._http_server is not None:
                self._http_server.shutdown()
            if self._recorder is not None:
                self._recorder.end("serve", batches=self.batches,
                                   completed=self.completed,
                                   failed=self.failed)
                self._recorder.close()
            clear_daemon_meta(self.queue.dir)
            self._log(f"stopped after {self.batches} batches "
                      f"({self.completed} done, {self.failed} failed)")
        return 0


def serve(cache_dir: str, **kwargs: Any) -> int:
    """Convenience wrapper used by the CLI."""
    return Daemon(cache_dir, **kwargs).serve()
