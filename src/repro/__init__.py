"""Reproduction of *Prefetched Address Translation* (ASAP), MICRO-52 2019.

ASAP hides page-walk latency by prefetching the deep levels of the radix
page table on every TLB miss, enabled by an OS layout that keeps each PT
level's nodes physically contiguous and sorted by virtual address.

Public API tour
---------------
* ``repro.core`` — the contribution: :class:`~repro.core.AsapConfig`
  ladders, range registers and the prefetch engine.
* ``repro.kernelsim`` — the simulated OS: buddy allocator, VMAs, demand
  paging, the ASAP PT layout, and nested virtualization.
* ``repro.pagetable`` / ``repro.tlb`` / ``repro.mem`` — the hardware
  substrate: radix tree, walkers, PWCs, TLBs and the cache hierarchy.
* ``repro.workloads`` — the Table 3 benchmark suite and the SMT co-runner.
* ``repro.sim`` — trace-driven simulators; ``run_native`` and
  ``run_virtualized`` are the one-call entry points, and
  ``repro.sim.multitenant`` consolidates N tenants onto one machine
  (``run_native_mt`` / ``run_virtualized_mt``).
* ``repro.traces`` — streaming traces: canonical chunked generation,
  the on-disk format behind ``repro trace``, and the chunk-iterator
  sources that carry 10M+-record runs through the simulators with
  memory bounded by chunk size.
* ``repro.runtime`` — parallel experiment runtime: hashable job specs,
  sweep engine, on-disk result cache and process fan-out.
* ``repro.experiments`` — one module per reproduced table/figure.

Paper cross-references: §2 background (radix walks, nested walks, PWCs),
§3 ASAP design (§3.1 range registers, §3.4 prefetcher, §3.7 PT layout),
§4 methodology (Table 3 workloads, Table 5 machine), §5 evaluation (the
``repro.experiments`` modules).  See docs/ARCHITECTURE.md for the layer
map and EXPERIMENTS.md for measured-vs-paper commentary.

Quickstart
----------
>>> from repro import run_native, P1_P2, BASELINE, Scale
>>> scale = Scale(trace_length=5000, warmup=1000)
>>> base = run_native("mc80", BASELINE, scale=scale)
>>> asap = run_native("mc80", P1_P2, scale=scale)
>>> asap.avg_walk_latency < base.avg_walk_latency
True
"""

from repro.core.config import (
    BASELINE,
    FULL_2D,
    LARGE_HOST,
    NATIVE_LADDER,
    P1,
    P1G,
    P1G_P1H,
    P1G_P2G,
    P1_P2,
    P1_P2_P3,
    VIRT_LADDER,
    AsapConfig,
)
from repro.params import DEFAULT_MACHINE, MachineParams
from repro.schemes import SchemeSpec
from repro.sim.multitenant import (
    MultiTenantSpec,
    run_native_mt,
    run_virtualized_mt,
)
from repro.sim.runner import Scale, run_native, run_virtualized
from repro.sim.stats import SimStats
from repro.traces import TraceRef, materialize_trace, open_trace
from repro.workloads.suite import WORKLOADS

__version__ = "1.0.0"


def example_scale(trace_length: int, warmup: int | None = None,
                  seed: int = 42) -> Scale:
    """The scale for ``examples/`` scripts, overridable for CI smoke.

    Examples pick trace lengths that make their effect visible in a few
    seconds; CI only needs them to *run*.  Setting the
    ``REPRO_EXAMPLE_TRACE`` environment variable replaces the trace
    length (warmup scales along) so the examples job finishes quickly
    without each script growing its own argument parsing.
    """
    import os

    override = int(os.environ.get("REPRO_EXAMPLE_TRACE", "0"))
    if override:
        trace_length = override
        warmup = None
    if warmup is None:
        warmup = trace_length // 5
    return Scale(trace_length=trace_length, warmup=warmup, seed=seed)

__all__ = [
    "AsapConfig",
    "BASELINE",
    "DEFAULT_MACHINE",
    "FULL_2D",
    "LARGE_HOST",
    "MachineParams",
    "MultiTenantSpec",
    "NATIVE_LADDER",
    "P1",
    "P1G",
    "P1G_P1H",
    "P1G_P2G",
    "P1_P2",
    "P1_P2_P3",
    "Scale",
    "SchemeSpec",
    "SimStats",
    "TraceRef",
    "VIRT_LADDER",
    "WORKLOADS",
    "__version__",
    "example_scale",
    "materialize_trace",
    "open_trace",
    "run_native",
    "run_native_mt",
    "run_virtualized",
    "run_virtualized_mt",
]
