"""TLB substrate: plain set-associative TLBs, the two-level hierarchy and
the Clustered TLB coalescing baseline (§5.4.1)."""

from repro.tlb.clustered import CLUSTER_PAGES, ClusteredTlb
from repro.tlb.hierarchy import TlbHierarchy
from repro.tlb.tlb import Tlb, TlbStats

__all__ = ["CLUSTER_PAGES", "ClusteredTlb", "Tlb", "TlbHierarchy", "TlbStats"]
