"""TLB substrate: plain set-associative TLBs, the two-level hierarchy and
the Clustered TLB coalescing baseline (§5.4.1).

Paper cross-references: Table 5 (64-entry L1 D-TLB, 1536-entry unified
L2 TLB), §4 (6-85% L2 TLB miss ratios motivating the study), §5.4.1 and
Figure 11/Table 7 (Clustered TLB composition with ASAP).
"""

from repro.tlb.clustered import CLUSTER_PAGES, ClusteredTlb
from repro.tlb.hierarchy import TlbHierarchy
from repro.tlb.tlb import Tlb, TlbStats

__all__ = ["CLUSTER_PAGES", "ClusteredTlb", "Tlb", "TlbHierarchy", "TlbStats"]
