"""Two-level TLB hierarchy: L1 D-TLB backed by the unified L2 S-TLB.

Page-size handling follows the usual simulator convention: a lookup probes
both the 4KB tag and the 2MB tag of the address (the page size is unknown
before the lookup, §2.5), and fills install at the granularity the walk
discovered.  Tags encode the size class in the low bit so both classes
share the set-associative structures.

Three variants are exposed through one class:

* the plain Table 5 configuration (64-entry L1, 1536-entry L2),
* ``clustered=True`` replaces the L2 S-TLB with the Clustered TLB of
  §5.4.1 (coalescing up to eight translations per entry),
* ``infinite=True`` never evicts, which reproduces the paper's
  libhugetlbfs trick of §5.3 (only cold misses remain) for Table 6.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.params import TlbHierarchyParams
from repro.pagetable.constants import LEVEL_BITS
from repro.tlb.clustered import ClusteredTlb
from repro.tlb.tlb import Tlb, TlbStats


def _small_tag(vpn: int) -> int:
    return vpn << 1

def _large_tag(vpn: int) -> int:
    return ((vpn >> LEVEL_BITS) << 1) | 1


class TlbHierarchy:
    """L1 + L2 TLBs with unified miss accounting (walk triggers)."""

    def __init__(
        self,
        params: TlbHierarchyParams | None = None,
        clustered: bool = False,
        infinite: bool = False,
    ) -> None:
        self.params = params or TlbHierarchyParams()
        self.clustered = clustered
        self.infinite = infinite
        self.l1 = Tlb(self.params.l1, name="L1-DTLB")
        self.l2_plain: Tlb | None = None
        self.l2_clustered: ClusteredTlb | None = None
        if clustered:
            self.l2_clustered = ClusteredTlb(self.params.l2, name="L2-STLB")
            # Large pages do not coalesce; they get a small private array.
            self._large_side = Tlb(self.params.l2, name="L2-large")
        else:
            self.l2_plain = Tlb(self.params.l2, name="L2-STLB")
        self._infinite_store: dict[int, int] = {}
        self.stats = TlbStats()
        self.l1_hits = 0
        self.l2_hits = 0
        #: Optional observer for small-page L2 S-TLB evictions,
        #: ``hook(vpn, frame)`` — translation schemes that recycle
        #: victims (e.g. Victima parking them in the data cache) attach
        #: here at bind time.  None costs one test per walk-path fill.
        self.l2_evict_hook: Callable[[int, int], None] | None = None

    # ------------------------------------------------------------------
    def lookup(self, vpn: int) -> int | None:
        """Probe the hierarchy for ``vpn``; None means a walk is required."""
        if self.infinite:
            frame = self._infinite_store.get(vpn)
            if frame is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self.l1_hits += 1
            return frame

        frame = self.l1.lookup(_small_tag(vpn))
        if frame is None:
            frame = self.l1.lookup(_large_tag(vpn))
        if frame is not None:
            self.stats.hits += 1
            self.l1_hits += 1
            return frame

        frame = self._l2_lookup(vpn)
        if frame is not None:
            self.stats.hits += 1
            self.l2_hits += 1
            # Refill the first level on an L2 hit (4KB refills only need the
            # small tag; a large hit refills the large tag).
            self.l1.fill(_small_tag(vpn), frame)
            return frame

        self.stats.misses += 1
        return None

    def _l2_lookup(self, vpn: int) -> int | None:
        if self.l2_clustered is not None:
            frame = self.l2_clustered.lookup(vpn)
            if frame is not None:
                return frame
            large = self._large_side.lookup(_large_tag(vpn))
            return large
        assert self.l2_plain is not None
        frame = self.l2_plain.lookup(_small_tag(vpn))
        if frame is None:
            frame = self.l2_plain.lookup(_large_tag(vpn))
        return frame

    # ------------------------------------------------------------------
    def fill(
        self,
        vpn: int,
        frame: int,
        large: bool = False,
        neighbour_frames: Sequence[int | None] | None = None,
    ) -> None:
        """Install a translation discovered by a completed page walk."""
        if self.infinite:
            self._infinite_store[vpn] = frame
            return
        if large:
            tag = _large_tag(vpn)
            self.l1.fill(tag, frame)
            if self.l2_clustered is not None:
                self._large_side.fill(tag, frame)
            else:
                assert self.l2_plain is not None
                self.l2_plain.fill(tag, frame)
            return
        self.l1.fill(_small_tag(vpn), frame)
        if self.l2_clustered is not None:
            self.l2_clustered.fill(vpn, frame, neighbour_frames)
        else:
            assert self.l2_plain is not None
            victim = self.l2_plain.fill(_small_tag(vpn), frame)
            if victim is not None and self.l2_evict_hook is not None \
                    and not (victim[0] & 1):
                self.l2_evict_hook(victim[0] >> 1, victim[1])

    # ------------------------------------------------------------------
    def flush(self) -> None:
        self.l1.flush()
        if self.l2_clustered is not None:
            self.l2_clustered.flush()
            self._large_side.flush()
        if self.l2_plain is not None:
            self.l2_plain.flush()
        self._infinite_store.clear()

    @property
    def walks_triggered(self) -> int:
        return self.stats.misses

    def mpki(self, accesses: int) -> float:
        """TLB misses (page walks) per thousand memory accesses."""
        if not accesses:
            return 0.0
        return 1000.0 * self.stats.misses / accesses

    def reset_stats(self) -> None:
        self.stats.reset()
        self.l1_hits = 0
        self.l2_hits = 0
        self.l1.stats.reset()
        if self.l2_plain is not None:
            self.l2_plain.stats.reset()
        if self.l2_clustered is not None:
            self.l2_clustered.stats.reset()
