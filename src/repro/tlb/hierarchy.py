"""Two-level TLB hierarchy: L1 D-TLB backed by the unified L2 S-TLB.

Page-size handling follows the usual simulator convention: a lookup probes
both the 4KB tag and the 2MB tag of the address (the page size is unknown
before the lookup, §2.5), and fills install at the granularity the walk
discovered.  Tags encode the size class in the low bit so both classes
share the set-associative structures.

Multi-tenant runs encode the address-space identifier the same way: the
simulators hand this hierarchy *biased* vpns (``vpn | asid_bias(asid)``,
see :data:`repro.tlb.tlb.ASID_SHIFT`), so the ASID lands in the high bits
of both the small and the large tag and translations of different tenants
coexist without ambiguity.  ASID 0 is the identity — single-tenant runs
pass raw vpns and pay nothing.

Three variants are exposed through one class:

* the plain Table 5 configuration (64-entry L1, 1536-entry L2),
* ``clustered=True`` replaces the L2 S-TLB with the Clustered TLB of
  §5.4.1 (coalescing up to eight translations per entry),
* ``infinite=True`` never evicts, which reproduces the paper's
  libhugetlbfs trick of §5.3 (only cold misses remain) for Table 6.

Hot-path note: ``lookup`` is a closure built per instance that probes the
L1 arrays (`repro.tlb.tlb` flat storage) inline — one call per trace
record, no dispatch into the per-structure methods on the L1 hit path.
The infinite store stays a plain dict: it is an unbounded exact map with
no replacement decisions, so there is nothing to preallocate.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.params import TlbHierarchyParams
from repro.pagetable.constants import LEVEL_BITS
from repro.tlb.clustered import ClusteredTlb
from repro.tlb.tlb import EMPTY, Tlb, TlbStats


# The size class rides in the low bit; an ASID bias (if any) rides in the
# high bits of ``vpn`` itself and therefore survives both encodings.
def _small_tag(vpn: int) -> int:
    return vpn << 1

def _large_tag(vpn: int) -> int:
    return ((vpn >> LEVEL_BITS) << 1) | 1


class TlbHierarchy:
    """L1 + L2 TLBs with unified miss accounting (walk triggers)."""

    def __init__(
        self,
        params: TlbHierarchyParams | None = None,
        clustered: bool = False,
        infinite: bool = False,
    ) -> None:
        self.params = params or TlbHierarchyParams()
        self.clustered = clustered
        self.infinite = infinite
        self.l1 = Tlb(self.params.l1, name="L1-DTLB")
        self.l2_plain: Tlb | None = None
        self.l2_clustered: ClusteredTlb | None = None
        if clustered:
            self.l2_clustered = ClusteredTlb(self.params.l2, name="L2-STLB")
            # Large pages do not coalesce; they get a small private array.
            self._large_side = Tlb(self.params.l2, name="L2-large")
        else:
            self.l2_plain = Tlb(self.params.l2, name="L2-STLB")
        self._infinite_store: dict[int, int] = {}
        self.stats = TlbStats()
        self.l1_hits = 0
        self.l2_hits = 0
        #: Optional observer for small-page L2 S-TLB evictions,
        #: ``hook(vpn, frame)`` — translation schemes that recycle
        #: victims (e.g. Victima parking them in the data cache) attach
        #: here at bind time.  None costs one test per walk-path fill.
        self.l2_evict_hook: Callable[[int, int], None] | None = None
        #: One-element cell read by the lookup closure: the simulators
        #: clear it when the (immutable, pre-populated) page table holds
        #: no 2MB mappings, so the large-tag probes — which can then
        #: never hit — are skipped.  Behaviour-neutral either way.
        self.probe_large: list[bool] = [True]
        #: Inlined hot-path probe (closure; see module docstring).
        self.lookup: Callable[[int], int | None] = self._build_lookup()
        #: Inlined fill for the simulators' post-miss fills (closure).
        self.fill_fast: Callable[..., None] = self._build_fill_fast()

    # ------------------------------------------------------------------
    def _build_lookup(self) -> Callable[[int], int | None]:
        """Build ``lookup(vpn) -> frame | None`` with the L1 probe inlined.

        Walk-trigger accounting is unchanged: a returned None has already
        counted one hierarchy miss.  The L2 probe and the L1 refill stay
        behind one call each — they only run on L1 misses.
        """
        l1 = self.l1
        l1_tags, l1_frames = l1.tags, l1.frames
        l1_sizes, l1_stride, l1_nsets = l1.sizes, l1.stride, l1.num_sets
        l1_stats = l1.stats
        stats = self.stats
        l2 = self.l2_plain
        if l2 is not None:
            l2_tags, l2_frames = l2.tags, l2.frames
            l2_sizes, l2_stride, l2_nsets = l2.sizes, l2.stride, l2.num_sets
            l2_stats = l2.stats
        l2_generic = self._l2_lookup
        l1_fill = l1.fill
        infinite = self.infinite
        clustered = self.clustered
        infinite_get = self._infinite_store.get
        probe_large = self.probe_large

        def l2_lookup(vpn: int) -> int | None:
            """Plain L2 S-TLB probe (small then large tag), inline."""
            tag = vpn << 1
            set_index = tag % l2_nsets
            base = set_index * l2_stride
            limit = base + l2_sizes[set_index]
            l2_tags[limit] = tag
            pos = l2_tags.index(tag, base)
            l2_tags[limit] = EMPTY
            if pos != limit:
                l2_stats.hits += 1
                frame = l2_frames[pos]
                if pos != base:
                    l2_tags[base + 1:pos + 1] = l2_tags[base:pos]
                    l2_tags[base] = tag
                    l2_frames[base + 1:pos + 1] = l2_frames[base:pos]
                    l2_frames[base] = frame
                return frame
            l2_stats.misses += 1
            if not probe_large[0]:
                return None
            tag = ((vpn >> LEVEL_BITS) << 1) | 1
            set_index = tag % l2_nsets
            base = set_index * l2_stride
            limit = base + l2_sizes[set_index]
            l2_tags[limit] = tag
            pos = l2_tags.index(tag, base)
            l2_tags[limit] = EMPTY
            if pos != limit:
                l2_stats.hits += 1
                frame = l2_frames[pos]
                if pos != base:
                    l2_tags[base + 1:pos + 1] = l2_tags[base:pos]
                    l2_tags[base] = tag
                    l2_frames[base + 1:pos + 1] = l2_frames[base:pos]
                    l2_frames[base] = frame
                return frame
            l2_stats.misses += 1
            return None

        if clustered:
            l2_lookup = l2_generic

        def lookup(vpn: int) -> int | None:
            """Probe the hierarchy for ``vpn``; None means a walk is
            required."""
            if infinite:
                frame = infinite_get(vpn)
                if frame is None:
                    stats.misses += 1
                    return None
                stats.hits += 1
                self.l1_hits += 1
                return frame

            # L1 probe, small (4KB) tag then large (2MB) tag, inline.
            tag = vpn << 1
            set_index = tag % l1_nsets
            base = set_index * l1_stride
            if l1_tags[base] == tag:
                # MRU shortcut: hit in place, no reordering needed.
                l1_stats.hits += 1
                stats.hits += 1
                self.l1_hits += 1
                return l1_frames[base]
            limit = base + l1_sizes[set_index]
            l1_tags[limit] = tag
            pos = l1_tags.index(tag, base)
            l1_tags[limit] = EMPTY
            if pos != limit:
                l1_stats.hits += 1
                frame = l1_frames[pos]
                l1_tags[base + 1:pos + 1] = l1_tags[base:pos]
                l1_tags[base] = tag
                l1_frames[base + 1:pos + 1] = l1_frames[base:pos]
                l1_frames[base] = frame
                stats.hits += 1
                self.l1_hits += 1
                return frame
            l1_stats.misses += 1
            if probe_large[0]:
                tag = ((vpn >> LEVEL_BITS) << 1) | 1
                set_index = tag % l1_nsets
                base = set_index * l1_stride
                limit = base + l1_sizes[set_index]
                l1_tags[limit] = tag
                pos = l1_tags.index(tag, base)
                l1_tags[limit] = EMPTY
                if pos != limit:
                    l1_stats.hits += 1
                    frame = l1_frames[pos]
                    if pos != base:
                        l1_tags[base + 1:pos + 1] = l1_tags[base:pos]
                        l1_tags[base] = tag
                        l1_frames[base + 1:pos + 1] = l1_frames[base:pos]
                        l1_frames[base] = frame
                    stats.hits += 1
                    self.l1_hits += 1
                    return frame
                l1_stats.misses += 1

            frame = l2_lookup(vpn)
            if frame is not None:
                stats.hits += 1
                self.l2_hits += 1
                # Refill the first level on an L2 hit (4KB refills only
                # need the small tag; a large hit refills the large tag).
                l1_fill(vpn << 1, frame)
                return frame

            stats.misses += 1
            return None

        return lookup

    def _l2_lookup(self, vpn: int) -> int | None:
        if self.l2_clustered is not None:
            frame = self.l2_clustered.lookup(vpn)
            if frame is not None:
                return frame
            if not self.probe_large[0]:
                return None
            large = self._large_side.lookup(_large_tag(vpn))
            return large
        assert self.l2_plain is not None
        frame = self.l2_plain.lookup(_small_tag(vpn))
        if frame is None and self.probe_large[0]:
            frame = self.l2_plain.lookup(_large_tag(vpn))
        return frame

    # ------------------------------------------------------------------
    def _build_fill_fast(self) -> Callable[..., None]:
        """Build the simulators' fill: same signature as :meth:`fill`.

        Precondition (which :meth:`fill` does not require): the caller
        just took a full hierarchy miss for ``vpn``, so neither L1 tag
        nor the plain-L2 tag is resident — fills can install without the
        membership scan.  The simulators only fill on that path; every
        other caller uses the generic :meth:`fill`.  Large-page,
        clustered and infinite fills delegate to it (off the 4KB common
        case; the clustered TLB coalesces into existing entries).
        """
        l1 = self.l1
        l1_tags, l1_frames = l1.tags, l1.frames
        l1_sizes, l1_stride, l1_nsets = l1.sizes, l1.stride, l1.num_sets
        l1_ways = l1.ways
        l2 = self.l2_plain
        if l2 is not None:
            l2_tags, l2_frames = l2.tags, l2.frames
            l2_sizes, l2_stride, l2_nsets = l2.sizes, l2.stride, l2.num_sets
            l2_ways = l2.ways
        generic_fill = self.fill

        if self.infinite or self.clustered:
            return generic_fill

        def fill_fast(vpn, frame, large=False, neighbour_frames=None):
            if large:
                generic_fill(vpn, frame, large=True)
                return
            tag = vpn << 1
            # L1 install (tag known absent).
            set_index = tag % l1_nsets
            base = set_index * l1_stride
            size = l1_sizes[set_index]
            if size >= l1_ways:
                last = base + l1_ways - 1
                l1_tags[base + 1:last + 1] = l1_tags[base:last]
                l1_frames[base + 1:last + 1] = l1_frames[base:last]
            else:
                limit = base + size
                l1_tags[base + 1:limit + 1] = l1_tags[base:limit]
                l1_frames[base + 1:limit + 1] = l1_frames[base:limit]
                l1_sizes[set_index] = size + 1
            l1_tags[base] = tag
            l1_frames[base] = frame
            # L2 install (tag known absent); victims feed the evict hook.
            set_index = tag % l2_nsets
            base = set_index * l2_stride
            size = l2_sizes[set_index]
            victim_tag = EMPTY
            if size >= l2_ways:
                last = base + l2_ways - 1
                victim_tag = l2_tags[last]
                victim_frame = l2_frames[last]
                l2_tags[base + 1:last + 1] = l2_tags[base:last]
                l2_frames[base + 1:last + 1] = l2_frames[base:last]
            else:
                limit = base + size
                l2_tags[base + 1:limit + 1] = l2_tags[base:limit]
                l2_frames[base + 1:limit + 1] = l2_frames[base:limit]
                l2_sizes[set_index] = size + 1
            l2_tags[base] = tag
            l2_frames[base] = frame
            if victim_tag != EMPTY and not (victim_tag & 1):
                hook = self.l2_evict_hook
                if hook is not None:
                    hook(victim_tag >> 1, victim_frame)

        return fill_fast

    # ------------------------------------------------------------------
    def bulk_hits(self, vpn: int, count: int) -> None:
        """Account ``count`` back-to-back L1 hits for ``vpn``.

        The batched front-end calls this for the repeat records of a
        same-page streak: the preceding record's lookup or fill left the
        translation resident at L1 MRU, so each repeat would hit without
        moving any replacement state — only the counters advance.  The
        per-structure counters replicate the scalar path exactly,
        including the small-tag probe that misses first when the page is
        resident under its large tag.
        """
        self.stats.hits += count
        self.l1_hits += count
        if self.infinite:
            return
        l1 = self.l1
        if l1.contains(_small_tag(vpn)):
            l1.stats.hits += count
        else:
            assert l1.contains(_large_tag(vpn)), \
                "bulk_hits called for a vpn the L1 TLB does not hold"
            l1.stats.misses += count
            l1.stats.hits += count

    # ------------------------------------------------------------------
    def fill(
        self,
        vpn: int,
        frame: int,
        large: bool = False,
        neighbour_frames: Sequence[int | None] | None = None,
    ) -> None:
        """Install a translation discovered by a completed page walk."""
        if self.infinite:
            self._infinite_store[vpn] = frame
            return
        if large:
            tag = _large_tag(vpn)
            self.l1.fill(tag, frame)
            if self.l2_clustered is not None:
                self._large_side.fill(tag, frame)
            else:
                assert self.l2_plain is not None
                self.l2_plain.fill(tag, frame)
            return
        self.l1.fill(_small_tag(vpn), frame)
        if self.l2_clustered is not None:
            self.l2_clustered.fill(vpn, frame, neighbour_frames)
        else:
            assert self.l2_plain is not None
            victim = self.l2_plain.fill(_small_tag(vpn), frame)
            if victim is not None and self.l2_evict_hook is not None \
                    and not (victim[0] & 1):
                self.l2_evict_hook(victim[0] >> 1, victim[1])

    # ------------------------------------------------------------------
    def flush(self) -> None:
        self.l1.flush()
        if self.l2_clustered is not None:
            self.l2_clustered.flush()
            self._large_side.flush()
        if self.l2_plain is not None:
            self.l2_plain.flush()
        self._infinite_store.clear()

    @property
    def walks_triggered(self) -> int:
        return self.stats.misses

    def mpki(self, accesses: int) -> float:
        """TLB misses (page walks) per thousand memory accesses."""
        if not accesses:
            return 0.0
        return 1000.0 * self.stats.misses / accesses

    def reset_stats(self) -> None:
        self.stats.reset()
        self.l1_hits = 0
        self.l2_hits = 0
        self.l1.stats.reset()
        if self.l2_plain is not None:
            self.l2_plain.stats.reset()
        if self.l2_clustered is not None:
            self.l2_clustered.stats.reset()
