"""Clustered TLB (Pham et al., HPCA 2014) — the coalescing baseline of §5.4.1.

One entry covers an aligned *cluster* of up to eight virtually contiguous
pages, provided their physical frames fall inside a single aligned physical
cluster.  The entry stores the physical cluster number, a per-page validity
bitmap and the 3-bit sub-index of each page's frame within the physical
cluster.  Eight PTEs happen to share one 64-byte PT cache line, so the page
walker sees all eight candidate translations for free on every fill — that is
what makes eager coalescing implementable.

The paper evaluates Clustered TLB as a drop-in replacement for the L2 S-TLB,
reporting TLB MPKI reductions (Table 7) and page-walk cycle reductions
(Figure 11).

Storage follows the repository's flat-array LRU layout (`repro.tlb.tlb`):
three parallel preallocated lists — virtual cluster tag, physical cluster
tag, entry object — with each set owning one contiguous MRU→LRU segment.
An entry is identified by the *(virtual, physical)* tag pair, so matching
scans compare both flat tags by index; sub-index bitmaps stay in the small
per-entry objects (they are not probed on the hot path).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.params import TlbParams
from repro.tlb.tlb import EMPTY, TlbStats

#: Pages per cluster (and PTEs per 64-byte page-table line).
CLUSTER_PAGES = 8
_CLUSTER_SHIFT = 3
_CLUSTER_MASK = CLUSTER_PAGES - 1


class _ClusterEntry:
    __slots__ = ("phys_cluster", "valid_mask", "sub_indices")

    def __init__(self, phys_cluster: int) -> None:
        self.phys_cluster = phys_cluster
        self.valid_mask = 0
        self.sub_indices = [0] * CLUSTER_PAGES

    def add(self, slot: int, sub_index: int) -> None:
        self.valid_mask |= 1 << slot
        self.sub_indices[slot] = sub_index

    def get(self, slot: int) -> int | None:
        if self.valid_mask & (1 << slot):
            return self.sub_indices[slot]
        return None

    @property
    def population(self) -> int:
        return bin(self.valid_mask).count("1")


class ClusteredTlb:
    """Set-associative TLB whose entries coalesce up to eight translations.

    Entries are identified by ``(virtual cluster, physical cluster)``: a
    virtual cluster whose pages land in several physical clusters simply
    occupies several ways, exactly one per physical cluster — it never
    evicts its own siblings (the design would otherwise *thrash* on
    low-contiguity workloads instead of degrading to a plain TLB).
    """

    def __init__(self, params: TlbParams, name: str = "clustered-tlb") -> None:
        self.params = params
        self.name = name
        self.num_sets = params.sets
        self.ways = params.ways
        self.stride = params.ways
        total = self.num_sets * self.stride
        self.vtags: list[int] = [EMPTY] * total
        self.ptags: list[int] = [EMPTY] * total
        self.entries: list[_ClusterEntry | None] = [None] * total
        self.sizes: list[int] = [0] * self.num_sets
        self.stats = TlbStats()
        self.coalesced_fills = 0
        self.fills = 0

    def _split(self, vpn: int) -> tuple[int, int]:
        return vpn >> _CLUSTER_SHIFT, vpn & _CLUSTER_MASK

    def _set_index(self, cluster_tag: int) -> int:
        return cluster_tag % self.num_sets

    def _promote(self, base: int, pos: int) -> None:
        """Move the entry at ``pos`` to the MRU slot of its segment."""
        if pos == base:
            return
        vtags, ptags, entries = self.vtags, self.ptags, self.entries
        vtag, ptag, entry = vtags[pos], ptags[pos], entries[pos]
        vtags[base + 1:pos + 1] = vtags[base:pos]
        ptags[base + 1:pos + 1] = ptags[base:pos]
        entries[base + 1:pos + 1] = entries[base:pos]
        vtags[base], ptags[base], entries[base] = vtag, ptag, entry

    def lookup(self, vpn: int) -> int | None:
        """Return the frame for ``vpn`` or None on a miss."""
        cluster_tag, slot = self._split(vpn)
        set_index = cluster_tag % self.num_sets
        base = set_index * self.stride
        vtags, entries = self.vtags, self.entries
        # Oldest-first scan mirrors the previous dict's insertion-order
        # iteration; at most one live entry can hold a given page.
        for pos in range(base + self.sizes[set_index] - 1, base - 1, -1):
            if vtags[pos] != cluster_tag:
                continue
            entry = entries[pos]
            sub = entry.get(slot)
            if sub is not None:
                self.stats.hits += 1
                self._promote(base, pos)
                return (entry.phys_cluster << _CLUSTER_SHIFT) | sub
        self.stats.misses += 1
        return None

    def contains(self, vpn: int) -> bool:
        cluster_tag, slot = self._split(vpn)
        set_index = cluster_tag % self.num_sets
        base = set_index * self.stride
        return any(
            self.vtags[pos] == cluster_tag
            and self.entries[pos].get(slot) is not None
            for pos in range(base, base + self.sizes[set_index])
        )

    def probe_batch(self, vpns) -> list[int | None]:
        """Read-only bulk probe: the frame per vpn, None on a miss.

        Mirrors :meth:`repro.tlb.tlb.Tlb.probe_batch` — no stats, no
        promotion — so results are permutation-invariant as long as no
        fills intervene (the batch-probe property suite pins this
        against scalar ``contains``/``lookup`` semantics).
        """
        out: list[int | None] = []
        vtags, entries = self.vtags, self.entries
        for vpn in vpns:
            cluster_tag, slot = self._split(vpn)
            set_index = cluster_tag % self.num_sets
            base = set_index * self.stride
            frame: int | None = None
            for pos in range(base + self.sizes[set_index] - 1,
                             base - 1, -1):
                if vtags[pos] != cluster_tag:
                    continue
                entry = entries[pos]
                sub = entry.get(slot)
                if sub is not None:
                    frame = (entry.phys_cluster << _CLUSTER_SHIFT) | sub
                    break
            out.append(frame)
        return out

    def fill(
        self,
        vpn: int,
        frame: int,
        neighbour_frames: Sequence[int | None] | None = None,
    ) -> None:
        """Install ``vpn → frame``, eagerly coalescing cluster neighbours.

        ``neighbour_frames`` holds the eight candidate frames of the aligned
        virtual cluster containing ``vpn`` (None for unmapped pages), i.e.
        the contents of the PT line the walker just fetched.  Neighbours
        landing in the same physical cluster are folded into the entry.
        """
        cluster_tag, slot = self._split(vpn)
        phys_cluster = frame >> _CLUSTER_SHIFT
        set_index = cluster_tag % self.num_sets
        base = set_index * self.stride
        vtags, ptags, entries = self.vtags, self.ptags, self.entries
        size = self.sizes[set_index]
        entry = None
        for pos in range(base, base + size):
            if vtags[pos] == cluster_tag and ptags[pos] == phys_cluster:
                entry = entries[pos]
                self._promote(base, pos)
                break
        if entry is None:
            entry = _ClusterEntry(phys_cluster)
            if size >= self.ways:
                # Evict the LRU entry (last live slot) by shifting over it.
                last = base + self.ways - 1
                vtags[base + 1:last + 1] = vtags[base:last]
                ptags[base + 1:last + 1] = ptags[base:last]
                entries[base + 1:last + 1] = entries[base:last]
            else:
                limit = base + size
                vtags[base + 1:limit + 1] = vtags[base:limit]
                ptags[base + 1:limit + 1] = ptags[base:limit]
                entries[base + 1:limit + 1] = entries[base:limit]
                self.sizes[set_index] = size + 1
            vtags[base], ptags[base], entries[base] = (
                cluster_tag, phys_cluster, entry)
        entry.add(slot, frame & _CLUSTER_MASK)
        if neighbour_frames is not None:
            for other_slot, other_frame in enumerate(neighbour_frames):
                if other_frame is None or other_slot == slot:
                    continue
                if (other_frame >> _CLUSTER_SHIFT) == phys_cluster:
                    entry.add(other_slot, other_frame & _CLUSTER_MASK)
                    self.coalesced_fills += 1
        self.fills += 1

    def invalidate(self, vpn: int) -> bool:
        cluster_tag, slot = self._split(vpn)
        set_index = cluster_tag % self.num_sets
        base = set_index * self.stride
        vtags, ptags, entries = self.vtags, self.ptags, self.entries
        size = self.sizes[set_index]
        # Oldest-first, like the dict iteration it replaces (no promotion).
        for pos in range(base + size - 1, base - 1, -1):
            if vtags[pos] != cluster_tag:
                continue
            entry = entries[pos]
            if entry.get(slot) is None:
                continue
            entry.valid_mask &= ~(1 << slot)
            if not entry.valid_mask:
                last = base + size - 1
                vtags[pos:last] = vtags[pos + 1:last + 1]
                ptags[pos:last] = ptags[pos + 1:last + 1]
                entries[pos:last] = entries[pos + 1:last + 1]
                vtags[last], ptags[last], entries[last] = EMPTY, EMPTY, None
                self.sizes[set_index] = size - 1
            return True
        return False

    def flush(self) -> None:
        total = self.num_sets * self.stride
        self.vtags[:] = [EMPTY] * total
        self.ptags[:] = [EMPTY] * total
        self.entries[:] = [None] * total
        self.sizes[:] = [0] * self.num_sets

    @property
    def occupancy(self) -> int:
        """Number of allocated entries (clusters, not translations)."""
        return sum(self.sizes)

    @property
    def translations(self) -> int:
        """Number of live translations across all entries."""
        return sum(
            self.entries[set_index * self.stride + offset].population
            for set_index in range(self.num_sets)
            for offset in range(self.sizes[set_index])
        )
