"""Clustered TLB (Pham et al., HPCA 2014) — the coalescing baseline of §5.4.1.

One entry covers an aligned *cluster* of up to eight virtually contiguous
pages, provided their physical frames fall inside a single aligned physical
cluster.  The entry stores the physical cluster number, a per-page validity
bitmap and the 3-bit sub-index of each page's frame within the physical
cluster.  Eight PTEs happen to share one 64-byte PT cache line, so the page
walker sees all eight candidate translations for free on every fill — that is
what makes eager coalescing implementable.

The paper evaluates Clustered TLB as a drop-in replacement for the L2 S-TLB,
reporting TLB MPKI reductions (Table 7) and page-walk cycle reductions
(Figure 11).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.params import TlbParams
from repro.tlb.tlb import TlbStats

#: Pages per cluster (and PTEs per 64-byte page-table line).
CLUSTER_PAGES = 8
_CLUSTER_SHIFT = 3
_CLUSTER_MASK = CLUSTER_PAGES - 1


class _ClusterEntry:
    __slots__ = ("phys_cluster", "valid_mask", "sub_indices")

    def __init__(self, phys_cluster: int) -> None:
        self.phys_cluster = phys_cluster
        self.valid_mask = 0
        self.sub_indices = [0] * CLUSTER_PAGES

    def add(self, slot: int, sub_index: int) -> None:
        self.valid_mask |= 1 << slot
        self.sub_indices[slot] = sub_index

    def get(self, slot: int) -> int | None:
        if self.valid_mask & (1 << slot):
            return self.sub_indices[slot]
        return None

    @property
    def population(self) -> int:
        return bin(self.valid_mask).count("1")


class ClusteredTlb:
    """Set-associative TLB whose entries coalesce up to eight translations.

    Entries are identified by ``(virtual cluster, physical cluster)``: a
    virtual cluster whose pages land in several physical clusters simply
    occupies several ways, exactly one per physical cluster — it never
    evicts its own siblings (the design would otherwise *thrash* on
    low-contiguity workloads instead of degrading to a plain TLB).
    """

    def __init__(self, params: TlbParams, name: str = "clustered-tlb") -> None:
        self.params = params
        self.name = name
        self.num_sets = params.sets
        self.ways = params.ways
        self._sets: list[dict[tuple[int, int], _ClusterEntry]] = [
            {} for _ in range(self.num_sets)
        ]
        self.stats = TlbStats()
        self.coalesced_fills = 0
        self.fills = 0

    def _split(self, vpn: int) -> tuple[int, int]:
        return vpn >> _CLUSTER_SHIFT, vpn & _CLUSTER_MASK

    def _set_index(self, cluster_tag: int) -> int:
        return cluster_tag % self.num_sets

    def lookup(self, vpn: int) -> int | None:
        """Return the frame for ``vpn`` or None on a miss."""
        cluster_tag, slot = self._split(vpn)
        tlb_set = self._sets[self._set_index(cluster_tag)]
        for key, entry in tlb_set.items():
            if key[0] != cluster_tag:
                continue
            sub = entry.get(slot)
            if sub is not None:
                self.stats.hits += 1
                del tlb_set[key]
                tlb_set[key] = entry
                return (entry.phys_cluster << _CLUSTER_SHIFT) | sub
        self.stats.misses += 1
        return None

    def contains(self, vpn: int) -> bool:
        cluster_tag, slot = self._split(vpn)
        tlb_set = self._sets[self._set_index(cluster_tag)]
        return any(
            key[0] == cluster_tag and entry.get(slot) is not None
            for key, entry in tlb_set.items()
        )

    def fill(
        self,
        vpn: int,
        frame: int,
        neighbour_frames: Sequence[int | None] | None = None,
    ) -> None:
        """Install ``vpn → frame``, eagerly coalescing cluster neighbours.

        ``neighbour_frames`` holds the eight candidate frames of the aligned
        virtual cluster containing ``vpn`` (None for unmapped pages), i.e.
        the contents of the PT line the walker just fetched.  Neighbours
        landing in the same physical cluster are folded into the entry.
        """
        cluster_tag, slot = self._split(vpn)
        phys_cluster = frame >> _CLUSTER_SHIFT
        key = (cluster_tag, phys_cluster)
        tlb_set = self._sets[self._set_index(cluster_tag)]
        entry = tlb_set.get(key)
        if entry is not None:
            del tlb_set[key]
        else:
            entry = _ClusterEntry(phys_cluster)
            if len(tlb_set) >= self.ways:
                victim = next(iter(tlb_set))
                del tlb_set[victim]
        entry.add(slot, frame & _CLUSTER_MASK)
        if neighbour_frames is not None:
            for other_slot, other_frame in enumerate(neighbour_frames):
                if other_frame is None or other_slot == slot:
                    continue
                if (other_frame >> _CLUSTER_SHIFT) == phys_cluster:
                    entry.add(other_slot, other_frame & _CLUSTER_MASK)
                    self.coalesced_fills += 1
        tlb_set[key] = entry
        self.fills += 1

    def invalidate(self, vpn: int) -> bool:
        cluster_tag, slot = self._split(vpn)
        tlb_set = self._sets[self._set_index(cluster_tag)]
        for key, entry in list(tlb_set.items()):
            if key[0] == cluster_tag and entry.get(slot) is not None:
                entry.valid_mask &= ~(1 << slot)
                if not entry.valid_mask:
                    del tlb_set[key]
                return True
        return False

    def flush(self) -> None:
        for tlb_set in self._sets:
            tlb_set.clear()

    @property
    def occupancy(self) -> int:
        """Number of allocated entries (clusters, not translations)."""
        return sum(len(s) for s in self._sets)

    @property
    def translations(self) -> int:
        """Number of live translations across all entries."""
        return sum(
            entry.population for s in self._sets for entry in s.values()
        )
