"""A set-associative TLB with true-LRU replacement.

Entries are keyed by an integer *tag* supplied by the caller; the two-level
hierarchy (`repro.tlb.hierarchy`) encodes the page-size class into the tag so
4KB and 2MB translations share one structure without ambiguity.  The payload
of an entry is the translated frame number, kept so fills can be validated
and so clustered designs can be compared like-for-like.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import TlbParams


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class Tlb:
    """Plain (non-coalescing) TLB: one tag, one translation."""

    def __init__(self, params: TlbParams, name: str = "tlb") -> None:
        self.params = params
        self.name = name
        self.num_sets = params.sets
        self.ways = params.ways
        self._sets: list[dict[int, int]] = [{} for _ in range(self.num_sets)]
        self.stats = TlbStats()

    def _set_index(self, tag: int) -> int:
        return tag % self.num_sets

    def lookup(self, tag: int) -> int | None:
        """Return the cached frame for ``tag`` or None on a miss."""
        tlb_set = self._sets[self._set_index(tag)]
        frame = tlb_set.get(tag)
        if frame is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        del tlb_set[tag]
        tlb_set[tag] = frame
        return frame

    def contains(self, tag: int) -> bool:
        return tag in self._sets[self._set_index(tag)]

    def fill(self, tag: int, frame: int) -> tuple[int, int] | None:
        """Install a translation; returns the evicted (tag, frame), if
        any — eviction-recycling schemes (Victima) consume the victim."""
        tlb_set = self._sets[self._set_index(tag)]
        victim = None
        if tag in tlb_set:
            del tlb_set[tag]
        elif len(tlb_set) >= self.ways:
            victim_tag = next(iter(tlb_set))
            victim = (victim_tag, tlb_set.pop(victim_tag))
        tlb_set[tag] = frame
        return victim

    def invalidate(self, tag: int) -> bool:
        tlb_set = self._sets[self._set_index(tag)]
        if tag in tlb_set:
            del tlb_set[tag]
            return True
        return False

    def flush(self) -> None:
        for tlb_set in self._sets:
            tlb_set.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
