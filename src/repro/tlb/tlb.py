"""A set-associative TLB with true-LRU replacement on flat array storage.

Entries are keyed by an integer *tag* supplied by the caller; the two-level
hierarchy (`repro.tlb.hierarchy`) encodes the page-size class into the tag so
4KB and 2MB translations share one structure without ambiguity.  The payload
of an entry is the translated frame number, kept so fills can be validated
and so clustered designs can be compared like-for-like.

Storage layout (shared by every LRU structure in the hot path — see
docs/ARCHITECTURE.md):

* ``tags`` / ``frames`` are preallocated flat lists of ``sets * (ways+1)``
  slots; set ``s`` owns the contiguous segment ``[s*stride, s*stride+ways)``
  plus one *guard* slot at the segment end.
* Within a segment, live entries sit at the front in MRU→LRU order, so the
  physical position **is** the LRU counter: a hit moves the entry to the
  segment base (one C-level slice shift), the eviction victim is always the
  last live slot, and a set's residency count lives in ``sizes``.
* Empty slots hold the ``-1`` sentinel.  Probes write the searched tag into
  the guard slot and use ``list.index`` — a C-speed scan that needs no
  exception on a miss (the guard always terminates it).

This replaces the previous dict-of-entries sets: identical replacement
behaviour (dict insertion order and segment order encode the same recency
relation), but the flat layout lets the simulators' hot loops probe by
integer indexing without per-entry objects or hashing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import TlbParams

#: Sentinel marking an empty slot; real tags are non-negative.
EMPTY = -1

#: Bit position of the ASID in a *biased* vpn key (multi-tenant runs).
#:
#: Address-space identifiers ride in the key the same way the page-size
#: class rides in the tag: encoded into the integer before it reaches the
#: structure, so every probe/fill below is tenant-oblivious.  The highest
#: vpn any workload can produce is below 2**45 (57-bit virtual addresses),
#: and PWC tags (``va >> level_shift``) are smaller still, so ORing
#: ``asid << ASID_SHIFT`` into a vpn or PWC tag can never collide with
#: another tenant's bits — and ASID 0 is the identity, which is what keeps
#: single-tenant runs byte-identical to the pre-ASID simulators.
ASID_SHIFT = 52


def asid_bias(asid: int) -> int:
    """The OR-mask encoding ``asid`` into vpn/PWC-tag keys (0 for ASID 0)."""
    if asid < 0:
        raise ValueError("ASIDs are non-negative")
    return asid << ASID_SHIFT


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class Tlb:
    """Plain (non-coalescing) TLB: one tag, one translation."""

    def __init__(self, params: TlbParams, name: str = "tlb") -> None:
        self.params = params
        self.name = name
        self.num_sets = params.sets
        self.ways = params.ways
        #: Slots per set segment: ``ways`` entries plus the guard slot.
        self.stride = params.ways + 1
        self.tags: list[int] = [EMPTY] * (self.num_sets * self.stride)
        self.frames: list[int] = [0] * (self.num_sets * self.stride)
        self.sizes: list[int] = [0] * self.num_sets
        self.stats = TlbStats()

    def _set_index(self, tag: int) -> int:
        return tag % self.num_sets

    def lookup(self, tag: int) -> int | None:
        """Return the cached frame for ``tag`` or None on a miss."""
        set_index = tag % self.num_sets
        base = set_index * self.stride
        tags = self.tags
        limit = base + self.sizes[set_index]
        tags[limit] = tag
        pos = tags.index(tag, base)
        tags[limit] = EMPTY
        if pos == limit:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        frames = self.frames
        frame = frames[pos]
        if pos != base:
            tags[base + 1:pos + 1] = tags[base:pos]
            tags[base] = tag
            frames[base + 1:pos + 1] = frames[base:pos]
            frames[base] = frame
        return frame

    def contains(self, tag: int) -> bool:
        set_index = tag % self.num_sets
        base = set_index * self.stride
        tags = self.tags
        limit = base + self.sizes[set_index]
        tags[limit] = tag
        pos = tags.index(tag, base)
        tags[limit] = EMPTY
        return pos != limit

    def probe_batch(self, batch) -> list[int | None]:
        """Read-only bulk probe: the cached frame per tag, None on miss.

        A batch is a *query*, not a sequence of accesses — no stats, no
        LRU movement — so probing any permutation of ``batch`` returns
        the permuted scalar results (pinned by the batch-probe property
        suite).  Columnar-kernel tooling and tests use this to inspect
        residency without perturbing replacement state.
        """
        tags = self.tags
        frames = self.frames
        sizes = self.sizes
        stride = self.stride
        num_sets = self.num_sets
        out: list[int | None] = []
        for tag in batch:
            set_index = tag % num_sets
            base = set_index * stride
            limit = base + sizes[set_index]
            tags[limit] = tag
            pos = tags.index(tag, base)
            tags[limit] = EMPTY
            out.append(None if pos == limit else frames[pos])
        return out

    def fill(self, tag: int, frame: int) -> tuple[int, int] | None:
        """Install a translation; returns the evicted (tag, frame), if
        any — eviction-recycling schemes (Victima) consume the victim."""
        set_index = tag % self.num_sets
        base = set_index * self.stride
        tags = self.tags
        frames = self.frames
        size = self.sizes[set_index]
        limit = base + size
        tags[limit] = tag
        pos = tags.index(tag, base)
        tags[limit] = EMPTY
        victim = None
        if pos != limit:
            # Already present: promote to MRU (and refresh the payload).
            if pos != base:
                tags[base + 1:pos + 1] = tags[base:pos]
                frames[base + 1:pos + 1] = frames[base:pos]
        elif size >= self.ways:
            last = base + self.ways - 1
            victim = (tags[last], frames[last])
            tags[base + 1:last + 1] = tags[base:last]
            frames[base + 1:last + 1] = frames[base:last]
        else:
            tags[base + 1:limit + 1] = tags[base:limit]
            frames[base + 1:limit + 1] = frames[base:limit]
            self.sizes[set_index] = size + 1
        tags[base] = tag
        frames[base] = frame
        return victim

    def invalidate(self, tag: int) -> bool:
        set_index = tag % self.num_sets
        base = set_index * self.stride
        tags = self.tags
        size = self.sizes[set_index]
        limit = base + size
        tags[limit] = tag
        pos = tags.index(tag, base)
        tags[limit] = EMPTY
        if pos == limit:
            return False
        frames = self.frames
        last = limit - 1
        tags[pos:last] = tags[pos + 1:limit]
        frames[pos:last] = frames[pos + 1:limit]
        tags[last] = EMPTY
        self.sizes[set_index] = size - 1
        return True

    def flush(self) -> None:
        total = self.num_sets * self.stride
        self.tags[:] = [EMPTY] * total
        self.frames[:] = [0] * total
        self.sizes[:] = [0] * self.num_sets

    @property
    def occupancy(self) -> int:
        return sum(self.sizes)
