"""Physical memory abstraction.

The simulator never stores memory contents; physical memory is just a frame
number space with a little address arithmetic.  Frame numbers are assigned
by the buddy allocator; byte addresses are ``frame << 12``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pagetable.constants import PAGE_SHIFT, PAGE_SIZE


@dataclass(frozen=True)
class PhysicalMemory:
    """A machine's physical frame space."""

    total_bytes: int = 1 << 40  # 1 TB default, per Table 4's big-memory host

    @property
    def total_frames(self) -> int:
        return self.total_bytes >> PAGE_SHIFT

    def frame_to_addr(self, frame: int) -> int:
        return frame << PAGE_SHIFT

    def addr_to_frame(self, addr: int) -> int:
        return addr >> PAGE_SHIFT

    def contains_frame(self, frame: int) -> bool:
        return 0 <= frame < self.total_frames

    def __post_init__(self) -> None:
        if self.total_bytes % PAGE_SIZE:
            raise ValueError("physical memory must be page aligned")
