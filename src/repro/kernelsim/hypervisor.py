"""Nested paging: a guest VM behind a host page table (§3.6, Figure 7).

From the host OS's point of view an entire guest VM is one process whose
"virtual" space is the guest-physical space, mapped by the host page table
(hPT) — Linux/KVM's model, which is why a *single* host VMA descriptor
suffices for host-side ASAP.

The class wires together:

* a guest :class:`ProcessAddressSpace` (its "physical" frames are
  guest-physical, handed out by a guest-side buddy allocator),
* the hPT, a second radix tree translating gPA → host-physical, populated
  lazily as guest frames appear, with 4KB or 2MB host pages (Figure 12),
* optional host-side ASAP layout (sorted hPT PL1/PL2 regions over the one
  host VMA),
* optional *contiguous host backing* for the guest's reserved PT regions —
  the vmcall contract of §3.6 that guest-side ASAP needs so its
  base-plus-offset targets are valid host-physical addresses.
"""

from __future__ import annotations

from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.phys import PhysicalMemory
from repro.kernelsim.process import ProcessAddressSpace, TouchResult
from repro.kernelsim.pt_layout import AsapPtLayout
from repro.kernelsim.vma import Vma, VmaKind
from repro.pagetable import constants as c
from repro.pagetable.nested import NestedStep, NestedWalkPath
from repro.pagetable.radix import RadixPageTable, WalkStep


class VirtualMachine:
    """A guest address space nested behind a host page table."""

    def __init__(
        self,
        guest: ProcessAddressSpace,
        guest_mem_bytes: int,
        host_buddy: BuddyAllocator | None = None,
        host_page_level: int = 1,
        host_asap_levels: tuple[int, ...] = (),
        back_guest_pt_contiguously: bool = False,
        seed: int = 0,
    ) -> None:
        if host_page_level not in (1, 2):
            raise ValueError("host pages are 4KB (1) or 2MB (2)")
        self.guest = guest
        self.guest_mem_bytes = guest_mem_bytes
        host_bytes = max(4 * guest_mem_bytes, 1 << 41)  # >= 2TB host
        self.host_buddy = host_buddy or BuddyAllocator(
            PhysicalMemory(host_bytes), seed=seed + 7
        )
        self.host_page_level = host_page_level
        size = -(-guest_mem_bytes // c.HUGE_PAGE_SIZE) * c.HUGE_PAGE_SIZE
        self.host_vma = Vma(start=0, size=size, kind=VmaKind.OTHER,
                            name="vm-guest-physical")
        self.host_asap_layout: AsapPtLayout | None = None
        if host_asap_levels:
            self.host_asap_layout = AsapPtLayout(
                self.host_buddy, levels=host_asap_levels, seed=seed + 11
            )
            self.host_asap_layout.register_vma(self.host_vma)
        self.back_guest_pt_contiguously = back_guest_pt_contiguously
        self.hpt = RadixPageTable(4, node_placer=self._place_host_node)
        self._host_chain_cache: dict[int, tuple[tuple[WalkStep, ...], int]] = {}
        self._backed_ranges: list[tuple[int, int]] = []  # (gframe, count)
        if back_guest_pt_contiguously and guest.asap_layout is not None:
            # Regions already registered before the VM existed (e.g. the
            # guest booted first) get backed now.
            for vma in guest.vmas:
                self._back_vma_regions(vma)

    # ------------------------------------------------------------------
    # host-side placement
    # ------------------------------------------------------------------
    def _place_host_node(self, level: int, tag: int) -> int:
        if self.host_asap_layout is not None:
            return self.host_asap_layout.place_node(self.host_vma, level, tag)
        return self.host_buddy.alloc_frame("hpt") << c.PAGE_SHIFT

    def _map_gpa_page(self, gframe: int) -> None:
        gpa = gframe << c.PAGE_SHIFT
        if self.hpt.lookup(gpa) is not None:
            return
        if self.host_page_level == 1:
            hframe = self.host_buddy.alloc_frame("vm-data")
            self.hpt.map_page(gpa, hframe, 1)
        else:
            large_base = (gframe >> c.LEVEL_BITS) << c.LEVEL_BITS
            hbase = self.host_buddy.alloc_run(
                c.ENTRIES_PER_NODE, pool="vm-data", aligned=True
            )
            self.hpt.map_page(large_base << c.PAGE_SHIFT, hbase, 2)

    def translate_gpa(self, gpa: int) -> int:
        """gPA → host-physical byte address, mapping lazily on first use."""
        hit = self.hpt.lookup(gpa)
        if hit is None:
            self._map_gpa_page(gpa >> c.PAGE_SHIFT)
            hit = self.hpt.lookup(gpa)
            assert hit is not None
        return (hit[0] << c.PAGE_SHIFT) | (gpa & (c.PAGE_SIZE - 1))

    # ------------------------------------------------------------------
    # guest-side interface
    # ------------------------------------------------------------------
    def mmap(self, *args, **kwargs) -> Vma:
        """mmap in the guest; honours the §3.6 vmcall contiguity contract."""
        vma = self.guest.mmap(*args, **kwargs)
        self._back_vma_regions(vma)
        return vma

    def _back_vma_regions(self, vma: Vma) -> None:
        layout = self.guest.asap_layout
        if not self.back_guest_pt_contiguously or layout is None:
            return
        for level in layout.levels:
            region = layout.region(vma, level)
            if region is None:
                continue
            self._back_range_contiguously(region.base_frame,
                                          region.reserved_total)

    def _back_range_contiguously(self, gframe: int, count: int) -> None:
        """Map [gframe, gframe+count) to contiguous host frames."""
        if self.host_page_level == 1:
            hbase = self.host_buddy.reserve_contiguous(count)
            for i in range(count):
                if self.hpt.lookup((gframe + i) << c.PAGE_SHIFT) is None:
                    self.hpt.map_page((gframe + i) << c.PAGE_SHIFT,
                                      hbase + i, 1)
        else:
            first_large = gframe >> c.LEVEL_BITS
            last_large = (gframe + count - 1) >> c.LEVEL_BITS
            spans = last_large - first_large + 1
            hbase = self.host_buddy.reserve_contiguous(
                spans * c.ENTRIES_PER_NODE, align=c.ENTRIES_PER_NODE
            )
            for j in range(spans):
                gpa = (first_large + j) << c.LARGE_PAGE_SHIFT
                if self.hpt.lookup(gpa) is None:
                    self.hpt.map_page(gpa, hbase + j * c.ENTRIES_PER_NODE, 2)
        self._backed_ranges.append((gframe, count))

    def touch(self, va: int) -> TouchResult:
        """Demand-page ``va`` in the guest and back everything in the host."""
        result = self.guest.touch(va)
        if result.faulted:
            for _level, _tag, base in result.created_nodes:
                self.translate_gpa(base)
            self.translate_gpa(result.frame << c.PAGE_SHIFT)
        return result

    # ------------------------------------------------------------------
    # 2D walk paths
    # ------------------------------------------------------------------
    def _host_chain(self, gpa: int) -> tuple[tuple[WalkStep, ...], int]:
        """Host 1D walk steps for ``gpa``'s page, plus the page's hPA base."""
        page = gpa >> c.PAGE_SHIFT
        cached = self._host_chain_cache.get(page)
        if cached is None:
            self.translate_gpa(gpa)
            hpath = self.hpt.walk_path(gpa)
            cached = (hpath.steps, hpath.frame << c.PAGE_SHIFT)
            self._host_chain_cache[page] = cached
        return cached

    def nested_path(self, va: int) -> NestedWalkPath:
        gpath = self.guest.walk_path(va)
        steps = []
        for gstep in gpath.steps:
            host_steps, page_hpa = self._host_chain(gstep.entry_addr)
            entry_hpa = page_hpa | (gstep.entry_addr & (c.PAGE_SIZE - 1))
            steps.append(
                NestedStep(guest_level=gstep.level, gpa=gstep.entry_addr,
                           host_steps=host_steps, entry_host_addr=entry_hpa)
            )
        data_gpa = (gpath.frame << c.PAGE_SHIFT) | (va & (c.PAGE_SIZE - 1))
        host_steps, page_hpa = self._host_chain(data_gpa)
        steps.append(
            NestedStep(guest_level=0, gpa=data_gpa, host_steps=host_steps,
                       entry_host_addr=None)
        )
        data_hpa = page_hpa | (va & (c.PAGE_SIZE - 1))
        return NestedWalkPath(
            va=va,
            steps=tuple(steps),
            data_host_addr=data_hpa,
            guest_leaf_level=gpath.leaf_level,
            host_leaf_level=self.host_page_level,
        )

    # ------------------------------------------------------------------
    # descriptors for ASAP (computed the way the OS/hypervisor would)
    # ------------------------------------------------------------------
    def host_descriptor_bases(self) -> dict[int, int]:
        """Range-register bases for the single host VMA (host dimension)."""
        if self.host_asap_layout is None:
            return {}
        return self.host_asap_layout.descriptor_bases(self.host_vma)

    def guest_descriptor_bases(self, vma: Vma) -> dict[int, int]:
        """Host-physical range-register bases for a *guest* VMA.

        Valid only because the guest PT regions are contiguously backed:
        hPA(entry) = hPA(region base) + (entry gPA - region base gPA).
        """
        layout = self.guest.asap_layout
        if layout is None or not self.back_guest_pt_contiguously:
            return {}
        bases = {}
        for level in layout.levels:
            region = layout.region(vma, level)
            if region is None:
                continue
            host_base = self.translate_gpa(region.base_addr)
            bases[level] = host_base - region.first_tag * c.NODE_BYTES
        return bases
