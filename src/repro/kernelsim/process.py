"""A process address space with demand paging over the simulated OS.

Ties the substrates together the way Linux does: a VMA tree describes what
is allocated, the radix page table is populated *lazily* on first touch
(page fault), data frames come from the buddy allocator's ``data`` pool and
PT-node frames from its ``pt`` pool — unless an :class:`AsapPtLayout` is
attached, in which case the prefetch-target levels are placed into their
reserved, sorted regions (§3.3).

Large pages: a VMA created with ``page_level=2`` is backed by 2MB mappings
(512-frame aligned), exercising the §3.5 interaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.pt_layout import AsapPtLayout
from repro.kernelsim.vma import Vma, VmaKind, VmaTree
from repro.pagetable import constants as c
from repro.pagetable.radix import FaultPath, RadixPageTable, WalkPath


class SegmentationFault(Exception):
    """Access to an address outside every VMA."""


@dataclass
class TouchResult:
    frame: int
    faulted: bool
    leaf_level: int
    created_nodes: list[tuple[int, int, int]]  # (level, tag, phys_base)


# Vma gains a page-size attribute through composition here rather than on
# the dataclass: the OS decides backing granularity per mapping request.
class ProcessAddressSpace:
    """One process: VMAs + page table + demand paging."""

    def __init__(
        self,
        buddy: BuddyAllocator | None = None,
        levels: int = 4,
        asap_layout: AsapPtLayout | None = None,
        data_pool: str = "data",
        pt_pool: str = "pt",
    ) -> None:
        self.buddy = buddy or BuddyAllocator()
        self.vmas = VmaTree()
        self.asap_layout = asap_layout
        self.data_pool = data_pool
        self.pt_pool = pt_pool
        self._page_levels: dict[int, int] = {}  # id(vma) -> leaf level
        self._fault_vma: Vma | None = None
        self.page_table = RadixPageTable(levels, node_placer=self._place_node)
        self.faults = 0

    # ------------------------------------------------------------------
    # address-space management
    # ------------------------------------------------------------------
    def mmap(
        self,
        start: int,
        size: int,
        kind: VmaKind = VmaKind.MMAP,
        name: str = "",
        growable: bool = False,
        page_level: int = 1,
    ) -> Vma:
        if start % c.PAGE_SIZE or size % c.PAGE_SIZE:
            raise ValueError("mappings must be page aligned")
        if page_level == 2 and (start % c.LARGE_PAGE_SIZE
                                or size % c.LARGE_PAGE_SIZE):
            raise ValueError("2MB-backed mappings must be 2MB aligned")
        vma = self.vmas.insert(
            Vma(start=start, size=size, kind=kind, name=name,
                growable=growable)
        )
        self._page_levels[id(vma)] = page_level
        if self.asap_layout is not None:
            self.asap_layout.register_vma(vma)
        return vma

    def brk(self, vma: Vma, delta: int) -> None:
        """Grow a VMA upward; PT regions extend lazily on later faults."""
        self.vmas.extend(vma, delta)

    def page_level_of(self, vma: Vma) -> int:
        return self._page_levels[id(vma)]

    # ------------------------------------------------------------------
    # demand paging
    # ------------------------------------------------------------------
    def _place_node(self, level: int, tag: int) -> int:
        vma = self._fault_vma
        if self.asap_layout is not None:
            return self.asap_layout.place_node(vma, level, tag)
        return self.buddy.alloc_frame(self.pt_pool) << c.PAGE_SHIFT

    def touch(self, va: int) -> TouchResult:
        """Translate ``va``, faulting the page in on first access."""
        hit = self.page_table.lookup(va)
        if hit is not None:
            return TouchResult(frame=hit[0], faulted=False,
                               leaf_level=hit[1], created_nodes=[])
        vma = self.vmas.find(va)
        if vma is None:
            raise SegmentationFault(f"{va:#x} is not mapped by any VMA")
        leaf_level = self._page_levels[id(vma)]
        if leaf_level == 2:
            frame = self.buddy.alloc_run(
                c.ENTRIES_PER_NODE, pool=self.data_pool, aligned=True
            )
        else:
            frame = self.buddy.alloc_frame(self.data_pool)
        self._fault_vma = vma
        try:
            created = self.page_table.map_page(va, frame, leaf_level)
        finally:
            self._fault_vma = None
        self.faults += 1
        if leaf_level == 2:
            # The 4KB frame within the large page, as lookup() reports it.
            frame += c.vpn(va) & (c.ENTRIES_PER_NODE - 1)
        return TouchResult(frame=frame, faulted=True, leaf_level=leaf_level,
                           created_nodes=created)

    def populate(self, vpns) -> int:
        """Pre-fault a sequence of vpns (steady-state warm-up); returns the
        number of faults taken.

        Same faulting pipeline as :meth:`touch` per vpn, inline: the
        warm-up loop runs once per distinct page of every simulation, and
        it needs neither the :class:`TouchResult` nor the created-node
        inventory that the general path materialises.
        """
        before = self.faults
        page_table = self.page_table
        map_page = page_table.map_page
        find_vma = self.vmas.find
        page_levels = self._page_levels
        pages, large = page_table.leaf_maps()
        pte_nodes = page_table.leaf_nodes(1)
        buddy = self.buddy
        alloc_frame = buddy.alloc_frame
        data_pool = self.data_pool
        faults = 0
        try:
            for vpn in vpns:
                vpn = int(vpn)
                if vpn in pages or (vpn >> c.LEVEL_BITS) in large:
                    continue
                va = vpn << c.PAGE_SHIFT
                vma = find_vma(va)
                if vma is None:
                    raise SegmentationFault(
                        f"{va:#x} is not mapped by any VMA")
                leaf_level = page_levels[id(vma)]
                self._fault_vma = vma
                if leaf_level == 1:
                    frame = alloc_frame(data_pool)
                    if (vpn >> c.LEVEL_BITS) in pte_nodes:
                        # Interior nodes exist: install the leaf directly
                        # (what map_page's fast path would do).
                        pages[vpn] = frame
                    else:
                        map_page(va, frame, 1)
                else:
                    frame = buddy.alloc_run(
                        c.ENTRIES_PER_NODE, pool=data_pool, aligned=True)
                    map_page(va, frame, 2)
                faults += 1
        finally:
            # Count even the faults a mid-loop SegmentationFault strands:
            # their frames were allocated and leaves installed, exactly
            # as the per-vpn touch() loop this replaced counted them.
            self._fault_vma = None
            self.faults += faults
        return self.faults - before

    # ------------------------------------------------------------------
    # translation services for the simulator
    # ------------------------------------------------------------------
    def walk_path(self, va: int) -> WalkPath:
        return self.page_table.walk_path(va)

    def flat_walk(self, va: int):
        """Flat walk-path form for the simulator's per-vpn path cache
        (see :meth:`repro.pagetable.radix.RadixPageTable.flat_walk`)."""
        return self.page_table.flat_walk(va)

    def fault_path(self, va: int) -> FaultPath:
        return self.page_table.fault_path(va)

    def frame_of(self, vpn: int) -> int | None:
        return self.page_table.frame_of(vpn)

    def cluster_frames(self, vpn: int) -> list[int | None]:
        return self.page_table.cluster_frames(vpn)

    # ------------------------------------------------------------------
    # Table 2 inventory
    # ------------------------------------------------------------------
    def pt_page_count(self) -> int:
        return self.page_table.node_count()

    def pt_contiguous_regions(self) -> int:
        """Number of maximal physically contiguous runs of PT pages."""
        frames = sorted(self.page_table.node_frames())
        if not frames:
            return 0
        regions = 1
        for prev, cur in zip(frames, frames[1:]):
            if cur != prev + 1:
                regions += 1
        return regions
