"""Virtual Memory Areas and the per-process VMA tree (§3.2).

A VMA is one contiguous range of allocated virtual addresses (heap, stack,
a memory-mapped file, a shared library...).  The paper observes that a small
number of large VMAs cover 99% of an application's footprint (Table 2) and
uses the VMA as the unit of ASAP acceleration: each tracked VMA gets one
range-register descriptor.

The tree is a sorted list with bisection lookup — Linux uses an rbtree (now
a maple tree); the observable behaviour (ordered, non-overlapping ranges
with O(log n) lookup) is the same.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from enum import Enum


class VmaKind(Enum):
    HEAP = "heap"
    STACK = "stack"
    MMAP = "mmap"
    LIBRARY = "library"
    OTHER = "other"


@dataclass
class Vma:
    """One contiguous virtual range. ``end`` is exclusive."""

    start: int
    size: int
    kind: VmaKind = VmaKind.MMAP
    name: str = ""
    growable: bool = False

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, va: int) -> bool:
        return self.start <= va < self.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Vma {self.name or self.kind.value}"
            f" [{self.start:#x}, {self.end:#x}) {self.size >> 20}MB>"
        )


class VmaOverlapError(ValueError):
    """A new VMA would overlap an existing one."""


class VmaTree:
    """Ordered, non-overlapping set of VMAs with bisection lookup."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._vmas: list[Vma] = []

    def __len__(self) -> int:
        return len(self._vmas)

    def __iter__(self):
        return iter(self._vmas)

    def insert(self, vma: Vma) -> Vma:
        idx = bisect_right(self._starts, vma.start)
        prev_vma = self._vmas[idx - 1] if idx > 0 else None
        next_vma = self._vmas[idx] if idx < len(self._vmas) else None
        if prev_vma is not None and prev_vma.end > vma.start:
            raise VmaOverlapError(f"{vma} overlaps {prev_vma}")
        if next_vma is not None and vma.end > next_vma.start:
            raise VmaOverlapError(f"{vma} overlaps {next_vma}")
        self._starts.insert(idx, vma.start)
        self._vmas.insert(idx, vma)
        return vma

    def find(self, va: int) -> Vma | None:
        """The VMA containing ``va``, or None (an unmapped address)."""
        idx = bisect_right(self._starts, va) - 1
        if idx < 0:
            return None
        vma = self._vmas[idx]
        return vma if vma.contains(va) else None

    def extend(self, vma: Vma, delta: int) -> None:
        """Grow ``vma`` upward by ``delta`` bytes (brk/sbrk, §3.7.2)."""
        if not vma.growable:
            raise ValueError(f"{vma} is not growable")
        if delta <= 0:
            raise ValueError("extension must be positive")
        idx = bisect_right(self._starts, vma.start) - 1
        if idx < 0 or self._vmas[idx] is not vma:
            raise KeyError("VMA is not part of this tree")
        next_vma = self._vmas[idx + 1] if idx + 1 < len(self._vmas) else None
        if next_vma is not None and vma.end + delta > next_vma.start:
            raise VmaOverlapError("extension collides with the next VMA")
        vma.size += delta

    # ------------------------------------------------------------------
    # footprint statistics for Table 2
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(v.size for v in self._vmas)

    def count_for_coverage(self, fraction: float = 0.99) -> int:
        """Fewest VMAs (largest first) covering ``fraction`` of the footprint.

        This is the paper's "VMAs for 99% footprint coverage" metric
        (Table 2), which sizes the range-register file.
        """
        if not self._vmas:
            return 0
        target = self.total_bytes * fraction
        covered = 0
        for count, vma in enumerate(
            sorted(self._vmas, key=lambda v: v.size, reverse=True), start=1
        ):
            covered += vma.size
            if covered >= target:
                return count
        return len(self._vmas)

    def largest(self, count: int) -> list[Vma]:
        """The ``count`` largest VMAs — the ones ASAP should track."""
        ranked = sorted(self._vmas, key=lambda v: v.size, reverse=True)
        return ranked[:count]
