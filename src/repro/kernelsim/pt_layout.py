"""The ASAP OS extension: contiguous, VA-sorted page-table regions (§3.3).

At VMA creation time the OS reserves, per prefetch-target PT level, a
physically contiguous region sized for every node the VMA can need.  Node
``tag`` (the VA prefix selecting it) then maps to physical page
``region_base + (tag - first_tag)``: contiguity *and* sorted order, which is
what makes the range-register base-plus-offset computation exact:

    entry_addr(va, L) = descriptor_base(L) + ((va >> level_shift(L)) << 3)

Growth (§3.7.2) consumes the pre-cleared headroom the OS keeps above each
region (asynchronous background extension); once exhausted — or when the
pinned-page lottery strikes — nodes are placed out of region by the buddy
allocator and recorded as *holes*: the walker still works (the radix tree is
pointer-based) but prefetches to those nodes fetch a useless line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.vma import Vma
from repro.pagetable import constants as c


@dataclass
class PtRegion:
    """One reserved region: all level-``level`` nodes of one VMA."""

    level: int
    first_tag: int
    capacity: int  # nodes currently covered by the reservation
    base_frame: int
    reserved_total: int = 0  # capacity + growth headroom at creation time
    holes: set[int] = field(default_factory=set)
    extension_dead: bool = False

    @property
    def base_addr(self) -> int:
        return self.base_frame << c.PAGE_SHIFT

    @property
    def descriptor_base(self) -> int:
        """Base for the range-register arithmetic (may be negative)."""
        return self.base_addr - self.first_tag * c.NODE_BYTES

    def node_addr(self, tag: int) -> int:
        return self.base_addr + (tag - self.first_tag) * c.NODE_BYTES

    def covers(self, tag: int) -> bool:
        return self.first_tag <= tag < self.first_tag + self.capacity


def _tag_span(vma: Vma, level: int) -> tuple[int, int]:
    """(first_tag, node_count) of the level-``level`` nodes mapping ``vma``."""
    first = c.node_tag(vma.start, level)
    last = c.node_tag(vma.end - 1, level)
    return first, last - first + 1


class AsapPtLayout:
    """Reserves and assigns sorted PT regions for prefetch-target levels."""

    def __init__(
        self,
        buddy: BuddyAllocator,
        levels: tuple[int, ...] = (1, 2),
        headroom_fraction: float = 0.5,
        pinned_failure_prob: float = 0.0,
        fallback_pool: str = "pt",
        seed: int = 0,
    ) -> None:
        self.buddy = buddy
        self.levels = tuple(sorted(levels))
        self.headroom_fraction = headroom_fraction
        self.pinned_failure_prob = pinned_failure_prob
        self.fallback_pool = fallback_pool
        self._rng = random.Random(seed)
        self._regions: dict[tuple[int, int], PtRegion] = {}
        self.holes_created = 0
        self.nodes_placed_in_region = 0

    # ------------------------------------------------------------------
    def register_vma(self, vma: Vma) -> None:
        """Reserve contiguous regions for the VMA's target PT levels."""
        for level in self.levels:
            key = (id(vma), level)
            if key in self._regions:
                continue
            first_tag, count = _tag_span(vma, level)
            headroom = 0
            if vma.growable:
                headroom = max(1, int(count * self.headroom_fraction))
            base = self.buddy.reserve_contiguous(count, headroom)
            self._regions[key] = PtRegion(
                level=level, first_tag=first_tag, capacity=count,
                base_frame=base, reserved_total=count + headroom,
            )

    def region(self, vma: Vma, level: int) -> PtRegion | None:
        return self._regions.get((id(vma), level))

    def is_registered(self, vma: Vma) -> bool:
        return any((id(vma), level) in self._regions for level in self.levels)

    # ------------------------------------------------------------------
    def place_node(self, vma: Vma | None, level: int, tag: int) -> int:
        """Physical base address for a new node (fault-time placement)."""
        region = None if vma is None else self._regions.get((id(vma), level))
        if region is None:
            return self._fallback(None, level, tag)
        if region.covers(tag):
            return self._place_in_region(region, tag)
        # The VMA grew beyond the reservation: try the asynchronous
        # background extension (§3.7.2).
        if not region.extension_dead:
            needed = tag - (region.first_tag + region.capacity) + 1
            if needed > 0 and self.buddy.try_extend(region.base_frame, needed):
                region.capacity += needed
                return self._place_in_region(region, tag)
            region.extension_dead = True
        return self._fallback(region, level, tag)

    def _place_in_region(self, region: PtRegion, tag: int) -> int:
        if (
            self.pinned_failure_prob
            and self._rng.random() < self.pinned_failure_prob
        ):
            return self._fallback(region, region.level, tag)
        self.nodes_placed_in_region += 1
        return region.node_addr(tag)

    def _fallback(
        self, region: PtRegion | None, level: int, tag: int
    ) -> int:
        frame = self.buddy.alloc_frame(self.fallback_pool)
        if region is not None:
            region.holes.add(tag)
            self.holes_created += 1
        return frame << c.PAGE_SHIFT

    # ------------------------------------------------------------------
    def is_hole(self, vma: Vma, level: int, va: int) -> bool:
        """Would a base-plus-offset prefetch for ``va`` at ``level`` miss
        the real node?  True for nodes placed out of region."""
        region = self._regions.get((id(vma), level))
        if region is None:
            return True
        tag = c.node_tag(va, level)
        return tag in region.holes or not region.covers(tag)

    def descriptor_bases(self, vma: Vma) -> dict[int, int]:
        """level -> base operand for the VMA's range-register descriptor."""
        bases = {}
        for level in self.levels:
            region = self._regions.get((id(vma), level))
            if region is not None:
                bases[level] = region.descriptor_base
        return bases

    @property
    def total_reserved_bytes(self) -> int:
        return sum(r.capacity for r in self._regions.values()) * c.PAGE_SIZE
