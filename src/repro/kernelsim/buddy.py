"""A behavioural model of the Linux buddy allocator.

The paper's argument hinges on two buddy-allocator behaviours (§3.3):

* it optimises for allocation *speed*, serving single pages from the first
  available slot, so related allocations end up scattered across physical
  memory with no correspondence to virtual order;
* it does produce *short contiguous runs*: consecutive allocations from the
  same stream often come from one free chunk until it is exhausted, which is
  why Table 2 reports thousands of contiguous PT regions (a handful of pages
  each) rather than one region or millions.

We model exactly that: each allocation *pool* (data pages, page-table pages,
per-VM pools, ...) draws frames from a current run; run lengths are sampled
from a geometric-like distribution whose mean is the pool's fragmentation
knob; when a run is exhausted a new run starts at a random, previously
unused spot.  Bigger means = a healthier, less fragmented machine.

Contiguous *reservations* (what ASAP asks the OS for at VMA-creation time)
are carved from a dedicated area at the top of physical memory, modelling a
CMA-style reserved zone.  Each reservation is created with growth *headroom*
above it; the asynchronous region extension of §3.7.2 succeeds while
headroom remains and fails afterwards, which is how ASAP "holes" arise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.kernelsim.phys import PhysicalMemory

#: Frames per placement slot for randomly placed runs (16MB granules).
_SLOT_FRAMES = 4096


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation or reservation cannot be satisfied."""


@dataclass
class _Pool:
    """One allocation stream with its own current run.

    Runs are carved from per-pool *arenas* (randomly placed 16MB slots):
    consecutive runs sit in the same arena separated by a one-frame guard
    gap — physically near each other (as buddy free-lists produce) but
    never contiguous, so fragmentation statistics stay honest while a slot
    serves hundreds of runs.
    """

    mean_run: float
    next_frame: int = 0
    remaining: int = 0
    runs_started: int = 0
    arena_next: int = 0
    arena_remaining: int = 0
    arena_runs: int = 0


@dataclass
class _Reservation:
    base: int
    frames: int
    headroom: int  # free frames directly above (higher addresses)


@dataclass
class BuddyStats:
    frames_allocated: int = 0
    reservations: int = 0
    reserved_frames: int = 0
    extensions_ok: int = 0
    extensions_failed: int = 0


class BuddyAllocator:
    """Pool-based first-fit frame allocator with a fragmentation model."""

    def __init__(
        self,
        memory: PhysicalMemory | None = None,
        seed: int = 0,
        default_mean_run: float = 8.0,
        runs_per_arena: int = 4,
    ) -> None:
        self.memory = memory or PhysicalMemory()
        self._rng = random.Random(seed)
        self._default_mean_run = default_mean_run
        #: How many runs an arena serves before the pool moves to a fresh
        #: random slot.  Low values disperse allocations across physical
        #: memory (a long-running machine's free lists), high values pack
        #: them; 4 balances dispersion against slot consumption.
        self.runs_per_arena = max(1, runs_per_arena)
        self._pools: dict[str, _Pool] = {}
        self._used_slots: set[int] = set()
        # Reservations grow downward from the top of memory.
        self._reserve_top = self.memory.total_frames
        self._reservations: dict[int, _Reservation] = {}
        self._num_slots = self.memory.total_frames // _SLOT_FRAMES
        self.stats = BuddyStats()

    # ------------------------------------------------------------------
    # single-frame pools (data pages, lazily allocated PT pages, ...)
    # ------------------------------------------------------------------
    def configure_pool(self, pool: str, mean_run: float) -> None:
        """Set the fragmentation knob (mean contiguous run) for a pool."""
        if mean_run < 1.0:
            raise ValueError("mean run length must be at least one frame")
        existing = self._pools.get(pool)
        if existing is None:
            self._pools[pool] = _Pool(mean_run=mean_run)
        else:
            existing.mean_run = mean_run

    def _pool(self, pool: str) -> _Pool:
        state = self._pools.get(pool)
        if state is None:
            state = _Pool(mean_run=self._default_mean_run)
            self._pools[pool] = state
        return state

    def _open_arena(self, state: _Pool) -> None:
        for _ in range(256):
            slot = self._rng.randrange(self._num_slots)
            if slot in self._used_slots:
                continue
            base = slot * _SLOT_FRAMES
            if base + _SLOT_FRAMES > self._reserve_top:
                continue
            self._used_slots.add(slot)
            state.arena_next = base
            state.arena_remaining = _SLOT_FRAMES
            state.arena_runs = 0
            return
        # Memory is nearly full: fall back to a linear scan (the buddy
        # allocator never fails while free memory remains; only true
        # exhaustion raises).
        usable = min(self._num_slots, self._reserve_top // _SLOT_FRAMES)
        for slot in range(usable):
            if slot in self._used_slots:
                continue
            self._used_slots.add(slot)
            state.arena_next = slot * _SLOT_FRAMES
            state.arena_remaining = _SLOT_FRAMES
            state.arena_runs = 0
            return
        raise OutOfMemoryError("could not place a new allocation arena")

    def _start_run(self, state: _Pool, length: int | None = None) -> None:
        if length is None:
            length = min(
                _SLOT_FRAMES,
                1 + int(self._rng.expovariate(1.0 / state.mean_run)),
            )
        guard = 0 if length >= _SLOT_FRAMES else 1
        # Dispersion: abandon the arena after a few runs — but only while
        # free slots are plentiful.  Under memory pressure the allocator
        # packs arenas fully instead of failing (as a real buddy would).
        plentiful = len(self._used_slots) < self._num_slots // 2
        if state.arena_remaining < length + guard or (
                plentiful and state.arena_runs >= self.runs_per_arena):
            self._open_arena(state)
        state.next_frame = state.arena_next
        state.remaining = length
        state.arena_next += length + guard
        state.arena_remaining -= length + guard
        state.arena_runs += 1
        state.runs_started += 1

    def alloc_frame(self, pool: str = "data") -> int:
        """Allocate one frame from ``pool``'s current run."""
        state = self._pool(pool)
        if state.remaining <= 0:
            self._start_run(state)
        frame = state.next_frame
        state.next_frame += 1
        state.remaining -= 1
        self.stats.frames_allocated += 1
        return frame

    def alloc_frames(self, count: int, pool: str = "data") -> list[int]:
        return [self.alloc_frame(pool) for _ in range(count)]

    def alloc_run(
        self, count: int, pool: str = "data", aligned: bool = True
    ) -> int:
        """Allocate ``count`` physically contiguous frames from ``pool``.

        Used for 2MB page backing (512 frames, naturally aligned).  When
        the current run cannot fit the (aligned) request, a fresh full-size
        run is started so repeated large allocations pack together — the
        behaviour transparent-hugepage compaction works to provide.
        """
        if not 0 < count <= _SLOT_FRAMES:
            raise ValueError(f"run of {count} frames is not allocatable")
        if aligned and count & (count - 1):
            raise ValueError("aligned runs must be a power of two")
        state = self._pool(pool)
        start = state.next_frame
        pad = (-start) % count if aligned else 0
        if state.remaining < pad + count:
            self._start_run(state, length=_SLOT_FRAMES)
            start = state.next_frame  # slot bases are 4096-frame aligned
            pad = (-start) % count
        state.next_frame = start + pad + count
        state.remaining -= pad + count
        self.stats.frames_allocated += count
        return start + pad

    def break_run(self, pool: str = "data") -> None:
        """Force the next allocation from ``pool`` to start a fresh run.

        Models interference: another process grabbing the adjacent free
        pages between our allocations.
        """
        self._pool(pool).remaining = 0

    # ------------------------------------------------------------------
    # contiguous reservations (the ASAP OS extension, §3.3 / §3.7.2)
    # ------------------------------------------------------------------
    def reserve_contiguous(
        self, frames: int, headroom: int = 0, align: int = 1
    ) -> int:
        """Reserve ``frames`` contiguous frames plus growth ``headroom``.

        Returns the base frame of the usable region (``align``-frame
        aligned).  The headroom sits at higher addresses than the region
        and is consumed by later :meth:`try_extend` calls.
        """
        if frames <= 0:
            raise ValueError("reservation must cover at least one frame")
        total = frames + headroom
        if self._reserve_top - total < 0:
            raise OutOfMemoryError("reservation exceeds physical memory")
        self._reserve_top -= total
        if align > 1:
            self._reserve_top -= self._reserve_top % align
            if self._reserve_top < 0:
                raise OutOfMemoryError("reservation exceeds physical memory")
        base = self._reserve_top
        self._reservations[base] = _Reservation(base, frames, headroom)
        self.stats.reservations += 1
        self.stats.reserved_frames += total
        return base

    def try_extend(self, base: int, frames: int) -> bool:
        """Grow the reservation at ``base`` upward by ``frames``.

        Mirrors the asynchronous region extension of §3.7.2: succeeds while
        pre-cleared headroom remains, fails once the adjacent memory is
        occupied (at which point the OS must place PT pages out of region,
        creating ASAP holes).
        """
        reservation = self._reservations.get(base)
        if reservation is None:
            raise KeyError(f"no reservation at frame {base}")
        if frames <= reservation.headroom:
            reservation.headroom -= frames
            reservation.frames += frames
            self.stats.extensions_ok += 1
            return True
        self.stats.extensions_failed += 1
        return False

    def reservation_size(self, base: int) -> int:
        return self._reservations[base].frames

    # ------------------------------------------------------------------
    @property
    def reserved_region_start(self) -> int:
        return self._reserve_top

    def pool_runs(self, pool: str) -> int:
        state = self._pools.get(pool)
        return state.runs_started if state else 0
