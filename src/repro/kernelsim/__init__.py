"""Simulated OS substrate: physical memory, buddy allocator, VMAs, demand
paging, the ASAP page-table layout extension and nested virtualization.

Paper cross-references: §3.2 (VMA structure of server workloads, Table 2),
§3.3 (inducing physically contiguous, VA-sorted PT levels), §3.7 (kernel
modifications: reservations, holes, reclamation), §2.3/Table 4
(virtualized deployment and nested page tables).
"""

from repro.kernelsim.buddy import BuddyAllocator, OutOfMemoryError
from repro.kernelsim.hypervisor import VirtualMachine
from repro.pagetable.nested import NestedStep, NestedWalkPath
from repro.kernelsim.phys import PhysicalMemory
from repro.kernelsim.process import (
    ProcessAddressSpace,
    SegmentationFault,
    TouchResult,
)
from repro.kernelsim.pt_layout import AsapPtLayout, PtRegion
from repro.kernelsim.vma import Vma, VmaKind, VmaOverlapError, VmaTree

__all__ = [
    "AsapPtLayout",
    "BuddyAllocator",
    "NestedStep",
    "NestedWalkPath",
    "OutOfMemoryError",
    "PhysicalMemory",
    "ProcessAddressSpace",
    "PtRegion",
    "SegmentationFault",
    "TouchResult",
    "Vma",
    "VmaKind",
    "VmaOverlapError",
    "VmaTree",
]
