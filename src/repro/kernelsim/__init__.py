"""Simulated OS substrate: physical memory, buddy allocator, VMAs, demand
paging, the ASAP page-table layout extension and nested virtualization."""

from repro.kernelsim.buddy import BuddyAllocator, OutOfMemoryError
from repro.kernelsim.hypervisor import VirtualMachine
from repro.pagetable.nested import NestedStep, NestedWalkPath
from repro.kernelsim.phys import PhysicalMemory
from repro.kernelsim.process import (
    ProcessAddressSpace,
    SegmentationFault,
    TouchResult,
)
from repro.kernelsim.pt_layout import AsapPtLayout, PtRegion
from repro.kernelsim.vma import Vma, VmaKind, VmaOverlapError, VmaTree

__all__ = [
    "AsapPtLayout",
    "BuddyAllocator",
    "NestedStep",
    "NestedWalkPath",
    "OutOfMemoryError",
    "PhysicalMemory",
    "ProcessAddressSpace",
    "PtRegion",
    "SegmentationFault",
    "TouchResult",
    "Vma",
    "VmaKind",
    "VmaOverlapError",
    "VmaTree",
]
