"""The structured table model shared by every experiment module.

Historically each module rendered its own strings; now all results flow
through one :class:`Table` of :class:`Cell` values and a single renderer
used by ``tables()``, the incremental reporter, ``repro.service.assemble``
and the HTTP dashboard.  Three design rules keep the refactor invisible
where replication is off:

* :class:`Cell` subclasses :class:`float` — its value is the sample
  mean — so every numeric consumer (sorting, averaging, golden
  comparisons, ``pytest.approx``) keeps working unchanged;
* a single-sample cell renders exactly as the bare float always did
  (``f"{value:.2f}"``), so replicate-0-only tables are byte-identical
  to the pre-statistics output;
* a multi-sample cell renders ``mean ±half-width`` of its 95%
  percentile-bootstrap confidence interval, with a ``*`` suffix where
  the Mann-Whitney U test against the table's named baseline column
  rejects "same distribution" at p < :data:`ALPHA`.

Tables serialize to plain-JSON payloads (:meth:`Table.payload` /
:meth:`Table.from_payload`) so the incremental reporter can persist the
*cell model* — samples, intervals, p-values — rather than rendered
strings, and re-render any stored section through this one renderer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.stats import kernels

#: Two-sided significance level for the baseline-comparison marker.
ALPHA = 0.05

#: Confidence level of every rendered interval.
CONFIDENCE = 0.95


def _rebuild_cell(value, samples, ci, significant, p_value):
    return Cell(value, samples=samples, ci=ci, significant=significant,
                p_value=p_value)


class Cell(float):
    """One table value plus its replication evidence.

    The float value is the mean over ``samples`` (one sample per
    replicate seed).  ``ci`` is the percentile-bootstrap confidence
    interval (``None`` for single-sample cells), ``p_value`` the
    Mann-Whitney p against the table's baseline column (``None``
    where no comparison applies) and ``significant`` its verdict at
    p < :data:`ALPHA`.
    """

    samples: tuple[float, ...]
    ci: tuple[float, float] | None
    significant: bool
    p_value: float | None

    def __new__(cls, value: float,
                samples: Sequence[float] = (),
                ci: tuple[float, float] | None = None,
                significant: bool = False,
                p_value: float | None = None) -> "Cell":
        cell = super().__new__(cls, value)
        cell.samples = (tuple(float(s) for s in samples)
                        or (float(value),))
        cell.ci = None if ci is None else (float(ci[0]), float(ci[1]))
        cell.significant = bool(significant)
        cell.p_value = None if p_value is None else float(p_value)
        return cell

    def __reduce__(self):
        return (_rebuild_cell, (float(self), self.samples, self.ci,
                                self.significant, self.p_value))

    @property
    def half_width(self) -> float:
        """Half the confidence interval's width (0.0 without one)."""
        if self.ci is None:
            return 0.0
        return (self.ci[1] - self.ci[0]) / 2.0

    def render(self) -> str:
        text = f"{float(self):.2f}"
        if self.ci is not None:
            text += f" ±{self.half_width:.2f}"
        if self.significant:
            text += "*"
        return text


def aggregate(samples: Sequence[float], key: str,
              baseline: Sequence[float] | None = None) -> Cell:
    """Summarize one cell's per-seed samples into a :class:`Cell`.

    ``key`` seeds the bootstrap deterministically — by convention the
    joined spec hashes of the jobs that produced ``samples``.
    ``baseline`` is the matching sample list of the table's baseline
    column; when both sides carry replication the Mann-Whitney U test
    decides the significance marker.
    """
    values = [float(s) for s in samples]
    if not values:
        raise ValueError("aggregate of an empty sample list")
    ci = (kernels.bootstrap_ci(values, key=key, confidence=CONFIDENCE)
          if len(values) > 1 else None)
    significant = False
    p_value = None
    if baseline is not None and len(values) > 1 and len(baseline) > 1:
        _, p_value = kernels.mann_whitney_u(values, list(baseline))
        significant = p_value < ALPHA
    return Cell(kernels.mean(values), samples=values, ci=ci,
                significant=significant, p_value=p_value)


# ----------------------------------------------------------------------
def _canon(value: Any) -> Any:
    """JSON-safe form of one row value (numpy scalars -> python)."""
    if isinstance(value, Cell):
        return {
            "value": float(value),
            "samples": list(value.samples),
            "ci": None if value.ci is None else list(value.ci),
            "significant": value.significant,
            "p_value": value.p_value,
        }
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if hasattr(value, "item"):  # numpy scalar, without importing numpy
        return _canon(value.item())
    return str(value)


def _revive(value: Any) -> Any:
    if isinstance(value, dict):
        return Cell(value["value"], samples=value["samples"],
                    ci=None if value["ci"] is None else tuple(value["ci"]),
                    significant=value["significant"],
                    p_value=value["p_value"])
    return value


@dataclass
class Table:
    """Labelled rows plus formatting, one per reproduced table/figure.

    ``baseline`` names the column whose cells anchor the significance
    markers (``None`` for tables without a scheme-vs-scheme reading);
    it is carried in the payload so a re-rendered stored section keeps
    its meaning.
    """

    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""
    baseline: str | None = None

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def row_by(self, key_column: str, key: Any) -> dict[str, Any]:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")

    # ------------------------------------------------------------------
    def render(self) -> str:
        def fmt(value: Any) -> str:
            if isinstance(value, Cell):
                return value.render()
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        widths = {
            column: max(
                len(column),
                *(len(fmt(row.get(column, ""))) for row in self.rows),
            ) if self.rows else len(column)
            for column in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(
                    fmt(row.get(c, "")).rjust(widths[c])
                    if isinstance(row.get(c), (int, float))
                    else fmt(row.get(c, "")).ljust(widths[c])
                    for c in self.columns
                )
            )
        lines.append(rule)
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

    # ------------------------------------------------------------------
    def payload(self) -> dict[str, Any]:
        """Plain-JSON form of the full cell model (loss-free)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "baseline": self.baseline,
            "notes": self.notes,
            "rows": [{column: _canon(value)
                      for column, value in row.items()}
                     for row in self.rows],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "Table":
        table = cls(title=payload["title"],
                    columns=list(payload["columns"]),
                    notes=payload.get("notes", ""),
                    baseline=payload.get("baseline"))
        for row in payload["rows"]:
            table.add_row(**{column: _revive(value)
                             for column, value in row.items()})
        return table


__all__ = ["ALPHA", "CONFIDENCE", "Cell", "Table", "aggregate"]
