"""Deterministic randomness for the statistics layer.

Every resampling procedure in :mod:`repro.stats.kernels` (bootstrap,
Monte-Carlo permutation) draws from a :class:`SplitMix64` stream seeded
by :func:`seed_from` over the *content it summarizes* — in practice the
spec hashes of the jobs whose samples feed a cell.  Two consequences:

* re-running a report reproduces every confidence interval bit-for-bit,
  on any machine, in any process — there is no ``random``-module state,
  no global seeding order to get right;
* two cells summarizing different jobs draw from independent streams
  even inside one pass, so no interval can alias another's resamples.

SplitMix64 is the standard 64-bit mixer (Steele et al., "Fast
splittable pseudorandom number generators"): tiny, dependency-free and
statistically strong enough for resampling work.
"""

from __future__ import annotations

import hashlib

_MASK64 = (1 << 64) - 1


def seed_from(*parts: object) -> int:
    """A 64-bit seed derived from the content of ``parts``.

    Parts are joined with an unambiguous separator and hashed with
    SHA-256, so ``seed_from("a", "bc")`` and ``seed_from("ab", "c")``
    differ and the mapping is stable across processes and platforms.
    """
    joined = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(joined.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SplitMix64:
    """The SplitMix64 generator: one 64-bit word of state."""

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return (self.next_u64() >> 11) * (2.0 ** -53)

    def randrange(self, n: int) -> int:
        """Unbiased integer in [0, n) (rejection sampling)."""
        if n <= 0:
            raise ValueError(f"randrange needs n >= 1, got {n}")
        limit = (1 << 64) - ((1 << 64) % n)
        while True:
            value = self.next_u64()
            if value < limit:
                return value % n


__all__ = ["SplitMix64", "seed_from"]
