"""Statistics layer: deterministic kernels and the structured table model.

Three modules, no third-party dependencies:

* :mod:`repro.stats.rng` — content-seeded SplitMix64 streams (no
  ``random``-module state anywhere in the layer);
* :mod:`repro.stats.kernels` — mean/median/percentile, percentile-
  bootstrap confidence intervals, exact Mann-Whitney U and paired
  permutation tests, Vargha-Delaney A12;
* :mod:`repro.stats.tables` — the shared :class:`~repro.stats.tables.Table`
  / :class:`~repro.stats.tables.Cell` model and the one renderer every
  experiment table goes through.

The replication axis itself lives on
:class:`repro.sim.runner.Scale` (``Scale.with_replicate``); see
docs/ARCHITECTURE.md §15.
"""

from repro.stats.kernels import (
    a12,
    bootstrap_ci,
    mann_whitney_u,
    mean,
    median,
    paired_permutation_test,
    percentile,
)
from repro.stats.rng import SplitMix64, seed_from
from repro.stats.tables import ALPHA, CONFIDENCE, Cell, Table, aggregate

__all__ = [
    "ALPHA",
    "CONFIDENCE",
    "Cell",
    "SplitMix64",
    "Table",
    "a12",
    "aggregate",
    "bootstrap_ci",
    "mann_whitney_u",
    "mean",
    "median",
    "paired_permutation_test",
    "percentile",
    "seed_from",
]
