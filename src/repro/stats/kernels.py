"""Dependency-free statistics kernels for replicated experiment cells.

Everything here operates on small plain-python sample lists (one sample
per replicate seed, so typically 3-10 values) and is deterministic:
resampling procedures take a ``key`` string — by convention the joined
spec hashes of the jobs that produced the samples — and derive their
random stream from it (:mod:`repro.stats.rng`).  No ``random``-module
or numpy global state is touched.

The toolbox follows FuzzBench's ``analysis/stat_tests`` selection for
benchmark comparisons: percentile-bootstrap confidence intervals for
"how wide is this estimate", the Mann-Whitney U rank test for "are
these two schemes drawn from the same distribution" (no normality
assumption — translation fractions are bounded and skewed), a paired
permutation test for matched per-seed designs, and the Vargha-Delaney
A12 effect size for "how often does one beat the other".

Exactness over approximation at our sample counts: Mann-Whitney
enumerates the full permutation distribution up to
:data:`MAX_EXACT_SPLITS` arrangements (5-vs-5 is 252), and the paired
permutation test enumerates all sign flips up to 2^:data:`MAX_EXACT_FLIPS`,
so p-values at report scale are exact, not asymptotic.  Larger inputs
fall back to the tie-corrected normal approximation / Monte Carlo.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Sequence

from repro.stats.rng import SplitMix64, seed_from

#: Largest number of pooled arrangements the Mann-Whitney test will
#: enumerate exactly; beyond it the tie-corrected normal approximation
#: takes over.  C(10, 5) = 252, C(16, 8) = 12870 — report-scale inputs
#: are always exact.
MAX_EXACT_SPLITS = 20_000

#: Largest paired-sample count whose 2^n sign flips are enumerated
#: exactly by :func:`paired_permutation_test`.
MAX_EXACT_FLIPS = 16

#: Default bootstrap resample count — enough that the 95% percentile
#: endpoints are stable to well under a rendered 0.01.
BOOTSTRAP_RESAMPLES = 1_000


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100) with linear interpolation between
    closest ranks (numpy's default method)."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (q / 100.0) * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


# ----------------------------------------------------------------------
def bootstrap_ci(samples: Sequence[float], key: str,
                 confidence: float = 0.95,
                 resamples: int = BOOTSTRAP_RESAMPLES,
                 statistic=mean) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``statistic``.

    ``key`` seeds the resampling stream (spec hashes, by convention), so
    the interval is a pure function of (samples, key, parameters).
    A single-sample input has no spread to estimate; the interval
    degenerates to the point.
    """
    if not samples:
        raise ValueError("bootstrap_ci of an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    values = [float(v) for v in samples]
    if len(values) == 1:
        return (values[0], values[0])
    rng = SplitMix64(seed_from("bootstrap", key, confidence, resamples))
    n = len(values)
    stats = sorted(
        statistic([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    alpha = 1.0 - confidence
    return (percentile(stats, 100.0 * (alpha / 2.0)),
            percentile(stats, 100.0 * (1.0 - alpha / 2.0)))


# ----------------------------------------------------------------------
def _u_statistic(a: Sequence[float], b: Sequence[float]) -> float:
    """U for sample ``a``: pairs won plus half the ties."""
    u = 0.0
    for x in a:
        for y in b:
            if x > y:
                u += 1.0
            elif x == y:
                u += 0.5
    return u


def _normal_sf(z: float) -> float:
    """P(Z > z) for a standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mann_whitney_u(a: Sequence[float],
                   b: Sequence[float]) -> tuple[float, float]:
    """Two-sided Mann-Whitney U test: ``(U, p)`` for sample ``a`` vs ``b``.

    Up to :data:`MAX_EXACT_SPLITS` arrangements the p-value is exact:
    the pooled values are re-split into every possible (a, b) labelling
    and the two-sided tail mass of ``|U - nm/2|`` is counted — ties are
    handled naturally because equal values contribute half-wins under
    every labelling.  Beyond that, the tie-corrected normal
    approximation (with continuity correction) is used.
    """
    if not a or not b:
        raise ValueError("mann_whitney_u needs two non-empty samples")
    a = [float(v) for v in a]
    b = [float(v) for v in b]
    n, m = len(a), len(b)
    observed = _u_statistic(a, b)
    mu = n * m / 2.0
    total = math.comb(n + m, n)
    if total <= MAX_EXACT_SPLITS:
        pooled = a + b
        indices = range(n + m)
        extreme = 0
        threshold = abs(observed - mu) - 1e-12
        for chosen in combinations(indices, n):
            chosen_set = set(chosen)
            a_split = [pooled[i] for i in chosen]
            b_split = [pooled[i] for i in indices if i not in chosen_set]
            if abs(_u_statistic(a_split, b_split) - mu) >= threshold:
                extreme += 1
        return observed, extreme / total
    # Normal approximation with tie correction.
    pooled = sorted(a + b)
    tie_term = 0.0
    i = 0
    while i < len(pooled):
        j = i
        while j < len(pooled) and pooled[j] == pooled[i]:
            j += 1
        t = j - i
        tie_term += t ** 3 - t
        i = j
    count = n + m
    variance = (n * m / 12.0) * ((count + 1)
                                 - tie_term / (count * (count - 1)))
    if variance <= 0.0:  # every pooled value identical
        return observed, 1.0
    z = (abs(observed - mu) - 0.5) / math.sqrt(variance)
    return observed, min(1.0, 2.0 * _normal_sf(max(z, 0.0)))


# ----------------------------------------------------------------------
def paired_permutation_test(a: Sequence[float], b: Sequence[float],
                            key: str = "",
                            rounds: int = 10_000) -> float:
    """Two-sided paired permutation test on the mean difference.

    The samples are matched per index (same replicate seed on both
    sides).  Up to :data:`MAX_EXACT_FLIPS` pairs, all 2^n sign flips
    are enumerated; beyond that ``rounds`` Monte-Carlo flips drawn from
    a stream seeded by ``key``.
    """
    if len(a) != len(b):
        raise ValueError(f"paired samples differ in length "
                         f"({len(a)} vs {len(b)})")
    if not a:
        raise ValueError("paired_permutation_test of empty samples")
    diffs = [float(x) - float(y) for x, y in zip(a, b)]
    observed = abs(mean(diffs))
    threshold = observed - 1e-12
    n = len(diffs)
    if n <= MAX_EXACT_FLIPS:
        extreme = 0
        for signs in range(1 << n):
            total = sum(d if signs & (1 << i) else -d
                        for i, d in enumerate(diffs))
            if abs(total / n) >= threshold:
                extreme += 1
        return extreme / (1 << n)
    rng = SplitMix64(seed_from("paired-permutation", key, rounds))
    extreme = 1  # the identity assignment is always as extreme
    for _ in range(rounds):
        total = sum(d if rng.random() < 0.5 else -d for d in diffs)
        if abs(total / n) >= threshold:
            extreme += 1
    return extreme / (rounds + 1)


def a12(a: Sequence[float], b: Sequence[float]) -> float:
    """Vargha-Delaney A12 effect size: P(a > b) + 0.5 P(a = b).

    0.5 means no effect; 1.0 means every ``a`` beats every ``b``.
    """
    if not a or not b:
        raise ValueError("a12 needs two non-empty samples")
    return _u_statistic(a, b) / (len(a) * len(b))


__all__ = [
    "BOOTSTRAP_RESAMPLES",
    "MAX_EXACT_FLIPS",
    "MAX_EXACT_SPLITS",
    "a12",
    "bootstrap_ci",
    "mann_whitney_u",
    "mean",
    "median",
    "paired_permutation_test",
    "percentile",
]
