"""Benchmark: regenerate the multi-tenant consolidation sweep."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import mt


def test_mt(benchmark):
    native, virt, retention = run_once(benchmark, mt.run, BENCH_SCALE)
    print()
    for table in (native, virt, retention):
        print(table.render())
        print()
    isolated = native.row_by("scenario", "isolated")
    consolidated = [row for row in native.rows
                    if row["scenario"] != "isolated"]
    # Consolidation raises translation pressure over the isolated mean
    # for the walk-based schemes.
    for name in ("baseline", "asap"):
        assert max(row[name] for row in consolidated) > isolated[name]
    # ASAP keeps beating the baseline under consolidation.
    for row in consolidated:
        assert row["asap"] < row["baseline"]
    # ASID retention is never a meaningful regression over flushing.
    for row in retention.rows:
        assert row["native_mean"] > -1.0
