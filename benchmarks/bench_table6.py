"""Benchmark: regenerate Table 6 (performance improvement projection)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import table6


def test_table6(benchmark):
    table = run_once(benchmark, table6.run, BENCH_SCALE)
    print()
    print(table.render())
    average = table.row_by("workload", "Average")
    # Walks are a substantial critical-path share; ASAP converts a large
    # virtualized walk reduction into a double-digit-ish speedup estimate.
    assert average["critical_path_%"] > 10
    assert average["asap_reduction_%"] > 15
    assert average["min_improvement_%"] > 3
    # The memory-bound workloads (graphs, redis) project far larger
    # improvements than the PWC-friendly mcf — the paper's ordering.
    by = {row["workload"]: row["min_improvement_%"] for row in table.rows}
    assert by["bfs"] > by["mcf"]
    assert by["pagerank"] > by["mcf"] * 0.9
