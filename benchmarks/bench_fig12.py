"""Benchmark: regenerate Figure 12 (ASAP with 2MB host pages)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig12


def test_fig12(benchmark):
    table = run_once(benchmark, fig12.run, BENCH_SCALE)
    print()
    print(table.render())
    average = table.row_by("workload", "Average")
    # Even with host walks shortened by 2MB pages, ASAP still delivers a
    # considerable reduction, larger under colocation (§5.4.2).
    assert average["red_%"] > 5
    assert average["coloc_red_%"] > average["red_%"] * 0.8
    assert average["Baseline+coloc"] > average["Baseline"]
