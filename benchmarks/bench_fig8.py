"""Benchmark: regenerate Figure 8 (native ASAP ladder, iso + SMT)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig8


def test_fig8(benchmark):
    isolation, colocation = run_once(benchmark, fig8.run, BENCH_SCALE)
    print()
    print(isolation.render())
    print()
    print(colocation.render())
    iso_avg = isolation.row_by("workload", "Average")
    coloc_avg = colocation.row_by("workload", "Average")
    # ASAP always helps; P1+P2 at least matches P1; colocation enlarges
    # the opportunity (the paper's 12/14% -> 20/25% progression).
    assert iso_avg["P1"] < iso_avg["Baseline"]
    assert iso_avg["P1+P2"] <= iso_avg["P1"] * 1.01
    assert coloc_avg["Baseline"] > iso_avg["Baseline"]
    assert coloc_avg["P1+P2_red_%"] > iso_avg["P1+P2_red_%"]
