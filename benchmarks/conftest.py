"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures at
``BENCH_SCALE`` (reduced trace length so a full ``pytest benchmarks/
--benchmark-only`` pass stays tractable) and prints the rendered table so
the output can be read next to the paper.  Absolute latencies shift a few
cycles with scale; the orderings and reduction percentages are stable.

Every benchmark runs exactly once (``pedantic`` with one round): these are
macro experiments, not microbenchmarks, and their interesting output is
the table, with wall-clock time as a secondary signal.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import BENCH_SCALE

__all__ = ["BENCH_SCALE", "run_once"]


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_scale():
    return BENCH_SCALE
