"""Benchmark: regenerate Figure 9 (per-PT-level service distribution)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig9


def test_fig9(benchmark):
    panels = run_once(benchmark, fig9.run, BENCH_SCALE)
    print()
    for panel in panels:
        print(panel.render())
        print()
    mcf_iso, redis_iso, mcf_coloc, _redis_coloc = panels
    # mcf in isolation: PL4/PL3 essentially all covered by the PWC, and
    # most PL1 requests served by the L1-D (the paper's Figure 9a story).
    assert mcf_iso.row_by("pt_level", "PL4")["PWC"] > 90
    assert mcf_iso.row_by("pt_level", "PL3")["PWC"] > 60
    assert mcf_iso.row_by("pt_level", "PL1")["L1"] > 40
    # redis misses the PWC at PL2 far more than mcf does (9b).
    assert redis_iso.row_by("pt_level", "PL2")["PWC"] < \
        mcf_iso.row_by("pt_level", "PL2")["PWC"]
    # Colocation drains the L1-D share (9c vs 9a).
    assert mcf_coloc.row_by("pt_level", "PL1")["L1"] < \
        mcf_iso.row_by("pt_level", "PL1")["L1"]
