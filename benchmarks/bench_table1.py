"""Benchmark: regenerate Table 1 (memcached latency under pressure)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import table1


def test_table1(benchmark):
    table = run_once(benchmark, table1.run, BENCH_SCALE)
    print()
    print(table.render())
    rows = {row["scenario"]: row["normalised"] for row in table.rows}
    # Shape assertions mirroring the paper's ordering.
    assert rows["5x larger dataset (400GB)"] > 1.0
    assert rows["virtualization"] > rows["SMT colocation"]
    assert (rows["virtualization + SMT colocation"]
            > rows["virtualization"])
