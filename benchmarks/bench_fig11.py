"""Benchmark: regenerate Figure 11 + Table 7 (Clustered TLB vs ASAP)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig11


def test_fig11_table7(benchmark):
    fig, tab7 = run_once(benchmark, fig11.run, BENCH_SCALE)
    print()
    print(fig.render())
    print()
    print(tab7.render())
    avg = fig.row_by("workload", "Average")
    # ASAP beats Clustered TLB on walk cycles and the two compose (§5.4.1).
    assert avg["ASAP_%"] > avg["ClusteredTLB_%"]
    assert avg["Clustered+ASAP_%"] >= avg["ASAP_%"]
    # Table 7: coalescing is highly effective for the small-footprint
    # workloads and marginal for the big ones.
    by_app = {row["workload"]: row["reduction_%"] for row in tab7.rows}
    assert by_app["mcf"] > 30
    assert by_app["canneal"] > 20
    assert by_app["mc400"] < 20
