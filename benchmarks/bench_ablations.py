"""Benchmark: regenerate the design-choice ablations (PWC scaling,
five-level page tables, PT-region holes)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import ablations


def test_pwc_scaling(benchmark):
    table = run_once(benchmark, ablations.run_pwc_scaling, BENCH_SCALE)
    print()
    print(table.render())
    average = table.row_by("workload", "Average")
    # Doubling PWCs buys almost nothing (paper: ~2%) — the case for
    # prefetching over more caching.
    assert -2.0 < average["red_%"] < 10.0


def test_five_level(benchmark):
    table = run_once(benchmark, ablations.run_five_level, BENCH_SCALE)
    print()
    print(table.render())
    for row in table.rows:
        assert row["5L_P1+P2+P3"] <= row["5L_P1+P2"] * 1.01
        assert row["5L_red_%"] > 0


def test_holes(benchmark):
    table = run_once(benchmark, ablations.run_holes, BENCH_SCALE)
    print()
    print(table.render())
    walks = [row["avg_walk"] for row in table.rows]
    useful = [row["useful_prefetch_%"] for row in table.rows]
    # More holes -> monotonically less useful prefetching, graceful
    # latency degradation bounded by the baseline.
    assert useful == sorted(useful, reverse=True)
    assert walks[-1] >= walks[0]
