"""Benchmark: regenerate Table 2 (VMA and PT inventory)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import table2


def test_table2(benchmark):
    table = run_once(benchmark, table2.run, BENCH_SCALE)
    print()
    print(table.render())
    by_app = {row["application"]: row for row in table.rows}
    # A handful of VMAs covers 99% everywhere (the range-register premise).
    assert all(row["vmas_for_99pct"] <= 16 for row in table.rows)
    # PT pages are scattered into many contiguous regions under the buddy
    # allocator (the paper's motivation for inducing contiguity).
    assert by_app["mc400"]["contig_phys_regions"] > 1000
    # PT page count tracks footprint/2MB (~1 PL1 node per 2MB).
    assert 30_000 < by_app["mc80"]["pt_page_count"] < 60_000
