"""Benchmark: regenerate Figure 3 (walk latency across scenarios)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig3


def test_fig3(benchmark):
    table = run_once(benchmark, fig3.run, BENCH_SCALE)
    print()
    print(table.render())
    average = table.row_by("workload", "Average")
    assert average["native"] < average["native+coloc"]
    assert average["native"] < average["virtualized"]
    assert average["virt+coloc"] == max(average[c] for c in
                                        table.columns[1:])
