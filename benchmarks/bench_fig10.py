"""Benchmark: regenerate Figure 10 (virtualized ASAP ladder)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig10


def test_fig10(benchmark):
    isolation, colocation = run_once(benchmark, fig10.run, BENCH_SCALE)
    print()
    print(isolation.render())
    print()
    print(colocation.render())
    for table in (isolation, colocation):
        avg = table.row_by("workload", "Average")
        # The ladder: every config beats the baseline, deeper prefetching
        # never hurts, and the full two-dimension config is the best.
        assert avg["P1g"] < avg["Baseline"]
        assert avg["P1g+P2g"] <= avg["P1g"] * 1.01
        assert avg["P1g+P1h"] < avg["Baseline"]
        best = avg["P1g+P1h+P2g+P2h"]
        assert best <= avg["P1g+P1h"] * 1.01
        assert best <= avg["P1g+P2g"] * 1.01
    # Colocation increases both the baseline and ASAP's win.
    assert colocation.row_by("workload", "Average")["Baseline"] > \
        isolation.row_by("workload", "Average")["Baseline"]
