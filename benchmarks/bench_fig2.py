"""Benchmark: regenerate Figure 2 (% of execution time in page walks)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import fig2


def test_fig2(benchmark):
    table = run_once(benchmark, fig2.run, BENCH_SCALE)
    print()
    print(table.render())
    average = table.row_by("workload", "Average")
    # Walks eat a large share of time, and each pressure dimension
    # (colocation, virtualization) increases it.
    assert average["native"] > 10
    assert average["native+coloc"] >= average["native"]
    assert average["virtualized"] > average["native"]
    assert average["virt+coloc"] >= average["virtualized"] * 0.95
