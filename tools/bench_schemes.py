#!/usr/bin/env python3
"""Benchmark the translation-scheme dispatch: wall time per scheme.

Usage::

    PYTHONPATH=src python tools/bench_schemes.py [--output BENCH_schemes.json]
        [--workload mc80] [--trace-length 60000] [--virtualized] [--repeats 3]

Times every registered scheme (`repro.experiments.common.SCHEMES`) on
one fixed workload/trace and writes a JSON record — the repository's
perf trajectory for the simulator hot path.  Two things are tracked:

* **absolute cost** — wall seconds per scheme at the 60k-trace report
  scale, so hot-path regressions show up as a diff in the checked-in
  ``BENCH_schemes.json``;
* **dispatch overhead** — the ``BaselineRadix`` row is the scheme
  layer's price over a scheme-less loop.  Every hook the baseline
  declines is a single ``is not None`` test hoisted out of the record
  loop, so this row moving is the first sign the dispatch grew a
  per-record cost.

Simulation statistics ride along (walks, translation-cycle fraction,
scheme counters) so a perf change that silently changes *behaviour* is
visible in the same diff.  Timings exclude trace generation (the trace
cache is pre-warmed) but include process/VM construction and
population, like any real experiment cell.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.common import SCHEMES  # noqa: E402
from repro.sim.runner import (  # noqa: E402
    Scale,
    make_trace,
    run_native,
    run_virtualized,
)
from repro.workloads.suite import ALL_NAMES, get  # noqa: E402


def bench_one(name: str, workload: str, scale: Scale, virtualized: bool,
              repeats: int) -> dict:
    entry = SCHEMES[name]
    config = entry.virt_config if virtualized else entry.native_config
    runner = run_virtualized if virtualized else run_native
    best = None
    stats = None
    for _ in range(repeats):
        started = time.perf_counter()
        stats = runner(workload, config, scale=scale, scheme=entry.spec,
                       collect_service=False)
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    assert stats is not None
    return {
        "scheme": name,
        "config": config.name,
        "seconds": round(best, 3),
        "walks": stats.walks,
        "walk_cycles": stats.walk_cycles,
        "translation_fraction": round(stats.walk_fraction, 4),
        "avg_walk_latency": round(stats.avg_walk_latency, 1),
        "scheme_stats": stats.scheme_stats,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="mc80", choices=ALL_NAMES)
    parser.add_argument("--trace-length", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--virtualized", action="store_true")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per scheme; the best time is kept")
    parser.add_argument("--output", default=str(REPO_ROOT
                                                / "BENCH_schemes.json"))
    args = parser.parse_args(argv)

    scale = Scale(trace_length=args.trace_length,
                  warmup=args.trace_length // 5, seed=args.seed)
    make_trace(get(args.workload), scale)  # warm the trace cache

    rows = []
    for name in SCHEMES:
        row = bench_one(name, args.workload, scale, args.virtualized,
                        args.repeats)
        rows.append(row)
        print(f"{name:10s} {row['seconds']:7.3f}s  "
              f"walks={row['walks']}  "
              f"translation={100 * row['translation_fraction']:.1f}%")

    baseline = next(r for r in rows if r["scheme"] == "baseline")
    for row in rows:
        row["relative_to_baseline"] = round(
            row["seconds"] / baseline["seconds"], 3)

    document = {
        "benchmark": "scheme dispatch hot path",
        "tool": "tools/bench_schemes.py",
        "workload": args.workload,
        "mode": "virtualized" if args.virtualized else "native",
        "trace_length": args.trace_length,
        "warmup": scale.warmup,
        "seed": args.seed,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated": time.strftime("%Y-%m-%d"),
        "results": rows,
    }
    Path(args.output).write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
