#!/usr/bin/env python3
"""Benchmark the translation-scheme dispatch: wall time per scheme.

Usage::

    PYTHONPATH=src python tools/bench_schemes.py [--output BENCH_schemes.json]
        [--workload mc80] [--trace-length 60000] [--virtualized] [--repeats 3]
        [--seeds 1] [--kernel scalar|columnar]
        [--check-against BENCH_schemes.json [--threshold 1.25]]

Times every registered scheme (`repro.experiments.common.SCHEMES`) on
one fixed workload/trace and records the result in a JSON *trajectory* —
the repository's perf history for the simulator hot path.  Each run
appends one entry (date, interpreter, per-scheme rows) to the output
file's ``entries`` list, so the checked-in ``BENCH_schemes.json`` reads
as a timeline: the PR 2 dict-backed seed, the PR 3 array-backed rewrite,
and whatever comes next.  Three things are tracked:

* **absolute cost** — wall seconds per scheme at the 60k-trace report
  scale, so hot-path regressions show up as a diff in the checked-in
  trajectory;
* **dispatch overhead** — the ``BaselineRadix`` row is the scheme
  layer's price over a scheme-less loop (and, since PR 3, the fully
  inlined fast sweep); this row moving is the first sign the hot path
  grew a per-record cost;
* **regressions in CI** — ``--check-against`` reruns the benchmark (CI
  uses a reduced ``--trace-length``) and fails if any scheme is slower
  than the reference entry by more than ``--threshold`` (default
  1.25×), after normalising both sides to seconds per record.

``--seeds N`` replays every scheme on N replicate trace seeds (derived
with ``Scale.with_replicate``, the same axis the experiment tables use)
and records each row's ``seconds`` as the **median over replicates**,
with the per-seed times and their spread stored alongside.  The
``--check-against`` gate therefore compares median-of-replicates on
both sides, so one unlucky trace seed cannot fail (or mask) a perf
regression.  ``--seeds 1`` (the default) reproduces the historical
single-seed rows byte-for-byte.

Simulation statistics ride along (walks, translation-cycle fraction,
scheme counters) so a perf change that silently changes *behaviour* is
visible in the same diff.  Timings exclude trace generation (the trace
cache is pre-warmed) but include process/VM construction and
population, like any real experiment cell.

Each entry also records environment metadata (python version, platform,
core count, git SHA) so the noisy-box trajectory stays interpretable,
and native runs add a ``baseline-mt2`` row timing the multi-tenant
scheduler path (two tenants, flush policy) so the new subsystem sits
under the same perf gate as the scheme dispatch.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.common import SCHEMES  # noqa: E402
from repro.stats.kernels import median  # noqa: E402
from repro.sim.multitenant import (  # noqa: E402
    MultiTenantSpec,
    run_native_mt,
)
from repro.sim.runner import (  # noqa: E402
    Scale,
    make_trace,
    run_native,
    run_virtualized,
)
from repro.workloads.suite import ALL_NAMES, get  # noqa: E402


def environment_metadata() -> dict:
    """Environment facts that make a noisy-box trajectory interpretable:
    the same entry measured on a different interpreter, machine or
    commit is comparable only with these recorded alongside it."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "nproc": os.cpu_count(),
        "git_sha": sha,
    }


def _captured_phases(run) -> dict:
    """Phase breakdown (seconds) for one instrumented run of ``run()``.

    Runs once *outside* the timed repeats, so the recorded ``seconds``
    stay a clean hot-path measurement; the breakdown is attribution,
    not timing.
    """
    from repro.obs.events import capture
    from repro.obs.summary import phase_totals

    with capture() as recorder:
        run()
    batch = recorder.export_batch()
    phases = phase_totals({"pid": batch["pid"]}, batch["events"])
    return {name: round(value, 3) for name, value in phases.items()}


def _replicate_fields(scale: Scale, per_seed: list[float]) -> dict:
    """The row fields describing a replicated timing: the recorded
    ``seconds`` is the median over replicate seeds (what the perf gate
    compares), the per-seed times and their spread ride along so the
    trajectory shows timing dispersion, not just a point."""
    fields = {"seed": scale.seed,
              "seconds": round(median(per_seed), 3)}
    if len(per_seed) > 1:
        fields["per_seed_seconds"] = [round(s, 3) for s in per_seed]
        fields["seed_spread"] = round(max(per_seed) - min(per_seed), 3)
    return fields


def bench_one(name: str, workload: str, scale: Scale, virtualized: bool,
              repeats: int, kernel: str, obs: bool = False,
              seeds: int = 1) -> dict:
    entry = SCHEMES[name]
    config = entry.virt_config if virtualized else entry.native_config
    runner = run_virtualized if virtualized else run_native
    per_seed = []
    stats = None
    for rep in range(seeds):
        rep_scale = scale.with_replicate(rep)
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            rep_stats = runner(workload, config, scale=rep_scale,
                               scheme=entry.spec, collect_service=False,
                               kernel=kernel)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        if rep == 0:
            # Behaviour statistics come from the base seed, so they stay
            # comparable with the trajectory's single-seed history.
            stats = rep_stats
        per_seed.append(best)
    assert stats is not None
    phases = (_captured_phases(
        lambda: runner(workload, config, scale=scale, scheme=entry.spec,
                       collect_service=False, kernel=kernel))
        if obs else None)
    return {
        **({"phases": phases} if phases is not None else {}),
        "scheme": name,
        "config": config.name,
        "kernel": kernel,
        **_replicate_fields(scale, per_seed),
        "walks": stats.walks,
        "walk_cycles": stats.walk_cycles,
        "translation_fraction": round(stats.walk_fraction, 4),
        "avg_walk_latency": round(stats.avg_walk_latency, 1),
        "scheme_stats": stats.scheme_stats,
    }


#: The multi-tenant perf-gate row: two tenants of the benchmark
#: workload, full-flush switching, a quantum that scales with the trace
#: so CI's reduced lengths see the same switches-per-record density.
MT_ROW = "baseline-mt2"
MT_TENANTS = 2
MT_QUANTUM_DIVISOR = 8


def bench_mt(workload: str, scale: Scale, repeats: int,
             kernel: str, obs: bool = False, seeds: int = 1) -> dict:
    """Time the multi-tenant scheduler path (baseline scheme)."""
    mt = MultiTenantSpec(
        tenants=MT_TENANTS,
        quantum=max(1, scale.trace_length // MT_QUANTUM_DIVISOR),
        switch_policy="flush",
    )
    per_seed = []
    stats = None
    for rep in range(seeds):
        rep_scale = scale.with_replicate(rep)
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            rep_stats = run_native_mt(workload, mt=mt, scale=rep_scale,
                                      collect_service=False, kernel=kernel)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        if rep == 0:
            stats = rep_stats
        per_seed.append(best)
    assert stats is not None
    phases = (_captured_phases(
        lambda: run_native_mt(workload, mt=mt, scale=scale,
                              collect_service=False, kernel=kernel))
        if obs else None)
    return {
        **({"phases": phases} if phases is not None else {}),
        "scheme": MT_ROW,
        "config": mt.label(),
        "kernel": kernel,
        **_replicate_fields(scale, per_seed),
        "walks": stats.walks,
        "walk_cycles": stats.walk_cycles,
        "translation_fraction": round(stats.walk_fraction, 4),
        "avg_walk_latency": round(stats.avg_walk_latency, 1),
        "scheme_stats": stats.scheme_stats,
    }


def load_trajectory(path: Path) -> dict | None:
    """Read an existing benchmark file in either schema.

    Pre-trajectory files carried one run's ``results`` at top level;
    they are folded into a single-entry trajectory.
    """
    if not path.exists():
        return None
    document = json.loads(path.read_text())
    if "entries" in document:
        return document
    entry = {
        "generated": document.pop("generated", None),
        "python": document.pop("python", None),
        "machine": document.pop("machine", None),
        "results": document.pop("results", []),
    }
    document["entries"] = [entry]
    return document


def atomic_append_entry(path: Path, entry: dict,
                        merged_document) -> dict:
    """Append ``entry`` to a trajectory file without losing concurrent
    writers' entries.

    The read-merge-write sequence runs under an ``fcntl`` lock on a
    sidecar file (``<name>.lock``), so two benches appending to the same
    trajectory — a daemon-triggered run racing a manual one — serialise
    instead of clobbering each other.  ``merged_document()`` is called
    *inside* the lock to (re-)read the current file and produce the
    document to append to; the result is written to a temp file and
    ``os.replace``d into place, so readers never observe a torn JSON.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "a+", encoding="utf-8") as lock_fh:
        try:
            import fcntl

            fcntl.flock(lock_fh.fileno(), fcntl.LOCK_EX)
        except ImportError:  # non-POSIX: best effort, still atomic
            pass
        document = merged_document()
        document["entries"].append(entry)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document, indent=2) + "\n")
        os.replace(tmp, path)
    return document


def reference_entry(path: Path, kernel: str = "scalar") -> tuple[dict, dict]:
    """Latest entry measured with ``kernel``, plus its metadata.

    Taking ``entries[-1]`` blindly would gate a columnar run against a
    scalar baseline (or vice versa) — a many-x ratio that either
    trivially passes or meaninglessly fails.  Entries predating the
    ``kernel`` field are scalar by construction.
    """
    document = load_trajectory(path)
    if document is None:
        raise SystemExit(f"reference file {path} does not exist")
    entries = document.get("entries")
    if not entries:
        raise SystemExit(f"reference file {path} has no entries")
    for entry in reversed(entries):
        if entry.get("kernel", "scalar") == kernel:
            return entry, document
    raise SystemExit(
        f"reference file {path} has no entry for kernel {kernel!r} "
        f"({len(entries)} entries for other kernels)")


def check_against(rows: list[dict], trace_length: int, reference: Path,
                  threshold: float, entry: dict, document: dict) -> int:
    """Compare this run against the reference; returns the exit code.

    ``entry``/``document`` are the reference snapshot, loaded *before*
    this run was appended to any output file (the reference and the
    output may be the same path).  Seconds are normalised to per-record
    cost before comparing, so CI can run at a reduced ``--trace-length``
    against the checked-in full-scale trajectory.  A scheme missing
    from the reference is reported but not failed (new schemes start
    their own history).
    """
    ref_length = document.get("trace_length", trace_length)
    ref_rows = {row["scheme"]: row for row in entry["results"]}
    failures = []
    print(f"\nperf check vs {reference} "
          f"(entry {entry.get('generated')}, threshold {threshold:.2f}x)")
    for row in rows:
        ref = ref_rows.get(row["scheme"])
        if ref is None:
            print(f"  {row['scheme']:10s} no reference entry — skipped")
            continue
        measured = row["seconds"] / trace_length
        allowed = threshold * ref["seconds"] / ref_length
        ratio = measured / (ref["seconds"] / ref_length)
        verdict = "ok" if measured <= allowed else "FAIL"
        print(f"  {row['scheme']:10s} {1e6 * measured:8.2f} us/rec "
              f"(ref {1e6 * ref['seconds'] / ref_length:8.2f}, "
              f"{ratio:5.2f}x) {verdict}")
        if measured > allowed:
            failures.append(row["scheme"])
    if failures:
        print(f"perf check FAILED for: {', '.join(failures)}")
        return 1
    print("perf check passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="mc80", choices=ALL_NAMES)
    parser.add_argument("--trace-length", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--virtualized", action="store_true")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per scheme; the best time is kept")
    parser.add_argument("--seeds", type=int, default=1,
                        help="replicate trace seeds per scheme "
                             "(Scale.with_replicate); the recorded "
                             "seconds is the median over replicates and "
                             "per-seed times/spread are stored alongside")
    parser.add_argument("--kernel", choices=("scalar", "columnar"),
                        default="scalar",
                        help="simulation engine: the per-record loop or "
                             "the compiled columnar chunk kernel "
                             "(byte-identical statistics)")
    parser.add_argument("--obs", action="store_true",
                        help="attach a per-scheme phase breakdown "
                             "(setup/populate/warmup/measure seconds) "
                             "from one extra instrumented run; timings "
                             "stay uninstrumented")
    parser.add_argument("--output", default=str(REPO_ROOT
                                                / "BENCH_schemes.json"))
    parser.add_argument("--label", default=None,
                        help="optional tag stored with this entry")
    parser.add_argument("--check-against", default=None, metavar="FILE",
                        help="compare against FILE's latest entry and exit "
                             "non-zero on regression (the CI perf gate)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="allowed slowdown factor for --check-against")
    parser.add_argument("--fresh", action="store_true",
                        help="allow replacing an existing trajectory whose "
                             "run parameters differ from this invocation")
    args = parser.parse_args(argv)

    # Snapshot the reference before anything is written: the reference
    # and --output may be the same file, and comparing a run against the
    # entry it just appended would pass vacuously.
    reference = None
    if args.check_against:
        reference = reference_entry(Path(args.check_against), args.kernel)

    if args.seeds < 1:
        raise SystemExit("--seeds must be >= 1")
    scale = Scale(trace_length=args.trace_length,
                  warmup=args.trace_length // 5, seed=args.seed)
    for rep in range(args.seeds):  # warm the trace cache per seed
        make_trace(get(args.workload), scale.with_replicate(rep))

    rows = []
    for name in SCHEMES:
        row = bench_one(name, args.workload, scale, args.virtualized,
                        args.repeats, args.kernel, obs=args.obs,
                        seeds=args.seeds)
        rows.append(row)
        print(f"{name:10s} {row['seconds']:7.3f}s  "
              f"walks={row['walks']}  "
              f"translation={100 * row['translation_fraction']:.1f}%")
    if not args.virtualized:
        # The multi-tenant scheduler row (native only: the 2D mt path is
        # too slow for the CI gate's wall-clock budget).
        row = bench_mt(args.workload, scale, args.repeats, args.kernel,
                       obs=args.obs, seeds=args.seeds)
        rows.append(row)
        print(f"{row['scheme']:10s} {row['seconds']:7.3f}s  "
              f"walks={row['walks']}  "
              f"translation={100 * row['translation_fraction']:.1f}%")

    baseline = next(r for r in rows if r["scheme"] == "baseline")
    for row in rows:
        row["relative_to_baseline"] = round(
            row["seconds"] / baseline["seconds"], 3)

    env = environment_metadata()
    entry = {
        "generated": time.strftime("%Y-%m-%d"),
        "python": env["python"],
        "machine": env["machine"],
        "env": env,
        "repeats": args.repeats,
        "seeds": args.seeds,
        # Per entry, not in the header: scalar and columnar histories
        # share one trajectory (the statistics are byte-identical; only
        # wall time differs).
        "kernel": args.kernel,
        "results": rows,
    }
    if args.label:
        entry["label"] = args.label

    output = Path(args.output)
    header = {
        "benchmark": "scheme dispatch hot path",
        "tool": "tools/bench_schemes.py",
        "workload": args.workload,
        "mode": "virtualized" if args.virtualized else "native",
        "trace_length": args.trace_length,
        "warmup": scale.warmup,
        "seed": args.seed,
    }

    def merged_document() -> dict:
        # Runs under atomic_append_entry's lock: re-reads the current
        # file so a concurrent bench's fresh entries are merged, not
        # clobbered.
        document = load_trajectory(output)
        # ``repeats`` is a measurement-quality knob, recorded per entry;
        # it does not make entries incomparable and is not part of the
        # header.
        if document is not None and any(
                document.get(key, value) != value
                for key, value in header.items()):
            # Entries are only comparable at equal run parameters; never
            # silently discard an existing history (the checked-in
            # trajectory is the perf gate's reference).
            if not args.fresh:
                raise SystemExit(
                    f"{output} holds a trajectory with different run "
                    "parameters; write elsewhere with --output or pass "
                    "--fresh to replace it")
            document = None
        if document is None:
            document = dict(header)
            document["entries"] = []
        return document

    atomic_append_entry(output, entry, merged_document)
    print(f"wrote {output}")

    if reference is not None:
        ref_entry, ref_document = reference
        return check_against(rows, args.trace_length,
                             Path(args.check_against), args.threshold,
                             ref_entry, ref_document)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
