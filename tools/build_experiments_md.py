#!/usr/bin/env python3
"""Assemble (or verify) EXPERIMENTS.md from the raw report output.

Usage::

    python tools/build_experiments_md.py [RAW] [--output PATH] [--check]

RAW is the raw report text produced by ``python -m repro.experiments.report``
or ``python -m repro sweep`` (default: ``docs/experiments_raw.txt``, which
is checked in so this script is reproducible offline).  This script splices
each measured table into the paper-vs-measured commentary below.

``--check`` rebuilds the document in memory and exits non-zero if it
differs from the checked-in output file — CI runs this so EXPERIMENTS.md
can never silently drift from its generator or its raw input.  All paths
are resolved relative to the repository root, so the script works from any
working directory.

The assembly itself (section commentary, table splicing) lives in
``repro.service.assemble`` so the incremental reporter (``repro report
--incremental``, the service daemon's HTTP endpoint) and this one-shot
tool produce the document through the same code path.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.assemble import build  # noqa: E402


def _resolve(path: str) -> Path:
    candidate = Path(path)
    return candidate if candidate.is_absolute() else REPO_ROOT / candidate


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("raw", nargs="?", default="docs/experiments_raw.txt",
                        help="raw report output (default: "
                             "docs/experiments_raw.txt)")
    parser.add_argument("--output", default="EXPERIMENTS.md",
                        help="assembled document (default: EXPERIMENTS.md)")
    parser.add_argument("--check", action="store_true",
                        help="verify --output matches the raw input instead "
                             "of writing it; non-zero exit on drift")
    args = parser.parse_args(argv)

    raw_path = _resolve(args.raw)
    out_path = _resolve(args.output)
    built = build(raw_path.read_text())

    if args.check:
        current = out_path.read_text() if out_path.exists() else ""
        if current == built:
            print(f"{out_path.name} is up to date")
            return 0
        diff = difflib.unified_diff(
            current.splitlines(keepends=True),
            built.splitlines(keepends=True),
            fromfile=f"{out_path.name} (checked in)",
            tofile=f"{out_path.name} (rebuilt)",
        )
        sys.stderr.writelines(diff)
        print(f"error: {out_path.name} is stale; regenerate with "
              f"`python tools/build_experiments_md.py {args.raw}`",
              file=sys.stderr)
        return 1

    out_path.write_text(built)
    print(f"{out_path.name} written ({len(built.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
