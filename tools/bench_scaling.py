#!/usr/bin/env python3
"""Wall-clock / peak-RSS trajectory for the scaling experiment's cells.

Usage::

    python tools/bench_scaling.py [--trace-length 60000]
        [--seeds 1] [--kernel scalar|columnar]
        [--output BENCH_scaling.json] [--label TEXT]
        [--check-against BENCH_scaling.json [--threshold 1.25]]

Runs every cell of the `repro scaling` grid (records x {baseline, asap}
on the convergence workload) and appends one entry to a JSON trajectory
(same shape as ``BENCH_schemes.json``): per-cell wall seconds, peak RSS,
an observability phase breakdown (setup/populate/warmup/measure seconds,
captured via ``repro.obs``) and the headline statistics.  Each cell
executes in a fresh child interpreter so ``ru_maxrss`` is a true
per-cell high-water mark — the number that demonstrates the streaming
front end keeps a 10M-record run bounded by the execution chunk, not the
trace length.

``--kernel`` selects the simulation engine (the scalar record loop or
the compiled columnar chunk kernel); it is recorded per entry and per
row, so the trajectory can hold both engines' histories side by side.
``--check-against`` mirrors ``bench_schemes.py``'s CI perf gate: rerun
(CI uses a reduced ``--trace-length``), normalise both sides to seconds
per record, and fail if any cell of the ladder is slower than the
reference entry's matching cell by more than ``--threshold``.

``--seeds N`` replays the *base rung* on N replicate trace seeds
(``Scale.with_replicate`` — the same replicate axis the experiment
tables aggregate over; the 1M/10M rungs stay single-seed, matching
``repro scaling``'s own replication policy).  A replicated cell's row
keeps one (scheme, records) entry whose ``seconds``/``wall_seconds``
are medians over the replicates, with the per-seed times and spread
recorded alongside, so the ``--check-against`` gate compares
median-of-replicates instead of trusting a single trace seed.

This is deliberately a *tool*, not part of the experiment: the
experiment's tables must stay deterministic (the sweep-determinism CI
gate byte-compares them), while wall-clock and RSS are machine facts
that belong in the BENCH trajectory next to ``bench_schemes``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_schemes import atomic_append_entry  # noqa: E402
from bench_schemes import environment_metadata  # noqa: E402
from repro.experiments import scaling  # noqa: E402
from repro.sim.runner import Scale  # noqa: E402
from repro.stats.kernels import median  # noqa: E402

_CHILD_FLAG = "--run-cell"


def _run_cell_in_child(records: int, scheme: str, scale: Scale,
                       kernel: str) -> dict:
    """Execute one cell in a fresh interpreter; returns its measurement."""
    spec = json.dumps({
        "records": records, "scheme": scheme,
        "warmup": scale.warmup, "seed": scale.seed, "kernel": kernel,
    })
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), _CHILD_FLAG, spec],
        capture_output=True, text=True,
    )
    elapsed = time.perf_counter() - started
    if proc.returncode != 0:
        raise SystemExit(
            f"cell {scheme}@{records} failed:\n{proc.stderr}")
    result = json.loads(proc.stdout.splitlines()[-1])
    result["wall_seconds"] = round(elapsed, 2)
    return result


def _child_main(spec_json: str) -> int:
    spec = json.loads(spec_json)
    job = scaling._job(
        spec["records"], scaling._entry(spec["scheme"]),
        Scale(trace_length=spec["records"], warmup=spec["warmup"],
              seed=spec["seed"]),
        kernel=spec.get("kernel", "scalar"))
    from repro.obs.events import capture
    from repro.obs.summary import phase_totals
    from repro.runtime.job import execute_job

    # The cell runs under an in-memory obs capture: the simulator's
    # phase spans (setup/populate/warmup/measure) become the per-cell
    # breakdown next to peak RSS.  Sampling happens only at chunk
    # boundaries, so its cost is noise at these scales and the timing
    # stays an honest cell measurement.
    started = time.perf_counter()
    with capture() as recorder:
        stats = execute_job(job)
    seconds = time.perf_counter() - started
    batch = recorder.export_batch()
    phases = phase_totals({"pid": batch["pid"]}, batch["events"])
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(json.dumps({
        "scheme": spec["scheme"],
        "records": spec["records"],
        "kernel": job.kernel,
        "seconds": round(seconds, 2),
        "peak_rss_mb": round(rss_kb / 1024, 1),
        "phases": {name: round(value, 3)
                   for name, value in phases.items()},
        "walks": stats.walks,
        "translation_fraction": round(stats.walk_fraction, 4),
        "avg_walk_latency": round(stats.avg_walk_latency, 1),
    }))
    return 0


def _bench_cell(records: int, scheme: str, scale: Scale, kernel: str,
                seeds: int) -> dict:
    """One (records, scheme) row, replicated across trace seeds on the
    base rung only (the larger rungs mirror ``repro scaling``'s
    single-seed policy — replicating a 10M-record cell would multiply
    the bench's dominant cost).

    The row keeps the replicate-0 child's behaviour statistics, phases
    and RSS; ``seconds``/``wall_seconds`` become medians over the
    replicates so the perf gate compares median-of-replicates.
    """
    replicated = records == scale.trace_length and seeds > 1
    scales = ([scale.with_replicate(rep) for rep in range(seeds)]
              if replicated else [scale])
    results = [_run_cell_in_child(records, scheme, rep_scale, kernel)
               for rep_scale in scales]
    row = results[0]
    row["seed"] = scale.seed
    if len(results) > 1:
        per_seed = [r["seconds"] for r in results]
        row["seconds"] = round(median(per_seed), 2)
        row["wall_seconds"] = round(
            median([r["wall_seconds"] for r in results]), 2)
        row["per_seed_seconds"] = per_seed
        row["seed_spread"] = round(max(per_seed) - min(per_seed), 2)
    return row


def _rung_index(rows: list[dict]) -> dict[tuple[str, int], dict]:
    """Rows keyed by (scheme, ladder position).

    Record counts scale with ``--trace-length``, so cells from runs at
    different base lengths are matched by their *rung* — the rank of the
    row's record count within its own entry — which is what makes CI's
    reduced ladder comparable against the checked-in full-scale one.
    """
    counts = sorted({row["records"] for row in rows})
    return {(row["scheme"], counts.index(row["records"])): row
            for row in rows}


def _reference_entry(path: Path, kernel: str) -> dict:
    """Latest entry measured with the *same kernel* as this run.

    Blindly taking ``entries[-1]`` could gate a columnar run against a
    scalar baseline (or vice versa) — a ~10x ratio either trivially
    passes or meaninglessly fails.  Entries predating the ``kernel``
    field are scalar by construction.
    """
    if not path.exists():
        raise SystemExit(f"reference file {path} does not exist")
    document = json.loads(path.read_text())
    entries = document.get("entries")
    if not entries:
        raise SystemExit(f"reference file {path} has no entries")
    for entry in reversed(entries):
        if entry.get("kernel", "scalar") == kernel:
            return entry
    raise SystemExit(
        f"reference file {path} has no entry for kernel {kernel!r} "
        f"({len(entries)} entries for other kernels)")


def check_against(rows: list[dict], reference: Path, threshold: float,
                  entry: dict) -> int:
    """Per-record perf gate against the reference entry's latest ladder.

    ``entry`` was snapshotted *before* this run appended anything (the
    reference and the output may be the same file).  A cell missing from
    the reference is reported, not failed — new rungs/schemes start
    their own history.
    """
    ref_index = _rung_index(entry["results"])
    run_index = _rung_index(rows)
    failures = []
    print(f"\nperf check vs {reference} "
          f"(entry {entry.get('generated')}, threshold {threshold:.2f}x)")
    for (scheme, rung), row in sorted(run_index.items()):
        ref = ref_index.get((scheme, rung))
        if ref is None:
            print(f"  {scheme:8s} rung {rung}  no reference cell — "
                  "skipped")
            continue
        measured = row["seconds"] / row["records"]
        baseline = ref["seconds"] / ref["records"]
        ratio = measured / baseline if baseline else float("inf")
        verdict = "ok" if measured <= threshold * baseline else "FAIL"
        print(f"  {scheme:8s} rung {rung}  {1e6 * measured:8.3f} us/rec "
              f"(ref {1e6 * baseline:8.3f}, {ratio:5.2f}x) {verdict}")
        if measured > threshold * baseline:
            failures.append(f"{scheme}@rung{rung}")
    if failures:
        print(f"perf check FAILED for: {', '.join(failures)}")
        return 1
    print("perf check passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) >= 2 and argv[0] == _CHILD_FLAG:
        return _child_main(argv[1])
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace-length", type=int, default=60_000,
                        help="base of the record ladder (default 60000 "
                             "-> 60k/1M/10M)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--seeds", type=int, default=1,
                        help="replicate trace seeds for the base rung's "
                             "cells (Scale.with_replicate); recorded "
                             "seconds become the median over replicates")
    parser.add_argument("--kernel", choices=("scalar", "columnar"),
                        default="scalar",
                        help="simulation engine for every cell")
    parser.add_argument("--schemes", default=",".join(scaling.SCHEME_NAMES),
                        help="comma-separated scheme cells to run "
                             f"(default {','.join(scaling.SCHEME_NAMES)}; "
                             "any scheme the experiments define, e.g. "
                             "victima)")
    parser.add_argument("--output",
                        default=str(REPO_ROOT / "BENCH_scaling.json"))
    parser.add_argument("--label", default=None)
    parser.add_argument("--check-against", default=None, metavar="FILE",
                        help="compare against FILE's latest entry and "
                             "exit non-zero on regression (the CI perf "
                             "gate)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="allowed slowdown factor for --check-against")
    args = parser.parse_args(argv)

    schemes = tuple(name.strip() for name in args.schemes.split(",")
                    if name.strip())
    unknown = [name for name in schemes if name not in scaling.SCHEMES]
    if unknown:
        raise SystemExit(
            f"unknown scheme(s) {', '.join(unknown)}; valid: "
            f"{', '.join(sorted(scaling.SCHEMES))}")

    # Snapshot the reference before anything is written: the reference
    # and --output may be the same file, and a run must never be gated
    # against the entry it just appended.
    reference = None
    if args.check_against:
        reference = _reference_entry(Path(args.check_against), args.kernel)

    if args.seeds < 1:
        raise SystemExit("--seeds must be >= 1")
    scale = Scale(trace_length=args.trace_length,
                  warmup=args.trace_length // 5, seed=args.seed)
    rows = []
    for records in scaling.record_counts(scale):
        for scheme in schemes:
            row = _bench_cell(records, scheme, scale, args.kernel,
                              args.seeds)
            rows.append(row)
            print(f"  {scheme:8s} {records:>10,d} records  "
                  f"{row['seconds']:8.2f}s  {row['peak_rss_mb']:8.1f}MB  "
                  f"walk%={100 * row['translation_fraction']:.2f}")

    path = Path(args.output)
    env = environment_metadata()
    entry = {
        "generated": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "label": args.label,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "nproc": os.cpu_count(),
        # Full environment block, same shape as bench_schemes.py entries,
        # so the two trajectories stay cross-interpretable.
        "env": env,
        "base_trace_length": args.trace_length,
        "seed": args.seed,
        "seeds": args.seeds,
        "kernel": args.kernel,
        "results": rows,
    }

    def merged_document() -> dict:
        # Re-read under the append lock so concurrent benches merge.
        return (json.loads(path.read_text()) if path.exists()
                else {"benchmark": "scaling", "workload": scaling.WORKLOAD,
                      "entries": []})

    atomic_append_entry(path, entry, merged_document)
    print(f"appended entry to {path}")

    if reference is not None:
        return check_against(rows, Path(args.check_against),
                             args.threshold, reference)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
