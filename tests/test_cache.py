"""Unit tests for the set-associative cache model."""

import pytest

from repro.mem.cache import SetAssociativeCache
from repro.params import CacheParams


def small_cache(ways: int = 2, sets: int = 4) -> SetAssociativeCache:
    params = CacheParams(size_bytes=64 * ways * sets, ways=ways, latency=1)
    return SetAssociativeCache(params, name="test")


def test_miss_then_hit():
    cache = small_cache()
    assert not cache.lookup(10)
    cache.install(10)
    assert cache.lookup(10)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_lru_eviction_order():
    cache = small_cache(ways=2, sets=1)
    cache.install(1)
    cache.install(2)
    cache.lookup(1)  # promote 1 to MRU; 2 becomes LRU
    victim = cache.install(3)
    assert victim == 2
    assert cache.contains(1)
    assert not cache.contains(2)


def test_install_existing_line_is_not_an_eviction():
    cache = small_cache(ways=2, sets=1)
    cache.install(1)
    cache.install(2)
    victim = cache.install(1)
    assert victim is None
    assert cache.stats.evictions == 0


def test_sets_isolate_conflicts():
    cache = small_cache(ways=1, sets=4)
    # Lines 0 and 4 conflict (same set); 1 does not.
    cache.install(0)
    cache.install(1)
    cache.install(4)
    assert not cache.contains(0)
    assert cache.contains(1)
    assert cache.contains(4)


def test_lookup_without_lru_update_keeps_order():
    cache = small_cache(ways=2, sets=1)
    cache.install(1)
    cache.install(2)
    cache.lookup(1, update_lru=False)
    victim = cache.install(3)
    assert victim == 1  # still LRU despite the probe


def test_invalidate_and_flush():
    cache = small_cache()
    cache.install(7)
    assert cache.invalidate(7)
    assert not cache.invalidate(7)
    cache.install(8)
    cache.flush()
    assert cache.occupancy == 0


def test_occupancy_bounded_by_capacity():
    cache = small_cache(ways=2, sets=4)
    for line in range(100):
        cache.install(line)
    assert cache.occupancy <= 8


def test_geometry_validation():
    with pytest.raises(ValueError):
        CacheParams(size_bytes=100, ways=2, latency=1)  # not line aligned
    with pytest.raises(ValueError):
        CacheParams(size_bytes=64 * 3, ways=2, latency=1)  # 3 lines, 2 ways


def test_hit_rate():
    cache = small_cache()
    cache.install(1)
    cache.lookup(1)
    cache.lookup(2)
    assert cache.stats.hit_rate == pytest.approx(0.5)
