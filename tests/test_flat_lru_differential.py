"""Randomized differential tests for the flat-array LRU structures.

The hot path probes `repro.tlb.tlb.Tlb`, `repro.tlb.clustered.ClusteredTlb`
and `repro.mem.cache.SetAssociativeCache` through guard-slot
``list.index`` scans and C-level slice shifts (docs/ARCHITECTURE.md §9).
These tests drive each structure through long interleaved streams of
lookup/fill/invalidate/flush (including full-set invalidates, which walk
a set down to empty and back) against naive ordered-list reference
models, comparing every return value, every hit/miss counter and the
complete live state after every mutation.  Any divergence — a guard slot
leaking into a scan, a slice shift off by one, a size counter drifting —
fails with the operation stream's seed for replay.
"""

import random

import pytest

from repro.mem.cache import SetAssociativeCache
from repro.params import CacheParams, TlbParams
from repro.tlb.clustered import CLUSTER_PAGES, ClusteredTlb
from repro.tlb.tlb import EMPTY, Tlb

SEEDS = (0, 1, 2, 3, 17)
STEPS = 1500


# ----------------------------------------------------------------------
# reference models: per-set python lists, MRU first
# ----------------------------------------------------------------------
class RefTlb:
    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.sets: list[list[list[int]]] = [[] for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def _set(self, tag: int) -> list[list[int]]:
        return self.sets[tag % self.num_sets]

    def lookup(self, tag: int):
        entries = self._set(tag)
        for index, entry in enumerate(entries):
            if entry[0] == tag:
                self.hits += 1
                entries.insert(0, entries.pop(index))
                return entry[1]
        self.misses += 1
        return None

    def fill(self, tag: int, frame: int):
        entries = self._set(tag)
        victim = None
        for index, entry in enumerate(entries):
            if entry[0] == tag:
                entries.insert(0, entries.pop(index))
                entry[1] = frame
                return None
        if len(entries) >= self.ways:
            victim = tuple(entries.pop())
        entries.insert(0, [tag, frame])
        return victim

    def invalidate(self, tag: int) -> bool:
        entries = self._set(tag)
        for index, entry in enumerate(entries):
            if entry[0] == tag:
                del entries[index]
                return True
        return False

    def flush(self) -> None:
        self.sets = [[] for _ in range(self.num_sets)]

    def state(self):
        return [[tuple(entry) for entry in entries]
                for entries in self.sets]


class RefCache:
    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.sets: list[list[int]] = [[] for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set(self, line: int) -> list[int]:
        return self.sets[line % self.num_sets]

    def lookup(self, line: int, update_lru: bool = True) -> bool:
        entries = self._set(line)
        if line in entries:
            self.hits += 1
            if update_lru:
                entries.insert(0, entries.pop(entries.index(line)))
            return True
        self.misses += 1
        return False

    def install(self, line: int):
        entries = self._set(line)
        victim = None
        if line in entries:
            entries.insert(0, entries.pop(entries.index(line)))
            return None
        if len(entries) >= self.ways:
            victim = entries.pop()
            self.evictions += 1
        entries.insert(0, line)
        return victim

    def invalidate(self, line: int) -> bool:
        entries = self._set(line)
        if line in entries:
            entries.remove(line)
            return True
        return False

    def flush(self) -> None:
        self.sets = [[] for _ in range(self.num_sets)]

    def state(self):
        return [list(entries) for entries in self.sets]


class RefClustered:
    """Mirror of ClusteredTlb: entries keyed (vtag, ptag), MRU first;
    lookups and invalidates scan oldest-first like the flat arrays."""

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        #: per set: [vtag, ptag, {slot: sub}] MRU first.
        self.sets: list[list[list]] = [[] for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int):
        cluster, slot = vpn >> 3, vpn & (CLUSTER_PAGES - 1)
        entries = self.sets[cluster % self.num_sets]
        for index in range(len(entries) - 1, -1, -1):  # oldest first
            vtag, ptag, slots = entries[index]
            if vtag == cluster and slot in slots:
                self.hits += 1
                entries.insert(0, entries.pop(index))
                return (ptag << 3) | slots[slot]
        self.misses += 1
        return None

    def fill(self, vpn: int, frame: int, neighbours=None) -> None:
        cluster, slot = vpn >> 3, vpn & (CLUSTER_PAGES - 1)
        phys = frame >> 3
        entries = self.sets[cluster % self.num_sets]
        entry = None
        for index, candidate in enumerate(entries):  # MRU first
            if candidate[0] == cluster and candidate[1] == phys:
                entry = candidate
                entries.insert(0, entries.pop(index))
                break
        if entry is None:
            if len(entries) >= self.ways:
                entries.pop()
            entry = [cluster, phys, {}]
            entries.insert(0, entry)
        entry[2][slot] = frame & (CLUSTER_PAGES - 1)
        if neighbours is not None:
            for other_slot, other_frame in enumerate(neighbours):
                if other_frame is None or other_slot == slot:
                    continue
                if (other_frame >> 3) == phys:
                    entry[2][other_slot] = other_frame & (CLUSTER_PAGES - 1)

    def invalidate(self, vpn: int) -> bool:
        cluster, slot = vpn >> 3, vpn & (CLUSTER_PAGES - 1)
        entries = self.sets[cluster % self.num_sets]
        for index in range(len(entries) - 1, -1, -1):  # oldest first
            vtag, _ptag, slots = entries[index]
            if vtag == cluster and slot in slots:
                del slots[slot]
                if not slots:
                    del entries[index]
                return True
        return False

    def flush(self) -> None:
        self.sets = [[] for _ in range(self.num_sets)]

    def state(self):
        return [[(vtag, ptag, dict(sorted(slots.items())))
                 for vtag, ptag, slots in entries]
                for entries in self.sets]


# ----------------------------------------------------------------------
# live-state extraction from the flat arrays
# ----------------------------------------------------------------------
def tlb_state(tlb: Tlb):
    out = []
    for set_index in range(tlb.num_sets):
        base = set_index * tlb.stride
        size = tlb.sizes[set_index]
        out.append([(tlb.tags[base + i], tlb.frames[base + i])
                    for i in range(size)])
        # The guard slot and every dead slot must hold the sentinel —
        # a stale tag there would satisfy a future guard scan early.
        assert all(tag == EMPTY
                   for tag in tlb.tags[base + size:base + tlb.stride])
    return out


def cache_state(cache: SetAssociativeCache):
    out = []
    for set_index in range(cache.num_sets):
        base = set_index * cache.stride
        size = cache.sizes[set_index]
        out.append(cache.lines[base:base + size])
        assert all(line == EMPTY
                   for line in cache.lines[base + size:base + cache.stride])
    return out


def clustered_state(tlb: ClusteredTlb):
    out = []
    for set_index in range(tlb.num_sets):
        base = set_index * tlb.stride
        size = tlb.sizes[set_index]
        rows = []
        for offset in range(size):
            entry = tlb.entries[base + offset]
            slots = {slot: entry.sub_indices[slot]
                     for slot in range(CLUSTER_PAGES)
                     if entry.valid_mask & (1 << slot)}
            rows.append((tlb.vtags[base + offset], tlb.ptags[base + offset],
                         dict(sorted(slots.items()))))
        out.append(rows)
        assert all(tag == EMPTY
                   for tag in tlb.vtags[base + size:base + tlb.stride])
    return out


# ----------------------------------------------------------------------
# the differential drivers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_tlb_differential(seed):
    rng = random.Random(seed)
    tlb = Tlb(TlbParams(entries=16, ways=4), name="diff")
    ref = RefTlb(tlb.num_sets, tlb.ways)
    tag_space = 64
    for step in range(STEPS):
        op = rng.random()
        tag = rng.randrange(tag_space)
        context = f"seed={seed} step={step} tag={tag}"
        if op < 0.40:
            assert tlb.lookup(tag) == ref.lookup(tag), context
        elif op < 0.75:
            frame = rng.randrange(1 << 20)
            assert tlb.fill(tag, frame) == ref.fill(tag, frame), context
        elif op < 0.90:
            assert tlb.invalidate(tag) == ref.invalidate(tag), context
        elif op < 0.97:
            # Full-set invalidate: empty one set tag by tag (shootdown).
            set_index = tag % tlb.num_sets
            resident = [entry[0] for entry in ref.sets[set_index]]
            for victim in resident:
                assert tlb.invalidate(victim) == ref.invalidate(victim), \
                    context
            assert tlb.sizes[set_index] == 0
        else:
            tlb.flush()
            ref.flush()
        assert tlb_state(tlb) == ref.state(), context
        assert (tlb.stats.hits, tlb.stats.misses) == (ref.hits, ref.misses)
        assert tlb.contains(tag) == any(
            entry[0] == tag for entry in ref.sets[tag % tlb.num_sets])
    assert tlb.occupancy == sum(len(s) for s in ref.sets)


@pytest.mark.parametrize("seed", SEEDS)
def test_cache_differential(seed):
    rng = random.Random(seed)
    cache = SetAssociativeCache(
        CacheParams(size_bytes=16 * 64, ways=4, latency=1), name="diff")
    ref = RefCache(cache.num_sets, cache.ways)
    line_space = 64
    for step in range(STEPS):
        op = rng.random()
        line = rng.randrange(line_space)
        context = f"seed={seed} step={step} line={line}"
        if op < 0.35:
            assert cache.lookup(line) == ref.lookup(line), context
        elif op < 0.45:
            assert cache.lookup(line, update_lru=False) \
                == ref.lookup(line, update_lru=False), context
        elif op < 0.80:
            assert cache.install(line) == ref.install(line), context
        elif op < 0.92:
            assert cache.invalidate(line) == ref.invalidate(line), context
        elif op < 0.97:
            set_index = line % cache.num_sets
            for victim in list(ref.sets[set_index]):
                assert cache.invalidate(victim) == ref.invalidate(victim), \
                    context
            assert cache.sizes[set_index] == 0
        else:
            cache.flush()
            ref.flush()
        assert cache_state(cache) == ref.state(), context
        assert (cache.stats.hits, cache.stats.misses,
                cache.stats.evictions) == (ref.hits, ref.misses,
                                           ref.evictions), context
        assert cache.contains(line) == (line in ref.sets[
            line % cache.num_sets])
    assert cache.occupancy == sum(len(s) for s in ref.sets)


@pytest.mark.parametrize("seed", SEEDS)
def test_clustered_tlb_differential(seed):
    rng = random.Random(seed)
    tlb = ClusteredTlb(TlbParams(entries=16, ways=4), name="diff")
    ref = RefClustered(tlb.num_sets, tlb.ways)
    # A fixed vpn -> frame mapping (the page table): the structure's
    # one-entry-per-page invariant assumes a page maps to one frame for
    # the lifetime of its residency.
    vpn_space = 256
    mapping = {vpn: rng.randrange(1 << 16) for vpn in range(vpn_space)}

    def neighbours_of(vpn: int):
        cluster_base = vpn & ~(CLUSTER_PAGES - 1)
        return [mapping.get(cluster_base + slot)
                if rng.random() < 0.8 else None
                for slot in range(CLUSTER_PAGES)]

    for step in range(STEPS):
        op = rng.random()
        vpn = rng.randrange(vpn_space)
        context = f"seed={seed} step={step} vpn={vpn}"
        if op < 0.40:
            assert tlb.lookup(vpn) == ref.lookup(vpn), context
        elif op < 0.60:
            frame = mapping[vpn]
            tlb.fill(vpn, frame)
            ref.fill(vpn, frame)
        elif op < 0.80:
            # Coalescing fill: both models see the same neighbour list
            # (one rng draw, shared).
            frame = mapping[vpn]
            neighbours = neighbours_of(vpn)
            tlb.fill(vpn, frame, neighbours)
            ref.fill(vpn, frame, neighbours)
        elif op < 0.92:
            assert tlb.invalidate(vpn) == ref.invalidate(vpn), context
        elif op < 0.97:
            # Full-set invalidate, page by page.
            set_index = (vpn >> 3) % tlb.num_sets
            pages = [(vtag << 3) | slot
                     for vtag, _ptag, slots in ref.sets[set_index]
                     for slot in sorted(slots)]
            for page in pages:
                assert tlb.invalidate(page) == ref.invalidate(page), context
            assert tlb.sizes[set_index] == 0
        else:
            tlb.flush()
            ref.flush()
        assert clustered_state(tlb) == ref.state(), context
        assert (tlb.stats.hits, tlb.stats.misses) == (ref.hits, ref.misses)
    assert tlb.occupancy == sum(len(s) for s in ref.sets)
