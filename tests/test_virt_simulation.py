"""Integration tests: the virtualized (2D) simulator end to end."""

import pytest

from repro.core import config as cfg
from repro.sim.runner import Scale, build_vm, run_virtualized
from repro.sim.virt import VirtualizedSimulation
from repro.workloads.suite import get

SCALE = Scale(trace_length=4_000, warmup=800, seed=11)


@pytest.fixture(scope="module")
def virt_baseline():
    return run_virtualized("mc80", cfg.BASELINE, scale=SCALE)


class TestVirtBaseline:
    def test_virt_walks_cost_more_than_native(self, virt_baseline):
        from repro.sim.runner import run_native
        native = run_native("mc80", cfg.BASELINE, scale=SCALE)
        # At test scale the gap is modest; at experiment scale it grows
        # toward the paper's 4.4x (see validation + benchmarks).
        assert virt_baseline.avg_walk_latency > \
            1.25 * native.avg_walk_latency

    def test_service_records_cover_both_dimensions(self, virt_baseline):
        levels = {str(lvl) for lvl in virt_baseline.service.levels()}
        assert any(level.startswith("g") for level in levels)
        assert any(level.startswith("h") for level in levels)


class TestVirtLadder:
    @pytest.fixture(scope="class")
    def ladder(self):
        return {
            config.name: run_virtualized("mc80", config, scale=SCALE)
            for config in cfg.VIRT_LADDER
        }

    def test_every_config_beats_baseline(self, ladder):
        baseline = ladder["Baseline"].avg_walk_latency
        for name, stats in ladder.items():
            if name != "Baseline":
                assert stats.avg_walk_latency < baseline, name

    def test_both_dimensions_beat_guest_only(self, ladder):
        # §5.2: most of a nested walk is host-side; the full two-dimension
        # config must beat guest-only prefetching.  (The stricter
        # P1g+P1h < P1g+P2g ordering needs experiment-scale traces and is
        # asserted in repro.validation with a scale floor.)
        assert ladder["P1g+P1h+P2g+P2h"].avg_walk_latency <= \
            ladder["P1g+P2g"].avg_walk_latency * 1.02

    def test_full_config_is_best(self, ladder):
        best = min(s.avg_walk_latency for s in ladder.values())
        assert ladder["P1g+P1h+P2g+P2h"].avg_walk_latency == best


class TestLargeHostPages:
    def test_2mb_host_pages_shorten_baseline_walks(self, virt_baseline):
        large = run_virtualized("mc80", cfg.BASELINE, host_page_level=2,
                                scale=SCALE)
        assert large.avg_walk_latency < virt_baseline.avg_walk_latency

    def test_asap_still_helps_with_2mb_host_pages(self):
        base = run_virtualized("mc80", cfg.BASELINE, host_page_level=2,
                               scale=SCALE)
        asap = run_virtualized("mc80", cfg.LARGE_HOST, host_page_level=2,
                               scale=SCALE)
        assert asap.avg_walk_latency < base.avg_walk_latency


class TestVirtConfigErrors:
    def test_guest_asap_requires_backed_regions(self):
        spec = get("mcf")
        vm = build_vm(spec, cfg.BASELINE, SCALE)  # no guest layout
        with pytest.raises(ValueError):
            VirtualizedSimulation(vm, asap=cfg.P1G)

    def test_host_asap_requires_host_layout(self):
        spec = get("mcf")
        vm = build_vm(spec, cfg.BASELINE, SCALE)
        with pytest.raises(ValueError):
            VirtualizedSimulation(vm, asap=cfg.P1G_P1H)


class TestVirtColocation:
    def test_colocation_increases_virt_walk_latency(self, virt_baseline):
        coloc = run_virtualized("mc80", cfg.BASELINE, colocated=True,
                                scale=SCALE)
        assert coloc.avg_walk_latency > virt_baseline.avg_walk_latency

    def test_asap_reduction_grows_under_colocation(self):
        base_i = run_virtualized("mc400", cfg.BASELINE, scale=SCALE)
        full_i = run_virtualized("mc400", cfg.FULL_2D, scale=SCALE)
        base_c = run_virtualized("mc400", cfg.BASELINE, colocated=True,
                                 scale=SCALE)
        full_c = run_virtualized("mc400", cfg.FULL_2D, colocated=True,
                                 scale=SCALE)
        red_iso = 1 - full_i.avg_walk_latency / base_i.avg_walk_latency
        red_coloc = 1 - full_c.avg_walk_latency / base_c.avg_walk_latency
        assert red_coloc > red_iso * 0.9  # at least comparable, §5.2


class TestVirtDeterminism:
    def test_same_seed_same_stats(self):
        a = run_virtualized("mcf", cfg.FULL_2D, scale=SCALE)
        b = run_virtualized("mcf", cfg.FULL_2D, scale=SCALE)
        assert a.walk_cycles == b.walk_cycles
