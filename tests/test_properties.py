"""Property-based tests (hypothesis) on the core data structures.

These pin down the invariants the reproduction's correctness rests on:
cache/TLB capacity and LRU behaviour, the bijectivity of the trace
permutation, the base-plus-offset identity of the ASAP layout, and the
never-hurts overlap rule of the walker.
"""

from __future__ import annotations

import copy

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.range_registers import VmaDescriptor
from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.phys import PhysicalMemory
from repro.kernelsim.pt_layout import AsapPtLayout
from repro.kernelsim.vma import Vma
from repro.mem.cache import SetAssociativeCache
from repro.pagetable import constants as c
from repro.pagetable.radix import RadixPageTable
from repro.params import CacheParams, TlbParams
from repro.tlb.clustered import ClusteredTlb
from repro.tlb.tlb import Tlb
from repro.workloads.generators import bounded_zipf, permute

lines = st.lists(st.integers(min_value=0, max_value=4095), min_size=1,
                 max_size=300)


class TestCacheProperties:
    @given(lines)
    def test_occupancy_never_exceeds_capacity(self, stream):
        cache = SetAssociativeCache(
            CacheParams(size_bytes=64 * 16, ways=4, latency=1)
        )
        for line in stream:
            cache.install(line)
        assert cache.occupancy <= 16

    @given(lines)
    def test_installed_line_hits_immediately(self, stream):
        cache = SetAssociativeCache(
            CacheParams(size_bytes=64 * 16, ways=4, latency=1)
        )
        for line in stream:
            cache.install(line)
            assert cache.contains(line)

    @given(lines)
    def test_most_recent_ways_survive_in_each_set(self, stream):
        ways = 4
        cache = SetAssociativeCache(
            CacheParams(size_bytes=64 * 8 * ways, ways=ways, latency=1)
        )
        for line in stream:
            cache.install(line)
        # The last `ways` distinct lines of any one set must be resident.
        last_per_set: dict[int, list[int]] = {}
        for line in reversed(stream):
            bucket = last_per_set.setdefault(line % 8, [])
            if line not in bucket and len(bucket) < ways:
                bucket.append(line)
        for bucket in last_per_set.values():
            for line in bucket:
                assert cache.contains(line)


class TestTlbProperties:
    @given(st.lists(st.tuples(st.integers(0, 10_000),
                              st.integers(0, 1 << 30)),
                    min_size=1, max_size=200))
    def test_lookup_returns_last_fill(self, pairs):
        tlb = Tlb(TlbParams(entries=4096, ways=8))
        expected = {}
        for tag, frame in pairs:
            tlb.fill(tag, frame)
            expected[tag] = frame
        # Capacity is large enough that nothing was evicted.
        for tag, frame in expected.items():
            assert tlb.lookup(tag) == frame

    @given(st.lists(st.integers(0, 1 << 25), min_size=1, max_size=200))
    def test_clustered_tlb_returns_correct_frames(self, vpns):
        tlb = ClusteredTlb(TlbParams(entries=4096, ways=8))
        mapping = {vpn: vpn * 7 + 3 for vpn in vpns}
        for vpn, frame in mapping.items():
            tlb.fill(vpn, frame)
        for vpn in vpns:
            hit = tlb.lookup(vpn)
            if hit is not None:
                assert hit == mapping[vpn]


class TestBatchProbeProperties:
    """``probe_batch`` is a pure read: it must agree with the scalar
    probes, leave every byte of structure state untouched, and therefore
    commute with any permutation of the batch (no fills intervene)."""

    fills = st.lists(st.tuples(st.integers(0, 2047),
                               st.integers(0, 1 << 30)),
                     min_size=1, max_size=150)
    batch = st.lists(st.integers(0, 2047), min_size=1, max_size=60)

    @staticmethod
    def _tlb(pairs):
        tlb = Tlb(TlbParams(entries=32, ways=4))
        for tag, frame in pairs:
            tlb.fill(tag, frame)
        return tlb

    @staticmethod
    def _clustered(pairs):
        tlb = ClusteredTlb(TlbParams(entries=32, ways=4))
        for vpn, frame in pairs:
            tlb.fill(vpn, frame)
        return tlb

    @given(fills, batch)
    def test_tlb_batch_matches_scalar_lookup(self, pairs, tags):
        tlb = self._tlb(pairs)
        results = tlb.probe_batch(tags)
        for tag, result in zip(tags, results):
            assert (result is not None) == tlb.contains(tag)
            # lookup() promotes, so ask a throwaway copy for the frame.
            assert copy.deepcopy(tlb).lookup(tag) == result

    @given(fills, batch)
    def test_tlb_batch_leaves_state_untouched(self, pairs, tags):
        tlb = self._tlb(pairs)
        before = (list(tlb.tags), list(tlb.frames), list(tlb.sizes),
                  tlb.stats.hits, tlb.stats.misses)
        tlb.probe_batch(tags)
        after = (list(tlb.tags), list(tlb.frames), list(tlb.sizes),
                 tlb.stats.hits, tlb.stats.misses)
        assert before == after

    @given(fills, batch, st.randoms(use_true_random=False))
    def test_tlb_batch_commutes_with_permutation(self, pairs, tags, rnd):
        tlb = self._tlb(pairs)
        order = list(range(len(tags)))
        rnd.shuffle(order)
        straight = tlb.probe_batch(tags)
        shuffled = tlb.probe_batch([tags[i] for i in order])
        assert shuffled == [straight[i] for i in order]
        # A bulk probe equals the fold of single-element probes.
        assert straight == [tlb.probe_batch([tag])[0] for tag in tags]

    @given(fills, batch)
    def test_clustered_batch_matches_scalar_lookup(self, pairs, vpns):
        tlb = self._clustered(pairs)
        results = tlb.probe_batch(vpns)
        for vpn, result in zip(vpns, results):
            assert (result is not None) == tlb.contains(vpn)
            assert copy.deepcopy(tlb).lookup(vpn) == result

    @given(fills, batch, st.randoms(use_true_random=False))
    def test_clustered_batch_pure_and_permutation_invariant(
            self, pairs, vpns, rnd):
        tlb = self._clustered(pairs)
        before = (list(tlb.vtags), list(tlb.ptags), list(tlb.sizes),
                  [(e.phys_cluster, e.valid_mask, list(e.sub_indices))
                   if e is not None else None for e in tlb.entries],
                  tlb.stats.hits, tlb.stats.misses)
        order = list(range(len(vpns)))
        rnd.shuffle(order)
        straight = tlb.probe_batch(vpns)
        shuffled = tlb.probe_batch([vpns[i] for i in order])
        assert shuffled == [straight[i] for i in order]
        after = (list(tlb.vtags), list(tlb.ptags), list(tlb.sizes),
                 [(e.phys_cluster, e.valid_mask, list(e.sub_indices))
                  if e is not None else None for e in tlb.entries],
                 tlb.stats.hits, tlb.stats.misses)
        assert before == after


class TestPermutationProperties:
    @given(st.integers(2, 1 << 22), st.integers(0, 1 << 30))
    @settings(max_examples=30)
    def test_permute_is_bijective_on_samples(self, n_items, seed):
        sample = np.arange(0, min(n_items, 2048), dtype=np.int64)
        out = permute(sample, n_items, seed)
        assert len(np.unique(out)) == len(sample)
        assert out.min() >= 0
        assert int(out.max()) < n_items

    @given(st.integers(1, 1 << 20), st.floats(0.2, 2.5),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=30)
    def test_bounded_zipf_stays_in_range(self, n_items, alpha, seed):
        rng = np.random.default_rng(seed)
        ranks = bounded_zipf(rng, n_items, alpha, 500)
        assert ranks.min() >= 0
        assert int(ranks.max()) < n_items


class TestAsapLayoutProperties:
    @given(
        st.integers(0, 1 << 35).map(lambda x: x & ~(c.PAGE_SIZE - 1)),
        st.integers(1, 1 << 32).map(
            lambda x: max(c.PAGE_SIZE, x & ~(c.PAGE_SIZE - 1))
        ),
        st.integers(0, 500),
    )
    @settings(max_examples=50)
    def test_descriptor_arithmetic_matches_layout(self, start, size,
                                                  page_index):
        """For any VMA geometry and any page in it, the range-register
        base-plus-offset computation must land exactly on the entry the
        ASAP layout placed (the Figure 5 invariant)."""
        buddy = BuddyAllocator(PhysicalMemory(1 << 42), seed=1)
        layout = AsapPtLayout(buddy, levels=(1, 2))
        vma = Vma(start=c.PAGE_SIZE + start, size=size)
        layout.register_vma(vma)
        va = min(vma.start + page_index * c.PAGE_SIZE, vma.end - 1)
        descriptor = VmaDescriptor(
            start=vma.start, end=vma.end,
            level_bases=tuple(sorted(layout.descriptor_bases(vma).items())),
        )
        for level in (1, 2):
            tag = c.node_tag(va, level)
            node_addr = layout.place_node(vma, level, tag)
            expected = node_addr + c.level_index(va, level) * c.ENTRY_BYTES
            assert descriptor.entry_addr(va, level) == expected

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=100))
    @settings(max_examples=30)
    def test_sorted_order_invariant(self, page_indices):
        """Footnote 1: va_x < va_y implies entry_addr(x) < entry_addr(y)."""
        buddy = BuddyAllocator(PhysicalMemory(1 << 42), seed=2)
        layout = AsapPtLayout(buddy, levels=(1,))
        vma = Vma(start=1 << 30, size=1 << 33)
        layout.register_vma(vma)
        addresses = []
        for index in sorted(set(page_indices)):
            va = vma.start + index * c.PAGE_SIZE
            tag = c.node_tag(va, 1)
            node = layout.place_node(vma, 1, tag)
            addresses.append(node + c.level_index(va, 1) * c.ENTRY_BYTES)
        assert addresses == sorted(addresses)


class TestRadixProperties:
    @given(st.lists(st.integers(0, (1 << 47) - 1), min_size=1,
                    max_size=100))
    @settings(max_examples=30)
    def test_mapped_pages_always_resolve(self, vas):
        pt = RadixPageTable()
        for index, va in enumerate(vas):
            pt.map_page(va, frame=index + 1)
        for va in vas:
            hit = pt.lookup(va)
            assert hit is not None
            path = pt.walk_path(va)
            assert path.frame == hit[0]
            assert [s.level for s in path.steps] == [4, 3, 2, 1]

    @given(st.lists(st.integers(0, (1 << 47) - 1), min_size=1,
                    max_size=60))
    @settings(max_examples=30)
    def test_node_count_grows_monotonically(self, vas):
        pt = RadixPageTable()
        previous = pt.node_count()
        for va in vas:
            pt.map_page(va, frame=1)
            current = pt.node_count()
            assert current >= previous
            previous = current


class TestBuddyProperties:
    @given(st.integers(0, 1 << 30), st.integers(1, 2000))
    @settings(max_examples=30)
    def test_allocated_frames_unique(self, seed, count):
        buddy = BuddyAllocator(PhysicalMemory(1 << 40), seed=seed)
        frames = buddy.alloc_frames(count)
        assert len(set(frames)) == count

    @given(st.lists(st.integers(1, 512), min_size=1, max_size=30),
           st.integers(0, 1 << 20))
    @settings(max_examples=30)
    def test_reservations_never_overlap(self, sizes, seed):
        buddy = BuddyAllocator(PhysicalMemory(1 << 40), seed=seed)
        spans = []
        for size in sizes:
            base = buddy.reserve_contiguous(size, headroom=size // 2)
            spans.append((base, base + size + size // 2))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
