"""Unit tests for the virtual machine / nested paging substrate."""

import pytest

from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.hypervisor import VirtualMachine
from repro.kernelsim.phys import PhysicalMemory
from repro.kernelsim.process import ProcessAddressSpace
from repro.kernelsim.pt_layout import AsapPtLayout
from repro.kernelsim.vma import VmaKind
from repro.pagetable import constants as c

GUEST_MEM = 1 << 32  # 4GB guest
HEAP = 0x5555_0000_0000


def make_vm(
    host_page_level=1,
    host_asap_levels=(),
    guest_asap_levels=(),
    back_guest_pt=False,
    heap_pages=4096,
):
    guest_buddy = BuddyAllocator(PhysicalMemory(GUEST_MEM), seed=3)
    layout = None
    if guest_asap_levels:
        layout = AsapPtLayout(guest_buddy, levels=guest_asap_levels, seed=3)
    guest = ProcessAddressSpace(buddy=guest_buddy, asap_layout=layout)
    vm = VirtualMachine(
        guest,
        guest_mem_bytes=GUEST_MEM,
        host_page_level=host_page_level,
        host_asap_levels=host_asap_levels,
        back_guest_pt_contiguously=back_guest_pt,
        seed=3,
    )
    vm.mmap(HEAP, heap_pages * c.PAGE_SIZE, kind=VmaKind.HEAP, name="heap")
    return vm


def test_nested_path_has_24_accesses():
    vm = make_vm()
    vm.touch(HEAP)
    path = vm.nested_path(HEAP)
    # Figure 7: five host walks of four accesses plus four guest entries.
    host_accesses = sum(len(s.host_steps) for s in path.steps)
    guest_accesses = sum(1 for s in path.steps if s.entry_host_addr)
    assert host_accesses == 20
    assert guest_accesses == 4
    assert [s.guest_level for s in path.steps] == [4, 3, 2, 1, 0]


def test_data_address_translates_consistently():
    vm = make_vm()
    result = vm.touch(HEAP + 123)
    path = vm.nested_path(HEAP + 123)
    gpa = (result.frame << c.PAGE_SHIFT) | 123
    assert path.steps[-1].gpa == gpa
    assert path.data_host_addr == vm.translate_gpa(gpa)


def test_host_2mb_pages_shorten_host_walks():
    vm = make_vm(host_page_level=2)
    vm.touch(HEAP)
    path = vm.nested_path(HEAP)
    # Figure 12 setting: host walks are 3 accesses (leaf at hPL2).
    assert all(len(s.host_steps) == 3 for s in path.steps)
    assert path.host_leaf_level == 2


def test_guest_pt_nodes_get_host_backing():
    vm = make_vm()
    result = vm.touch(HEAP)
    for _level, _tag, base in result.created_nodes:
        # Every guest PT node's gPA must be translatable.
        assert vm.translate_gpa(base) is not None


def test_host_asap_layout_covers_single_host_vma():
    vm = make_vm(host_asap_levels=(1, 2))
    bases = vm.host_descriptor_bases()
    assert set(bases) == {1, 2}
    vm.touch(HEAP)
    path = vm.nested_path(HEAP)
    # The host descriptor arithmetic must land on the hPT entries the
    # walker actually visits (deep levels only).
    for step in path.steps:
        for hstep in step.host_steps:
            if hstep.level in (1, 2):
                computed = bases[hstep.level] + (
                    (step.gpa >> c.level_shift(hstep.level)) * 8
                )
                assert computed == hstep.entry_addr


def test_guest_descriptors_require_contiguous_backing():
    vm = make_vm(guest_asap_levels=(1, 2), back_guest_pt=False)
    heap_vma = vm.guest.vmas.find(HEAP)
    assert vm.guest_descriptor_bases(heap_vma) == {}


def test_guest_descriptor_arithmetic_matches_walk():
    vm = make_vm(guest_asap_levels=(1, 2), back_guest_pt=True)
    heap_vma = vm.guest.vmas.find(HEAP)
    bases = vm.guest_descriptor_bases(heap_vma)
    assert set(bases) == {1, 2}
    va = HEAP + 100 * c.PAGE_SIZE
    vm.touch(va)
    path = vm.nested_path(va)
    for step in path.steps:
        if step.guest_level in (1, 2):
            computed = bases[step.guest_level] + (
                (va >> c.level_shift(step.guest_level)) * 8
            )
            assert computed == step.entry_host_addr


def test_guest_descriptor_arithmetic_with_2mb_host_pages():
    vm = make_vm(guest_asap_levels=(1, 2), back_guest_pt=True,
                 host_page_level=2)
    heap_vma = vm.guest.vmas.find(HEAP)
    bases = vm.guest_descriptor_bases(heap_vma)
    va = HEAP + 7 * c.PAGE_SIZE
    vm.touch(va)
    path = vm.nested_path(va)
    for step in path.steps:
        if step.guest_level in (1, 2):
            computed = bases[step.guest_level] + (
                (va >> c.level_shift(step.guest_level)) * 8
            )
            assert computed == step.entry_host_addr


def test_host_chain_cache_consistency():
    vm = make_vm()
    vm.touch(HEAP)
    a = vm.nested_path(HEAP)
    b = vm.nested_path(HEAP)
    assert a == b


def test_invalid_host_page_level():
    guest = ProcessAddressSpace(
        buddy=BuddyAllocator(PhysicalMemory(GUEST_MEM))
    )
    with pytest.raises(ValueError):
        VirtualMachine(guest, GUEST_MEM, host_page_level=3)
