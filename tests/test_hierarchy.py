"""Unit tests for the three-level cache hierarchy and prefetch path."""

from repro.mem.hierarchy import CacheHierarchy
from repro.params import CacheParams, HierarchyParams


def test_cold_access_goes_to_memory(hierarchy):
    result = hierarchy.access_line(42)
    assert result.level == "MEM"
    assert result.latency == 191


def test_fill_path_installs_in_all_levels(hierarchy):
    hierarchy.access_line(42)
    assert hierarchy.l1.contains(42)
    assert hierarchy.l2.contains(42)
    assert hierarchy.l3.contains(42)
    assert hierarchy.access_line(42).level == "L1"


def test_l2_hit_after_l1_eviction():
    params = HierarchyParams(
        l1=CacheParams(size_bytes=2 * 64, ways=1, latency=4),
        l2=CacheParams(size_bytes=64 * 64, ways=4, latency=12),
        l3=CacheParams(size_bytes=1024 * 64, ways=4, latency=40),
    )
    hierarchy = CacheHierarchy(params)
    hierarchy.access_line(0)
    hierarchy.access_line(2)  # same L1 set (2 sets), evicts 0 from L1
    result = hierarchy.access_line(0)
    assert result.level == "L2"
    assert result.latency == 12


def test_latencies_match_table5(hierarchy):
    assert hierarchy.latency_of("L1") == 4
    assert hierarchy.latency_of("L2") == 12
    assert hierarchy.latency_of("L3") == 40
    assert hierarchy.latency_of("MEM") == 191


def test_access_addr_uses_line_granularity(hierarchy):
    hierarchy.access_addr(0x1000)
    # Bytes 0x1000..0x103f share a line.
    assert hierarchy.access_addr(0x103F).level == "L1"
    # 0x1040 is the next line.
    assert hierarchy.access_addr(0x1040).level == "MEM"


def test_prefetch_installs_and_completes(hierarchy):
    completion = hierarchy.prefetch_line(9, now=100)
    assert completion == 100 + 191
    assert hierarchy.l1.contains(9)
    assert hierarchy.access_line(9).level == "L1"


def test_prefetch_of_resident_line_is_l1_hit(hierarchy):
    hierarchy.access_line(9)
    completion = hierarchy.prefetch_line(9, now=10)
    assert completion == 10 + 4


def test_prefetch_dropped_without_mshr(hierarchy):
    # Fill every MSHR with distinct in-flight lines at the same time.
    for line in range(hierarchy.params.mshr_entries):
        assert hierarchy.prefetch_line(line, now=0) is not None
    dropped = hierarchy.prefetch_line(999, now=0)
    assert dropped is None
    assert hierarchy.prefetches_dropped == 1
    # The dropped prefetch must not have installed into L1.
    assert not hierarchy.l1.contains(999)


def test_mshrs_retire_over_time(hierarchy):
    for line in range(hierarchy.params.mshr_entries):
        hierarchy.prefetch_line(line, now=0)
    # At t=500 all previous misses have completed (191 cycles).
    assert hierarchy.prefetch_line(999, now=500) is not None


def test_demand_merges_with_inflight_prefetch():
    hierarchy = CacheHierarchy()
    completion = hierarchy.prefetch_line(5, now=0)
    hierarchy.l1.invalidate(5)  # force the demand miss to hit the MSHR path
    result = hierarchy.access_line(5, now=50)
    assert result.level == "MSHR"
    assert result.latency == completion - 50


def test_served_counters(hierarchy):
    hierarchy.access_line(1)
    hierarchy.access_line(1)
    hierarchy.access_line(2)
    assert hierarchy.served["MEM"] == 2
    assert hierarchy.served["L1"] == 1


def test_flush_and_reset(hierarchy):
    hierarchy.access_line(1)
    hierarchy.flush()
    hierarchy.reset_stats()
    assert hierarchy.access_line(1).level == "MEM"
    assert hierarchy.served["MEM"] == 1


def test_warm_preinstalls(hierarchy):
    hierarchy.warm([1, 2, 3])
    for line in (1, 2, 3):
        assert hierarchy.access_line(line).level == "L1"
