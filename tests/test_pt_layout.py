"""Unit tests for the ASAP page-table layout (contiguity + sorted order)."""

import pytest

from repro.kernelsim.buddy import BuddyAllocator
from repro.kernelsim.phys import PhysicalMemory
from repro.kernelsim.pt_layout import AsapPtLayout
from repro.kernelsim.vma import Vma
from repro.pagetable import constants as c

BASE = 0x5555_0000_0000


def make_layout(levels=(1, 2), **kwargs):
    buddy = BuddyAllocator(PhysicalMemory(1 << 40), seed=1)
    return AsapPtLayout(buddy, levels=levels, **kwargs), buddy


def test_region_sizes_match_vma_span():
    layout, _ = make_layout()
    # 1GB VMA: 512 PL1 nodes, 1 PL2 node.
    vma = Vma(BASE, 1 << 30)
    layout.register_vma(vma)
    assert layout.region(vma, 1).capacity == 512
    assert layout.region(vma, 2).capacity == 1


def test_nodes_are_contiguous_and_sorted():
    layout, _ = make_layout()
    vma = Vma(BASE, 1 << 30)
    layout.register_vma(vma)
    region = layout.region(vma, 1)
    addrs = [
        layout.place_node(vma, 1, region.first_tag + i) for i in range(512)
    ]
    assert addrs == [region.base_addr + i * c.NODE_BYTES for i in range(512)]


def test_descriptor_base_plus_offset_identity():
    """The core ASAP invariant: for every VA in the VMA, the descriptor
    arithmetic lands exactly on the node the layout placed (Figure 5)."""
    layout, _ = make_layout()
    vma = Vma(BASE + 37 * c.PAGE_SIZE, 1 << 29)  # deliberately unaligned
    layout.register_vma(vma)
    for level in (1, 2):
        base = layout.descriptor_bases(vma)[level]
        for va in (vma.start, vma.start + 12345 * c.PAGE_SIZE, vma.end - 1):
            tag = c.node_tag(va, level)
            node_addr = layout.place_node(vma, level, tag)
            expected_entry = node_addr + c.level_index(va, level) * 8
            computed = base + (va >> c.level_shift(level)) * 8
            assert computed == expected_entry


def test_unregistered_vma_falls_back_to_buddy():
    layout, buddy = make_layout()
    vma = Vma(BASE, 1 << 30)
    addr = layout.place_node(vma, 1, c.node_tag(vma.start, 1))
    assert addr % c.NODE_BYTES == 0
    assert layout.is_hole(vma, 1, vma.start)


def test_growth_extends_into_headroom():
    layout, _ = make_layout(headroom_fraction=0.5)
    vma = Vma(BASE, 1 << 30, growable=True)
    layout.register_vma(vma)
    region = layout.region(vma, 1)
    vma.size += 100 * c.LARGE_PAGE_SIZE  # grow by 100 PL1 nodes' worth
    grown_tag = region.first_tag + 512 + 50
    addr = layout.place_node(vma, 1, grown_tag)
    assert addr == region.node_addr(grown_tag)
    assert not layout.is_hole(vma, 1,
                              vma.start + (512 + 50) * c.LARGE_PAGE_SIZE)


def test_growth_beyond_headroom_creates_holes():
    layout, _ = make_layout(headroom_fraction=0.1)
    vma = Vma(BASE, 1 << 30, growable=True)
    layout.register_vma(vma)
    region = layout.region(vma, 1)
    vma.size += 1 << 30  # double: far beyond 10% headroom
    far_tag = region.first_tag + 1000
    layout.place_node(vma, 1, far_tag)
    assert layout.holes_created >= 1
    far_va = vma.start + 1000 * c.LARGE_PAGE_SIZE
    assert layout.is_hole(vma, 1, far_va)
    # Walks still work: the node got a real (buddy) frame, just unprefetchable.


def test_pinned_failure_probability_creates_holes():
    layout, _ = make_layout(pinned_failure_prob=1.0)
    vma = Vma(BASE, 1 << 30)
    layout.register_vma(vma)
    region = layout.region(vma, 1)
    layout.place_node(vma, 1, region.first_tag)
    assert layout.holes_created == 1
    assert layout.is_hole(vma, 1, vma.start)


def test_non_growable_vma_has_no_headroom():
    layout, buddy = make_layout()
    vma = Vma(BASE, 1 << 30, growable=False)
    layout.register_vma(vma)
    region = layout.region(vma, 1)
    assert region.reserved_total == region.capacity


def test_reserved_cost_is_tiny_fraction_of_dataset():
    """§3.3 'Cost': PT regions for a 100GB dataset are ~0.2% of it."""
    layout, _ = make_layout()
    vma = Vma(BASE, 100 << 30)
    layout.register_vma(vma)
    reserved = layout.total_reserved_bytes
    # PL1: 100GB/2MB = 51200 nodes = 200MB; PL2: 100 nodes = 400KB.
    assert reserved == pytest.approx(200 * (1 << 20), rel=0.01)
    assert reserved / (100 << 30) < 0.003


def test_double_registration_is_idempotent():
    layout, buddy = make_layout()
    vma = Vma(BASE, 1 << 30)
    layout.register_vma(vma)
    before = buddy.stats.reservations
    layout.register_vma(vma)
    assert buddy.stats.reservations == before
