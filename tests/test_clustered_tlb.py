"""Unit tests for the Clustered TLB coalescing design (§5.4.1)."""

import pytest

from repro.params import TlbParams
from repro.tlb.clustered import CLUSTER_PAGES, ClusteredTlb


def make(entries: int = 16, ways: int = 4) -> ClusteredTlb:
    return ClusteredTlb(TlbParams(entries=entries, ways=ways))


def test_basic_fill_and_lookup():
    tlb = make()
    tlb.fill(10, 1000)
    assert tlb.lookup(10) == 1000
    assert tlb.lookup(11) is None


def test_cluster_coalesces_contiguous_translations():
    tlb = make()
    # vpns 0..7 -> frames 64..71: same physical cluster (64 >> 3 == 8).
    neighbours = [64 + i for i in range(CLUSTER_PAGES)]
    tlb.fill(0, 64, neighbour_frames=neighbours)
    assert tlb.occupancy == 1
    for vpn in range(CLUSTER_PAGES):
        assert tlb.lookup(vpn) == 64 + vpn
    assert tlb.coalesced_fills == CLUSTER_PAGES - 1


def test_neighbours_in_other_physical_clusters_do_not_coalesce():
    tlb = make()
    neighbours = [64, 65, 200, None, 66, 999, 67, 700]
    tlb.fill(0, 64, neighbour_frames=neighbours)
    assert tlb.lookup(0) == 64
    assert tlb.lookup(1) == 65
    assert tlb.lookup(4) == 66
    assert tlb.lookup(6) == 67
    # Frames 200/999/700 are outside physical cluster 8.
    assert tlb.lookup(2) is None
    assert tlb.lookup(5) is None
    assert tlb.lookup(7) is None


def test_shuffled_frames_within_cluster_still_coalesce():
    # Clustered TLB stores a 3-bit sub-index per page, so any permutation
    # within the physical cluster coalesces.
    tlb = make()
    neighbours = [67, 66, 65, 64, 71, 70, 69, 68]
    tlb.fill(0, 67, neighbour_frames=neighbours)
    assert tlb.occupancy == 1
    for vpn, frame in enumerate(neighbours):
        assert tlb.lookup(vpn) == frame


def test_conflicting_physical_clusters_coexist():
    tlb = make()
    tlb.fill(0, 64)
    # Same virtual cluster, different physical cluster: a second entry is
    # allocated rather than thrashing the first (low-contiguity workloads
    # must degrade to plain-TLB behaviour, not worse).
    tlb.fill(1, 128)
    assert tlb.lookup(1) == 128
    assert tlb.lookup(0) == 64
    assert tlb.occupancy == 2


def test_capacity_is_counted_in_entries_not_translations():
    tlb = make(entries=2, ways=2)  # one set of two cluster entries
    tlb.fill(0 * 8, 0, neighbour_frames=list(range(8)))
    tlb.fill(1 * 8, 8, neighbour_frames=list(range(8, 16)))
    assert tlb.translations == 16
    # A third cluster evicts the LRU one despite 16 live translations.
    tlb.fill(2 * 8, 16)
    assert tlb.lookup(0) is None


def test_invalidate_single_translation():
    tlb = make()
    tlb.fill(0, 64, neighbour_frames=[64 + i for i in range(8)])
    assert tlb.invalidate(3)
    assert tlb.lookup(3) is None
    assert tlb.lookup(4) == 68
    assert not tlb.invalidate(3)


def test_invalidating_last_translation_frees_entry():
    tlb = make()
    tlb.fill(5, 100)
    assert tlb.invalidate(5)
    assert tlb.occupancy == 0


def test_lru_promotion_on_hit():
    tlb = make(entries=2, ways=2)
    tlb.fill(0, 0)
    tlb.fill(8, 8)
    tlb.lookup(0)  # promote cluster 0
    tlb.fill(16, 16)  # evicts cluster 1 (vpn 8)
    assert tlb.lookup(0) == 0
    assert tlb.lookup(8) is None


def test_miss_ratio_stats():
    tlb = make()
    tlb.fill(0, 0)
    tlb.lookup(0)
    tlb.lookup(100)
    assert tlb.stats.miss_ratio == pytest.approx(0.5)
