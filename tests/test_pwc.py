"""Unit tests for the split page-walk caches."""

import pytest

from repro.pagetable.constants import level_shift
from repro.pagetable.pwc import SplitPwc
from repro.params import PwcParams

VA = 0x5555_0000_0000


def test_cold_probe_misses():
    pwc = SplitPwc()
    assert pwc.probe(VA) is None


def test_insert_then_probe_hits_deepest():
    pwc = SplitPwc()
    pwc.insert(VA, leaf_level=1)
    assert pwc.probe(VA) == 2  # deepest intermediate level


def test_probe_prefers_deeper_levels():
    pwc = SplitPwc()
    pwc.insert(VA, leaf_level=1)
    # A VA sharing the PL3 entry but not PL2: probe should hit at 3.
    other = VA + (1 << level_shift(2))
    assert pwc.probe(other) == 3


def test_pl4_only_hit():
    pwc = SplitPwc()
    pwc.insert(VA, leaf_level=1)
    other = VA + (1 << level_shift(3))
    assert pwc.probe(other) == 4


def test_large_page_walk_does_not_cache_pl2():
    # A 2MB walk's PL2 entry is a leaf PTE; it belongs in the TLB.
    pwc = SplitPwc()
    pwc.insert(VA, leaf_level=2)
    assert pwc.probe(VA) == 3


def test_capacity_eviction():
    params = PwcParams(pl2_entries=2, pl2_ways=2)
    pwc = SplitPwc(params)
    for i in range(3):
        pwc.insert(VA + i * (1 << level_shift(2)), leaf_level=1)
    # The first PL2 entry was evicted (LRU), but PL3 still covers it.
    assert pwc.probe(VA) == 3


def test_five_level_pwc():
    pwc = SplitPwc(top_level=5)
    va = 1 << 52
    pwc.insert(va, leaf_level=1)
    assert pwc.probe(va) == 2
    other = va + (1 << level_shift(4))
    assert pwc.probe(other) == 5


def test_flush():
    pwc = SplitPwc()
    pwc.insert(VA, leaf_level=1)
    pwc.flush()
    assert pwc.probe(VA) is None


def test_hit_rate():
    pwc = SplitPwc()
    pwc.probe(VA)
    pwc.insert(VA, leaf_level=1)
    pwc.probe(VA)
    assert pwc.hit_rate() == pytest.approx(0.5)


def test_scaled_params_double_capacity():
    params = PwcParams().scaled(2)
    assert params.pl2_entries == 64
    assert params.pl4_entries == 4
    pwc = SplitPwc(params)
    assert pwc.latency == 2  # latency unchanged by scaling
