"""Unit tests for VMAs and the VMA tree."""

import pytest

from repro.kernelsim.vma import Vma, VmaKind, VmaOverlapError, VmaTree

MB = 1 << 20


def test_find_inside_and_outside():
    tree = VmaTree()
    vma = tree.insert(Vma(0x1000_0000, 16 * MB, name="heap"))
    assert tree.find(0x1000_0000) is vma
    assert tree.find(0x1000_0000 + 16 * MB - 1) is vma
    assert tree.find(0x1000_0000 + 16 * MB) is None
    assert tree.find(0x0FFF_FFFF) is None


def test_overlap_rejected():
    tree = VmaTree()
    tree.insert(Vma(0x1000_0000, 16 * MB))
    with pytest.raises(VmaOverlapError):
        tree.insert(Vma(0x1000_0000 + 8 * MB, 16 * MB))
    with pytest.raises(VmaOverlapError):
        tree.insert(Vma(0x1000_0000 - 8 * MB, 16 * MB))


def test_adjacent_vmas_allowed():
    tree = VmaTree()
    tree.insert(Vma(0, 4096))
    tree.insert(Vma(4096, 4096))
    assert len(tree) == 2


def test_iteration_in_address_order():
    tree = VmaTree()
    tree.insert(Vma(0x3000_0000, MB))
    tree.insert(Vma(0x1000_0000, MB))
    tree.insert(Vma(0x2000_0000, MB))
    starts = [v.start for v in tree]
    assert starts == sorted(starts)


def test_extend_growable():
    tree = VmaTree()
    heap = tree.insert(Vma(0x1000_0000, MB, growable=True))
    tree.extend(heap, MB)
    assert heap.size == 2 * MB
    assert tree.find(0x1000_0000 + MB + 100) is heap


def test_extend_non_growable_rejected():
    tree = VmaTree()
    vma = tree.insert(Vma(0x1000_0000, MB))
    with pytest.raises(ValueError):
        tree.extend(vma, MB)


def test_extend_collision_with_next_vma():
    tree = VmaTree()
    heap = tree.insert(Vma(0x1000_0000, MB, growable=True))
    tree.insert(Vma(0x1000_0000 + 2 * MB, MB))
    with pytest.raises(VmaOverlapError):
        tree.extend(heap, 2 * MB)


def test_coverage_count_matches_table2_metric():
    tree = VmaTree()
    # One huge heap plus a spray of small libraries: 1 VMA covers 99%.
    tree.insert(Vma(0x1000_0000_0000, 10_000 * MB, kind=VmaKind.HEAP))
    for i in range(15):
        tree.insert(Vma(0x7000_0000_0000 + i * 4 * MB, MB,
                        kind=VmaKind.LIBRARY))
    assert tree.count_for_coverage(0.99) == 1
    assert len(tree) == 16


def test_coverage_with_multiple_large_vmas():
    tree = VmaTree()
    for i in range(4):
        tree.insert(Vma(0x1000_0000_0000 + i * (1 << 40), 1000 * MB))
    assert tree.count_for_coverage(0.99) == 4
    assert tree.count_for_coverage(0.25) == 1


def test_largest():
    tree = VmaTree()
    tree.insert(Vma(0, MB, name="small"))
    big = tree.insert(Vma(1 << 40, 100 * MB, name="big"))
    assert tree.largest(1) == [big]


def test_empty_tree_edge_cases():
    tree = VmaTree()
    assert tree.find(0) is None
    assert tree.count_for_coverage() == 0
    assert tree.total_bytes == 0
