"""Focused tests: PWC interactions inside nested (2D) walks.

Figure 7's 24-access schedule collapses in practice because both PWC
dimensions absorb repeated structure; these tests pin the collapse points.
"""

from repro.mem.hierarchy import CacheHierarchy
from repro.pagetable.constants import LARGE_PAGE_SIZE, PAGE_SIZE
from repro.pagetable.nested import NestedPageWalker
from repro.pagetable.pwc import SplitPwc
from tests.test_hypervisor import HEAP, make_vm


def make_walker():
    hierarchy = CacheHierarchy()
    return NestedPageWalker(hierarchy, SplitPwc(), SplitPwc()), hierarchy


def count(records, prefix, label=None):
    return sum(
        1 for key, served in records
        if key.startswith(prefix) and (label is None or served == label)
    )


def test_guest_pwc_hit_skips_host_walks_too():
    walker, _ = make_walker()
    vm = make_vm(heap_pages=1 << 14)
    vm.touch(HEAP)
    walker.walk(vm.nested_path(HEAP))
    # Neighbouring page: same guest PL1 node -> guest PWC hit at PL2.
    neighbour = HEAP + PAGE_SIZE
    vm.touch(neighbour)
    outcome = walker.walk(vm.nested_path(neighbour))
    # Guest levels 4..2 are PWC hits, so their three host 1D walks never
    # happen: only the gPL1 host walk + entry + data host walk remain.
    assert count(outcome.records, "g", "PWC") == 3
    host_accesses = count(outcome.records, "h")
    assert host_accesses <= 2 * 4 + 2  # two host walks (+probes recorded)


def test_host_pwc_shared_across_guest_steps():
    walker, _ = make_walker()
    vm = make_vm()
    vm.touch(HEAP)
    outcome = walker.walk(vm.nested_path(HEAP))
    # Within one cold 2D walk, later host walks reuse hPT upper levels
    # cached by the first one.
    h4_pwc = count(outcome.records, "h4", "PWC")
    assert h4_pwc >= 3  # four of the five host walks can hit


def test_far_guest_pages_share_little():
    walker, _ = make_walker()
    vm = make_vm(heap_pages=1 << 19)  # 2GB heap
    far = HEAP + (1 << 30)  # different guest PL3 subtree
    vm.touch(HEAP)
    vm.touch(far)
    walker.walk(vm.nested_path(HEAP))
    outcome = walker.walk(vm.nested_path(far))
    # The guest PL1 entry for the far page cannot be a guest-PWC hit.
    assert count(outcome.records, "g1", "PWC") == 0


def test_large_guest_pages_shorten_guest_dimension():
    walker, _ = make_walker()
    vm = make_vm(heap_pages=0)  # no 4KB heap; map a 2MB-backed VMA
    vma_base = 0x7000_0000_0000
    vm.mmap(vma_base, 4 * LARGE_PAGE_SIZE, page_level=2)
    vm.touch(vma_base)
    path = vm.nested_path(vma_base)
    # Guest chain stops at gPL2 (leaf PTE): three guest entries, four host
    # walks (three for PT nodes + one for data) -> 3 + 4*4 = 19 accesses.
    assert path.guest_leaf_level == 2
    outcome = walker.walk(path)
    assert len(outcome.records) == 19


def test_repeat_2d_walk_is_pwc_bound():
    walker, hierarchy = make_walker()
    vm = make_vm()
    vm.touch(HEAP)
    walker.walk(vm.nested_path(HEAP))
    outcome = walker.walk(vm.nested_path(HEAP))
    # Guest PWC covers g4..g2; only the gPL1 entry and two host walks'
    # L1-resident lines remain.
    assert outcome.latency < 60
