"""The paper's qualitative shapes, checked end to end.

`repro.validation` is the executable definition of "reproduced"; running
it in the test suite (small scale) guards against calibration regressions.
"""

import pytest

from repro.sim.runner import Scale
from repro.validation import CHECKS, validate_shapes

SCALE = Scale(trace_length=10_000, warmup=2_000, seed=42)


def test_every_check_has_a_paper_reference():
    for check in CHECKS:
        assert check.where
        assert check.claim


@pytest.fixture(scope="module")
def failures():
    return validate_shapes(SCALE)


def test_shapes_hold(failures):
    # All of the paper's qualitative claims must hold even at test scale.
    assert failures == []
