"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mc400" in out
    assert "P1g+P1h+P2g+P2h" in out


def test_run_native(capsys):
    assert main(["run", "mcf", "--config", "p1+p2",
                 "--trace-length", "3000"]) == 0
    out = capsys.readouterr().out
    assert "avg walk latency" in out
    assert "prefetches" in out


def test_run_virtualized(capsys):
    assert main(["run", "mcf", "--config", "full", "--virtualized",
                 "--trace-length", "2000"]) == 0
    out = capsys.readouterr().out
    assert "virtualized=True" in out


def test_run_rejects_guest_config_without_virt(capsys):
    assert main(["run", "mcf", "--config", "p1g",
                 "--trace-length", "2000"]) == 2


def test_experiment_command(capsys):
    assert main(["experiment", "table2", "--trace-length", "2000"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out


def test_experiment_unknown(capsys):
    assert main(["experiment", "fig99"]) == 2


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nonexistent"])


def test_validate_command(capsys):
    assert main(["validate", "--trace-length", "4000"]) in (0, 1)
    out = capsys.readouterr().out
    assert "shapes hold" in out


def test_mt_command(capsys):
    assert main(["mt", "--trace-length", "1200", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Multi-tenant (native)" in out
    assert "isolated" in out
    assert "ASID retention benefit" in out


def test_list_mentions_mixes(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mix-server" in out
