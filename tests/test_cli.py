"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mc400" in out
    assert "P1g+P1h+P2g+P2h" in out


def test_run_native(capsys):
    assert main(["run", "mcf", "--config", "p1+p2",
                 "--trace-length", "3000"]) == 0
    out = capsys.readouterr().out
    assert "avg walk latency" in out
    assert "prefetches" in out


def test_run_virtualized(capsys):
    assert main(["run", "mcf", "--config", "full", "--virtualized",
                 "--trace-length", "2000"]) == 0
    out = capsys.readouterr().out
    assert "virtualized=True" in out


def test_run_rejects_guest_config_without_virt(capsys):
    assert main(["run", "mcf", "--config", "p1g",
                 "--trace-length", "2000"]) == 2


def test_experiment_command(capsys):
    assert main(["experiment", "table2", "--trace-length", "2000"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out


def test_experiment_unknown(capsys):
    assert main(["experiment", "fig99"]) == 2


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nonexistent"])


def test_validate_command(capsys):
    assert main(["validate", "--trace-length", "4000"]) in (0, 1)
    out = capsys.readouterr().out
    assert "shapes hold" in out


def test_mt_command(capsys):
    assert main(["mt", "--trace-length", "1200", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Multi-tenant (native)" in out
    assert "isolated" in out
    assert "ASID retention benefit" in out


def test_list_mentions_mixes(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mix-server" in out


def test_zero_trace_length_is_an_argparse_error():
    # A zero-length sweep previously ran "successfully" and printed
    # all-zero tables; every --trace-length is now a positive int.
    for argv in (["run", "mcf", "--trace-length", "0"],
                 ["mt", "--trace-length", "0"],
                 ["compare", "--trace-length", "-5"],
                 ["scaling", "--trace-length", "0"]):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)


def test_trace_materialize_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["trace", "materialize", "bogus", "--records", "100",
             "--out", "/tmp/x"])


def test_trace_roundtrip_and_scaling(tmp_path, capsys):
    out = str(tmp_path / "t")
    assert main(["trace", "materialize", "mc80", "--records", "1500",
                 "--seed", "7", "--out", out]) == 0
    assert main(["trace", "info", out]) == 0
    assert "format_version" in capsys.readouterr().out
    assert main(["trace", "hash", out]) == 0
    assert "ok:" in capsys.readouterr().out
    assert main(["scaling", "--trace", out, "--no-cache"]) == 0
    table = capsys.readouterr().out
    assert "Scaling (trace" in table
    assert "baseline_pct" in table


def test_scaling_trace_uses_the_traces_own_seed(tmp_path, monkeypatch):
    # Without an explicit --seed, the replay's OS substrate must be
    # seeded like the run the trace was materialised from — not the
    # generated-ladder default of 42.
    out = str(tmp_path / "t")
    assert main(["trace", "materialize", "mcf", "--records", "1000",
                 "--seed", "7", "--out", out]) == 0
    captured = {}
    from repro.experiments import scaling

    real = scaling.jobs_for_trace

    def spy(ref, seed=None, kernel="scalar"):
        jobs = real(ref, seed=seed, kernel=kernel)
        captured["seeds"] = {job.scale.seed for job in jobs}
        return jobs

    monkeypatch.setattr(scaling, "jobs_for_trace", spy)
    assert main(["scaling", "--trace", out, "--no-cache"]) == 0
    assert captured["seeds"] == {7}


def test_trace_hash_on_missing_path_is_clean(capsys):
    assert main(["trace", "hash", "/tmp/definitely-not-a-trace"]) == 2
    assert "error:" in capsys.readouterr().err


def test_scaling_command_generated(capsys):
    assert main(["scaling", "--trace-length", "600", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "convergence" in out
    assert "asap_reduction" in out
