"""Unit tests for the SMT co-runner."""

from repro.mem.hierarchy import CacheHierarchy
from repro.workloads.corunner import Corunner


def test_step_generates_cache_traffic():
    hierarchy = CacheHierarchy()
    corunner = Corunner(seed=1)
    for _ in range(100):
        corunner.step(hierarchy, 0)
    assert corunner.accesses == 100
    # Data line + PT line(s) per access.
    total = sum(hierarchy.served.values())
    assert total >= 200


def test_intensity_multiplies_traffic():
    h1 = CacheHierarchy()
    c1 = Corunner(seed=1, intensity=1)
    h4 = CacheHierarchy()
    c4 = Corunner(seed=1, intensity=4)
    for _ in range(200):
        c1.step(h1, 0)
        c4.step(h4, 0)
    assert sum(h4.served.values()) > 3 * sum(h1.served.values())


def test_lines_do_not_collide_with_low_memory():
    hierarchy = CacheHierarchy()
    corunner = Corunner(seed=2)
    corunner.step(hierarchy, 0)
    # Everything the co-runner touches sits above 2^37 in line space.
    for cache in (hierarchy.l1,):
        for line in cache.resident_lines():
            assert line >= 1 << 37


def test_prefill_fills_all_cache_levels():
    hierarchy = CacheHierarchy()
    corunner = Corunner(seed=3)
    corunner.prefill(hierarchy)
    assert hierarchy.l3.occupancy == hierarchy.params.l3.lines
    assert hierarchy.l2.occupancy == hierarchy.params.l2.lines
    assert hierarchy.l1.occupancy == hierarchy.params.l1.lines


def test_prefill_lines_are_evictable_junk():
    hierarchy = CacheHierarchy()
    corunner = Corunner(seed=3)
    corunner.prefill(hierarchy)
    # An application line still misses and installs normally.
    result = hierarchy.access_line(123)
    assert result.level == "MEM"
    assert hierarchy.access_line(123).level == "L1"


def test_deterministic_stream():
    h1, h2 = CacheHierarchy(), CacheHierarchy()
    c1, c2 = Corunner(seed=9), Corunner(seed=9)
    for _ in range(500):
        c1.step(h1, 0)
        c2.step(h2, 0)
    assert h1.served == h2.served
