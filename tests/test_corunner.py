"""Unit tests for the SMT co-runner."""

from repro.mem.hierarchy import CacheHierarchy
from repro.workloads.corunner import Corunner


def test_step_generates_cache_traffic():
    hierarchy = CacheHierarchy()
    corunner = Corunner(seed=1)
    for _ in range(100):
        corunner.step(hierarchy, 0)
    assert corunner.accesses == 100
    # Data line + PT line(s) per access.
    total = sum(hierarchy.served.values())
    assert total >= 200


def test_intensity_multiplies_traffic():
    h1 = CacheHierarchy()
    c1 = Corunner(seed=1, intensity=1)
    h4 = CacheHierarchy()
    c4 = Corunner(seed=1, intensity=4)
    for _ in range(200):
        c1.step(h1, 0)
        c4.step(h4, 0)
    assert sum(h4.served.values()) > 3 * sum(h1.served.values())


def test_lines_do_not_collide_with_low_memory():
    hierarchy = CacheHierarchy()
    corunner = Corunner(seed=2)
    corunner.step(hierarchy, 0)
    # Everything the co-runner touches sits above 2^37 in line space.
    for cache in (hierarchy.l1,):
        for line in cache.resident_lines():
            assert line >= 1 << 37


def test_prefill_fills_all_cache_levels():
    hierarchy = CacheHierarchy()
    corunner = Corunner(seed=3)
    corunner.prefill(hierarchy)
    assert hierarchy.l3.occupancy == hierarchy.params.l3.lines
    assert hierarchy.l2.occupancy == hierarchy.params.l2.lines
    assert hierarchy.l1.occupancy == hierarchy.params.l1.lines


def test_prefill_lines_are_evictable_junk():
    hierarchy = CacheHierarchy()
    corunner = Corunner(seed=3)
    corunner.prefill(hierarchy)
    # An application line still misses and installs normally.
    result = hierarchy.access_line(123)
    assert result.level == "MEM"
    assert hierarchy.access_line(123).level == "L1"


def test_deterministic_stream():
    h1, h2 = CacheHierarchy(), CacheHierarchy()
    c1, c2 = Corunner(seed=9), Corunner(seed=9)
    for _ in range(500):
        c1.step(h1, 0)
        c2.step(h2, 0)
    assert h1.served == h2.served


def test_refill_merge_matches_scalar_reference():
    """The vectorised _refill merge is byte-identical to the per-element
    loop it replaced: same rng draws in the same order, same interleaved
    [data, pt1(, pt2)] stream, same per-slot take counts."""
    import numpy as np

    from repro.workloads import corunner as m

    fast = Corunner(seed=123, batch=4096)
    fast._refill()

    rng = np.random.default_rng(123)
    n = 4096
    data = rng.integers(0, fast.footprint_lines, size=n,
                        dtype=np.int64) + m._CORUNNER_LINE_BASE
    pt1 = rng.integers(0, fast.pt_lines, size=n,
                       dtype=np.int64) + m._CORUNNER_PT_BASE
    extra = (rng.random(n) < (fast.walk_lines_per_access - 1.0)).tolist()
    pt2 = rng.integers(0, max(1, fast.pt_lines >> 9), size=n,
                       dtype=np.int64) + m._CORUNNER_PT_BASE * 3
    merged, takes = [], []
    for i in range(n):
        merged.append(int(data[i]))
        merged.append(int(pt1[i]))
        if extra[i]:
            merged.append(int(pt2[i]))
            takes.append(3)
        else:
            takes.append(2)
    assert fast._buffer == merged
    assert fast._takes == takes
