"""Unit tests for the workload suite (Table 3) and its patterns."""

import numpy as np
import pytest

from repro.pagetable.constants import PAGE_SIZE
from repro.workloads.base import KeyValue, Mix, Zipf
from repro.workloads.graph import GraphTraversal
from repro.workloads.suite import ALL_NAMES, WORKLOADS, get


class TestSuiteStructure:
    def test_all_seven_workloads_present(self):
        assert set(ALL_NAMES) == {
            "mcf", "canneal", "bfs", "pagerank", "mc80", "mc400", "redis"
        }

    def test_footprints_match_table3(self):
        GB = 1 << 30
        assert WORKLOADS["bfs"].footprint_bytes >= 60 * GB
        assert WORKLOADS["pagerank"].footprint_bytes >= 60 * GB
        assert WORKLOADS["mc80"].footprint_bytes >= 80 * GB
        assert WORKLOADS["mc400"].footprint_bytes >= 400 * GB
        assert WORKLOADS["redis"].footprint_bytes >= 49 * GB

    def test_vma_counts_match_table2(self):
        expected = {
            "canneal": 18, "mcf": 16, "pagerank": 18, "bfs": 14,
            "mc80": 26, "mc400": 33, "redis": 7,
        }
        for name, total in expected.items():
            assert len(WORKLOADS[name].vmas) == total, name

    def test_99pct_coverage_counts_match_table2(self):
        expected = {
            "canneal": 4, "mcf": 1, "pagerank": 1, "bfs": 1,
            "mc80": 6, "mc400": 13, "redis": 1,
        }
        for name, count in expected.items():
            process = WORKLOADS[name].build_process()
            assert process.vmas.count_for_coverage(0.99) == count, name

    def test_get_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown workload"):
            get("nonexistent")


class TestTraceGeneration:
    def test_traces_land_in_vmas(self):
        for name in ("mcf", "mc80", "bfs"):
            spec = get(name)
            process = spec.build_process()
            trace = spec.generate_trace(2000, seed=1)
            for va in trace[:500].tolist():
                assert process.vmas.find(va) is not None, name

    def test_trace_length_and_dtype(self):
        trace = get("redis").generate_trace(1234, seed=0)
        assert len(trace) == 1234
        assert trace.dtype == np.int64

    def test_deterministic_per_seed(self):
        spec = get("canneal")
        assert np.array_equal(spec.generate_trace(1000, 5),
                              spec.generate_trace(1000, 5))
        assert not np.array_equal(spec.generate_trace(1000, 5),
                                  spec.generate_trace(1000, 6))

    def test_big_vmas_dominate_accesses(self):
        spec = get("mcf")
        process = spec.build_process()
        trace = spec.generate_trace(5000, seed=2)
        heap = process.vmas.largest(1)[0]
        share = np.mean([(heap.start <= va < heap.end)
                         for va in trace.tolist()])
        assert share > 0.9


class TestPatterns:
    def test_keyvalue_touches_hash_and_values(self):
        rng = np.random.default_rng(3)
        pattern = KeyValue(alpha=1.0, hash_fraction=0.1, value_run=1)
        pages = pattern.generate(rng, 100_000, 10_000)
        hash_pages = 10_000
        hash_share = np.mean(pages < hash_pages)
        assert 0.3 < hash_share < 0.7  # one probe per value access

    def test_keyvalue_value_run_touches_adjacent_pages(self):
        rng = np.random.default_rng(3)
        pattern = KeyValue(alpha=1.0, hash_fraction=0.1, value_run=2)
        pages = pattern.generate(rng, 100_000, 9_000)
        # Layout per request: bucket, value, value+1.
        assert np.all(pages[2::3] - pages[1::3] == 1)

    def test_graph_traversal_modes(self):
        rng = np.random.default_rng(4)
        for mode in ("bfs", "pagerank"):
            pattern = GraphTraversal(mode=mode)
            pages = pattern.generate(rng, 1_000_000, 5_000)
            assert len(pages) == 5_000
            assert pages.min() >= 0
            assert pages.max() < 1_000_000

    def test_graph_mode_validation(self):
        with pytest.raises(ValueError):
            GraphTraversal(mode="dfs")

    def test_pagerank_visits_sequentially(self):
        rng = np.random.default_rng(5)
        pattern = GraphTraversal(mode="pagerank", neighbour_samples=0,
                                 meta_fraction=0.5)
        pages = pattern.generate(rng, 10_000, 3_000)
        meta = pages[pages < 5_000]
        # Sequential vertex sweep: meta pages are non-decreasing (modulo
        # the wrap).
        diffs = np.diff(meta)
        assert np.mean(diffs >= 0) > 0.95

    def test_mix_draws_from_all_parts(self):
        rng = np.random.default_rng(6)
        pattern = Mix((
            (0.5, Zipf(alpha=2.0, scatter=False)),
            (0.5, Zipf(alpha=0.4, scatter=False)),
        ))
        pages = pattern.generate(rng, 10_000, 4_000)
        assert len(pages) == 4_000


class TestBuildProcess:
    def test_asap_levels_create_layout(self):
        process = get("mcf").build_process(asap_levels=(1, 2))
        assert process.asap_layout is not None
        heap = process.vmas.largest(1)[0]
        assert process.asap_layout.region(heap, 1) is not None

    def test_layout_addresses_are_page_aligned(self):
        for spec, base in get("mc400").layout():
            assert base % PAGE_SIZE == 0

    def test_layout_has_no_overlaps(self):
        placed = get("mc400").layout()
        ranges = sorted((base, base + spec.size_bytes)
                        for spec, base in placed)
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 <= s2
