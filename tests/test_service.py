"""Tests for the experiment service (repro.service).

Covers the acceptance-critical properties of the queue/daemon/client/
reporter split: journal state transitions and crash recovery, dedup
across concurrent engines sharing one cache directory, byte-identical
sweep output through the service path, incremental report regeneration
rebuilding only changed tables, and the concurrent-writer safety of the
cache pruner and the bench trajectory appends.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import report, table1, table2
from repro.runtime import Engine, Job, ResultCache
from repro.runtime.cache import (
    OBS_SUBDIR,
    PRUNE_GRACE_SECONDS,
    SERVICE_SUBDIR,
)
from repro.runtime.engine import JobExecutionError
from repro.runtime.progress import JobRecord, ProgressPrinter
from repro.service.client import ServiceEngine
from repro.service.queue import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    JobQueue,
    daemon_alive,
    read_daemon_meta,
    service_dir,
    write_daemon_meta,
)
from repro.sim.runner import Scale

TINY = Scale(trace_length=2_000, warmup=400, seed=13)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A pid that cannot be alive (kernel pid space is way below this).
DEAD_PID = 2 ** 22 + 12345


def _jobs(count: int = 3) -> list[Job]:
    from repro.runtime import PT_INVENTORY

    names = ["mcf", "canneal", "bfs", "pagerank", "mc80", "mc400", "redis"]
    return [Job(kind=PT_INVENTORY, workload=name, scale=TINY)
            for name in names[:count]]


# ----------------------------------------------------------------------
class TestJobQueue:
    def test_submit_and_states(self, tmp_path):
        queue = JobQueue.for_cache_dir(tmp_path)
        jobs = _jobs(2)
        out = queue.submit(jobs)
        assert [j.label() for j in out["enqueued"]] == \
            [j.label() for j in jobs]
        entries = queue.load()
        assert all(e.state == PENDING for e in entries.values())

        claimed = queue.claim(limit=1)
        assert len(claimed) == 1
        assert queue.load()[claimed[0].spec].state == RUNNING

        queue.mark_done(claimed[0].spec, 1.25)
        entry = queue.load()[claimed[0].spec]
        assert entry.state == DONE and entry.seconds == 1.25

    def test_submit_dedups_live_entries(self, tmp_path):
        queue = JobQueue.for_cache_dir(tmp_path)
        jobs = _jobs(2)
        queue.submit(jobs)
        again = queue.submit(jobs)
        assert not again["enqueued"]
        assert len(again["queued"]) == 2
        assert len(queue.load()) == 2

    def test_submit_dedups_against_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        queue = JobQueue.for_cache_dir(tmp_path)
        jobs = _jobs(2)
        cache.put(jobs[0], {"warm": True})
        out = queue.submit(jobs, cache=cache)
        assert out["cached"] == [jobs[0]]
        assert out["enqueued"] == [jobs[1]]
        assert len(queue.load()) == 1

    def test_claim_priority_then_fifo(self, tmp_path):
        queue = JobQueue.for_cache_dir(tmp_path)
        low, mid, high = _jobs(3)
        queue.submit([low], priority=0)
        queue.submit([mid], priority=0)
        queue.submit([high], priority=5)
        order = [entry.spec for entry in queue.claim(limit=3)]
        assert order == [high.spec_hash(), low.spec_hash(),
                         mid.spec_hash()]

    def test_failed_and_cancelled(self, tmp_path):
        queue = JobQueue.for_cache_dir(tmp_path)
        jobs = _jobs(2)
        queue.submit(jobs)
        claimed = queue.claim(limit=1)
        queue.mark_failed(claimed[0].spec, "boom")
        cancelled = queue.cancel(all_pending=True)
        assert len(cancelled) == 1
        entries = queue.load()
        assert entries[claimed[0].spec].state == FAILED
        assert entries[claimed[0].spec].error == "boom"
        assert entries[cancelled[0].spec].state == CANCELLED

    def test_terminal_entries_can_resubmit(self, tmp_path):
        queue = JobQueue.for_cache_dir(tmp_path)
        job = _jobs(1)[0]
        queue.submit([job])
        queue.claim(limit=1)
        queue.mark_failed(job.spec_hash(), "boom")
        out = queue.submit([job])
        assert out["enqueued"] == [job]
        assert queue.load()[job.spec_hash()].state == PENDING

    def test_recover_reverts_dead_running(self, tmp_path):
        queue = JobQueue.for_cache_dir(tmp_path)
        jobs = _jobs(2)
        queue.submit(jobs)
        queue.claim(limit=1, pid=DEAD_PID)
        queue.claim(limit=1, pid=os.getpid())
        recovered = queue.recover()
        assert len(recovered) == 1
        states = {e.spec: e.state for e in queue.load().values()}
        assert states[recovered[0].spec] == PENDING
        # the entry running under a live pid is untouched
        assert RUNNING in states.values()

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        queue = JobQueue.for_cache_dir(tmp_path)
        queue.submit(_jobs(2))
        with queue.journal.open("a") as fh:
            fh.write('{"op": "done", "spec": "abc')  # crashed writer
        assert len(queue.load()) == 2

    def test_compact_preserves_state(self, tmp_path):
        queue = JobQueue.for_cache_dir(tmp_path)
        jobs = _jobs(3)
        queue.submit(jobs)
        claimed = queue.claim(limit=1)
        queue.mark_done(claimed[0].spec, 2.5)
        before = {spec: (e.state, e.seconds, e.priority, e.seq)
                  for spec, e in queue.load().items()}
        assert queue.compact(threshold=0)
        after = {spec: (e.state, e.seconds, e.priority, e.seq)
                 for spec, e in queue.load().items()}
        assert before == after
        # one submit line per entry now
        lines = queue.journal.read_text().splitlines()
        assert len(lines) == 3
        # and the folded entries still unpickle
        entry = next(iter(queue.load().values()))
        assert entry.job().spec_hash() == entry.spec

    def test_depth_and_position(self, tmp_path):
        queue = JobQueue.for_cache_dir(tmp_path)
        jobs = _jobs(3)
        queue.submit(jobs[:2])
        queue.submit([jobs[2]], priority=9)
        assert queue.depth() == 3
        assert queue.position(jobs[2].spec_hash()) == 1
        assert queue.position(jobs[0].spec_hash()) == 2
        queue.claim(limit=1)
        assert queue.position(jobs[2].spec_hash()) is None
        assert queue.depth() == 3  # running still counts as live


class TestHeartbeat:
    def test_daemon_alive_lifecycle(self, tmp_path):
        directory = service_dir(tmp_path)
        assert not daemon_alive(directory)
        write_daemon_meta(directory)
        assert daemon_alive(directory)
        meta = read_daemon_meta(directory)
        assert meta["pid"] == os.getpid()

    def test_stale_heartbeat_is_dead(self, tmp_path):
        directory = service_dir(tmp_path)
        write_daemon_meta(directory)
        assert not daemon_alive(directory, staleness=0.0)

    def test_dead_pid_is_dead(self, tmp_path):
        directory = service_dir(tmp_path)
        directory.mkdir(parents=True)
        (directory / "daemon.json").write_text(json.dumps(
            {"pid": DEAD_PID, "beat_wall": time.time()}))
        assert not daemon_alive(directory)


# ----------------------------------------------------------------------
class TestServiceEngine:
    def test_fallback_executes_and_journals(self, tmp_path):
        engine = ServiceEngine(jobs=1, cache=ResultCache(tmp_path))
        jobs = _jobs(2)
        results = engine.run_jobs(jobs)
        assert len(results) == 2
        entries = JobQueue.for_cache_dir(tmp_path).load()
        assert len(entries) == 2
        assert all(e.state == DONE for e in entries.values())
        report_ = engine.last_report
        assert report_.executed == 2 and report_.cache_hits == 0

    def test_rerun_hits_cache_not_queue(self, tmp_path):
        jobs = _jobs(2)
        ServiceEngine(jobs=1, cache=ResultCache(tmp_path)).run_jobs(jobs)
        engine = ServiceEngine(jobs=1, cache=ResultCache(tmp_path))
        engine.run_jobs(jobs)
        assert engine.last_report.cache_hits == 2
        assert engine.last_report.executed == 0

    def test_matches_plain_engine_results(self, tmp_path):
        jobs = _jobs(2)
        plain = Engine(jobs=1, cache=None).run_jobs(jobs)
        routed = ServiceEngine(
            jobs=1, cache=ResultCache(tmp_path / "svc")).run_jobs(jobs)
        for job in jobs:
            assert plain[job] == routed[job]

    def test_failed_job_marks_journal(self, tmp_path, monkeypatch):
        import repro.runtime.engine as engine_mod

        def boom(job):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(engine_mod, "_timed_execute", boom)
        job = _jobs(1)[0]
        engine = ServiceEngine(jobs=1, cache=ResultCache(tmp_path))
        with pytest.raises(Exception, match="synthetic failure"):
            engine.run_jobs([job])
        entries = JobQueue.for_cache_dir(tmp_path).load()
        assert entries[job.spec_hash()].state == FAILED

    def test_waits_on_concurrent_executor(self, tmp_path):
        """Two engines, one cache dir: the second must wait for (not
        recompute) a cell a live concurrent executor already claimed."""
        cache = ResultCache(tmp_path)
        queue = JobQueue.for_cache_dir(tmp_path)
        job = _jobs(1)[0]
        reference = Engine(jobs=1, cache=None).run_jobs([job])[job]
        queue.submit([job])
        queue.claim(limit=1, pid=os.getpid())  # "other engine" = us: alive

        def finish_remotely():
            time.sleep(0.4)
            cache.put(job, reference)
            queue.mark_done(job.spec_hash(), 0.4)

        worker = threading.Thread(target=finish_remotely)
        worker.start()
        engine = ServiceEngine(jobs=1, cache=cache, poll_interval=0.05,
                               wait_timeout=30.0)
        results = engine.run_jobs([job])
        worker.join()
        assert results[job] == reference
        # waited, not recomputed: exactly one start line in the journal
        starts = sum(1 for line in queue.journal.read_text().splitlines()
                     if json.loads(line).get("op") == "start")
        assert starts == 1

    def test_remote_failure_raises(self, tmp_path):
        cache = ResultCache(tmp_path)
        queue = JobQueue.for_cache_dir(tmp_path)
        job = _jobs(1)[0]
        queue.submit([job])
        queue.claim(limit=1, pid=os.getpid())

        def fail_remotely():
            time.sleep(0.2)
            queue.mark_failed(job.spec_hash(), "remote boom")

        worker = threading.Thread(target=fail_remotely)
        worker.start()
        engine = ServiceEngine(jobs=1, cache=cache, poll_interval=0.05,
                               wait_timeout=30.0)
        with pytest.raises(JobExecutionError, match="remote boom"):
            engine.run_jobs([job])
        worker.join()

    def test_no_cache_degenerates_to_plain_engine(self, tmp_path):
        engine = ServiceEngine(jobs=1, cache=None)
        assert engine.queue is None
        job = _jobs(1)[0]
        assert engine.run_jobs([job])[job] is not None
        assert not service_dir(tmp_path).exists()


class TestSweepParity:
    """`repro sweep` through the service is byte-identical to the
    pre-refactor one-shot path (the acceptance pin)."""

    def test_sweep_stdout_byte_identical(self, tmp_path):
        plain_out, service_out = io.StringIO(), io.StringIO()
        report.run_sweep(TINY, Engine(jobs=1, cache=ResultCache(
            tmp_path / "plain")), out=plain_out, only=["table2"])
        report.run_sweep(TINY, ServiceEngine(jobs=1, cache=ResultCache(
            tmp_path / "svc")), out=service_out, only=["table2"])

        def tables(text: str) -> str:
            # the [sweep] trailer carries wall-clock; everything above
            # it must match byte for byte
            lines = [line for line in text.splitlines(keepends=True)
                     if not line.startswith("[sweep]")]
            return "".join(lines)

        assert tables(plain_out.getvalue()) == \
            tables(service_out.getvalue())
        assert "[sweep]" in service_out.getvalue()


# ----------------------------------------------------------------------
def _spawn_daemon(cache_dir: Path, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--cache-dir",
         str(cache_dir), "--poll-interval", "0.1", *extra],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _wait_until(predicate, timeout: float = 120.0,
                message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.mark.slow
class TestDaemonRecovery:
    def test_sigkill_recovery_without_recompute(self, tmp_path):
        """Kill the daemon mid-sweep; a restart must recover the journal
        and finish without recomputing the cells already done."""
        queue = JobQueue.for_cache_dir(tmp_path)
        jobs = _jobs(6)
        queue.submit(jobs)
        daemon = _spawn_daemon(tmp_path)
        try:
            _wait_until(
                lambda: queue.counts()[DONE] >= 2,
                message="first cells done")
        finally:
            daemon.kill()
            daemon.wait()
        # heartbeat file still names the dead pid; recovery must not
        # depend on a clean shutdown
        counts = queue.counts()
        assert counts[DONE] >= 2
        done_before = {spec for spec, e in queue.load().items()
                       if e.state == DONE}

        rerun = _spawn_daemon(tmp_path, "--once")
        assert rerun.wait(timeout=240) == 0
        entries = queue.load()
        assert all(e.state == DONE for e in entries.values())
        # no recomputation: every previously-done spec has exactly one
        # start line across the whole journal
        starts: dict[str, int] = {}
        for line in queue.journal.read_text().splitlines():
            record = json.loads(line)
            if record.get("op") == "start":
                starts[record["spec"]] = starts.get(record["spec"], 0) + 1
        for spec in done_before:
            assert starts[spec] == 1

    def test_two_clients_dedup_through_daemon(self, tmp_path):
        """Daemon + two submitting clients: every cell executes once."""
        queue = JobQueue.for_cache_dir(tmp_path)
        cache = ResultCache(tmp_path)
        jobs = _jobs(3)
        first = queue.submit(jobs, cache=cache)
        second = queue.submit(jobs, cache=cache)
        assert len(first["enqueued"]) == 3
        assert len(second["queued"]) == 3 and not second["enqueued"]
        daemon = _spawn_daemon(tmp_path, "--once")
        assert daemon.wait(timeout=240) == 0
        entries = queue.load()
        assert sorted(e.state for e in entries.values()) == [DONE] * 3
        third = queue.submit(jobs, cache=cache)
        assert len(third["cached"]) == 3


# ----------------------------------------------------------------------
class TestIncrementalReporter:
    @pytest.fixture()
    def warm(self, tmp_path):
        from repro.service.reporter import IncrementalReporter

        cache = ResultCache(tmp_path)
        engine = ServiceEngine(jobs=1, cache=cache)
        reporter = IncrementalReporter(cache)
        update = reporter.update(TINY, engine, only=["table1", "table2"])
        return cache, engine, reporter, update

    def test_cold_pass_builds_everything(self, warm):
        _, _, _, update = warm
        assert update.rebuilt == ["Table 1", "Table 2"]
        assert not update.reused
        assert update.executed > 0

    def test_warm_pass_reuses_everything(self, warm):
        cache, engine, reporter, _ = warm
        update = reporter.update(TINY, engine, only=["table1", "table2"])
        assert not update.rebuilt
        assert update.reused == ["Table 1", "Table 2"]
        assert update.executed == 0

    def test_changed_cell_rebuilds_only_its_table(self, warm):
        cache, engine, reporter, cold = warm
        # same value, different pickle bytes: a changed cell digest
        job = list(dict.fromkeys(table2.jobs(TINY)))[0]
        value = cache.get(job)
        cache._path(job).write_bytes(pickle.dumps(value, protocol=2))
        update = reporter.update(TINY, engine, only=["table1", "table2"])
        assert update.rebuilt == ["Table 2"]
        assert update.reused == ["Table 1"]
        assert update.executed == 0
        # ...and the assembled document is byte-identical to what a
        # full (non-incremental) rebuild of the same cells produces
        full = reporter.full_raw_equivalent(
            TINY, only=["table1", "table2"])
        from repro.service import assemble

        assert assemble.build(update.raw) == assemble.build(full)

    def test_write_outputs_assembles_document(self, warm, tmp_path):
        _, _, reporter, update = warm
        target = reporter.write_outputs(update)
        text = target.read_text()
        assert text.startswith("# EXPERIMENTS — paper vs. measured")
        assert "## Table 2" in text or "Table 2 —" in text

    def test_missing_cell_reexecutes(self, warm):
        cache, engine, reporter, _ = warm
        job = list(dict.fromkeys(table1.jobs(TINY)))[0]
        cache._path(job).unlink()
        update = reporter.update(TINY, engine, only=["table1", "table2"])
        assert update.executed >= 1
        # deterministic jobs rewrite byte-identical pickles, so the
        # signature may match again and legitimately reuse the section;
        # either way the section must be accounted for and the cell back
        assert sorted(update.rebuilt + update.reused) == \
            ["Table 1", "Table 2"]
        assert cache._path(job).exists()

    def test_unknown_only_name_rejected(self, warm):
        _, engine, reporter, _ = warm
        with pytest.raises(ValueError, match="unknown experiment"):
            reporter.update(TINY, engine, only=["tableX"])

    def test_only_pass_merges_stored_sections(self, warm):
        # A pass restricted to table2 must still publish table1's
        # stored model — a partial refresh never degrades the document
        # to placeholders for sections built earlier.
        cache, engine, reporter, _ = warm
        update = reporter.update(TINY, engine, only=["table2"])
        assert "Table 1:" not in update.raw  # parity contract: raw
        # covers only the selected sections...
        merged = reporter.document_raw(update)
        assert "Table 1:" in merged and "Table 2:" in merged
        target = reporter.write_outputs(update)
        text = target.read_text()
        assert "Table 1:" in text
        raw_file = (reporter.root / "experiments_raw.txt").read_text()
        assert "Table 1:" in raw_file

    def test_stored_model_reserialization_is_render_stable(self, warm):
        # The stored cell model re-renders byte-identically to the text
        # the section was first built from (the /tables endpoint and the
        # reporter share one renderer).
        from repro.service.reporter import _render_section, _slug
        _, _, reporter, update = warm
        for name in update.sections:
            payloads = reporter._load_section(_slug(name))
            assert payloads is not None
            assert _render_section(payloads) == update.sections[name]


class TestAssemblySplit:
    def test_tool_and_module_agree(self):
        from repro.service import assemble

        raw = (REPO_ROOT / "docs" / "experiments_raw.txt").read_text()
        built = assemble.build(raw)
        assert built == (REPO_ROOT / "EXPERIMENTS.md").read_text()


# ----------------------------------------------------------------------
class TestPruneSafety:
    def test_grace_window_spares_recent_version_dirs(self, tmp_path):
        stale = tmp_path / "0123456789abcdef"
        stale.mkdir(parents=True)
        (stale / "x.pkl").write_bytes(b"data")
        ResultCache(tmp_path)
        assert stale.exists()  # too young to prune

    def test_old_version_dirs_are_pruned(self, tmp_path):
        stale = tmp_path / "0123456789abcdef"
        stale.mkdir(parents=True)
        old = time.time() - 2 * PRUNE_GRACE_SECONDS
        os.utime(stale, (old, old))
        ResultCache(tmp_path)
        assert not stale.exists()

    def test_service_and_obs_dirs_survive(self, tmp_path):
        old = time.time() - 2 * PRUNE_GRACE_SECONDS
        for name in (SERVICE_SUBDIR, OBS_SUBDIR):
            sub = tmp_path / name
            sub.mkdir(parents=True)
            (sub / "keep.txt").write_text("x")
            os.utime(sub, (old, old))
        ResultCache(tmp_path)
        assert (tmp_path / SERVICE_SUBDIR / "keep.txt").exists()
        assert (tmp_path / OBS_SUBDIR / "keep.txt").exists()

    def test_live_pid_tmp_file_survives(self, tmp_path):
        cache = ResultCache(tmp_path)
        live = cache._dir
        live.mkdir(parents=True, exist_ok=True)
        mine = live / f"aaaa.tmp.{os.getpid()}"
        mine.write_bytes(b"half-written")
        old = time.time() - 2 * PRUNE_GRACE_SECONDS
        os.utime(mine, (old, old))
        cache._prune_stale_versions()
        assert mine.exists()

    def test_dead_pid_old_tmp_file_is_pruned(self, tmp_path):
        cache = ResultCache(tmp_path)
        live = cache._dir
        live.mkdir(parents=True, exist_ok=True)
        orphan = live / f"bbbb.tmp.{DEAD_PID}"
        orphan.write_bytes(b"orphaned")
        old = time.time() - 2 * PRUNE_GRACE_SECONDS
        os.utime(orphan, (old, old))
        cache._prune_stale_versions()
        assert not orphan.exists()

    def test_recent_tmp_file_survives_even_if_dead(self, tmp_path):
        cache = ResultCache(tmp_path)
        live = cache._dir
        live.mkdir(parents=True, exist_ok=True)
        recent = live / f"cccc.tmp.{DEAD_PID}"
        recent.write_bytes(b"just-crashed")
        cache._prune_stale_versions()
        assert recent.exists()


class TestAtomicBenchAppend:
    def test_concurrent_appends_all_survive(self, tmp_path):
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from bench_schemes import atomic_append_entry
        finally:
            sys.path.pop(0)
        path = tmp_path / "BENCH_test.json"

        def merged() -> dict:
            if path.exists():
                return json.loads(path.read_text())
            return {"benchmark": "test", "entries": []}

        def appender(worker: int) -> None:
            for i in range(10):
                atomic_append_entry(
                    path, {"worker": worker, "i": i}, merged)

        threads = [threading.Thread(target=appender, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        document = json.loads(path.read_text())
        assert len(document["entries"]) == 40
        seen = {(e["worker"], e["i"]) for e in document["entries"]}
        assert len(seen) == 40


class TestProgressQueueLine:
    def test_queue_depth_and_position_rendered(self):
        stream = io.StringIO()
        printer = ProgressPrinter(total=2, stream=stream)
        job = _jobs(1)[0]
        printer.set_queue(5, 2)
        printer.job_done(JobRecord(job=job, seconds=1.0, cached=False))
        line = stream.getvalue().splitlines()[0]
        assert "queue 5 pos 2" in line
        assert line.startswith("[runtime]    1/2")

    def test_line_unchanged_without_queue(self):
        stream = io.StringIO()
        printer = ProgressPrinter(total=1, stream=stream)
        job = _jobs(1)[0]
        printer.job_done(JobRecord(job=job, seconds=0.0, cached=True))
        assert "queue" not in stream.getvalue()


# ----------------------------------------------------------------------
class TestServiceCli:
    def test_submit_status_cancel_roundtrip(self, tmp_path, capsys):
        cache_dir = str(tmp_path)
        assert main(["submit", "--trace-length", "2000", "--seed", "13",
                     "--only", "table2", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "7 enqueued" in out

        assert main(["status", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "daemon: none" in out and "7 pending" in out

        assert main(["status", "--cache-dir", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queue"]["pending"] == 7
        assert payload["alive"] is False

        assert main(["cancel", "--all", "--cache-dir", cache_dir]) == 0
        assert "cancelled 7" in capsys.readouterr().out

        assert main(["status", "--cache-dir", cache_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queue"]["cancelled"] == 7

    def test_cancel_requires_target(self, tmp_path, capsys):
        assert main(["cancel", "--cache-dir", str(tmp_path)]) == 2

    def test_sweep_no_service_skips_journal(self, tmp_path, capsys):
        assert main(["sweep", "--trace-length", "2000", "--seed", "13",
                     "--only", "table2", "--cache-dir", str(tmp_path),
                     "--no-service"]) == 0
        assert not (service_dir(tmp_path) / "journal.jsonl").exists()

    def test_sweep_journals_through_service(self, tmp_path, capsys):
        assert main(["sweep", "--trace-length", "2000", "--seed", "13",
                     "--only", "table2", "--cache-dir",
                     str(tmp_path)]) == 0
        queue = JobQueue.for_cache_dir(tmp_path)
        entries = queue.load()
        assert len(entries) == 7
        assert all(e.state == DONE for e in entries.values())
